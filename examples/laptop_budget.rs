//! The "laptop problem": what is the best schedule achievable using a
//! particular energy budget, before battery becomes critically low?
//!
//! Two applications share a battery-powered fully homogeneous platform.
//! For a sweep of energy budgets the example computes the best global
//! period: it walks the period/energy Pareto front (Theorem 18/21 DP) and
//! returns the fastest point whose energy fits the budget. It also shows
//! the Theorem 24 uni-modal variant where the budget simply caps the
//! number of processors.
//!
//! Run with: `cargo run --example laptop_budget`

use concurrent_pipelines::model::generator::{dsp_radio_app, video_encoding_app};
use concurrent_pipelines::prelude::*;
use concurrent_pipelines::solvers::pareto::period_energy_front;
use concurrent_pipelines::solvers::tri::unimodal::min_period_tri_unimodal;
use concurrent_pipelines::solvers::MappingKind;

fn main() {
    let apps =
        AppSet::new(vec![video_encoding_app(1.0), dsp_radio_app(1.0)]).expect("two applications");
    let platform =
        Platform::fully_homogeneous(8, vec![0.5, 1.0, 2.0, 4.0], 4.0).expect("valid platform");

    // Precompute the full trade-off curve once.
    let front = period_energy_front(&apps, &platform, CommModel::Overlap, MappingKind::Interval);
    println!("multi-modal platform: {} Pareto points\n", front.len());
    println!("{:>10} | {:>10} | {:>10} | {:>6}", "budget E≤", "period", "energy", "procs");
    for budget in [200.0, 100.0, 50.0, 25.0, 12.0, 6.0, 3.0, 1.0] {
        // The fastest front point within budget.
        let best = front
            .iter()
            .filter(|pt| pt.energy <= budget + 1e-9)
            .min_by(|a, b| a.period.partial_cmp(&b.period).expect("finite"));
        match best {
            Some(pt) => println!(
                "{:>10} | {:>10.3} | {:>10.2} | {:>6}",
                budget,
                pt.period,
                pt.energy,
                pt.solution.mapping.enrolled()
            ),
            None => println!("{budget:>10} | battery too low for any mapping"),
        }
    }

    // Budget monotonicity: more energy can only improve the best period.
    let mut last = f64::INFINITY;
    for budget in [1.0, 3.0, 6.0, 12.0, 25.0, 50.0, 100.0, 200.0] {
        if let Some(pt) = front
            .iter()
            .filter(|pt| pt.energy <= budget + 1e-9)
            .min_by(|a, b| a.period.partial_cmp(&b.period).expect("finite"))
        {
            assert!(pt.period <= last + 1e-9);
            last = pt.period;
        }
    }

    // Uni-modal variant (Theorem 24): processors have a single speed, so a
    // budget is just a cap on how many can be powered.
    let uni = Platform::fully_homogeneous(8, vec![2.0], 4.0).expect("valid platform");
    println!("\nuni-modal platform (speed 2, energy 4/processor), Theorem 24:");
    println!("{:>10} | {:>10} | {:>6}", "budget E≤", "period", "procs");
    for budget in [32.0, 24.0, 16.0, 12.0, 8.0] {
        match min_period_tri_unimodal(
            &apps,
            &uni,
            CommModel::Overlap,
            &[f64::INFINITY, f64::INFINITY],
            budget,
        ) {
            Some(sol) => println!(
                "{:>10} | {:>10.3} | {:>6}",
                budget,
                sol.objective,
                sol.mapping.enrolled()
            ),
            None => println!("{budget:>10} | infeasible (needs ≥ 1 processor per application)"),
        }
    }
}
