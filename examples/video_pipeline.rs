//! Video encoding on a DVFS cluster: sweeping the period/energy trade-off.
//!
//! A 7-stage H.264-style encoding chain runs on a fully homogeneous
//! platform of DVFS processors (4 modes each). The example sweeps the
//! entire period/energy Pareto front with the polynomial Theorem 18/21
//! dynamic program, prints the staircase, then picks the knee point and
//! validates it in the discrete-event simulator.
//!
//! Run with: `cargo run --example video_pipeline`

use concurrent_pipelines::model::generator::video_encoding_app;
use concurrent_pipelines::prelude::*;
use concurrent_pipelines::simulator::simulate;
use concurrent_pipelines::solvers::pareto::period_energy_front;
use concurrent_pipelines::solvers::MappingKind;

fn main() {
    let apps = AppSet::single(video_encoding_app(1.0));
    // 6 identical DVFS processors: 0.5–4 GHz-ish modes, uniform gigabit-like
    // links (bandwidth 4 data units / time unit).
    let platform =
        Platform::fully_homogeneous(6, vec![0.5, 1.0, 2.0, 4.0], 4.0).expect("valid platform");

    println!("workload: {} ({} stages, total work {})", apps.apps[0].name, apps.apps[0].n(), apps.apps[0].total_work());
    println!("platform: {} processors, modes {:?}\n", platform.p(), platform.procs[0].speeds());

    let front = period_energy_front(&apps, &platform, CommModel::Overlap, MappingKind::Interval);
    println!("period/energy Pareto front ({} points):", front.len());
    println!("{:>10} {:>10} {:>7} {:>24}", "period", "energy", "procs", "modes");
    for pt in &front {
        let modes: Vec<f64> = pt
            .solution
            .mapping
            .enrolled_procs()
            .map(|(u, m)| platform.procs[u].speed(m))
            .collect();
        println!(
            "{:>10.3} {:>10.2} {:>7} {:>24}",
            pt.period,
            pt.energy,
            pt.solution.mapping.enrolled(),
            format!("{modes:?}")
        );
    }

    // Knee point: the point minimizing period × energy (a simple
    // energy-delay-product style criterion).
    let knee = front
        .iter()
        .min_by(|a, b| {
            (a.period * a.energy)
                .partial_cmp(&(b.period * b.energy))
                .expect("finite")
        })
        .expect("non-empty front");
    println!(
        "\nknee point: period {:.3}, energy {:.2} (period × energy = {:.2})",
        knee.period,
        knee.energy,
        knee.period * knee.energy
    );

    // Validate in the simulator: the measured steady-state frame rate must
    // match the analytic period.
    let report = simulate(&apps, &platform, &knee.solution.mapping, CommModel::Overlap, 128);
    println!(
        "simulated 128 frames: measured period {:.3} (analytic {:.3}), \
         throughput {:.3} frames/time-unit",
        report.period,
        knee.period,
        1.0 / report.period
    );
    assert!((report.period - knee.period).abs() < 1e-6);

    // How much energy does the platform save versus running everything at
    // top speed with the same mapping?
    let full_speed = knee.solution.mapping.clone().at_max_speed(&platform);
    let ev = Evaluator::new(&apps, &platform);
    println!(
        "same mapping at top modes: period {:.3}, energy {:.2} → DVFS saves {:.0}% energy \
         for a {:.0}% longer period",
        ev.period(&full_speed, CommModel::Overlap),
        ev.energy(&full_speed),
        100.0 * (1.0 - knee.energy / ev.energy(&full_speed)),
        100.0 * (knee.period / ev.period(&full_speed, CommModel::Overlap) - 1.0)
    );
}
