//! Quickstart: the Section 2 motivating example of the paper, end to end.
//!
//! Two concurrent pipelined applications, three bi-modal processors,
//! `E_dyn(s) = s²`, all bandwidths 1. The example reproduces every number
//! quoted in the paper:
//!
//! * minimum period 1 (Eq. 1),
//! * minimum latency 2.75 (Eq. 2),
//! * minimum energy 10 (period then degrades to 14),
//! * energy 46 under the period-≤-2 compromise (vs 136 for the
//!   period-optimal mapping).
//!
//! Run with: `cargo run --example quickstart`

use concurrent_pipelines::model::generator::section2_example;
use concurrent_pipelines::prelude::*;
use concurrent_pipelines::simulator::simulate;
use concurrent_pipelines::solvers::exact::{exact_optimize, ExactConfig, SpeedPolicy};
use concurrent_pipelines::solvers::mono::latency::min_latency_interval_comm_hom;
use concurrent_pipelines::solvers::tri::multimodal::branch_and_bound_tri;
use concurrent_pipelines::solvers::{Criterion, MappingKind};

fn describe(name: &str, apps: &AppSet, platform: &Platform, mapping: &Mapping) {
    let ev = Evaluator::new(apps, platform);
    let e = ev.evaluate(mapping, CommModel::Overlap);
    println!("\n=== {name} ===");
    for (a, app) in apps.apps.iter().enumerate() {
        let chain = mapping.app_chain(a);
        let placement: Vec<String> = chain
            .iter()
            .map(|asg| {
                format!(
                    "S{}..S{} -> P{} @ speed {}",
                    asg.interval.first + 1,
                    asg.interval.last + 1,
                    asg.proc + 1,
                    platform.procs[asg.proc].speed(asg.mode)
                )
            })
            .collect();
        println!("  {:<6} {}", app.name, placement.join(", "));
    }
    println!(
        "  period = {:.3}   latency = {:.3}   energy = {:.1}",
        e.period, e.latency, e.energy
    );
}

fn main() {
    let (apps, platform) = section2_example();
    println!("Paper: Benoit, Renaud-Goud, Robert — IPDPS 2010, Section 2 example");
    println!(
        "{} applications, {} processors (speed sets {:?}, {:?}, {:?})",
        apps.a(),
        platform.p(),
        platform.procs[0].speeds(),
        platform.procs[1].speeds(),
        platform.procs[2].speeds()
    );

    // 1. Minimum period (exhaustive over interval mappings at top modes —
    //    the platform is comm-homogeneous with het processors, NP-hard in
    //    general, trivially small here).
    let cfg = ExactConfig {
        kind: MappingKind::Interval,
        model: CommModel::Overlap,
        speed: SpeedPolicy::MaxOnly,
    };
    let best_t = exact_optimize(&apps, &platform, cfg, Criterion::Period, &Thresholds::none())
        .expect("feasible");
    describe("minimum period (paper: 1)", &apps, &platform, &best_t.mapping);
    assert!((best_t.objective - 1.0).abs() < 1e-9);

    // 2. Minimum latency — polynomial greedy (Theorem 12).
    let best_l = min_latency_interval_comm_hom(&apps, &platform).expect("feasible");
    describe("minimum latency (paper: 2.75)", &apps, &platform, &best_l.mapping);
    assert!((best_l.objective - 2.75).abs() < 1e-9);

    // 3. Minimum energy, no performance constraint (paper: 10, period 14).
    let cfg_all = ExactConfig { speed: SpeedPolicy::All, ..cfg };
    let best_e =
        exact_optimize(&apps, &platform, cfg_all, Criterion::Energy, &Thresholds::none())
            .expect("feasible");
    describe("minimum energy (paper: 10)", &apps, &platform, &best_e.mapping);
    assert!((best_e.objective - 10.0).abs() < 1e-9);

    // 4. The compromise: minimum energy under period ≤ 2 (paper: 46),
    //    via the exact tri-criteria branch-and-bound.
    let compromise = branch_and_bound_tri(
        &apps,
        &platform,
        CommModel::Overlap,
        MappingKind::Interval,
        &[2.0, 2.0],
        &[f64::INFINITY, f64::INFINITY],
    )
    .expect("feasible");
    describe("energy under period ≤ 2 (paper: 46)", &apps, &platform, &compromise.mapping);
    assert!((compromise.objective - 46.0).abs() < 1e-9);

    // 5. Execute the compromise mapping in the discrete-event simulator and
    //    confirm the analytic numbers hold in execution.
    let report = simulate(&apps, &platform, &compromise.mapping, CommModel::Overlap, 64);
    println!("\n=== simulation of the compromise mapping (64 data sets) ===");
    println!(
        "  measured period = {:.3}   first-data-set latency = {:.3}   power = {:.1}",
        report.period, report.latency, report.power
    );
    for u in 0..platform.p() {
        println!("  P{} utilization = {:.1}%", u + 1, 100.0 * report.utilization(u));
    }
    assert!((report.period - 2.0).abs() < 1e-9);

    // 6. Gantt chart of the first 8 data sets under the compromise mapping.
    let (_, trace) = concurrent_pipelines::simulator::simulate_traced(
        &apps,
        &platform,
        &compromise.mapping,
        CommModel::Overlap,
        8,
    );
    println!("\n=== Gantt (compute activity, digits = data-set index) ===");
    print!("{}", trace.gantt(&platform, 72));

    println!("\nAll Section 2 numbers reproduced ✔");
}
