//! The "server problem": what is the least energy required to achieve a
//! desired level of performance?
//!
//! Three concurrent applications (video encoding, software radio, image
//! pipeline) share a fully homogeneous DVFS farm. Each application has an
//! SLA: a period bound (inverse throughput). The example compares
//!
//! * the **exact** polynomial solver (Theorems 18 + 21 dynamic program),
//! * the **greedy DVFS downscaling** heuristic, and
//! * **randomized local search**,
//!
//! then shows how the stricter the SLAs, the more energy the farm burns.
//!
//! Run with: `cargo run --example server_farm`

use concurrent_pipelines::model::generator::{
    dsp_radio_app, image_pipeline_app, video_encoding_app,
};
use concurrent_pipelines::prelude::*;
use concurrent_pipelines::solvers::heuristics::{local_search, LocalSearchConfig};
use concurrent_pipelines::solvers::prelude::min_energy_interval_fully_hom;

fn main() {
    let apps = AppSet::new(vec![
        video_encoding_app(1.0),
        dsp_radio_app(1.0),
        image_pipeline_app(1.0),
    ])
    .expect("three applications");
    let platform =
        Platform::fully_homogeneous(10, vec![0.5, 1.0, 2.0, 4.0], 4.0).expect("valid platform");

    println!(
        "farm: {} processors with modes {:?}; {} tenant applications\n",
        platform.p(),
        platform.procs[0].speeds(),
        apps.a()
    );
    println!(
        "{:>8} | {:>12} {:>7} | {:>12} | {:>12}",
        "SLA T≤", "DP energy", "procs", "greedy", "local search"
    );

    for sla in [16.0, 12.0, 8.0, 6.0, 5.0, 4.0] {
        let bounds = vec![sla; apps.a()];
        let exact = min_energy_interval_fully_hom(&apps, &platform, CommModel::Overlap, &bounds);
        let Some(exact) = exact else {
            println!("{sla:>8} | infeasible");
            continue;
        };
        // Greedy downscaling starts from the DP mapping at top speed.
        let fast_start = exact.mapping.clone().at_max_speed(&platform);
        let greedy = concurrent_pipelines::solvers::heuristics::greedy_energy_downscale(
            &apps,
            &platform,
            CommModel::Overlap,
            &bounds,
            &vec![f64::INFINITY; apps.a()],
            &fast_start,
        )
        .expect("fast start is feasible");
        let ls = local_search(
            &apps,
            &platform,
            CommModel::Overlap,
            &bounds,
            &vec![f64::INFINITY; apps.a()],
            &LocalSearchConfig { iterations: 3000, seed: 42, ..Default::default() },
        )
        .expect("feasible");
        println!(
            "{:>8} | {:>12.2} {:>7} | {:>12.2} | {:>12.2}",
            sla,
            exact.objective,
            exact.mapping.enrolled(),
            greedy.objective,
            ls.objective
        );
        // The polynomial DP is provably optimal here: heuristics can match
        // but never beat it.
        assert!(greedy.objective >= exact.objective - 1e-9);
        assert!(ls.objective >= exact.objective - 1e-9);
        // SLAs hold.
        let ev = Evaluator::new(&apps, &platform);
        for a in 0..apps.a() {
            assert!(ev.app_period(&exact.mapping, a, CommModel::Overlap) <= sla + 1e-9);
        }
    }

    println!("\nReading: tighter SLAs enroll more processors and higher DVFS modes;");
    println!("the Theorem 18/21 dynamic program gives the provable optimum on this");
    println!("fully homogeneous farm, and the heuristics (which also work on");
    println!("heterogeneous platforms where the problem is NP-hard) stay close.");
}
