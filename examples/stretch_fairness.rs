//! Fair scheduling of unequal tenants: the **maximum-stretch** objective.
//!
//! Eq. (6) of the paper allows `W_a = 1/X_a*`, where `X_a*` is the value
//! application `a` would achieve *alone* on the platform — then
//! `max_a W_a·X_a` is the maximum stretch (slowdown) any tenant suffers
//! from sharing (Bender et al.). This example schedules a small and a huge
//! application together and shows how the plain-max objective starves the
//! small tenant while the stretch objective keeps both slowdowns balanced.
//!
//! Run with: `cargo run --example stretch_fairness`

use concurrent_pipelines::model::generator::{dsp_radio_app, video_encoding_app};
use concurrent_pipelines::prelude::*;
use concurrent_pipelines::solvers::mono::period_interval::minimize_global_period;

fn main() {
    // A light DSP chain (total work 22) and a heavy video chain (work 37),
    // the latter scaled 4× to exaggerate the imbalance.
    let mut video = video_encoding_app(1.0);
    let stages: Vec<_> = video
        .stages
        .iter()
        .map(|s| concurrent_pipelines::model::application::Stage::new(s.work * 4.0, s.output))
        .collect();
    video = concurrent_pipelines::model::application::Application::named(
        "video-4x", video.input, stages, 1.0,
    )
    .expect("valid");
    let dsp = dsp_radio_app(1.0);
    let platform = Platform::fully_homogeneous(6, vec![2.0], 4.0).expect("valid platform");

    // Reference periods: each application alone on the full platform.
    let alone = |app: &concurrent_pipelines::model::application::Application| -> f64 {
        let solo = AppSet::single(app.clone());
        minimize_global_period(&solo, &platform, CommModel::Overlap)
            .expect("feasible")
            .objective
    };
    let t_star = [alone(&dsp), alone(&video)];
    println!("periods alone on the platform: dsp {:.3}, video {:.3}", t_star[0], t_star[1]);

    // 1. Plain max objective (W = 1): the scheduler only sees the video
    //    chain's period.
    let mut apps = AppSet::new(vec![dsp.clone(), video.clone()]).expect("two apps");
    Aggregation::Max.apply(&mut apps);
    let plain = minimize_global_period(&apps, &platform, CommModel::Overlap).expect("feasible");
    let ev = Evaluator::new(&apps, &platform);
    let plain_periods = [
        ev.app_period(&plain.mapping, 0, CommModel::Overlap),
        ev.app_period(&plain.mapping, 1, CommModel::Overlap),
    ];

    // 2. Maximum-stretch objective (W_a = 1/T_a*).
    let mut apps_stretch = AppSet::new(vec![dsp, video]).expect("two apps");
    Aggregation::Stretch(t_star.to_vec()).apply(&mut apps_stretch);
    let fair =
        minimize_global_period(&apps_stretch, &platform, CommModel::Overlap).expect("feasible");
    let evs = Evaluator::new(&apps_stretch, &platform);
    let fair_periods = [
        evs.app_period(&fair.mapping, 0, CommModel::Overlap),
        evs.app_period(&fair.mapping, 1, CommModel::Overlap),
    ];

    println!("\n{:>22} | {:>10} {:>10} | {:>9} {:>9}", "objective", "T_dsp", "T_video", "str_dsp", "str_video");
    for (name, t) in [("plain max", plain_periods), ("max stretch", fair_periods)] {
        println!(
            "{:>22} | {:>10.3} {:>10.3} | {:>8.2}x {:>8.2}x",
            name,
            t[0],
            t[1],
            t[0] / t_star[0],
            t[1] / t_star[1]
        );
    }

    let plain_worst = (plain_periods[0] / t_star[0]).max(plain_periods[1] / t_star[1]);
    let fair_worst = (fair_periods[0] / t_star[0]).max(fair_periods[1] / t_star[1]);
    println!(
        "\nworst-tenant slowdown: {plain_worst:.2}x (plain) vs {fair_worst:.2}x (stretch)"
    );
    assert!(
        fair_worst <= plain_worst + 1e-9,
        "the stretch objective never worsens the worst slowdown"
    );
}
