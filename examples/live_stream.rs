//! Live execution of a pipelined application on real threads.
//!
//! The model says a good interval mapping balances per-processor work; this
//! demo runs a 6-stage chain twice on actual OS threads (crossbeam channels
//! as links): once with a naive mapping (everything on one worker) and once
//! with the balanced interval mapping computed by the paper's period DP —
//! and measures the wall-clock throughput difference.
//!
//! Stage "work" is modelled with sleeps (I/O-like latency), so the
//! pipelining speedup is visible even on a single-core machine.
//!
//! Run with: `cargo run --release --example live_stream`

use concurrent_pipelines::model::application::Application;
use concurrent_pipelines::prelude::*;
use concurrent_pipelines::simulator::live::LivePipeline;
use concurrent_pipelines::solvers::dp::{period_table, HomCtx};
use std::time::Duration;

/// Per-stage work in milliseconds per item.
const STAGE_MS: [u64; 6] = [2, 6, 9, 7, 4, 1];
const ITEMS: usize = 32;
const WORKERS: usize = 3;

fn run_partition(partition: &[(usize, usize)]) -> (f64, Duration) {
    let mut pipe: LivePipeline<u64> = LivePipeline::new();
    for &(lo, hi) in partition {
        let ms: u64 = STAGE_MS[lo..=hi].iter().sum();
        pipe = pipe.stage(move |x: u64| {
            std::thread::sleep(Duration::from_millis(ms));
            x + 1
        });
    }
    let (out, rep) = pipe.run((0..ITEMS as u64).collect());
    assert_eq!(out.len(), ITEMS);
    (rep.throughput, rep.elapsed)
}

fn main() {
    // Model the same chain abstractly (speed 1 = 1 work-unit ... 1 ms,
    // no communication cost — channels are cheap next to the sleeps).
    let app = Application::from_pairs(0.0, &STAGE_MS.map(|w| (w as f64, 0.0)));
    let speeds = [1.0];
    let ctx = HomCtx::new(&app, &speeds, 1.0, CommModel::Overlap);

    let table = period_table(&ctx, WORKERS);
    let partition = table.partition(WORKERS, 0).expect("finite stage data");
    println!(
        "chain works {:?} ms; DP balanced partition over ≤ {} workers: {:?} \
         (analytic period {:.0} ms vs {:.0} ms on one worker)",
        STAGE_MS,
        WORKERS,
        partition.intervals,
        table.best[WORKERS - 1],
        table.best[0]
    );

    let naive = vec![(0usize, STAGE_MS.len() - 1)];
    let (thr_naive, t_naive) = run_partition(&naive);
    println!("naive    (1 worker):  {thr_naive:>6.1} items/s   total {t_naive:?}");

    let (thr_balanced, t_balanced) = run_partition(&partition.intervals);
    println!(
        "balanced ({} workers): {:>6.1} items/s   total {:?}",
        partition.intervals.len(),
        thr_balanced,
        t_balanced
    );

    let speedup = thr_balanced / thr_naive;
    let predicted = table.best[0] / table.best[WORKERS - 1];
    println!("speedup: {speedup:.2}× measured vs {predicted:.2}× predicted by the period model");
    assert!(
        speedup > 0.6 * predicted,
        "pipelining should deliver most of the predicted speedup"
    );
}
