//! Offline subset of the `serde` data model.
//!
//! Implements the serialization/deserialization trait surface this
//! workspace programs against — `Serialize`/`Deserialize`, the full
//! `Serializer`/`Deserializer` method set, visitors, seq/map/enum access,
//! `de::value::{SeqDeserializer, MapDeserializer, StringDeserializer}`,
//! `forward_to_deserialize_any!` and the `Serialize`/`Deserialize` derive
//! macros (re-exported from the vendored `serde_derive`). Formats are
//! provided by the user crate (see `cpo_model::io::json_value`), exactly
//! as with real serde.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};

mod impls;

/// Forward the listed `deserialize_*` methods to `deserialize_any`.
///
/// Mirrors serde's macro of the same name, including the per-method
/// signatures (`unit_struct`, `tuple`, `tuple_struct`, `struct`, `enum`
/// take extra arguments before the visitor).
#[macro_export]
macro_rules! forward_to_deserialize_any {
    (<$visitor:ident: Visitor<$lifetime:tt>> $($func:ident)*) => {
        $($crate::forward_to_deserialize_any_helper!{$func<$lifetime>})*
    };
    ($($func:ident)*) => {
        $($crate::forward_to_deserialize_any_helper!{$func<'de>})*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! forward_to_deserialize_any_method {
    ($func:ident<$l:tt>($($arg:ident : $ty:ty),*)) => {
        fn $func<V>(self, $($arg: $ty,)* visitor: V) -> std::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<$l>,
        {
            $(let _ = $arg;)*
            self.deserialize_any(visitor)
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! forward_to_deserialize_any_helper {
    (bool<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_bool<$l>()} };
    (i8<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_i8<$l>()} };
    (i16<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_i16<$l>()} };
    (i32<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_i32<$l>()} };
    (i64<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_i64<$l>()} };
    (i128<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_i128<$l>()} };
    (u8<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_u8<$l>()} };
    (u16<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_u16<$l>()} };
    (u32<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_u32<$l>()} };
    (u64<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_u64<$l>()} };
    (u128<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_u128<$l>()} };
    (f32<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_f32<$l>()} };
    (f64<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_f64<$l>()} };
    (char<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_char<$l>()} };
    (str<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_str<$l>()} };
    (string<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_string<$l>()} };
    (bytes<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_bytes<$l>()} };
    (byte_buf<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_byte_buf<$l>()} };
    (option<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_option<$l>()} };
    (unit<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_unit<$l>()} };
    (unit_struct<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_unit_struct<$l>(name: &'static str)} };
    (newtype_struct<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_newtype_struct<$l>(name: &'static str)} };
    (seq<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_seq<$l>()} };
    (tuple<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_tuple<$l>(len: usize)} };
    (tuple_struct<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_tuple_struct<$l>(name: &'static str, len: usize)} };
    (map<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_map<$l>()} };
    (struct<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_struct<$l>(name: &'static str, fields: &'static [&'static str])} };
    (enum<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_enum<$l>(name: &'static str, variants: &'static [&'static str])} };
    (identifier<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_identifier<$l>()} };
    (ignored_any<$l:tt>) => { $crate::forward_to_deserialize_any_method!{deserialize_ignored_any<$l>()} };
}
