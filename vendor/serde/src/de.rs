//! Deserialization half of the data model.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Error type constructible from a display message.
pub trait Error: Sized + std::error::Error {
    /// Build an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A required field was absent.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }

    /// An unexpected field was present.
    fn unknown_field(field: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!("unknown field `{field}`, expected one of {expected:?}"))
    }

    /// An unexpected enum variant was present.
    fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!("unknown variant `{variant}`, expected one of {expected:?}"))
    }

    /// A compound had the wrong number of elements.
    fn invalid_length(len: usize, expected: &dyn Display) -> Self {
        Self::custom(format_args!("invalid length {len}, expected {expected}"))
    }
}

/// A data structure deserializable from any format.
pub trait Deserialize<'de>: Sized {
    /// Deserialize `Self` with the given deserializer.
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// A `Deserialize` that borrows nothing from its input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Stateful deserialization entry point (serde's `DeserializeSeed`).
pub trait DeserializeSeed<'de>: Sized {
    /// Produced type.
    type Value;

    /// Deserialize the value using this seed.
    fn deserialize<D>(self, deserializer: D) -> Result<Self::Value, D::Error>
    where
        D: Deserializer<'de>;
}

impl<'de, T> DeserializeSeed<'de> for PhantomData<T>
where
    T: Deserialize<'de>,
{
    type Value = T;

    fn deserialize<D>(self, deserializer: D) -> Result<T, D::Error>
    where
        D: Deserializer<'de>,
    {
        T::deserialize(deserializer)
    }
}

/// A format's deserialization driver.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Deserialize whatever the input contains.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `bool`.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `i8`.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `i16`.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `i32`.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `i64`.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `i128`.
    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `u8`.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `u16`.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `u32`.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `u64`.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `u128`.
    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `f32`.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `f64`.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `char`.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a string slice.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an owned string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize borrowed bytes.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an owned byte buffer.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `Option`.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize `()`.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a tuple.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a struct.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize an enum.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a field/variant identifier.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize and discard whatever the input contains.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V)
        -> Result<V::Value, Self::Error>;
}

/// Driver callbacks receiving the decoded shapes.
pub trait Visitor<'de>: Sized {
    /// Produced type.
    type Value;

    /// Describe what this visitor expects (used in error messages).
    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
        formatter.write_str("a value")
    }

    /// Visit a `bool`.
    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected bool `{v}`")))
    }
    /// Visit an `i8` (widens to `visit_i64`).
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Visit an `i16` (widens to `visit_i64`).
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Visit an `i32` (widens to `visit_i64`).
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Visit an `i64`.
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected integer `{v}`")))
    }
    /// Visit an `i128`.
    fn visit_i128<E: Error>(self, v: i128) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected integer `{v}`")))
    }
    /// Visit a `u8` (widens to `visit_u64`).
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Visit a `u16` (widens to `visit_u64`).
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Visit a `u32` (widens to `visit_u64`).
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Visit a `u64`.
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected unsigned integer `{v}`")))
    }
    /// Visit a `u128`.
    fn visit_u128<E: Error>(self, v: u128) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected unsigned integer `{v}`")))
    }
    /// Visit an `f32` (widens to `visit_f64`).
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }
    /// Visit an `f64`.
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected float `{v}`")))
    }
    /// Visit a `char` (narrows to `visit_str`).
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        self.visit_str(v.encode_utf8(&mut [0u8; 4]))
    }
    /// Visit a borrowed string.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected string {v:?}")))
    }
    /// Visit a string borrowed from the input.
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }
    /// Visit an owned string.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    /// Visit borrowed bytes.
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom("unexpected bytes"))
    }
    /// Visit an owned byte buffer.
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }
    /// Visit an absent optional.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected none"))
    }
    /// Visit a present optional.
    fn visit_some<D>(self, deserializer: D) -> Result<Self::Value, D::Error>
    where
        D: Deserializer<'de>,
    {
        let _ = deserializer;
        Err(D::Error::custom("unexpected some"))
    }
    /// Visit a unit.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected unit"))
    }
    /// Visit a newtype struct.
    fn visit_newtype_struct<D>(self, deserializer: D) -> Result<Self::Value, D::Error>
    where
        D: Deserializer<'de>,
    {
        let _ = deserializer;
        Err(D::Error::custom("unexpected newtype struct"))
    }
    /// Visit a sequence.
    fn visit_seq<A>(self, seq: A) -> Result<Self::Value, A::Error>
    where
        A: SeqAccess<'de>,
    {
        let _ = seq;
        Err(A::Error::custom("unexpected sequence"))
    }
    /// Visit a map.
    fn visit_map<A>(self, map: A) -> Result<Self::Value, A::Error>
    where
        A: MapAccess<'de>,
    {
        let _ = map;
        Err(A::Error::custom("unexpected map"))
    }
    /// Visit an enum.
    fn visit_enum<A>(self, data: A) -> Result<Self::Value, A::Error>
    where
        A: EnumAccess<'de>,
    {
        let _ = data;
        Err(A::Error::custom("unexpected enum"))
    }
}

/// Iterative access to a sequence's elements.
pub trait SeqAccess<'de> {
    /// Error type.
    type Error: Error;

    /// Next element through a seed.
    fn next_element_seed<T>(&mut self, seed: T) -> Result<Option<T::Value>, Self::Error>
    where
        T: DeserializeSeed<'de>;

    /// Next element.
    fn next_element<T>(&mut self) -> Result<Option<T>, Self::Error>
    where
        T: Deserialize<'de>,
    {
        self.next_element_seed(PhantomData)
    }

    /// Remaining length when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Iterative access to a map's entries.
pub trait MapAccess<'de> {
    /// Error type.
    type Error: Error;

    /// Next key through a seed.
    fn next_key_seed<K>(&mut self, seed: K) -> Result<Option<K::Value>, Self::Error>
    where
        K: DeserializeSeed<'de>;

    /// Value for the pending key, through a seed.
    fn next_value_seed<V>(&mut self, seed: V) -> Result<V::Value, Self::Error>
    where
        V: DeserializeSeed<'de>;

    /// Next key.
    fn next_key<K>(&mut self) -> Result<Option<K>, Self::Error>
    where
        K: Deserialize<'de>,
    {
        self.next_key_seed(PhantomData)
    }

    /// Value for the pending key.
    fn next_value<V>(&mut self) -> Result<V, Self::Error>
    where
        V: Deserialize<'de>,
    {
        self.next_value_seed(PhantomData)
    }

    /// Next full entry.
    fn next_entry<K, V>(&mut self) -> Result<Option<(K, V)>, Self::Error>
    where
        K: Deserialize<'de>,
        V: Deserialize<'de>,
    {
        match self.next_key()? {
            Some(key) => Ok(Some((key, self.next_value()?))),
            None => Ok(None),
        }
    }

    /// Remaining length when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to an enum's variant name plus its content.
pub trait EnumAccess<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Content accessor paired with the decoded variant name.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Decode the variant identifier through a seed.
    fn variant_seed<V>(self, seed: V) -> Result<(V::Value, Self::Variant), Self::Error>
    where
        V: DeserializeSeed<'de>;

    /// Decode the variant identifier.
    fn variant<V>(self) -> Result<(V, Self::Variant), Self::Error>
    where
        V: Deserialize<'de>,
    {
        self.variant_seed(PhantomData)
    }
}

/// Access to one enum variant's content.
pub trait VariantAccess<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// The variant is a unit variant.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// The variant is a newtype variant, decoded through a seed.
    fn newtype_variant_seed<T>(self, seed: T) -> Result<T::Value, Self::Error>
    where
        T: DeserializeSeed<'de>;

    /// The variant is a newtype variant.
    fn newtype_variant<T>(self) -> Result<T, Self::Error>
    where
        T: Deserialize<'de>,
    {
        self.newtype_variant_seed(PhantomData)
    }

    /// The variant is a tuple variant.
    fn tuple_variant<V>(self, len: usize, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;

    /// The variant is a struct variant.
    fn struct_variant<V>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
}

/// Conversion into a `Deserializer` with a chosen error type.
pub trait IntoDeserializer<'de, E: Error> {
    /// The produced deserializer.
    type Deserializer: Deserializer<'de, Error = E>;

    /// Perform the conversion.
    fn into_deserializer(self) -> Self::Deserializer;
}

/// Efficiently discards whatever it deserializes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IgnoredAny;

impl<'de> Deserialize<'de> for IgnoredAny {
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>,
    {
        deserializer.deserialize_ignored_any(IgnoredAny)
    }
}

impl<'de> Visitor<'de> for IgnoredAny {
    type Value = IgnoredAny;

    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
        formatter.write_str("anything at all")
    }

    fn visit_bool<E: Error>(self, _: bool) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_i64<E: Error>(self, _: i64) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_i128<E: Error>(self, _: i128) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_u64<E: Error>(self, _: u64) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_u128<E: Error>(self, _: u128) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_f64<E: Error>(self, _: f64) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_str<E: Error>(self, _: &str) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_bytes<E: Error>(self, _: &[u8]) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_none<E: Error>(self) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_some<D>(self, deserializer: D) -> Result<IgnoredAny, D::Error>
    where
        D: Deserializer<'de>,
    {
        deserializer.deserialize_ignored_any(IgnoredAny)
    }
    fn visit_unit<E: Error>(self) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_newtype_struct<D>(self, deserializer: D) -> Result<IgnoredAny, D::Error>
    where
        D: Deserializer<'de>,
    {
        deserializer.deserialize_ignored_any(IgnoredAny)
    }
    fn visit_seq<A>(self, mut seq: A) -> Result<IgnoredAny, A::Error>
    where
        A: SeqAccess<'de>,
    {
        while seq.next_element::<IgnoredAny>()?.is_some() {}
        Ok(IgnoredAny)
    }
    fn visit_map<A>(self, mut map: A) -> Result<IgnoredAny, A::Error>
    where
        A: MapAccess<'de>,
    {
        while map.next_entry::<IgnoredAny, IgnoredAny>()?.is_some() {}
        Ok(IgnoredAny)
    }
}

/// Ready-made deserializers over plain Rust values.
pub mod value {
    use super::*;

    /// Deserializer yielding an owned `String`.
    pub struct StringDeserializer<E> {
        value: String,
        marker: PhantomData<E>,
    }

    impl<E> StringDeserializer<E> {
        /// Wrap a string.
        pub fn new(value: String) -> Self {
            StringDeserializer { value, marker: PhantomData }
        }
    }

    impl<'de, E: Error> IntoDeserializer<'de, E> for String {
        type Deserializer = StringDeserializer<E>;
        fn into_deserializer(self) -> StringDeserializer<E> {
            StringDeserializer::new(self)
        }
    }

    impl<'de, E: Error> Deserializer<'de> for StringDeserializer<E> {
        type Error = E;

        fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_string(self.value)
        }

        fn deserialize_enum<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _variants: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_enum(self)
        }

        crate::forward_to_deserialize_any! {
            bool i8 i16 i32 i64 i128 u8 u16 u32 u64 u128 f32 f64 char str string
            bytes byte_buf option unit unit_struct newtype_struct seq tuple
            tuple_struct map struct identifier ignored_any
        }
    }

    impl<'de, E: Error> EnumAccess<'de> for StringDeserializer<E> {
        type Error = E;
        type Variant = UnitOnly<E>;

        fn variant_seed<V>(self, seed: V) -> Result<(V::Value, UnitOnly<E>), E>
        where
            V: DeserializeSeed<'de>,
        {
            let name = seed.deserialize(StringDeserializer::new(self.value))?;
            Ok((name, UnitOnly { marker: PhantomData }))
        }
    }

    /// Variant accessor admitting only unit variants (string-encoded enums).
    pub struct UnitOnly<E> {
        marker: PhantomData<E>,
    }

    impl<'de, E: Error> VariantAccess<'de> for UnitOnly<E> {
        type Error = E;

        fn unit_variant(self) -> Result<(), E> {
            Ok(())
        }

        fn newtype_variant_seed<T>(self, _seed: T) -> Result<T::Value, E>
        where
            T: DeserializeSeed<'de>,
        {
            Err(E::custom("newtype variant content on a string-encoded enum"))
        }

        fn tuple_variant<V: Visitor<'de>>(self, _len: usize, _visitor: V) -> Result<V::Value, E> {
            Err(E::custom("tuple variant content on a string-encoded enum"))
        }

        fn struct_variant<V: Visitor<'de>>(
            self,
            _fields: &'static [&'static str],
            _visitor: V,
        ) -> Result<V::Value, E> {
            Err(E::custom("struct variant content on a string-encoded enum"))
        }
    }

    /// `SeqAccess` over an iterator of values convertible to deserializers.
    pub struct SeqDeserializer<I, E> {
        iter: I,
        marker: PhantomData<E>,
    }

    impl<I, E> SeqDeserializer<I, E> {
        /// Wrap an iterator.
        pub fn new(iter: I) -> Self {
            SeqDeserializer { iter, marker: PhantomData }
        }
    }

    impl<'de, I, E> SeqAccess<'de> for SeqDeserializer<I, E>
    where
        I: Iterator,
        I::Item: IntoDeserializer<'de, E>,
        E: Error,
    {
        type Error = E;

        fn next_element_seed<T>(&mut self, seed: T) -> Result<Option<T::Value>, E>
        where
            T: DeserializeSeed<'de>,
        {
            match self.iter.next() {
                Some(item) => seed.deserialize(item.into_deserializer()).map(Some),
                None => Ok(None),
            }
        }

        fn size_hint(&self) -> Option<usize> {
            match self.iter.size_hint() {
                (lo, Some(hi)) if lo == hi => Some(lo),
                _ => None,
            }
        }
    }

    /// `MapAccess` over an iterator of key/value pairs.
    pub struct MapDeserializer<I, K, V, E>
    where
        I: Iterator<Item = (K, V)>,
    {
        iter: I,
        pending: Option<V>,
        marker: PhantomData<E>,
    }

    impl<I, K, V, E> MapDeserializer<I, K, V, E>
    where
        I: Iterator<Item = (K, V)>,
    {
        /// Wrap an iterator of entries.
        pub fn new(iter: I) -> Self {
            MapDeserializer { iter, pending: None, marker: PhantomData }
        }
    }

    impl<'de, I, K, V, E> MapAccess<'de> for MapDeserializer<I, K, V, E>
    where
        I: Iterator<Item = (K, V)>,
        K: IntoDeserializer<'de, E>,
        V: IntoDeserializer<'de, E>,
        E: Error,
    {
        type Error = E;

        fn next_key_seed<S>(&mut self, seed: S) -> Result<Option<S::Value>, E>
        where
            S: DeserializeSeed<'de>,
        {
            match self.iter.next() {
                Some((key, value)) => {
                    self.pending = Some(value);
                    seed.deserialize(key.into_deserializer()).map(Some)
                }
                None => Ok(None),
            }
        }

        fn next_value_seed<S>(&mut self, seed: S) -> Result<S::Value, E>
        where
            S: DeserializeSeed<'de>,
        {
            let value = self
                .pending
                .take()
                .ok_or_else(|| E::custom("next_value_seed called before next_key_seed"))?;
            seed.deserialize(value.into_deserializer())
        }

        fn size_hint(&self) -> Option<usize> {
            match self.iter.size_hint() {
                (lo, Some(hi)) if lo == hi => Some(lo),
                _ => None,
            }
        }
    }
}
