//! `Serialize`/`Deserialize` implementations for common std types.

use crate::de::{self, Deserialize, Deserializer, Error as DeError, MapAccess, SeqAccess, Visitor};
use crate::ser::{
    Serialize, SerializeMap, SerializeSeq, SerializeTuple, Serializer,
};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;
use std::marker::PhantomData;

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

macro_rules! serialize_via {
    ($($t:ty => $method:ident as $cast:ty,)*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self as $cast)
            }
        }
    )*};
}

serialize_via! {
    bool => serialize_bool as bool,
    i8 => serialize_i8 as i8,
    i16 => serialize_i16 as i16,
    i32 => serialize_i32 as i32,
    i64 => serialize_i64 as i64,
    isize => serialize_i64 as i64,
    u8 => serialize_u8 as u8,
    u16 => serialize_u16 as u16,
    u32 => serialize_u32 as u32,
    u64 => serialize_u64 as u64,
    usize => serialize_u64 as u64,
    f32 => serialize_f32 as f32,
    f64 => serialize_f64 as f64,
    char => serialize_char as char,
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(value) => serializer.serialize_some(value),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            map.serialize_entry(key, value)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            map.serialize_entry(key, value)?;
        }
        map.end()
    }
}

macro_rules! serialize_tuples {
    ($(($($name:ident . $idx:tt),+) of $len:expr,)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tup = serializer.serialize_tuple($len)?;
                $(tup.serialize_element(&self.$idx)?;)+
                tup.end()
            }
        }
    )*};
}

serialize_tuples! {
    (T0.0) of 1,
    (T0.0, T1.1) of 2,
    (T0.0, T1.1, T2.2) of 3,
    (T0.0, T1.1, T2.2, T3.3) of 4,
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

macro_rules! deserialize_int {
    ($($t:ty => $method:ident,)*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct IntVisitor;
                impl<'de> Visitor<'de> for IntVisitor {
                    type Value = $t;
                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        write!(f, "an integer fitting in {}", stringify!($t))
                    }
                    fn visit_u64<E: DeError>(self, v: u64) -> Result<$t, E> {
                        <$t>::try_from(v).map_err(|_| {
                            E::custom(format_args!("{v} out of range for {}", stringify!($t)))
                        })
                    }
                    fn visit_i64<E: DeError>(self, v: i64) -> Result<$t, E> {
                        <$t>::try_from(v).map_err(|_| {
                            E::custom(format_args!("{v} out of range for {}", stringify!($t)))
                        })
                    }
                }
                deserializer.$method(IntVisitor)
            }
        }
    )*};
}

deserialize_int! {
    i8 => deserialize_i8,
    i16 => deserialize_i16,
    i32 => deserialize_i32,
    i64 => deserialize_i64,
    isize => deserialize_i64,
    u8 => deserialize_u8,
    u16 => deserialize_u16,
    u32 => deserialize_u32,
    u64 => deserialize_u64,
    usize => deserialize_u64,
}

macro_rules! deserialize_float {
    ($($t:ty => $method:ident,)*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct FloatVisitor;
                impl<'de> Visitor<'de> for FloatVisitor {
                    type Value = $t;
                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        write!(f, "a number")
                    }
                    fn visit_f64<E: DeError>(self, v: f64) -> Result<$t, E> {
                        Ok(v as $t)
                    }
                    fn visit_u64<E: DeError>(self, v: u64) -> Result<$t, E> {
                        Ok(v as $t)
                    }
                    fn visit_i64<E: DeError>(self, v: i64) -> Result<$t, E> {
                        Ok(v as $t)
                    }
                }
                deserializer.$method(FloatVisitor)
            }
        }
    )*};
}

deserialize_float! {
    f32 => deserialize_f32,
    f64 => deserialize_f64,
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BoolVisitor;
        impl<'de> Visitor<'de> for BoolVisitor {
            type Value = bool;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                write!(f, "a boolean")
            }
            fn visit_bool<E: DeError>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_bool(BoolVisitor)
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct CharVisitor;
        impl<'de> Visitor<'de> for CharVisitor {
            type Value = char;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                write!(f, "a single character")
            }
            fn visit_str<E: DeError>(self, v: &str) -> Result<char, E> {
                let mut chars = v.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(E::custom(format_args!("expected one character, got {v:?}"))),
                }
            }
        }
        deserializer.deserialize_char(CharVisitor)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                write!(f, "a string")
            }
            fn visit_str<E: DeError>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: DeError>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                write!(f, "a unit")
            }
            fn visit_unit<E: DeError>(self) -> Result<(), E> {
                Ok(())
            }
            fn visit_none<E: DeError>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                write!(f, "an optional value")
            }
            fn visit_none<E: DeError>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_unit<E: DeError>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Option<T>, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                write!(f, "a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut values = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(value) = seq.next_element()? {
                    values.push(value);
                }
                Ok(values)
            }
        }
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de, K, V> Visitor<'de> for MapVisitor<K, V>
        where
            K: Deserialize<'de> + Ord,
            V: Deserialize<'de>,
        {
            type Value = BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                write!(f, "a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut values = BTreeMap::new();
                while let Some((key, value)) = map.next_entry()? {
                    values.insert(key, value);
                }
                Ok(values)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de, K, V> Visitor<'de> for MapVisitor<K, V>
        where
            K: Deserialize<'de> + Eq + Hash,
            V: Deserialize<'de>,
        {
            type Value = HashMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                write!(f, "a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut values = HashMap::new();
                while let Some((key, value)) = map.next_entry()? {
                    values.insert(key, value);
                }
                Ok(values)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

macro_rules! deserialize_tuples {
    ($(($($name:ident),+) of $len:expr,)*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct TupleVisitor<$($name),+>(PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($name),+> {
                    type Value = ($($name,)+);
                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        write!(f, "a tuple of length {}", $len)
                    }
                    #[allow(non_snake_case)]
                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        let mut index = 0usize;
                        $(
                            let $name = seq
                                .next_element()?
                                .ok_or_else(|| de::Error::invalid_length(index, &$len))?;
                            index += 1;
                        )+
                        let _ = index;
                        Ok(($($name,)+))
                    }
                }
                deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
            }
        }
    )*};
}

deserialize_tuples! {
    (T0) of 1,
    (T0, T1) of 2,
    (T0, T1, T2) of 3,
    (T0, T1, T2, T3) of 4,
}
