//! Offline subset of the `criterion` API.
//!
//! Keeps the bench targets compiling and runnable without the real
//! statistics engine: each benchmark is warmed up once, timed over a small
//! number of iterations bounded by the group's `measurement_time`, and the
//! mean wall-clock time per iteration is printed in a criterion-like
//! format. `CPO_BENCH_FAST=1` caps every benchmark at one measured
//! iteration (useful for smoke-testing all ten targets).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (recorded, reported alongside the timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes per iteration, decimal multiples.
    BytesDecimal(u64),
}

/// A benchmark identifier: function name plus parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Identifier from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// Anything usable as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// Render to the printed identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing driver handed to the measured closure.
pub struct Bencher {
    iterations: u64,
    budget: Duration,
    mean: Option<Duration>,
}

impl Bencher {
    /// Measure `f`, called repeatedly, and record the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, which also provides the budget estimate.
        let warm = Instant::now();
        black_box(f());
        let per_call = warm.elapsed().max(Duration::from_nanos(1));

        // Fit the requested iteration count into the time budget.
        let fit = (self.budget.as_nanos() / per_call.as_nanos().max(1)) as u64;
        let n = self.iterations.min(fit).max(1);
        let start = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        self.mean = Some(start.elapsed() / n as u32);
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations to aim for.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget (accepted for API compatibility; the shim always
    /// performs exactly one warm-up call).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        let _ = d;
        self
    }

    /// Record a throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        self.criterion.run_one(&full, sample_size, measurement_time, self.throughput, f);
        self
    }

    /// Run one benchmark parameterized by an input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (report separator).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    fast: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { fast: std::env::var_os("CPO_BENCH_FAST").is_some() }
    }
}

impl Criterion {
    /// CLI-configuration hook (accepted for API compatibility; no-op).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.into_id(), 100, Duration::from_secs(5), None, f);
        self
    }

    fn run_one<F>(
        &mut self,
        name: &str,
        sample_size: u64,
        measurement_time: Duration,
        throughput: Option<Throughput>,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        let (iterations, budget) = if self.fast {
            (1, Duration::from_millis(50))
        } else {
            (sample_size, measurement_time)
        };
        let mut b = Bencher { iterations, budget, mean: None };
        f(&mut b);
        match b.mean {
            Some(mean) => {
                let extra = match throughput {
                    Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
                        format!("  thrpt: {:.0} elem/s", n as f64 / mean.as_secs_f64())
                    }
                    Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n))
                        if mean.as_secs_f64() > 0.0 =>
                    {
                        format!("  thrpt: {:.0} B/s", n as f64 / mean.as_secs_f64())
                    }
                    _ => String::new(),
                };
                println!("{name:<50} time: {mean:>12.3?}/iter{extra}");
            }
            None => println!("{name:<50} (no measurement: Bencher::iter never called)"),
        }
    }
}

/// Declare a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("CPO_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).measurement_time(Duration::from_millis(10));
        let mut calls = 0u64;
        g.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        g.finish();
        assert!(calls >= 2); // warm-up + at least one timed iteration
    }
}
