//! Offline subset of the `criterion` API.
//!
//! Keeps the bench targets compiling and runnable without the real
//! statistics engine: each benchmark is warmed up once, timed per
//! iteration over a small number of iterations bounded by the group's
//! `measurement_time`, and the median/mean wall-clock times per iteration
//! are printed in a criterion-like format. Two environment variables
//! control the harness:
//!
//! * `CPO_BENCH_FAST=1` caps every benchmark at three measured iterations
//!   within a 200 ms budget (smoke-testing all ten targets; a median of
//!   three is stable enough for `bench_diff`'s regression gate);
//! * `CPO_BENCH_JSON=<path>` additionally merges every result into a
//!   machine-readable JSON report at `<path>` — a flat object mapping the
//!   full benchmark name to `{"median_ns", "mean_ns", "iters"}`. The file
//!   is read-modified-written, so the sequential bench targets of a
//!   `cargo bench` run (separate processes) accumulate into one report
//!   and re-runs overwrite their own entries only.

use std::fmt::Display;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (recorded, reported alongside the timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes per iteration, decimal multiples.
    BytesDecimal(u64),
}

/// A benchmark identifier: function name plus parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Identifier from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// Anything usable as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// Render to the printed identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing driver handed to the measured closure.
pub struct Bencher {
    iterations: u64,
    budget: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure `f`, called repeatedly, recording one sample per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, which also provides the budget estimate.
        let warm = Instant::now();
        black_box(f());
        let per_call = warm.elapsed().max(Duration::from_nanos(1));

        // Fit the requested iteration count into the time budget.
        let fit = (self.budget.as_nanos() / per_call.as_nanos().max(1)) as u64;
        let n = self.iterations.min(fit).max(1);
        self.samples.reserve(n as usize);
        for _ in 0..n {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations to aim for.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget (accepted for API compatibility; the shim always
    /// performs exactly one warm-up call).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        let _ = d;
        self
    }

    /// Record a throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        self.criterion.run_one(&full, sample_size, measurement_time, self.throughput, f);
        self
    }

    /// Run one benchmark parameterized by an input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (report separator).
    pub fn finish(self) {}
}

/// One finished benchmark measurement, as recorded in the JSON report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// Full benchmark name (`group/function/parameter`).
    pub name: String,
    /// Median wall-clock time per iteration, nanoseconds.
    pub median_ns: u128,
    /// Mean wall-clock time per iteration, nanoseconds.
    pub mean_ns: u128,
    /// Number of measured iterations.
    pub iters: u64,
}

/// The benchmark harness entry point.
pub struct Criterion {
    fast: bool,
    json_path: Option<PathBuf>,
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            fast: std::env::var_os("CPO_BENCH_FAST").is_some(),
            json_path: std::env::var_os("CPO_BENCH_JSON").map(PathBuf::from),
            records: Vec::new(),
        }
    }
}

impl Drop for Criterion {
    /// Merge this run's records into the JSON report, if one is requested.
    fn drop(&mut self) {
        let Some(path) = &self.json_path else { return };
        if self.records.is_empty() {
            return;
        }
        let mut merged = std::fs::read_to_string(path)
            .map(|text| parse_report(&text))
            .unwrap_or_default();
        for rec in self.records.drain(..) {
            merged.retain(|r| r.name != rec.name);
            merged.push(rec);
        }
        merged.sort_by(|a, b| a.name.cmp(&b.name));
        if let Err(err) = std::fs::write(path, render_report(&merged)) {
            eprintln!("warning: could not write {}: {err}", path.display());
        }
    }
}

/// Parse a report previously written by [`render_report`]. Only the exact
/// shape this shim emits is recognized — one `"name": {...}` entry per
/// line with three integer fields.
fn parse_report(text: &str) -> Vec<BenchRecord> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else { continue };
        let Some((name, rest)) = rest.split_once('"') else { continue };
        if !rest.contains("median_ns") {
            continue;
        }
        let nums: Vec<u128> = rest
            .split(|c: char| !c.is_ascii_digit())
            .filter(|s| !s.is_empty())
            .filter_map(|s| s.parse().ok())
            .collect();
        if let [median_ns, mean_ns, iters] = nums[..] {
            out.push(BenchRecord {
                name: name.to_string(),
                median_ns,
                mean_ns,
                iters: iters as u64,
            });
        }
    }
    out
}

fn render_report(records: &[BenchRecord]) -> String {
    let mut out = String::from("{\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        out.push_str(&format!(
            "  \"{}\": {{\"median_ns\": {}, \"mean_ns\": {}, \"iters\": {}}}{comma}\n",
            r.name, r.median_ns, r.mean_ns, r.iters
        ));
    }
    out.push_str("}\n");
    out
}

impl Criterion {
    /// CLI-configuration hook (accepted for API compatibility; no-op).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.into_id(), 100, Duration::from_secs(5), None, f);
        self
    }

    /// Record a directly-measured value, in nanoseconds, as a report row.
    ///
    /// Not part of upstream criterion. For quantities the harness cannot
    /// time as a closure — e.g. latency percentiles a server reports
    /// after a load run — this stores the value as the row's median (and
    /// mean) so `bench_diff` gates it like any timed benchmark.
    pub fn report_value_ns(&mut self, name: impl Into<String>, value_ns: u128) -> &mut Self {
        let name = name.into();
        let as_dur = Duration::from_nanos(value_ns.min(u64::MAX as u128) as u64);
        println!("{name:<50} value: [{as_dur:>10.3?}] (reported)");
        self.records.push(BenchRecord { name, median_ns: value_ns, mean_ns: value_ns, iters: 1 });
        self
    }

    fn run_one<F>(
        &mut self,
        name: &str,
        sample_size: u64,
        measurement_time: Duration,
        throughput: Option<Throughput>,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        // Fast mode takes three measured iterations (plus the usual single
        // warm-up inside Bencher::iter): a single-iteration median is too
        // cold-start-noisy to diff against a committed full-measurement
        // baseline, while a median of three keeps the smoke run cheap and
        // stable enough for bench_diff's 2x regression gate.
        let (iterations, budget) = if self.fast {
            (3, Duration::from_millis(200))
        } else {
            (sample_size, measurement_time)
        };
        let mut b = Bencher { iterations, budget, samples: Vec::new() };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{name:<50} (no measurement: Bencher::iter never called)");
            return;
        }
        let n = b.samples.len();
        let total: Duration = b.samples.iter().sum();
        let mean = total / n as u32;
        b.samples.sort();
        let median = if n % 2 == 1 {
            b.samples[n / 2]
        } else {
            (b.samples[n / 2 - 1] + b.samples[n / 2]) / 2
        };
        let extra = match throughput {
            Some(Throughput::Elements(elems)) if mean.as_secs_f64() > 0.0 => {
                format!("  thrpt: {:.0} elem/s", elems as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(bytes) | Throughput::BytesDecimal(bytes))
                if mean.as_secs_f64() > 0.0 =>
            {
                format!("  thrpt: {:.0} B/s", bytes as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{name:<50} time: [median {median:>10.3?} mean {mean:>10.3?}]/iter{extra}");
        self.records.push(BenchRecord {
            name: name.to_string(),
            median_ns: median.as_nanos(),
            mean_ns: mean.as_nanos(),
            iters: n as u64,
        });
    }
}

/// Declare a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("CPO_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).measurement_time(Duration::from_millis(10));
        let mut calls = 0u64;
        g.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        g.finish();
        assert!(calls >= 2); // warm-up + at least one timed iteration
    }

    #[test]
    fn report_roundtrips_and_merges() {
        let a = BenchRecord { name: "g/a/1".into(), median_ns: 120, mean_ns: 130, iters: 15 };
        let b = BenchRecord { name: "g/b/2".into(), median_ns: 7, mean_ns: 9, iters: 100 };
        let text = render_report(&[a.clone(), b.clone()]);
        assert_eq!(parse_report(&text), vec![a.clone(), b.clone()]);

        // Merge semantics: same-name entries are replaced, others kept.
        let dir = std::env::temp_dir().join(format!("cpo-criterion-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        std::fs::write(&path, text).unwrap();
        let updated = BenchRecord { name: "g/a/1".into(), median_ns: 99, mean_ns: 99, iters: 3 };
        let c = Criterion {
            fast: true,
            json_path: Some(path.clone()),
            records: vec![updated.clone()],
        };
        drop(c); // Drop runs the merge
        let merged = parse_report(&std::fs::read_to_string(&path).unwrap());
        assert_eq!(merged, vec![updated, b]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
