//! Offline subset of the `proptest` API.
//!
//! Supports the surface this workspace's property tests use: the
//! `proptest!` block macro with `#![proptest_config(...)]`, integer-range
//! strategies (`lo..hi`, `lo..=hi`), and `prop_assert!`/`prop_assert_eq!`.
//! Inputs are drawn from a deterministic per-test RNG (seeded from the
//! test name), so failures reproduce across runs. The environment variable
//! `PROPTEST_CASES` overrides the configured case count — set it to a
//! small number for quick CI smoke runs or a large one for deep soaks.

/// Test-case generation configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Effective case count: `PROPTEST_CASES` env var wins when set.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic input generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary byte string (e.g. the test name).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a, then avalanche via the first SplitMix64 step.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values for one proptest argument.
    pub trait Strategy {
        /// Generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Run each test function body over `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cases = $crate::ProptestConfig::effective_cases(&$cfg);
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for _ in 0..__cases {
                let ($($arg,)*) = ( $( $crate::strategy::Strategy::sample(&($strat), &mut __rng), )* );
                $body
            }
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

/// Property assertion (panics with context on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Discard the current case when an assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// One-stop prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0u64..100, y in 1usize..5, z in 2u32..=9) {
            prop_assert!(x < 100);
            prop_assert!((1..5).contains(&y));
            prop_assert!((2..=9).contains(&z), "z = {}", z);
        }
    }

    #[test]
    fn deterministic_inputs() {
        let mut a = TestRng::from_name("seed");
        let mut b = TestRng::from_name("seed");
        assert_eq!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
