//! Offline subset of `serde_derive`.
//!
//! Derives `Serialize`/`Deserialize` for the shapes this workspace uses —
//! non-generic structs with named fields and non-generic enums with unit,
//! newtype, tuple and struct variants — supporting the `#[serde(default)]`
//! and `#[serde(skip_serializing)]` field attributes. Parsing is done
//! directly on the token stream (no `syn`/`quote`), which is exactly
//! enough for this repository's types; unsupported shapes produce a
//! `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone, Default)]
struct FieldAttrs {
    default: bool,
    skip_serializing: bool,
}

#[derive(Debug, Clone)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug, Clone)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Input {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<Variant> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("valid compile_error")
}

/// Skip a `#[...]` attribute at `*i`; returns its bracket group when one
/// was present.
fn take_attr(tokens: &[TokenTree], i: &mut usize) -> Option<TokenStream> {
    match (tokens.get(*i), tokens.get(*i + 1)) {
        (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
            if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
        {
            *i += 2;
            Some(g.stream())
        }
        _ => None,
    }
}

/// Interpret a `serde(...)` attribute body, updating field attrs.
fn apply_serde_attr(attr: TokenStream, attrs: &mut FieldAttrs) -> Result<(), String> {
    let trees: Vec<TokenTree> = attr.into_iter().collect();
    match (trees.first(), trees.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(g)))
            if name.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            for item in g.stream() {
                match item {
                    TokenTree::Ident(opt) => match opt.to_string().as_str() {
                        "default" => attrs.default = true,
                        "skip_serializing" => attrs.skip_serializing = true,
                        other => {
                            return Err(format!(
                                "unsupported serde attribute `{other}` (vendored derive)"
                            ))
                        }
                    },
                    TokenTree::Punct(p) if p.as_char() == ',' => {}
                    other => {
                        return Err(format!(
                            "unsupported serde attribute syntax `{other}` (vendored derive)"
                        ))
                    }
                }
            }
            Ok(())
        }
        _ => Ok(()), // non-serde attribute (doc comment, derive, ...)
    }
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Parse the named fields inside a brace group.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut attrs = FieldAttrs::default();
        while let Some(body) = take_attr(&tokens, &mut i) {
            apply_serde_attr(body, &mut attrs)?;
        }
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, found {other:?}")),
        }
        // Consume the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field { name, attrs });
    }
    Ok(fields)
}

/// Count the top-level comma-separated items of a paren group.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut saw_any = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(ref p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(ref p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(ref p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_any = false;
                continue;
            }
            _ => {}
        }
        saw_any = true;
    }
    if saw_any {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while take_attr(&tokens, &mut i).is_some() {}
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantShape::Unit,
        };
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => {
                return Err(format!(
                    "unsupported token {other:?} after variant `{name}` (discriminants are \
                     not supported by the vendored derive)"
                ))
            }
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while take_attr(&tokens, &mut i).is_some() {}
    skip_visibility(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => {
            return Err(format!(
                "vendored serde derive supports structs and enums only, found {other:?}"
            ))
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde derive does not support generic type `{name}`"
        ));
    }
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Ok(Input::Struct { name, fields: parse_named_fields(g.stream())? })
            } else {
                Ok(Input::Enum { name, variants: parse_variants(g.stream())? })
            }
        }
        other => Err(format!(
            "vendored serde derive supports only braced bodies for `{name}`, found {other:?}"
        )),
    }
}

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let mut out = String::new();
    match input {
        Input::Struct { name, fields } => {
            let kept: Vec<&Field> =
                fields.iter().filter(|f| !f.attrs.skip_serializing).collect();
            out.push_str(&format!(
                "impl _serde::Serialize for {name} {{\n\
                 fn serialize<__S: _serde::Serializer>(&self, __serializer: __S) \
                 -> std::result::Result<__S::Ok, __S::Error> {{\n\
                 let mut __state = _serde::Serializer::serialize_struct(__serializer, \
                 \"{name}\", {len})?;\n",
                len = kept.len()
            ));
            for field in &kept {
                out.push_str(&format!(
                    "_serde::ser::SerializeStruct::serialize_field(&mut __state, \
                     \"{f}\", &self.{f})?;\n",
                    f = field.name
                ));
            }
            out.push_str("_serde::ser::SerializeStruct::end(__state)\n}\n}\n");
        }
        Input::Enum { name, variants } => {
            out.push_str(&format!(
                "impl _serde::Serialize for {name} {{\n\
                 fn serialize<__S: _serde::Serializer>(&self, __serializer: __S) \
                 -> std::result::Result<__S::Ok, __S::Error> {{\n\
                 match self {{\n"
            ));
            for (idx, variant) in variants.iter().enumerate() {
                let v = &variant.name;
                match &variant.shape {
                    VariantShape::Unit => out.push_str(&format!(
                        "{name}::{v} => _serde::Serializer::serialize_unit_variant(\
                         __serializer, \"{name}\", {idx}u32, \"{v}\"),\n"
                    )),
                    VariantShape::Tuple(1) => out.push_str(&format!(
                        "{name}::{v}(__f0) => _serde::Serializer::serialize_newtype_variant(\
                         __serializer, \"{name}\", {idx}u32, \"{v}\", __f0),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        out.push_str(&format!(
                            "{name}::{v}({binds}) => {{\n\
                             let mut __tv = _serde::Serializer::serialize_tuple_variant(\
                             __serializer, \"{name}\", {idx}u32, \"{v}\", {n})?;\n",
                            binds = binders.join(", ")
                        ));
                        for b in &binders {
                            out.push_str(&format!(
                                "_serde::ser::SerializeTupleVariant::serialize_field(\
                                 &mut __tv, {b})?;\n"
                            ));
                        }
                        out.push_str("_serde::ser::SerializeTupleVariant::end(__tv)\n}\n");
                    }
                    VariantShape::Struct(fields) => {
                        let binders: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        out.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                             let mut __sv = _serde::Serializer::serialize_struct_variant(\
                             __serializer, \"{name}\", {idx}u32, \"{v}\", {n})?;\n",
                            binds = binders.join(", "),
                            n = fields.len()
                        ));
                        for f in fields {
                            out.push_str(&format!(
                                "_serde::ser::SerializeStructVariant::serialize_field(\
                                 &mut __sv, \"{f}\", {f})?;\n",
                                f = f.name
                            ));
                        }
                        out.push_str("_serde::ser::SerializeStructVariant::end(__sv)\n}\n");
                    }
                }
            }
            out.push_str("}\n}\n}\n");
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

/// Generate a `visit_map` body building `constructor { field: ... }`.
fn gen_struct_visit_map(constructor: &str, fields: &[Field]) -> String {
    let mut out = String::new();
    out.push_str(
        "fn visit_map<__A: _serde::de::MapAccess<'de>>(self, mut __map: __A) \
         -> std::result::Result<Self::Value, __A::Error> {\n",
    );
    for field in fields {
        out.push_str(&format!(
            "let mut __field_{f} = std::option::Option::None;\n",
            f = field.name
        ));
    }
    out.push_str(
        "while let std::option::Option::Some(__key) = \
         _serde::de::MapAccess::next_key::<std::string::String>(&mut __map)? {\n\
         match __key.as_str() {\n",
    );
    for field in fields {
        out.push_str(&format!(
            "\"{f}\" => {{ __field_{f} = std::option::Option::Some(\
             _serde::de::MapAccess::next_value(&mut __map)?); }}\n",
            f = field.name
        ));
    }
    out.push_str(
        "_ => { let _ = _serde::de::MapAccess::next_value::<_serde::de::IgnoredAny>\
         (&mut __map)?; }\n}\n}\n",
    );
    out.push_str(&format!("std::result::Result::Ok({constructor} {{\n"));
    for field in fields {
        if field.attrs.default {
            out.push_str(&format!(
                "{f}: __field_{f}.unwrap_or_default(),\n",
                f = field.name
            ));
        } else {
            out.push_str(&format!(
                "{f}: match __field_{f} {{\n\
                 std::option::Option::Some(__value) => __value,\n\
                 std::option::Option::None => return std::result::Result::Err(\
                 _serde::de::Error::missing_field(\"{f}\")),\n}},\n",
                f = field.name
            ));
        }
    }
    out.push_str("})\n}\n");
    out
}

fn field_name_list(fields: &[Field]) -> String {
    fields
        .iter()
        .map(|f| format!("\"{}\"", f.name))
        .collect::<Vec<_>>()
        .join(", ")
}

fn gen_deserialize(input: &Input) -> String {
    let mut out = String::new();
    match input {
        Input::Struct { name, fields } => {
            out.push_str(&format!(
                "impl<'de> _serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<__D: _serde::Deserializer<'de>>(__deserializer: __D) \
                 -> std::result::Result<Self, __D::Error> {{\n\
                 struct __Visitor;\n\
                 impl<'de> _serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut std::fmt::Formatter) -> std::fmt::Result {{\n\
                 __f.write_str(\"struct {name}\")\n}}\n"
            ));
            out.push_str(&gen_struct_visit_map(name, fields));
            out.push_str(&format!(
                "}}\n\
                 _serde::Deserializer::deserialize_struct(__deserializer, \"{name}\", \
                 &[{fields}], __Visitor)\n}}\n}}\n",
                fields = field_name_list(fields)
            ));
        }
        Input::Enum { name, variants } => {
            let variant_names = variants
                .iter()
                .map(|v| format!("\"{}\"", v.name))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "impl<'de> _serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<__D: _serde::Deserializer<'de>>(__deserializer: __D) \
                 -> std::result::Result<Self, __D::Error> {{\n\
                 struct __Visitor;\n\
                 impl<'de> _serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut std::fmt::Formatter) -> std::fmt::Result {{\n\
                 __f.write_str(\"enum {name}\")\n}}\n\
                 fn visit_enum<__A: _serde::de::EnumAccess<'de>>(self, __data: __A) \
                 -> std::result::Result<Self::Value, __A::Error> {{\n\
                 let (__variant, __content): (std::string::String, __A::Variant) = \
                 _serde::de::EnumAccess::variant(__data)?;\n\
                 match __variant.as_str() {{\n"
            ));
            for variant in variants {
                let v = &variant.name;
                match &variant.shape {
                    VariantShape::Unit => out.push_str(&format!(
                        "\"{v}\" => {{\n\
                         _serde::de::VariantAccess::unit_variant(__content)?;\n\
                         std::result::Result::Ok({name}::{v})\n}}\n"
                    )),
                    VariantShape::Tuple(1) => out.push_str(&format!(
                        "\"{v}\" => std::result::Result::Ok({name}::{v}(\
                         _serde::de::VariantAccess::newtype_variant(__content)?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        out.push_str(&format!(
                            "\"{v}\" => {{\n\
                             struct __TupleVisitor;\n\
                             impl<'de> _serde::de::Visitor<'de> for __TupleVisitor {{\n\
                             type Value = {name};\n\
                             fn visit_seq<__A: _serde::de::SeqAccess<'de>>(self, \
                             mut __seq: __A) -> std::result::Result<Self::Value, __A::Error> {{\n"
                        ));
                        for k in 0..*n {
                            out.push_str(&format!(
                                "let __f{k} = match _serde::de::SeqAccess::next_element(\
                                 &mut __seq)? {{\n\
                                 std::option::Option::Some(__value) => __value,\n\
                                 std::option::Option::None => return \
                                 std::result::Result::Err(_serde::de::Error::invalid_length(\
                                 {k}, &{n}usize)),\n}};\n"
                            ));
                        }
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        out.push_str(&format!(
                            "std::result::Result::Ok({name}::{v}({binds}))\n}}\n}}\n\
                             _serde::de::VariantAccess::tuple_variant(__content, {n}, \
                             __TupleVisitor)\n}}\n",
                            binds = binders.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        out.push_str(&format!(
                            "\"{v}\" => {{\n\
                             struct __StructVisitor;\n\
                             impl<'de> _serde::de::Visitor<'de> for __StructVisitor {{\n\
                             type Value = {name};\n"
                        ));
                        out.push_str(&gen_struct_visit_map(&format!("{name}::{v}"), fields));
                        out.push_str(&format!(
                            "}}\n\
                             _serde::de::VariantAccess::struct_variant(__content, \
                             &[{fields}], __StructVisitor)\n}}\n",
                            fields = field_name_list(fields)
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "__other => std::result::Result::Err(_serde::de::Error::unknown_variant(\
                 __other, &[{variant_names}])),\n\
                 }}\n}}\n}}\n\
                 _serde::Deserializer::deserialize_enum(__deserializer, \"{name}\", \
                 &[{variant_names}], __Visitor)\n}}\n}}\n"
            ));
        }
    }
    out
}

fn wrap(body: String) -> TokenStream {
    format!(
        "const _: () = {{\n\
         extern crate serde as _serde;\n\
         {body}\n\
         }};"
    )
    .parse()
    .expect("derive output parses")
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => wrap(gen_serialize(&parsed)),
        Err(msg) => compile_error(&msg),
    }
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => wrap(gen_deserialize(&parsed)),
        Err(msg) => compile_error(&msg),
    }
}
