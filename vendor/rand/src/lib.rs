//! Offline subset of the `rand` 0.8 API.
//!
//! Implements exactly the surface this workspace uses — `StdRng`
//! (xoshiro256** seeded via SplitMix64), `Rng::{gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64` and `seq::SliceRandom` — with the same
//! trait/module layout as rand 0.8 so call sites compile unchanged.
//! Streams are deterministic per seed but do NOT bit-match upstream rand.

/// Core RNG abstraction: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing convenience methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!(!p.is_nan(), "gen_bool probability must not be NaN");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn unit_f64(word: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Uniform range sampling, mirroring `rand::distributions::uniform`.
pub mod distributions {
    /// Uniform sampling support.
    pub mod uniform {
        use crate::{unit_f64, RngCore};
        use std::ops::{Range, RangeInclusive};

        /// A range from which a single value can be drawn.
        pub trait SampleRange<T> {
            /// Draw one uniform sample.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! int_ranges {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let offset = (rng.next_u64() as u128) % span;
                        (self.start as i128 + offset as i128) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = self.into_inner();
                        assert!(lo <= hi, "gen_range: empty inclusive range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let offset = (rng.next_u64() as u128) % span;
                        (lo as i128 + offset as i128) as $t
                    }
                }
            )*};
        }

        int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! float_ranges {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let u = unit_f64(rng.next_u64()) as $t;
                        self.start + u * (self.end - self.start)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = self.into_inner();
                        assert!(lo <= hi, "gen_range: empty inclusive range");
                        let u = unit_f64(rng.next_u64()) as $t;
                        lo + u * (hi - lo)
                    }
                }
            )*};
        }

        float_ranges!(f32, f64);
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension trait for slices: shuffling and random choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Uniformly random mutable element, `None` on an empty slice.
        fn choose_mut<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<&mut Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                self.get(i)
            }
        }

        fn choose_mut<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<&mut T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                self.get_mut(i)
            }
        }
    }
}

/// One-stop prelude, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1..=6u8);
            assert!((1..=6).contains(&y));
            let z: f64 = rng.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&z));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
