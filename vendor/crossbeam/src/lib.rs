//! Offline subset of the `crossbeam` API backed by the standard library.
//!
//! Provides `crossbeam::channel::{bounded, Sender, Receiver}` (backed by
//! `std::sync::mpsc`) with the blocking-send semantics the live pipeline
//! executor relies on — only a single consumer per receiver is supported —
//! and `crossbeam::scope` / `crossbeam::thread::scope` (backed by
//! `std::thread::scope`) for the borrowing fan-out the Pareto sweep engine
//! uses.

pub mod thread {
    //! Scoped threads, mirroring `crossbeam::thread`.

    use std::any::Any;

    /// Boxed panic payload, as returned by `std::thread::JoinHandle::join`.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle: spawned threads may borrow from the enclosing stack
    /// frame and are all joined before [`scope`] returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope handle so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Create a scope for spawning borrowing threads. Every spawned thread
    /// is joined when the closure returns; unlike crossbeam, a panic in an
    /// *unjoined* thread propagates as a panic here rather than an `Err`
    /// (explicitly joined threads report through their handle as usual).
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a bounded channel.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned when the receiving half has disconnected.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned when the sending half has disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Create a bounded channel of the given capacity (>= 1 gives buffered
    /// links; 0 would be a rendezvous channel).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Block until the message is enqueued; errors if disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; errors if disconnected and empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.try_recv()
        }

        /// Blocking iterator draining the channel until disconnection.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|ch| s.spawn(move |_| ch.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).sum()
        })
        .expect("scope succeeds");
        assert_eq!(total, 10);
    }

    #[test]
    fn scoped_panic_reported_via_join() {
        let res = super::scope(|s| {
            let h = s.spawn(|_| -> u32 { panic!("boom") });
            h.join()
        })
        .expect("scope itself succeeds");
        assert!(res.is_err());
    }

    #[test]
    fn bounded_roundtrip() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }
}
