//! Offline subset of the `crossbeam` API backed by `std::sync::mpsc`.
//!
//! Provides `crossbeam::channel::{bounded, Sender, Receiver}` with the
//! blocking-send semantics the live pipeline executor relies on. Only a
//! single consumer per receiver is supported (all this workspace needs).

pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a bounded channel.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned when the receiving half has disconnected.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned when the sending half has disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Create a bounded channel of the given capacity (>= 1 gives buffered
    /// links; 0 would be a rendezvous channel).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Block until the message is enqueued; errors if disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; errors if disconnected and empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.try_recv()
        }

        /// Blocking iterator draining the channel until disconnection.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn bounded_roundtrip() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }
}
