//! Offline subset of the `parking_lot` API backed by `std::sync`.
//!
//! Only what this workspace uses is provided: a [`Mutex`] whose `lock`
//! never returns a poison error (a panicked holder simply passes the data
//! on, matching parking_lot's no-poisoning semantics).

use std::sync::MutexGuard as StdGuard;

/// A mutual exclusion primitive (no poisoning).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Attempt to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: e.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }
}
