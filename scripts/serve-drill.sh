#!/usr/bin/env bash
# serve-drill.sh — chaos drill for the solve service.
#
#   scripts/serve-drill.sh [panic|stall|poison|flood|none]
#
# Generates a deterministic load with `load_gen gen`, streams it through
# `cpo-experiments serve --once` under the requested fault injection, and
# verifies the service contract with `load_gen verify`: every submitted
# line — including deliberately unparseable garbage — got exactly one
# typed reply. Repro bundles frozen by injected failures land in
# $CPO_BUNDLE_DIR (default serve-drill-bundles/).
#
# Environment:
#   DRILL_COUNT   requests per drill (default 256)
#   DRILL_SEED    load_gen / chaos seed (default 1)
#   CPO_BUNDLE_DIR  bundle export directory
#
# Exit codes: 0 contract held; 1 a reply went missing, was duplicated, or
# the server crashed; 2 usage / build problems.

set -uo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-panic}"
DRILL_COUNT="${DRILL_COUNT:-256}"
DRILL_SEED="${DRILL_SEED:-1}"
export CPO_BUNDLE_DIR="${CPO_BUNDLE_DIR:-$PWD/serve-drill-bundles}"

GEN_ARGS=(--count "$DRILL_COUNT" --seed "$DRILL_SEED" --garbage 3)
SERVE_ARGS=(serve --once --stats-secs 0)
case "$MODE" in
  panic)
    export CPO_SERVE_CHAOS="panic=0.2" CPO_SERVE_CHAOS_SEED="$DRILL_SEED"
    GEN_ARGS+=(--mix mixed)
    ;;
  stall)
    export CPO_SERVE_CHAOS="stall=0.3:20" CPO_SERVE_CHAOS_SEED="$DRILL_SEED"
    GEN_ARGS+=(--mix mixed)
    SERVE_ARGS+=(--threads 4)
    ;;
  poison)
    export CPO_SERVE_CHAOS="poison=POISON" CPO_SERVE_CHAOS_SEED="$DRILL_SEED"
    GEN_ARGS+=(--mix duplicate --poison 4)
    SERVE_ARGS+=(--strikes 2)
    ;;
  flood)
    # No fault injection: one tenant floods a rate-limited server; the
    # contract still demands a typed reply (Rejected{rate_limited}) per
    # line.
    GEN_ARGS+=(--mix flood)
    SERVE_ARGS+=(--rate 50 --burst 8)
    ;;
  none)
    GEN_ARGS+=(--mix mixed)
    ;;
  *)
    echo "usage: $0 [panic|stall|poison|flood|none]" >&2
    exit 2
    ;;
esac

step() { printf '\n==> %s\n' "$*"; }

step "build (release)"
cargo build --release -p cpo_experiments || exit 2

BIN=target/release/cpo-experiments
LOAD_GEN=target/release/load_gen
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

step "generate load (mode=$MODE, count=$DRILL_COUNT, seed=$DRILL_SEED)"
"$LOAD_GEN" gen "${GEN_ARGS[@]}" > "$WORK/requests.jsonl" || exit 2

step "serve --once under CPO_SERVE_CHAOS='${CPO_SERVE_CHAOS:-}'"
if ! "$BIN" "${SERVE_ARGS[@]}" < "$WORK/requests.jsonl" > "$WORK/replies.jsonl"; then
  echo "serve-drill: server exited nonzero" >&2
  exit 1
fi

step "verify the reply contract"
"$LOAD_GEN" verify --requests "$WORK/requests.jsonl" --responses "$WORK/replies.jsonl" || exit 1

if [ -d "$CPO_BUNDLE_DIR" ] && [ -n "$(ls -A "$CPO_BUNDLE_DIR" 2>/dev/null)" ]; then
  step "repro bundles frozen by injected failures"
  ls "$CPO_BUNDLE_DIR"
fi

step "serve-drill($MODE): contract held"
