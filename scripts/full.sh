#!/usr/bin/env bash
# full.sh — the full artifact soak (an hour-ish, machine permitting).
#
# Everything kick-tires.sh does, plus: the whole experiment battery
# (tables, gadgets, scaling, the tier-2 Pareto fronts, extensions,
# robustness), deeper property-test soaks, the million-dataset wavefront
# check, a long differential fuzz, a fresh bench measurement, and the
# bench trajectory across every committed per-PR baseline.
#
# Environment:
#   FUZZ_SECONDS    time box for the long fuzz pass (default 600)
#   FUZZ_SEED       master seed for the fuzz pass (default 1)
#   PROPTEST_CASES  property-test cases per property (default 2000)
#   CPO_BUNDLE_DIR  where divergence bundles go (default repro-bundles/)

set -euo pipefail
cd "$(dirname "$0")/.."

FUZZ_SECONDS="${FUZZ_SECONDS:-600}"
FUZZ_SEED="${FUZZ_SEED:-1}"
export PROPTEST_CASES="${PROPTEST_CASES:-2000}"

step() { printf '\n==> %s\n' "$*"; }

step "build (release)"
cargo build --release --workspace

step "workspace tests, deep property soak (PROPTEST_CASES=${PROPTEST_CASES})"
cargo test --workspace -q

step "full experiment battery (fig1 + tables + gadgets + scaling + tier-2 fronts + extensions + robustness)"
cargo run --release -p cpo_experiments -- all

step "typed front door, million-dataset wavefront soak"
cargo run --release -p cpo_experiments -- solve examples/specs/section2_energy.json --check
cargo run --release -p cpo_experiments -- batch examples/specs/batch_mixed.jsonl --check
cargo run --release -p cpo_experiments -- solve examples/specs/large_scale.json --check --datasets 1000000
cargo run --release -p cpo_experiments -- solve examples/specs/benes.json --check

step "differential fuzz (${FUZZ_SECONDS}s, seed ${FUZZ_SEED})"
cargo run --release -p cpo_experiments -- fuzz --seconds "${FUZZ_SECONDS}" --seed "${FUZZ_SEED}"

step "serve chaos drills (full matrix)"
for drill in panic stall poison flood none; do
  ./scripts/serve-drill.sh "$drill"
done

step "bench re-measure (fresh JSON report)"
CPO_BENCH_JSON="$PWD/BENCH_FULL.json" cargo bench -p cpo_bench

step "bench diff against the newest committed baseline"
newest=$(ls BENCH_PR*.json | sort -V | tail -1)
cargo run --release -p cpo_bench --bin bench_diff -- "$newest" BENCH_FULL.json || true

step "bench trajectory across all committed baselines"
cargo run --release -p cpo_bench --bin bench_diff -- --trajectory BENCH_PR*.json BENCH_FULL.json

step "full soak: all green (fresh report in BENCH_FULL.json)"
