#!/usr/bin/env bash
# kick-tires.sh — the five-minute artifact check.
#
# One command, no arguments: build the workspace, run the tier-1 test
# suite, regenerate the paper's Section 2 numbers (fig1), smoke the typed
# solve/batch front door on the committed example specs, and run a short
# deterministic differential fuzz. Everything a reviewer needs to trust
# the artifact before reading any further.
#
# Environment:
#   FUZZ_SECONDS  time box for the fuzz pass (default 60)
#   FUZZ_SEED     master seed for the fuzz pass (default 1)
#   CPO_BUNDLE_DIR  where divergence bundles go (default repro-bundles/)
#
# Exit codes: 0 everything green; the first failing step's code otherwise
# (1 = a check or fuzz divergence — look for bundle-*.json, then
# `cpo-experiments replay <bundle>`).

set -euo pipefail
cd "$(dirname "$0")/.."

FUZZ_SECONDS="${FUZZ_SECONDS:-60}"
FUZZ_SEED="${FUZZ_SEED:-1}"

step() { printf '\n==> %s\n' "$*"; }

step "build (release)"
cargo build --release --workspace

step "tier-1 tests (cargo test -q)"
cargo test -q

step "Section 2 numbers (fig1)"
cargo run --release -p cpo_experiments -- fig1

step "typed front door smoke (solve/batch --check on committed specs)"
cargo run --release -p cpo_experiments -- solve examples/specs/section2_energy.json --check
cargo run --release -p cpo_experiments -- batch examples/specs/batch_mixed.jsonl --check --threads 2
cargo run --release -p cpo_experiments -- solve examples/specs/benes.json --check

step "differential fuzz (${FUZZ_SECONDS}s, seed ${FUZZ_SEED})"
cargo run --release -p cpo_experiments -- fuzz --seconds "${FUZZ_SECONDS}" --seed "${FUZZ_SEED}"

step "serve smoke (drain the committed envelope batch, verify the reply contract)"
SERVE_WORK="$(mktemp -d)"
trap 'rm -rf "$SERVE_WORK"' EXIT
target/release/cpo-experiments serve --once --stats-secs 0 \
  < examples/specs/serve_smoke.jsonl > "$SERVE_WORK/replies.jsonl"
target/release/load_gen verify \
  --requests examples/specs/serve_smoke.jsonl --responses "$SERVE_WORK/replies.jsonl"

step "kick-tires: all green"
