//! # concurrent-pipelines
//!
//! Facade crate for the reproduction of Benoit, Renaud-Goud, Robert,
//! *"Performance and energy optimization of concurrent pipelined
//! applications"* (IPDPS 2010).
//!
//! The workspace is organized as:
//! * [`model`] — applications, platforms, mappings, period/latency/energy
//!   evaluation, generators, NP-hardness gadgets and the typed problem IR
//!   (`ProblemSpec` / `SolveOutcome`);
//! * [`matching`] — bipartite matching substrate (Hungarian, Hopcroft–Karp);
//! * [`simulator`] — discrete-event and live multi-threaded execution of a
//!   mapping;
//! * [`solvers`] — every algorithm of the paper (mono-, bi- and tri-criteria,
//!   exact baselines, heuristics, Pareto fronts) plus the router dispatching
//!   `ProblemSpec`s to them;
//! * [`engine`] — the batched solve engine (work-stealing fan-out, memo
//!   cache, streaming results) over the router.
//!
//! ## Quickstart
//!
//! ```
//! use concurrent_pipelines::prelude::*;
//!
//! // The Section 2 applications on a *fully homogeneous* DVFS platform,
//! // where Theorem 3's polynomial Algorithm 2 applies directly.
//! let (apps, _) = concurrent_pipelines::model::generator::section2_example();
//! let platform = Platform::fully_homogeneous(3, vec![3.0, 6.0], 1.0).unwrap();
//! let sol = concurrent_pipelines::solvers::mono::period_interval::minimize_global_period(
//!     &apps, &platform, CommModel::Overlap,
//! ).expect("feasible");
//! let ev = Evaluator::new(&apps, &platform);
//! assert!((ev.period(&sol.mapping, CommModel::Overlap) - sol.objective).abs() < 1e-9);
//! ```

pub use cpo_core as solvers;
pub use cpo_engine as engine;
pub use cpo_matching as matching;
pub use cpo_model as model;
pub use cpo_simulator as simulator;

/// One-stop prelude for examples and downstream users.
pub mod prelude {
    pub use cpo_core::prelude::*;
    pub use cpo_model::prelude::*;
}
