//! NP-hardness reduction gadgets, exercised end to end.
//!
//! For every NP-complete cell of Tables 1 and 2 the paper gives a
//! reduction; these tests *run* the reductions both ways on small
//! instances:
//!
//! * YES source instance  → the intended mapping exists, is valid, and
//!   meets the target (and exhaustive search confirms feasibility);
//! * NO source instance   → exhaustive search proves no mapping meets the
//!   target.
//!
//! For the exhaustive direction the 3-PARTITION instances are downscaled
//! (small `B`) so that brute force over mappings stays tractable; the
//! reduction structure is unchanged.

use concurrent_pipelines::model::gadgets::*;
use concurrent_pipelines::prelude::*;
use concurrent_pipelines::solvers::exact::{exact_optimize, ExactConfig, SpeedPolicy};
use concurrent_pipelines::solvers::tri::multimodal::{branch_and_bound_tri, tri_feasible};
use concurrent_pipelines::solvers::{Criterion, MappingKind};

/// A small YES 3-PARTITION instance (`B = 12`, all items 4).
fn small_yes_3p() -> ThreePartition {
    let inst = ThreePartition { b: 12, items: vec![4, 4, 4, 4, 4, 4] };
    assert!(inst.is_well_formed() && inst.solve().is_some());
    inst
}

/// A small NO 3-PARTITION instance: `B = 16`, items `{5,5,5,5,5,7}`
/// (well-formed since `4 < a_i < 8` and `Σ = 32 = 2B`; any triple holding
/// the 7 sums to at least 17 > 16, so no partition exists).
fn small_no_3p() -> ThreePartition {
    let inst = ThreePartition { b: 16, items: vec![5, 5, 5, 5, 5, 7] };
    assert!(inst.is_well_formed() && inst.solve().is_none());
    inst
}

/// Theorem 5: period / interval / heterogeneous uni-modal processors,
/// homogeneous pipelines, no communication. YES instances reach period 1
/// via the intended mapping.
#[test]
fn theorem5_yes_instances_reach_period_1() {
    for seed in 0..4 {
        let inst = ThreePartition::yes_instance(2, seed);
        let gadget = theorem5_encode(&inst);
        let triples = inst.solve().expect("yes instance");
        let mapping = theorem5_mapping(&inst, &triples);
        mapping.validate(&gadget.apps, &gadget.platform).expect("valid");
        let ev = Evaluator::new(&gadget.apps, &gadget.platform);
        for model in CommModel::ALL {
            // No communication: both models agree; every processor is
            // perfectly packed, period exactly 1.
            let t = ev.period(&mapping, model);
            assert!((t - gadget.target_period).abs() < 1e-9, "seed {seed}: period {t} ≠ 1");
        }
    }
}

/// Theorem 5, both directions, certified exhaustively on downscaled twins.
#[test]
fn theorem5_reduction_fidelity_exhaustive() {
    let cfg = ExactConfig {
        kind: MappingKind::Interval,
        model: CommModel::Overlap,
        speed: SpeedPolicy::MaxOnly,
    };
    // YES twin reaches exactly period 1.
    let g_yes = theorem5_encode(&small_yes_3p());
    let best_yes = exact_optimize(
        &g_yes.apps,
        &g_yes.platform,
        cfg,
        Criterion::Period,
        &Thresholds::none(),
    )
    .expect("some mapping exists");
    assert!((best_yes.objective - 1.0).abs() < 1e-9);

    // NO twin provably cannot reach period 1.
    let g_no = theorem5_encode(&small_no_3p());
    let best_no = exact_optimize(
        &g_no.apps,
        &g_no.platform,
        cfg,
        Criterion::Period,
        &Thresholds::none(),
    )
    .expect("some mapping exists");
    assert!(
        best_no.objective > 1.0 + 1e-9,
        "NO instance must not reach period 1 (got {})",
        best_no.objective
    );
}

/// Theorem 9: latency / one-to-one / heterogeneous uni-modal processors.
#[test]
fn theorem9_yes_instance_reaches_latency_b() {
    let inst = ThreePartition::yes_instance(2, 3);
    let gadget = theorem9_encode(&inst);
    let triples = inst.solve().expect("yes");
    let mapping = theorem9_mapping(&triples);
    mapping.validate(&gadget.apps, &gadget.platform).expect("valid");
    let ev = Evaluator::new(&gadget.apps, &gadget.platform);
    let l = ev.latency(&mapping);
    assert!((l - gadget.target_latency).abs() < 1e-9, "latency {l} ≠ B");
}

/// Theorem 9, both directions, certified exhaustively on downscaled twins.
#[test]
fn theorem9_reduction_fidelity_exhaustive() {
    let cfg = ExactConfig {
        kind: MappingKind::OneToOne,
        model: CommModel::Overlap,
        speed: SpeedPolicy::MaxOnly,
    };
    let g_yes = theorem9_encode(&small_yes_3p());
    let best = exact_optimize(
        &g_yes.apps,
        &g_yes.platform,
        cfg,
        Criterion::Latency,
        &Thresholds::none(),
    )
    .expect("mapping exists");
    assert!((best.objective - 12.0).abs() < 1e-9);

    let g_no = theorem9_encode(&small_no_3p());
    let best_no = exact_optimize(
        &g_no.apps,
        &g_no.platform,
        cfg,
        Criterion::Latency,
        &Thresholds::none(),
    )
    .expect("mapping exists");
    assert!(
        best_no.objective > 16.0 + 1e-9,
        "NO instance must not reach latency B (got {})",
        best_no.objective
    );
}

/// Theorem 26: tri-criteria / one-to-one / multi-modal / fully homogeneous.
/// YES instances meet all three bounds via the intended mapping.
#[test]
fn theorem26_yes_instance_meets_all_three_bounds() {
    for seed in [1, 5, 9] {
        let inst = TwoPartition::yes_instance(3, seed);
        let gadget = theorem26_encode(&inst);
        let side = inst.solve().expect("yes instance");
        let mapping = theorem26_mapping(&side);
        mapping.validate(&gadget.apps, &gadget.platform).expect("valid");
        let ev = Evaluator::new(&gadget.apps, &gadget.platform);
        let e = ev.energy(&mapping);
        let l = ev.latency(&mapping);
        let t = ev.period(&mapping, CommModel::Overlap);
        assert!(
            e <= gadget.target_energy + 1e-6,
            "seed {seed}: energy {e} > {}",
            gadget.target_energy
        );
        assert!(
            l <= gadget.target_latency + 1e-6,
            "seed {seed}: latency {l} > {}",
            gadget.target_latency
        );
        assert!(
            t <= gadget.target_period + 1e-6,
            "seed {seed}: period {t} > {}",
            gadget.target_period
        );
    }
}

/// Theorem 26: NO instances cannot meet the three bounds simultaneously.
#[test]
fn theorem26_no_instance_is_infeasible() {
    for seed in [2, 4] {
        let inst = TwoPartition::no_instance(3, seed);
        assert!(inst.solve().is_none());
        let gadget = theorem26_encode(&inst);
        let sol = branch_and_bound_tri(
            &gadget.apps,
            &gadget.platform,
            CommModel::Overlap,
            MappingKind::OneToOne,
            &[gadget.target_period],
            &[gadget.target_latency],
        );
        match sol {
            None => {} // no mapping meets period+latency at all
            Some(s) => assert!(
                s.objective > gadget.target_energy + 1e-9,
                "seed {seed}: NO instance met the energy bound ({} ≤ {})",
                s.objective,
                gadget.target_energy
            ),
        }
    }
}

/// Reduction fidelity: tri-criteria feasibility of the gadget must equal
/// the independent 2-PARTITION solver's answer on mixed instances.
#[test]
fn theorem26_branch_and_bound_agrees_with_two_partition_solver() {
    for seed in 0..6 {
        let inst = if seed % 2 == 0 {
            TwoPartition::yes_instance(3, seed)
        } else {
            TwoPartition::no_instance(3, seed)
        };
        let expected = inst.solve().is_some();
        let gadget = theorem26_encode(&inst);
        let got = tri_feasible(
            &gadget.apps,
            &gadget.platform,
            CommModel::Overlap,
            MappingKind::OneToOne,
            &[gadget.target_period],
            &[gadget.target_latency],
            gadget.target_energy,
        );
        assert_eq!(got, expected, "seed {seed}: reduction fidelity");
    }
}

/// Theorem 27 (interval variant): the gadget with big separator stages
/// forces interval mappings back into the one-to-one shape, so interval
/// feasibility equals the 2-PARTITION answer.
#[test]
fn theorem27_interval_search_matches_two_partition() {
    for seed in [0u64, 1, 2, 3] {
        let inst = if seed % 2 == 0 {
            TwoPartition::yes_instance(2, seed + 7)
        } else {
            TwoPartition::no_instance(2, seed + 7)
        };
        let expected = inst.solve().is_some();
        let gadget = theorem27_encode(&inst);
        // YES side: the intended mapping must itself be feasible.
        if let Some(side) = inst.solve() {
            let mapping = theorem27_mapping(&side);
            mapping.validate(&gadget.apps, &gadget.platform).expect("valid");
            let ev = Evaluator::new(&gadget.apps, &gadget.platform);
            assert!(ev.energy(&mapping) <= gadget.target_energy + 1e-6);
            assert!(ev.latency(&mapping) <= gadget.target_latency + 1e-6 * gadget.target_latency);
            assert!(
                ev.period(&mapping, CommModel::Overlap)
                    <= gadget.target_period * (1.0 + 1e-9)
            );
        }
        let got = tri_feasible(
            &gadget.apps,
            &gadget.platform,
            CommModel::Overlap,
            MappingKind::Interval,
            &[gadget.target_period],
            &[gadget.target_latency],
            gadget.target_energy,
        );
        assert_eq!(got, expected, "seed {seed}: interval reduction fidelity");
    }
}
