//! Integration tests for the Section 6 future-work extensions:
//! replication, processor sharing (general mappings) and bounded buffers.

use concurrent_pipelines::model::gadgets::TwoPartition;
use concurrent_pipelines::model::generator::{random_apps, AppGenConfig};
use concurrent_pipelines::model::replication::{ReplicatedEvaluator, ReplicatedMapping};
use concurrent_pipelines::model::sharing::{sharing_gadget_encode, sharing_gadget_mapping, GeneralEvaluator};
use concurrent_pipelines::prelude::*;
use concurrent_pipelines::simulator::{simulate, simulate_with_buffers};
use concurrent_pipelines::solvers::replication::{
    min_energy_replicated_under_period, minimize_global_period_replicated,
};
use concurrent_pipelines::solvers::sharing::{exact_min_period_general, lpt_general_period, sharing_gain};

#[test]
fn replication_dominates_plain_intervals_globally() {
    let cfg = AppGenConfig { apps: 2, stages: (1, 4), ..Default::default() };
    for seed in 0..40 {
        let apps = random_apps(&cfg, seed);
        let pf = Platform::fully_homogeneous(6, vec![2.0], 1.0).unwrap();
        let plain = concurrent_pipelines::solvers::mono::period_interval::minimize_global_period(
            &apps,
            &pf,
            CommModel::Overlap,
        )
        .unwrap();
        let (mapping, period) =
            minimize_global_period_replicated(&apps, &pf, CommModel::Overlap).unwrap();
        mapping.validate(&apps, &pf).unwrap();
        assert!(
            period <= plain.objective + 1e-9,
            "seed {seed}: replication {period} worse than plain {}",
            plain.objective
        );
    }
}

#[test]
fn replication_energy_never_exceeds_dvfs_only() {
    // The replicated energy DP has strictly more options than the plain
    // Theorem 18/21 DP, so it can only match or improve.
    let cfg = AppGenConfig { apps: 2, stages: (1, 3), ..Default::default() };
    for seed in 0..30 {
        let apps = random_apps(&cfg, seed);
        let pf = Platform::fully_homogeneous(5, vec![1.0, 2.0, 4.0], 1.0).unwrap();
        let tb: Vec<f64> = apps.apps.iter().map(|a| a.total_work() / 3.0 + 1.0).collect();
        let plain = concurrent_pipelines::solvers::bi::period_energy::min_energy_interval_fully_hom(
            &apps,
            &pf,
            CommModel::Overlap,
            &tb,
        );
        let repl = min_energy_replicated_under_period(&apps, &pf, CommModel::Overlap, &tb);
        match (plain, repl) {
            (Some(p), Some((m, e))) => {
                m.validate(&apps, &pf).unwrap();
                assert!(e <= p.objective + 1e-9, "seed {seed}: {e} vs {}", p.objective);
                // The replicated mapping honors the bounds.
                let rev = ReplicatedEvaluator::new(&apps, &pf);
                for (a, bound) in tb.iter().enumerate() {
                    assert!(rev.app_period(&m, a, CommModel::Overlap) <= bound + 1e-9);
                }
            }
            (None, _) => {}
            (Some(p), None) => panic!("seed {seed}: replication lost feasibility ({})", p.objective),
        }
    }
}

#[test]
fn sharing_gadget_reduction_fidelity() {
    for seed in 0..8u64 {
        let inst = if seed % 2 == 0 {
            TwoPartition::yes_instance(5, seed)
        } else {
            TwoPartition::no_instance(5, seed)
        };
        let expected = inst.solve().is_some();
        let g = sharing_gadget_encode(&inst);
        let (_, t) = exact_min_period_general(&g.apps, &g.platform, CommModel::Overlap).unwrap();
        let reached = (t - g.target_period).abs() < 1e-9;
        assert!(t >= g.target_period - 1e-9, "cannot beat S/2");
        assert_eq!(reached, expected, "seed {seed}: gadget fidelity");
        if expected {
            let m = sharing_gadget_mapping(&inst.solve().unwrap());
            let ev = GeneralEvaluator::new(&g.apps, &g.platform);
            assert!((ev.period(&m, CommModel::Overlap) - g.target_period).abs() < 1e-9);
        }
    }
}

#[test]
fn lpt_heuristic_stays_within_graham_bound_without_comm() {
    let cfg = AppGenConfig { apps: 3, stages: (1, 3), data: (0.0, 0.0), ..Default::default() };
    for seed in 0..30 {
        let apps = random_apps(&cfg, seed);
        let pf = Platform::fully_homogeneous(3, vec![1.0], 1.0).unwrap();
        let (m, lpt) = lpt_general_period(&apps, &pf, CommModel::Overlap).unwrap();
        m.validate(&apps, &pf).unwrap();
        let (_, opt) = exact_min_period_general(&apps, &pf, CommModel::Overlap).unwrap();
        assert!(lpt >= opt - 1e-9, "seed {seed}");
        assert!(lpt <= opt * (4.0 / 3.0) + 1e-6, "seed {seed}: {lpt} vs {opt}");
    }
}

#[test]
fn sharing_gain_is_bounded_and_meaningful() {
    // On random instances the general optimum is never worse than the
    // interval optimum, and when p < A only sharing is feasible.
    let cfg = AppGenConfig { apps: 2, stages: (1, 3), ..Default::default() };
    let mut helped = 0;
    for seed in 0..30 {
        let apps = random_apps(&cfg, seed);
        let pf = Platform::fully_homogeneous(2, vec![2.0], 1.0).unwrap();
        if let Some((ti, tg)) = sharing_gain(&apps, &pf, CommModel::Overlap) {
            assert!(tg <= ti + 1e-9, "seed {seed}");
            if tg < ti - 1e-9 {
                helped += 1;
            }
        }
    }
    assert!(helped > 0, "sharing should strictly help on some scarce-processor instances");
}

#[test]
fn bounded_buffers_interpolate_between_coupled_and_ideal() {
    let apps = AppSet::single(
        concurrent_pipelines::model::application::Application::from_pairs(
            0.0,
            &[(2.0, 3.0), (3.0, 2.0), (2.0, 0.0)],
        ),
    );
    let pf = Platform::fully_homogeneous(3, vec![1.0], 1.0).unwrap();
    let mapping = Mapping::new()
        .with(Interval::new(0, 0, 0), 0, 0)
        .with(Interval::new(0, 1, 1), 1, 0)
        .with(Interval::new(0, 2, 2), 2, 0);
    let ideal = simulate(&apps, &pf, &mapping, CommModel::Overlap, 64).period;
    let mut last = f64::INFINITY;
    for cap in [1usize, 2, 3, 8] {
        let t = simulate_with_buffers(&apps, &pf, &mapping, CommModel::Overlap, 64, cap).period;
        assert!(t >= ideal - 1e-9, "capacity {cap} cannot beat unbounded");
        assert!(t <= last + 1e-9, "throughput monotone in capacity");
        last = t;
    }
    assert!((last - ideal).abs() < 1e-9, "large buffers recover the paper's model");
}

#[test]
fn replicated_mapping_roundtrip_from_plain() {
    let (apps, pf) = concurrent_pipelines::model::generator::section2_example();
    let plain = Mapping::new()
        .with(Interval::new(0, 0, 2), 2, 1)
        .with(Interval::new(1, 0, 1), 1, 1)
        .with(Interval::new(1, 2, 3), 0, 1);
    let repl = ReplicatedMapping::from_plain(&plain);
    repl.validate(&apps, &pf).unwrap();
    let ev = Evaluator::new(&apps, &pf);
    let rev = ReplicatedEvaluator::new(&apps, &pf);
    for model in CommModel::ALL {
        assert!((ev.period(&plain, model) - rev.period(&repl, model)).abs() < 1e-12);
    }
    assert!((ev.latency(&plain) - rev.latency(&repl)).abs() < 1e-12);
    assert!((ev.energy(&plain) - rev.energy(&repl)).abs() < 1e-12);
}
