//! The discrete-event simulator must agree with the analytic evaluator
//! (Eqs. 3–5) on arbitrary valid mappings, platforms and both
//! communication models.

use concurrent_pipelines::model::generator::{
    random_apps, random_comm_homogeneous, random_fully_heterogeneous, AppGenConfig,
    PlatformGenConfig,
};
use concurrent_pipelines::prelude::*;
use concurrent_pipelines::simulator::simulate;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Build a random valid interval mapping.
fn random_mapping(apps: &AppSet, platform: &Platform, rng: &mut StdRng) -> Option<Mapping> {
    let mut procs: Vec<usize> = (0..platform.p()).collect();
    procs.shuffle(rng);
    let mut mapping = Mapping::new();
    let mut next = 0usize;
    for (a, app) in apps.apps.iter().enumerate() {
        let mut first = 0usize;
        while first < app.n() {
            let last = rng.gen_range(first..app.n());
            if next >= procs.len() {
                return None;
            }
            let u = procs[next];
            next += 1;
            let mode = rng.gen_range(0..platform.procs[u].modes());
            mapping.push(Interval::new(a, first, last), u, mode);
            first = last + 1;
        }
    }
    Some(mapping)
}

#[test]
fn simulated_equals_analytic_on_random_comm_hom_instances() {
    let mut rng = StdRng::seed_from_u64(12345);
    let app_cfg = AppGenConfig { apps: 2, stages: (1, 5), ..Default::default() };
    let pf_cfg = PlatformGenConfig { procs: 8, modes: (1, 3), ..Default::default() };
    let mut checked = 0;
    for seed in 0..80u64 {
        let apps = random_apps(&app_cfg, seed);
        let pf = random_comm_homogeneous(&pf_cfg, seed + 500);
        let Some(mapping) = random_mapping(&apps, &pf, &mut rng) else { continue };
        mapping.validate(&apps, &pf).expect("constructed valid");
        let ev = Evaluator::new(&apps, &pf);
        for model in CommModel::ALL {
            let rep = simulate(&apps, &pf, &mapping, model, 48);
            let t = ev.period(&mapping, model);
            let l = ev.latency(&mapping);
            assert!(
                (rep.period - t).abs() < 1e-6 * (1.0 + t),
                "seed {seed} {model:?}: simulated period {} vs analytic {t}",
                rep.period
            );
            assert!(
                (rep.latency - l).abs() < 1e-6 * (1.0 + l),
                "seed {seed} {model:?}: simulated latency {} vs analytic {l}",
                rep.latency
            );
            assert!((rep.power - ev.energy(&mapping)).abs() < 1e-9);
        }
        checked += 1;
    }
    assert!(checked > 40, "enough random instances exercised ({checked})");
}

#[test]
fn simulated_equals_analytic_on_heterogeneous_platforms() {
    let mut rng = StdRng::seed_from_u64(999);
    let app_cfg = AppGenConfig { apps: 2, stages: (1, 4), ..Default::default() };
    let pf_cfg = PlatformGenConfig { procs: 6, modes: (1, 2), ..Default::default() };
    let mut checked = 0;
    for seed in 0..60u64 {
        let apps = random_apps(&app_cfg, seed);
        let pf = random_fully_heterogeneous(&pf_cfg, apps.a(), seed + 700);
        let Some(mapping) = random_mapping(&apps, &pf, &mut rng) else { continue };
        let ev = Evaluator::new(&apps, &pf);
        for model in CommModel::ALL {
            let rep = simulate(&apps, &pf, &mapping, model, 48);
            let t = ev.period(&mapping, model);
            assert!(
                (rep.period - t).abs() < 1e-6 * (1.0 + t),
                "seed {seed} {model:?}: {} vs {t}",
                rep.period
            );
            let l = ev.latency(&mapping);
            assert!((rep.latency - l).abs() < 1e-6 * (1.0 + l));
        }
        checked += 1;
    }
    assert!(checked > 30);
}

#[test]
fn steady_state_is_reached_quickly() {
    // Measured period must be independent of the horizon once past warmup.
    let app_cfg = AppGenConfig { apps: 1, stages: (3, 5), ..Default::default() };
    let pf_cfg = PlatformGenConfig { procs: 5, modes: (1, 2), ..Default::default() };
    let mut rng = StdRng::seed_from_u64(42);
    for seed in 0..20u64 {
        let apps = random_apps(&app_cfg, seed);
        let pf = random_comm_homogeneous(&pf_cfg, seed);
        let Some(mapping) = random_mapping(&apps, &pf, &mut rng) else { continue };
        let short = simulate(&apps, &pf, &mapping, CommModel::Overlap, 24);
        let long = simulate(&apps, &pf, &mapping, CommModel::Overlap, 96);
        assert!(
            (short.period - long.period).abs() < 1e-6 * (1.0 + long.period),
            "seed {seed}: horizon-dependent period {} vs {}",
            short.period,
            long.period
        );
    }
}

#[test]
fn utilization_bounded_by_one() {
    let app_cfg = AppGenConfig { apps: 2, stages: (2, 4), ..Default::default() };
    let pf_cfg = PlatformGenConfig { procs: 6, modes: (1, 2), ..Default::default() };
    let mut rng = StdRng::seed_from_u64(7);
    for seed in 0..20u64 {
        let apps = random_apps(&app_cfg, seed);
        let pf = random_comm_homogeneous(&pf_cfg, seed);
        let Some(mapping) = random_mapping(&apps, &pf, &mut rng) else { continue };
        let rep = simulate(&apps, &pf, &mapping, CommModel::Overlap, 32);
        for u in 0..pf.p() {
            assert!(rep.utilization(u) <= 1.0 + 1e-9, "seed {seed} proc {u}");
        }
    }
}
