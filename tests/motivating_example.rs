//! Integration test: every number of the paper's Section 2 motivating
//! example, reproduced through the public API (solvers + simulator).

use concurrent_pipelines::model::generator::section2_example;
use concurrent_pipelines::prelude::*;
use concurrent_pipelines::simulator::simulate;
use concurrent_pipelines::solvers::exact::{exact_optimize, ExactConfig, SpeedPolicy};
use concurrent_pipelines::solvers::heuristics::{local_search, LocalSearchConfig};
use concurrent_pipelines::solvers::mono::latency::min_latency_interval_comm_hom;
use concurrent_pipelines::solvers::tri::multimodal::branch_and_bound_tri;
use concurrent_pipelines::solvers::{Criterion, MappingKind};

fn cfg(kind: MappingKind, speed: SpeedPolicy) -> ExactConfig {
    ExactConfig { kind, model: CommModel::Overlap, speed }
}

#[test]
fn minimum_period_is_1() {
    let (apps, pf) = section2_example();
    let sol = exact_optimize(
        &apps,
        &pf,
        cfg(MappingKind::Interval, SpeedPolicy::MaxOnly),
        Criterion::Period,
        &Thresholds::none(),
    )
    .expect("feasible");
    assert!((sol.objective - 1.0).abs() < 1e-9, "Eq. (1): optimal period 1");
}

#[test]
fn minimum_latency_is_2_75_greedy_and_exhaustive_agree() {
    let (apps, pf) = section2_example();
    let greedy = min_latency_interval_comm_hom(&apps, &pf).expect("feasible");
    assert!((greedy.objective - 2.75).abs() < 1e-9, "Eq. (2): optimal latency 2.75");
    let brute = exact_optimize(
        &apps,
        &pf,
        cfg(MappingKind::Interval, SpeedPolicy::MaxOnly),
        Criterion::Latency,
        &Thresholds::none(),
    )
    .expect("feasible");
    assert!((brute.objective - 2.75).abs() < 1e-9);
}

#[test]
fn minimum_energy_is_10_with_period_14() {
    let (apps, pf) = section2_example();
    let sol = exact_optimize(
        &apps,
        &pf,
        cfg(MappingKind::Interval, SpeedPolicy::All),
        Criterion::Energy,
        &Thresholds::none(),
    )
    .expect("feasible");
    assert!((sol.objective - 10.0).abs() < 1e-9, "minimum energy 3² + 1² = 10");
    let ev = Evaluator::new(&apps, &pf);
    assert!((ev.period(&sol.mapping, CommModel::Overlap) - 14.0).abs() < 1e-9);
}

#[test]
fn energy_under_period_2_is_46_and_period_optimal_mapping_costs_136() {
    let (apps, pf) = section2_example();
    let sol = branch_and_bound_tri(
        &apps,
        &pf,
        CommModel::Overlap,
        MappingKind::Interval,
        &[2.0, 2.0],
        &[f64::INFINITY, f64::INFINITY],
    )
    .expect("feasible");
    assert!((sol.objective - 46.0).abs() < 1e-9);
    // The period-optimal mapping runs all three processors in their top
    // modes and costs 6² + 8² + 6² = 136.
    let t = exact_optimize(
        &apps,
        &pf,
        cfg(MappingKind::Interval, SpeedPolicy::MaxOnly),
        Criterion::Period,
        &Thresholds::none(),
    )
    .expect("feasible");
    let ev = Evaluator::new(&apps, &pf);
    assert!((ev.energy(&t.mapping) - 136.0).abs() < 1e-9);
}

#[test]
fn heuristics_reach_the_compromise() {
    let (apps, pf) = section2_example();
    let heur = local_search(
        &apps,
        &pf,
        CommModel::Overlap,
        &[2.0, 2.0],
        &[f64::INFINITY, f64::INFINITY],
        &LocalSearchConfig { iterations: 6000, seed: 3, ..Default::default() },
    )
    .expect("feasible");
    assert!((heur.objective - 46.0).abs() < 1e-9, "local search finds the optimum 46 here");
}

#[test]
fn simulator_confirms_all_three_canonical_mappings() {
    let (apps, pf) = section2_example();
    let ev = Evaluator::new(&apps, &pf);
    // Period-optimal, latency-optimal and energy-optimal mappings from the
    // paper; the simulator must agree with the analytic evaluator on all.
    let mappings = [
        Mapping::new()
            .with(Interval::new(0, 0, 2), 2, 1)
            .with(Interval::new(1, 0, 1), 1, 1)
            .with(Interval::new(1, 2, 3), 0, 1),
        Mapping::new()
            .with(Interval::new(0, 0, 2), 0, 1)
            .with(Interval::new(1, 0, 3), 1, 1),
        Mapping::new()
            .with(Interval::new(0, 0, 2), 0, 0)
            .with(Interval::new(1, 0, 3), 2, 0),
    ];
    for (i, m) in mappings.iter().enumerate() {
        m.validate(&apps, &pf).expect("paper mapping valid");
        for model in CommModel::ALL {
            let rep = simulate(&apps, &pf, m, model, 48);
            assert!(
                (rep.period - ev.period(m, model)).abs() < 1e-9,
                "mapping {i}, {model:?}: simulated vs analytic period"
            );
            assert!(
                (rep.latency - ev.latency(m)).abs() < 1e-9,
                "mapping {i}, {model:?}: simulated vs analytic latency"
            );
            assert!((rep.power - ev.energy(m)).abs() < 1e-9);
        }
    }
}

#[test]
fn one_to_one_needs_more_processors_than_section2_has() {
    // N = 7 stages > p = 3: no one-to-one mapping exists — the paper notes
    // one-to-one requires p ≥ N.
    let (apps, pf) = section2_example();
    let sol = exact_optimize(
        &apps,
        &pf,
        cfg(MappingKind::OneToOne, SpeedPolicy::MaxOnly),
        Criterion::Period,
        &Thresholds::none(),
    );
    assert!(sol.is_none());
}
