//! Optimality certification: every polynomial algorithm of the paper is
//! checked against exhaustive search on seeded random instances.
//!
//! These tests are the empirical backing of the "polynomial" cells of
//! Tables 1 and 2 (see EXPERIMENTS.md): for each cell, the dedicated
//! algorithm must return exactly the optimum found by brute force.

use concurrent_pipelines::model::generator::{
    random_apps, random_comm_homogeneous, random_fully_homogeneous, AppGenConfig,
    PlatformGenConfig,
};
use concurrent_pipelines::prelude::*;
use concurrent_pipelines::solvers::bi::period_energy::{
    min_energy_interval_fully_hom, min_energy_one_to_one_matching,
};
use concurrent_pipelines::solvers::bi::period_latency::{
    min_latency_under_period_fully_hom, min_period_under_latency_fully_hom,
};
use concurrent_pipelines::solvers::exact::{exact_optimize, ExactConfig, SpeedPolicy};
use concurrent_pipelines::solvers::mono::latency::min_latency_interval_comm_hom;
use concurrent_pipelines::solvers::mono::period_interval::minimize_global_period;
use concurrent_pipelines::solvers::mono::period_one_to_one::min_period_one_to_one_comm_hom;
use concurrent_pipelines::solvers::tri::unimodal::min_latency_tri_unimodal;
use concurrent_pipelines::solvers::{Criterion, MappingKind};

const SEEDS: u64 = 60;

fn assert_matches(fast: Option<f64>, brute: Option<f64>, what: &str, seed: u64) {
    match (fast, brute) {
        (None, None) => {}
        (Some(f), Some(b)) => {
            assert!((f - b).abs() < 1e-7, "{what} seed {seed}: fast {f} vs brute {b}")
        }
        other => panic!("{what} seed {seed}: feasibility mismatch {other:?}"),
    }
}

/// Table 1 row 1 (period, one-to-one, comm-hom): Theorem 1 vs brute force.
#[test]
fn t1_period_one_to_one_comm_hom() {
    let app_cfg = AppGenConfig { apps: 2, stages: (1, 3), ..Default::default() };
    for seed in 0..SEEDS {
        let apps = random_apps(&app_cfg, seed);
        let n = apps.total_stages();
        let pf_cfg = PlatformGenConfig { procs: n + 1, modes: (1, 2), ..Default::default() };
        let pf = random_comm_homogeneous(&pf_cfg, seed + 1000);
        for model in CommModel::ALL {
            let fast = min_period_one_to_one_comm_hom(&apps, &pf, model);
            let brute = exact_optimize(
                &apps,
                &pf,
                ExactConfig { kind: MappingKind::OneToOne, model, speed: SpeedPolicy::MaxOnly },
                Criterion::Period,
                &Thresholds::none(),
            );
            assert_matches(
                fast.map(|s| s.objective),
                brute.map(|s| s.objective),
                "period one-to-one",
                seed,
            );
        }
    }
}

/// Table 1 row 2 (period, interval, fully hom): Theorem 3 / Algorithm 2.
#[test]
fn t1_period_interval_fully_hom() {
    let app_cfg = AppGenConfig { apps: 2, stages: (2, 4), ..Default::default() };
    for seed in 0..SEEDS {
        let apps = random_apps(&app_cfg, seed);
        let pf_cfg = PlatformGenConfig { procs: 4, modes: (1, 2), ..Default::default() };
        let pf = random_fully_homogeneous(&pf_cfg, seed + 2000);
        for model in CommModel::ALL {
            let fast = minimize_global_period(&apps, &pf, model);
            let brute = exact_optimize(
                &apps,
                &pf,
                ExactConfig { kind: MappingKind::Interval, model, speed: SpeedPolicy::MaxOnly },
                Criterion::Period,
                &Thresholds::none(),
            );
            assert_matches(
                fast.map(|s| s.objective),
                brute.map(|s| s.objective),
                "period interval",
                seed,
            );
        }
    }
}

/// Table 1 row 4 (latency, interval, comm-hom): Theorem 12 greedy.
#[test]
fn t1_latency_interval_comm_hom() {
    let app_cfg = AppGenConfig { apps: 3, stages: (1, 3), ..Default::default() };
    for seed in 0..SEEDS {
        let apps = random_apps(&app_cfg, seed);
        let pf_cfg = PlatformGenConfig { procs: 4, modes: (1, 3), ..Default::default() };
        let pf = random_comm_homogeneous(&pf_cfg, seed + 3000);
        let fast = min_latency_interval_comm_hom(&apps, &pf);
        let brute = exact_optimize(
            &apps,
            &pf,
            ExactConfig {
                kind: MappingKind::Interval,
                model: CommModel::Overlap,
                speed: SpeedPolicy::MaxOnly,
            },
            Criterion::Latency,
            &Thresholds::none(),
        );
        assert_matches(
            fast.map(|s| s.objective),
            brute.map(|s| s.objective),
            "latency interval",
            seed,
        );
    }
}

/// Table 2 row 1 (period/latency, fully hom): Theorem 15/16 DP, both
/// directions.
#[test]
fn t2_period_latency_fully_hom() {
    let app_cfg = AppGenConfig { apps: 2, stages: (2, 4), ..Default::default() };
    for seed in 0..SEEDS / 2 {
        let apps = random_apps(&app_cfg, seed);
        let pf_cfg = PlatformGenConfig { procs: 4, modes: (1, 1), ..Default::default() };
        let pf = random_fully_homogeneous(&pf_cfg, seed + 4000);
        // Derive a meaningful period bound from the unconstrained optimum.
        let base = minimize_global_period(&apps, &pf, CommModel::Overlap)
            .expect("p >= A")
            .objective;
        for factor in [1.0, 1.5, 3.0] {
            let tb = base * factor;
            let bounds = vec![tb; apps.a()];
            let fast =
                min_latency_under_period_fully_hom(&apps, &pf, CommModel::Overlap, &bounds);
            let th = Thresholds::none().with_period(bounds.clone());
            let brute = exact_optimize(
                &apps,
                &pf,
                ExactConfig {
                    kind: MappingKind::Interval,
                    model: CommModel::Overlap,
                    speed: SpeedPolicy::MaxOnly,
                },
                Criterion::Latency,
                &th,
            );
            assert_matches(
                fast.as_ref().map(|s| s.objective),
                brute.as_ref().map(|s| s.objective),
                "latency under period",
                seed,
            );
            // Dual: period under the achieved latency bound.
            if let Some(l) = fast.map(|s| s.objective) {
                let lb = vec![l * 1.2; apps.a()];
                let fast_t =
                    min_period_under_latency_fully_hom(&apps, &pf, CommModel::Overlap, &lb);
                let th = Thresholds::none().with_latency(lb);
                let brute_t = exact_optimize(
                    &apps,
                    &pf,
                    ExactConfig {
                        kind: MappingKind::Interval,
                        model: CommModel::Overlap,
                        speed: SpeedPolicy::MaxOnly,
                    },
                    Criterion::Period,
                    &th,
                );
                assert_matches(
                    fast_t.map(|s| s.objective),
                    brute_t.map(|s| s.objective),
                    "period under latency",
                    seed,
                );
            }
        }
    }
}

/// Table 2 row 2 (period/energy, one-to-one, comm-hom): Theorem 19
/// matching vs brute force.
#[test]
fn t2_energy_matching_comm_hom() {
    let app_cfg = AppGenConfig { apps: 2, stages: (1, 3), ..Default::default() };
    for seed in 0..SEEDS {
        let apps = random_apps(&app_cfg, seed);
        let n = apps.total_stages();
        let pf_cfg = PlatformGenConfig { procs: n, modes: (2, 3), ..Default::default() };
        let pf = random_comm_homogeneous(&pf_cfg, seed + 5000);
        for model in CommModel::ALL {
            // A bound loose enough to often be feasible, tight enough to
            // force mode choices.
            let tb: Vec<f64> = apps.apps.iter().map(|a| a.total_work() / 2.0 + 2.0).collect();
            let fast = min_energy_one_to_one_matching(&apps, &pf, model, &tb);
            let th = Thresholds::none().with_period(tb.clone());
            let brute = exact_optimize(
                &apps,
                &pf,
                ExactConfig { kind: MappingKind::OneToOne, model, speed: SpeedPolicy::All },
                Criterion::Energy,
                &th,
            );
            assert_matches(
                fast.map(|s| s.objective),
                brute.map(|s| s.objective),
                "energy matching",
                seed,
            );
        }
    }
}

/// Table 2 row 3 (period/energy, interval, fully hom): Theorem 18/21 DP.
#[test]
fn t2_energy_interval_fully_hom() {
    let app_cfg = AppGenConfig { apps: 2, stages: (2, 3), ..Default::default() };
    for seed in 0..SEEDS / 2 {
        let apps = random_apps(&app_cfg, seed);
        let pf_cfg = PlatformGenConfig { procs: 4, modes: (2, 3), ..Default::default() };
        let pf = random_fully_homogeneous(&pf_cfg, seed + 6000);
        for model in CommModel::ALL {
            let tb: Vec<f64> = apps.apps.iter().map(|a| a.total_work() / 3.0 + 2.0).collect();
            let fast = min_energy_interval_fully_hom(&apps, &pf, model, &tb);
            let th = Thresholds::none().with_period(tb.clone());
            let brute = exact_optimize(
                &apps,
                &pf,
                ExactConfig { kind: MappingKind::Interval, model, speed: SpeedPolicy::All },
                Criterion::Energy,
                &th,
            );
            assert_matches(
                fast.map(|s| s.objective),
                brute.map(|s| s.objective),
                "energy interval DP",
                seed,
            );
        }
    }
}

/// Table 2 row 4, uni-modal column (Theorem 24): latency variant vs brute
/// force with an energy budget.
#[test]
fn t2_tri_unimodal() {
    let app_cfg = AppGenConfig { apps: 2, stages: (2, 3), ..Default::default() };
    for seed in 0..SEEDS / 2 {
        let apps = random_apps(&app_cfg, seed);
        let pf_cfg = PlatformGenConfig { procs: 4, modes: (1, 1), ..Default::default() };
        let pf = random_fully_homogeneous(&pf_cfg, seed + 7000);
        let e_per_proc = EnergyModel::default().dynamic(pf.procs[0].max_speed());
        for budget_procs in [2usize, 3, 4] {
            let budget = e_per_proc * budget_procs as f64 + 1e-6;
            let tb: Vec<f64> = apps.apps.iter().map(|a| a.total_work() + 5.0).collect();
            let fast =
                min_latency_tri_unimodal(&apps, &pf, CommModel::Overlap, &tb, budget);
            let th = Thresholds::none().with_period(tb.clone()).with_energy(budget);
            let brute = exact_optimize(
                &apps,
                &pf,
                ExactConfig {
                    kind: MappingKind::Interval,
                    model: CommModel::Overlap,
                    speed: SpeedPolicy::All,
                },
                Criterion::Latency,
                &th,
            );
            assert_matches(
                fast.map(|s| s.objective),
                brute.map(|s| s.objective),
                "tri unimodal latency",
                seed,
            );
        }
    }
}

/// Solver outputs are always structurally valid mappings honoring their
/// claimed objective values.
#[test]
fn solver_outputs_are_valid_and_consistent() {
    let app_cfg = AppGenConfig { apps: 2, stages: (2, 4), ..Default::default() };
    for seed in 0..SEEDS {
        let apps = random_apps(&app_cfg, seed);
        let pf_cfg = PlatformGenConfig { procs: 5, modes: (2, 3), ..Default::default() };
        let pf = random_fully_homogeneous(&pf_cfg, seed + 8000);
        let ev = Evaluator::new(&apps, &pf);
        if let Some(sol) = minimize_global_period(&apps, &pf, CommModel::Overlap) {
            sol.mapping.validate(&apps, &pf).expect("valid mapping");
            assert!(
                (ev.period(&sol.mapping, CommModel::Overlap) - sol.objective).abs() < 1e-9
            );
        }
        let tb: Vec<f64> = apps.apps.iter().map(|a| a.total_work()).collect();
        if let Some(sol) = min_energy_interval_fully_hom(&apps, &pf, CommModel::Overlap, &tb) {
            sol.mapping.validate(&apps, &pf).expect("valid mapping");
            assert!((ev.energy(&sol.mapping) - sol.objective).abs() < 1e-9);
        }
    }
}
