//! Property-based tests (proptest) over the model's structural invariants
//! and the monotonicity laws the paper's algorithms rely on.

use concurrent_pipelines::model::generator::{
    random_apps, random_comm_homogeneous, random_fully_homogeneous, AppGenConfig,
    PlatformGenConfig,
};
use concurrent_pipelines::prelude::*;
use concurrent_pipelines::solvers::bi::period_energy::min_energy_interval_fully_hom;
use concurrent_pipelines::solvers::dp::{latency_under_period, period_table, HomCtx};
use concurrent_pipelines::solvers::mono::period_interval::minimize_global_period;
use concurrent_pipelines::solvers::mono::period_one_to_one::min_period_one_to_one_comm_hom;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng as _, SeedableRng as _};

fn random_interval_mapping(apps: &AppSet, platform: &Platform, seed: u64) -> Option<Mapping> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut procs: Vec<usize> = (0..platform.p()).collect();
    procs.shuffle(&mut rng);
    let mut mapping = Mapping::new();
    let mut next = 0usize;
    for (a, app) in apps.apps.iter().enumerate() {
        let mut first = 0usize;
        while first < app.n() {
            let last = rng.gen_range(first..app.n());
            if next >= procs.len() {
                return None;
            }
            let u = procs[next];
            next += 1;
            mapping.push(Interval::new(a, first, last), u, rng.gen_range(0..platform.procs[u].modes()));
            first = last + 1;
        }
    }
    Some(mapping)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. (3) ≤ Eq. (4): overlap never slower than no-overlap; latency is
    /// identical in both models.
    #[test]
    fn overlap_dominates_no_overlap(seed in 0u64..10_000) {
        let apps = random_apps(&AppGenConfig { apps: 2, stages: (1, 5), ..Default::default() }, seed);
        let pf = random_comm_homogeneous(
            &PlatformGenConfig { procs: 8, modes: (1, 3), ..Default::default() }, seed ^ 0xabc);
        if let Some(m) = random_interval_mapping(&apps, &pf, seed ^ 0xdef) {
            let ev = Evaluator::new(&apps, &pf);
            prop_assert!(ev.period(&m, CommModel::Overlap) <= ev.period(&m, CommModel::NoOverlap) + 1e-9);
            // Latency is defined independently of the model (Eq. 5).
            prop_assert_eq!(ev.latency(&m), ev.latency(&m));
        }
    }

    /// Latency is at least the period contribution of any single data set:
    /// L ≥ T under the overlap model for any single-application chain.
    #[test]
    fn latency_at_least_cycle_time(seed in 0u64..10_000) {
        let apps = random_apps(&AppGenConfig { apps: 1, stages: (1, 5), ..Default::default() }, seed);
        let pf = random_comm_homogeneous(
            &PlatformGenConfig { procs: 6, modes: (1, 2), ..Default::default() }, seed ^ 0x123);
        if let Some(m) = random_interval_mapping(&apps, &pf, seed ^ 0x456) {
            let ev = Evaluator::new(&apps, &pf);
            prop_assert!(ev.latency(&m) >= ev.period(&m, CommModel::Overlap) - 1e-9);
        }
    }

    /// Scaling all works and data sizes by c > 0 scales period and latency
    /// by c and leaves energy unchanged.
    #[test]
    fn objective_scaling_law(seed in 0u64..10_000, c in 1u32..50) {
        let c = c as f64 / 7.0;
        let apps = random_apps(&AppGenConfig { apps: 2, stages: (1, 4), ..Default::default() }, seed);
        let pf = random_comm_homogeneous(
            &PlatformGenConfig { procs: 7, modes: (1, 3), ..Default::default() }, seed ^ 0x99);
        let mut scaled = apps.clone();
        for app in &mut scaled.apps {
            let stages: Vec<_> = app.stages.iter()
                .map(|st| concurrent_pipelines::model::application::Stage::new(st.work * c, st.output * c))
                .collect();
            *app = concurrent_pipelines::model::application::Application::new(app.input * c, stages, app.weight).unwrap();
        }
        if let Some(m) = random_interval_mapping(&apps, &pf, seed ^ 0x55) {
            let ev = Evaluator::new(&apps, &pf);
            let evs = Evaluator::new(&scaled, &pf);
            for model in CommModel::ALL {
                let t = ev.period(&m, model);
                let ts = evs.period(&m, model);
                prop_assert!((ts - c * t).abs() < 1e-6 * (1.0 + ts));
            }
            prop_assert!((evs.latency(&m) - c * ev.latency(&m)).abs() < 1e-6);
            prop_assert_eq!(evs.energy(&m), ev.energy(&m));
        }
    }

    /// DP period table is non-increasing in the processor count and is a
    /// lower bound on any random mapping's period.
    #[test]
    fn period_table_bounds_random_mappings(seed in 0u64..10_000) {
        let apps = random_apps(&AppGenConfig { apps: 1, stages: (2, 5), ..Default::default() }, seed);
        let pf = random_fully_homogeneous(
            &PlatformGenConfig { procs: 5, modes: (1, 2), ..Default::default() }, seed ^ 0x31);
        let speeds = pf.procs[0].speeds().to_vec();
        let b = match &pf.links {
            concurrent_pipelines::model::platform::Links::Uniform(b) => *b,
            _ => unreachable!(),
        };
        let ctx = HomCtx::new(&apps.apps[0], &speeds, b, CommModel::Overlap);
        let table = period_table(&ctx, pf.p());
        for w in table.best.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-9);
        }
        if let Some(m) = random_interval_mapping(&apps, &pf, seed ^ 0x77) {
            // Any mapping at top speeds is no better than the DP optimum.
            let fast = m.at_max_speed(&pf);
            let ev = Evaluator::new(&apps, &pf);
            prop_assert!(ev.period(&fast, CommModel::Overlap) >= table.best[pf.p() - 1] - 1e-9);
        }
    }

    /// Loosening the period bound never increases the DP's optimal latency.
    #[test]
    fn latency_monotone_in_period_bound(seed in 0u64..10_000) {
        let apps = random_apps(&AppGenConfig { apps: 1, stages: (2, 5), ..Default::default() }, seed);
        let pf = random_fully_homogeneous(
            &PlatformGenConfig { procs: 4, modes: (1, 1), ..Default::default() }, seed ^ 0x13);
        let speeds = pf.procs[0].speeds().to_vec();
        let ctx = HomCtx::new(&apps.apps[0], &speeds, 1.0, CommModel::Overlap);
        let mut last = f64::INFINITY;
        for tb in [2.0, 4.0, 8.0, 16.0, 1e9] {
            let l = latency_under_period(&ctx, tb, 4).best[3];
            prop_assert!(l <= last + 1e-9, "bound {} gave latency {} after {}", tb, l, last);
            last = l;
        }
    }

    /// Adding processors to the platform never worsens the optimal period
    /// (Theorem 3 solver).
    #[test]
    fn more_processors_never_hurt_period(seed in 0u64..5_000) {
        let apps = random_apps(&AppGenConfig { apps: 2, stages: (1, 4), ..Default::default() }, seed);
        let pf_small = random_fully_homogeneous(
            &PlatformGenConfig { procs: 3, modes: (1, 2), ..Default::default() }, seed ^ 0x5);
        let mut procs = pf_small.procs.clone();
        procs.push(procs[0].clone());
        procs.push(procs[0].clone());
        let pf_big = Platform::new(procs, pf_small.links.clone()).unwrap();
        let small = minimize_global_period(&apps, &pf_small, CommModel::Overlap);
        let big = minimize_global_period(&apps, &pf_big, CommModel::Overlap);
        if let (Some(s), Some(b)) = (small, big) {
            prop_assert!(b.objective <= s.objective + 1e-9);
        }
    }

    /// Tightening the per-application period bounds never reduces the
    /// minimum energy (Theorem 18/21 DP).
    #[test]
    fn energy_monotone_in_period_bounds(seed in 0u64..5_000) {
        let apps = random_apps(&AppGenConfig { apps: 2, stages: (1, 3), ..Default::default() }, seed);
        let pf = random_fully_homogeneous(
            &PlatformGenConfig { procs: 4, modes: (2, 3), ..Default::default() }, seed ^ 0x6);
        let mut last = 0.0f64;
        for tb in [1e9, 20.0, 10.0, 5.0, 2.0] {
            let bounds = vec![tb; apps.a()];
            match min_energy_interval_fully_hom(&apps, &pf, CommModel::Overlap, &bounds) {
                Some(sol) => {
                    prop_assert!(sol.objective >= last - 1e-9);
                    last = sol.objective;
                }
                None => last = f64::INFINITY,
            }
        }
    }

    /// The Theorem 1 one-to-one solver returns mappings whose claimed
    /// objective matches re-evaluation, and that are genuinely one-to-one.
    #[test]
    fn theorem1_output_wellformed(seed in 0u64..5_000) {
        let apps = random_apps(&AppGenConfig { apps: 2, stages: (1, 3), ..Default::default() }, seed);
        let n = apps.total_stages();
        let pf = random_comm_homogeneous(
            &PlatformGenConfig { procs: n + 2, modes: (1, 3), ..Default::default() }, seed ^ 0x8);
        if let Some(sol) = min_period_one_to_one_comm_hom(&apps, &pf, CommModel::Overlap) {
            prop_assert!(sol.mapping.is_one_to_one());
            sol.mapping.validate(&apps, &pf).unwrap();
            let ev = Evaluator::new(&apps, &pf);
            prop_assert!((ev.period(&sol.mapping, CommModel::Overlap) - sol.objective).abs() < 1e-9);
        }
    }

    /// Random mappings validate; random *corruptions* of them fail
    /// validation.
    #[test]
    fn validation_catches_corruption(seed in 0u64..10_000) {
        let apps = random_apps(&AppGenConfig { apps: 2, stages: (2, 4), ..Default::default() }, seed);
        let pf = random_comm_homogeneous(
            &PlatformGenConfig { procs: 8, modes: (1, 2), ..Default::default() }, seed ^ 0x3);
        if let Some(m) = random_interval_mapping(&apps, &pf, seed ^ 0x9) {
            prop_assert!(m.validate(&apps, &pf).is_ok());
            // Corruption 1: duplicate a processor.
            if m.assignments.len() >= 2 {
                let mut bad = m.clone();
                bad.assignments[0].proc = bad.assignments[1].proc;
                prop_assert!(bad.validate(&apps, &pf).is_err());
            }
            // Corruption 2: drop an assignment.
            let mut bad = m.clone();
            bad.assignments.pop();
            prop_assert!(bad.validate(&apps, &pf).is_err());
        }
    }
}
