//! Router/engine dispatch overhead: the typed front door
//! (`ProblemSpec → router → SolveOutcome`) and the batch engine must cost
//! (nearly) nothing over calling the solvers directly.
//!
//! * `direct_single` vs `routed_single` — one Theorem 18/21 energy solve,
//!   direct entry point vs `cpo_core::route`;
//! * `direct_batch64` vs `engine_batch64_seq` — 64 mixed specs (energy
//!   ladder + latency-under-period + period + an infeasible tail) solved
//!   by a sequential loop of direct calls vs `cpo_engine` with one
//!   worker and the cache off (the acceptance gate: < 10% overhead);
//! * `engine_batch64_par` — the same batch with 4 workers *requested*
//!   (`with_threads(4)`, same config as the PR 4 baseline row, cache
//!   on): the adaptive cutoff sees ~2×10⁵ estimated work units (far
//!   below `DEFAULT_PARALLEL_CUTOFF`) and keeps the batch on the
//!   calling thread, so the `par ≤ seq` gate validates that light
//!   batches never pay thread spawn (the row's headroom also benefits
//!   from the 16 duplicate Period specs hitting the cache — kept
//!   config-identical to BENCH_PR4.json for comparability);
//! * `engine_batch64_forced_par` — cutoff disabled *and* cache off: the
//!   isolated true 4-worker fan-out including its spawn/merge overhead,
//!   kept measured (informational) so a regression in the threaded path
//!   itself cannot hide behind the cutoff or the cache;
//! * `engine_batch64_cached` — the same batch with the memo cache primed
//!   (the repeated-spec fast path over the 128-bit structural keys).

use criterion::{criterion_group, criterion_main, Criterion};
use cpo_bench::{fully_hom_instance, workable_period_bounds};
use cpo_core::bi::period_energy::min_energy_interval_fully_hom;
use cpo_core::bi::period_latency::min_latency_under_period_fully_hom;
use cpo_core::mono::period_interval::minimize_global_period;
use cpo_core::route;
use cpo_engine::{BatchItem, Engine, EngineConfig};
use cpo_model::prelude::*;
use std::hint::black_box;

/// The 64-spec mixed batch and the equivalent direct-call closures.
fn batch_specs(apps: &AppSet) -> Vec<ProblemSpec> {
    let base = workable_period_bounds(apps, 2.0);
    let mut specs = Vec::with_capacity(64);
    for i in 0..64usize {
        let scale = 0.2 + 0.05 * i as f64; // tight (some infeasible) → loose
        let tb: Vec<f64> = base.iter().map(|b| b * scale).collect();
        let spec = match i % 4 {
            0 | 1 => ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
                .with_period_bounds(tb),
            2 => ProblemSpec::new(Objective::Latency, Strategy::Interval, CommModel::Overlap)
                .with_period_bounds(tb),
            _ => ProblemSpec::new(Objective::Period, Strategy::Interval, CommModel::Overlap),
        };
        specs.push(spec);
    }
    specs
}

/// The same 64 problems through the direct entry points (the baseline the
/// engine is gated against).
fn direct_batch(apps: &AppSet, pf: &Platform, specs: &[ProblemSpec]) -> usize {
    let mut solved = 0usize;
    for spec in specs {
        let found = match spec.objective {
            Objective::Energy => min_energy_interval_fully_hom(
                apps,
                pf,
                CommModel::Overlap,
                spec.constraints.period.as_ref().expect("energy specs carry bounds"),
            )
            .is_some(),
            Objective::Latency => min_latency_under_period_fully_hom(
                apps,
                pf,
                CommModel::Overlap,
                spec.constraints.period.as_ref().expect("latency specs carry bounds"),
            )
            .is_some(),
            _ => minimize_global_period(apps, pf, CommModel::Overlap).is_some(),
        };
        solved += usize::from(found);
    }
    solved
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("router_dispatch");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(15);

    let (apps, pf) = fully_hom_instance(2, 8, 8, (3, 3));
    let tb = workable_period_bounds(&apps, 2.0);
    let single = ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
        .with_period_bounds(tb.clone());

    g.bench_function("direct_single", |b| {
        b.iter(|| min_energy_interval_fully_hom(black_box(&apps), &pf, CommModel::Overlap, &tb))
    });
    g.bench_function("routed_single", |b| {
        b.iter(|| route(black_box(&apps), &pf, &single))
    });

    let specs = batch_specs(&apps);
    let items: Vec<BatchItem<'_>> =
        specs.iter().map(|s| BatchItem::new(&apps, &pf, s)).collect();

    g.bench_function("direct_batch64", |b| {
        b.iter(|| direct_batch(black_box(&apps), &pf, &specs))
    });
    g.bench_function("engine_batch64_seq", |b| {
        b.iter(|| {
            let engine = Engine::new(EngineConfig::sequential());
            engine.solve_batch(black_box(&items)).len()
        })
    });
    g.bench_function("engine_batch64_par", |b| {
        b.iter(|| {
            let engine = Engine::new(EngineConfig::with_threads(4));
            engine.solve_batch(black_box(&items)).len()
        })
    });
    g.bench_function("engine_batch64_forced_par", |b| {
        b.iter(|| {
            let engine =
                Engine::new(EngineConfig { threads: 4, cache: false, min_parallel_cost: 0, ..EngineConfig::default() });
            engine.solve_batch(black_box(&items)).len()
        })
    });
    // Cache primed once outside the timed loop; the measured iterations
    // are pure cache hits (the repeated-batch serving path).
    let cached = Engine::new(EngineConfig::with_threads(1));
    cached.solve_batch(&items);
    g.bench_function("engine_batch64_cached", |b| {
        b.iter(|| cached.solve_batch(black_box(&items)).len())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
