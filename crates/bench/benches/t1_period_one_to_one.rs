//! Table 1, row "Period / one-to-one": the Theorem 1 binary search + greedy
//! on communication homogeneous platforms, swept over the total stage
//! count N (with p = N + 4 processors). The paper claims
//! O((n_max·A·p)² log(n_max·A·p)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cpo_bench::comm_hom_instance;
use cpo_core::mono::period_one_to_one::min_period_one_to_one_comm_hom;
use cpo_model::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1_period_one_to_one");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(15);
    for n_total in [16usize, 32, 64, 128] {
        let (apps, pf) = comm_hom_instance(4, n_total / 4, n_total + 4, (1, 3));
        for model in CommModel::ALL {
            g.bench_with_input(
                BenchmarkId::new(format!("{model:?}"), n_total),
                &n_total,
                |b, _| {
                    b.iter(|| {
                        min_period_one_to_one_comm_hom(black_box(&apps), &pf, model)
                            .expect("p >= N")
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
