//! Table 1, row "Period / interval": Theorem 3's per-application dynamic
//! program + Algorithm 2 allocation on fully homogeneous platforms, swept
//! over the chain length n (A = 4 applications, p = 16 processors).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cpo_bench::fully_hom_instance;
use cpo_core::mono::period_interval::minimize_global_period;
use cpo_model::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1_period_interval");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(15);
    for n in [8usize, 16, 32, 64] {
        let (apps, pf) = fully_hom_instance(4, n, 16, (1, 2));
        g.bench_with_input(BenchmarkId::new("algorithm2", n), &n, |b, _| {
            b.iter(|| {
                minimize_global_period(black_box(&apps), &pf, CommModel::Overlap)
                    .expect("p >= A")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
