//! SIM — simulator throughput: data sets processed per second over
//! growing horizons and chain lengths, on the wavefront core that now
//! backs `simulate` (heap-free rolling recurrence, certified steady-state
//! fast-forward), plus a direct wavefront-vs-DAG shootout
//! (`sim_wavefront_vs_dag/*`) against the retained event-engine oracle.
//!
//! The `datasets/1000000` row demonstrates the scale the DAG engine could
//! not reach (it materializes one heap event per data set × operation);
//! `fast_forward_1M_dyadic` shows the certified closed-form path
//! collapsing a million-data-set run to its warm-up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cpo_bench::fully_hom_instance;
use cpo_model::prelude::*;
use cpo_simulator::{simulate, simulate_reference_dag, simulate_wavefront};
use rand::prelude::*;
use std::hint::black_box;

fn make_mapping(apps: &AppSet, platform: &Platform, seed: u64) -> Mapping {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut procs: Vec<usize> = (0..platform.p()).collect();
    procs.shuffle(&mut rng);
    let mut mapping = Mapping::new();
    let mut next = 0usize;
    for (a, app) in apps.apps.iter().enumerate() {
        let mut first = 0usize;
        while first < app.n() {
            let last = rng.gen_range(first..app.n());
            let u = procs[next];
            next += 1;
            mapping.push(Interval::new(a, first, last), u, 0);
            first = last + 1;
        }
    }
    mapping
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(15);
    for datasets in [64usize, 256, 1024, 16384, 1_000_000] {
        let (apps, pf) = fully_hom_instance(2, 6, 14, (1, 1));
        let mapping = make_mapping(&apps, &pf, 5);
        g.throughput(Throughput::Elements(datasets as u64));
        g.bench_with_input(BenchmarkId::new("datasets", datasets), &datasets, |b, &d| {
            b.iter(|| simulate(black_box(&apps), &pf, &mapping, CommModel::Overlap, d))
        });
    }
    for n in [8usize, 32, 128] {
        let (apps, pf) = fully_hom_instance(1, n, n + 1, (1, 1));
        let mapping = make_mapping(&apps, &pf, 6);
        g.bench_with_input(BenchmarkId::new("chain_length", n), &n, |b, _| {
            b.iter(|| simulate(black_box(&apps), &pf, &mapping, CommModel::NoOverlap, 128))
        });
    }
    g.finish();

    // Same instance, both cores: the wavefront must beat the event engine
    // by an order of magnitude while producing bit-identical reports.
    let mut g = c.benchmark_group("sim_wavefront_vs_dag");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(15);
    let (apps, pf) = fully_hom_instance(2, 6, 14, (1, 1));
    let mapping = make_mapping(&apps, &pf, 5);
    let datasets = 1024usize;
    g.bench_with_input(BenchmarkId::new("wavefront", datasets), &datasets, |b, &d| {
        b.iter(|| {
            simulate_wavefront(
                black_box(&apps),
                &pf,
                &mapping,
                CommModel::Overlap,
                d,
                usize::MAX,
                true,
            )
        })
    });
    g.bench_with_input(BenchmarkId::new("dag", datasets), &datasets, |b, &d| {
        b.iter(|| {
            simulate_reference_dag(black_box(&apps), &pf, &mapping, CommModel::Overlap, d, usize::MAX)
        })
    });
    // Dyadic instance: the lattice certificate fires after a short
    // warm-up and a million data sets collapse to closed form.
    let (dyadic_apps, dyadic_pf) = cpo_model::generator::section2_example();
    let dyadic_mapping = Mapping::new()
        .with(Interval::new(0, 0, 2), 2, 1)
        .with(Interval::new(1, 0, 1), 1, 1)
        .with(Interval::new(1, 2, 3), 0, 1);
    g.bench_function("fast_forward_1M_dyadic", |b| {
        b.iter(|| {
            simulate(
                black_box(&dyadic_apps),
                &dyadic_pf,
                &dyadic_mapping,
                CommModel::Overlap,
                1_000_000,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
