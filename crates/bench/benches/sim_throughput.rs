//! SIM — discrete-event simulator throughput: operations processed per
//! second over growing horizons and chain lengths; validates that the
//! simulator itself scales linearly in (datasets × stages).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cpo_bench::fully_hom_instance;
use cpo_model::prelude::*;
use cpo_simulator::simulate;
use rand::prelude::*;
use std::hint::black_box;

fn make_mapping(apps: &AppSet, platform: &Platform, seed: u64) -> Mapping {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut procs: Vec<usize> = (0..platform.p()).collect();
    procs.shuffle(&mut rng);
    let mut mapping = Mapping::new();
    let mut next = 0usize;
    for (a, app) in apps.apps.iter().enumerate() {
        let mut first = 0usize;
        while first < app.n() {
            let last = rng.gen_range(first..app.n());
            let u = procs[next];
            next += 1;
            mapping.push(Interval::new(a, first, last), u, 0);
            first = last + 1;
        }
    }
    mapping
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(15);
    for datasets in [64usize, 256, 1024] {
        let (apps, pf) = fully_hom_instance(2, 6, 14, (1, 1));
        let mapping = make_mapping(&apps, &pf, 5);
        g.throughput(Throughput::Elements(datasets as u64));
        g.bench_with_input(BenchmarkId::new("datasets", datasets), &datasets, |b, &d| {
            b.iter(|| simulate(black_box(&apps), &pf, &mapping, CommModel::Overlap, d))
        });
    }
    for n in [8usize, 32, 128] {
        let (apps, pf) = fully_hom_instance(1, n, n + 1, (1, 1));
        let mapping = make_mapping(&apps, &pf, 6);
        g.bench_with_input(BenchmarkId::new("chain_length", n), &n, |b, _| {
            b.iter(|| simulate(black_box(&apps), &pf, &mapping, CommModel::NoOverlap, 128))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
