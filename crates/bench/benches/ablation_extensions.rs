//! Ablation benches for the Section 6 extensions (DESIGN.md calls these
//! out): replication DP scaling, the cost of exact sharing vs the LPT
//! heuristic, and bounded-buffer simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cpo_bench::fully_hom_instance;
use cpo_core::dp::HomCtx;
use cpo_core::replication::{min_energy_replicated_under_period, replicated_period_table};
use cpo_core::sharing::{exact_min_period_general, lpt_general_period};
use cpo_model::generator::{random_apps, AppGenConfig};
use cpo_model::prelude::*;
use cpo_simulator::simulate_with_buffers;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_extensions");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(15);

    // Replicated period DP: O(n² p²) scaling.
    for n in [8usize, 16, 32] {
        let (apps, pf) = fully_hom_instance(1, n, 12, (1, 2));
        let speeds = pf.procs[0].speeds().to_vec();
        g.bench_with_input(BenchmarkId::new("replicated_period_dp", n), &n, |b, _| {
            let ctx = HomCtx::new(&apps.apps[0], &speeds, 1.0, CommModel::Overlap);
            b.iter(|| replicated_period_table(black_box(&ctx), 12))
        });
    }

    // Replication-aware energy DP.
    for n in [8usize, 16, 32] {
        let (apps, pf) = fully_hom_instance(2, n, 8, (3, 3));
        let tb: Vec<f64> = apps.apps.iter().map(|a| a.total_work() / 4.0 + 2.0).collect();
        g.bench_with_input(BenchmarkId::new("replicated_energy_dp", n), &n, |b, _| {
            b.iter(|| {
                min_energy_replicated_under_period(
                    black_box(&apps),
                    &pf,
                    CommModel::Overlap,
                    &tb,
                )
            })
        });
    }

    // Sharing: exact (exponential) vs LPT (polynomial) on tiny instances.
    let cfg = AppGenConfig { apps: 2, stages: (2, 2), ..Default::default() };
    let apps = random_apps(&cfg, 3);
    let pf = Platform::fully_homogeneous(2, vec![2.0], 1.0).unwrap();
    g.bench_function("sharing_exact_tiny", |b| {
        b.iter(|| exact_min_period_general(black_box(&apps), &pf, CommModel::Overlap))
    });
    g.bench_function("sharing_lpt_tiny", |b| {
        b.iter(|| lpt_general_period(black_box(&apps), &pf, CommModel::Overlap))
    });

    // Bounded-buffer simulation sweep.
    let app = cpo_model::application::Application::from_pairs(0.0, &[(1.0, 4.0), (4.0, 0.0)]);
    let bapps = AppSet::single(app);
    let bpf = Platform::fully_homogeneous(2, vec![1.0], 1.0).unwrap();
    let mapping = Mapping::new()
        .with(Interval::new(0, 0, 0), 0, 0)
        .with(Interval::new(0, 1, 1), 1, 0);
    for cap in [1usize, 4, usize::MAX] {
        let label = if cap == usize::MAX { "inf".to_string() } else { cap.to_string() };
        g.bench_with_input(BenchmarkId::new("sim_buffer_capacity", label), &cap, |b, &cap| {
            b.iter(|| {
                simulate_with_buffers(
                    black_box(&bapps),
                    &bpf,
                    &mapping,
                    CommModel::Overlap,
                    128,
                    cap,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
