//! Serve-path throughput: requests/second through the full
//! [`cpo_serve::Server`] stack — admission, per-tenant governor,
//! bounded queue, worker dispatch with scratch reuse, memo cache, and
//! the reply sink — measured as one drain of a prebuilt request batch
//! per iteration (server start/stop included: that is what the drill
//! and `--once` mode pay).
//!
//! * `duplicate_heavy_512` — 512 requests cycling 8 distinct digests:
//!   the memo-cache fast path that dominates a steady-state service;
//! * `mixed_256` — 3/4 duplicate-heavy, 1/4 adversarial (infeasible
//!   bounds, malformed bound counts, unsupported combinations): the
//!   typed-rejection paths must not drag the solve path down;
//! * `adversarial_mix_256` — the all-adversarial worst case: every
//!   request walks the router's unsupported/infeasible returns;
//! * `*_p50` / `*_p99` — per-request latency percentiles reported by the
//!   server's own log₂-bucket histogram after a dedicated mixed run,
//!   recorded as direct-value rows so `bench_diff` gates tail latency,
//!   not just aggregate throughput.

use cpo_model::prelude::*;
use cpo_model::spec::Strategy;
use cpo_serve::{ServeConfig, Server, ServerHooks};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn duplicate_spec(slot: u64) -> ProblemSpec {
    let tb = 0.25 * (slot % 8 + 1) as f64;
    ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
        .with_period_bounds(vec![tb, tb])
}

fn adversarial_spec(slot: u64) -> ProblemSpec {
    match slot % 3 {
        0 => ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
            .with_period_bounds(vec![1e-6, 1e-6]),
        1 => ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::NoOverlap)
            .with_period_bounds(vec![2.0]),
        _ => ProblemSpec::new(Objective::Energy, Strategy::General, CommModel::Overlap)
            .with_period_bounds(vec![2.0, 2.0]),
    }
}

/// `n` requests with the given adversarial fraction (in quarters).
fn requests(n: usize, adversarial_quarters: u64) -> Vec<SolveRequest> {
    let (apps, _) = cpo_model::generator::section2_example();
    let platform = Platform::fully_homogeneous(3, vec![1.0, 3.0, 6.0, 8.0], 1.0).unwrap();
    (0..n)
        .map(|i| {
            let r = splitmix64(0x5e4e ^ (i as u64).wrapping_mul(0x2545f4914f6cdd1d));
            let spec = if r % 4 < adversarial_quarters {
                adversarial_spec(r >> 2)
            } else {
                duplicate_spec(r >> 2)
            };
            SolveRequest::new(format!("bench #{i}"), apps.clone(), platform.clone(), spec)
                .with_id(format!("b-{i}"))
                .with_tenant(format!("t{}", i % 4))
        })
        .collect()
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        threads: 4,
        queue_capacity: 1024,
        engine: cpo_engine::EngineConfig { threads: 1, ..Default::default() },
        ..Default::default()
    }
}

/// Start a server, push the whole batch, drain; panics if a reply went
/// missing (the bench must never time a silently-dropping server).
fn drain_batch(reqs: &[SolveRequest]) -> cpo_serve::StatsSnapshot {
    let replies = Arc::new(AtomicU64::new(0));
    let sink = {
        let replies = replies.clone();
        Arc::new(move |_reply: &cpo_serve::ServeReply| {
            replies.fetch_add(1, Ordering::Relaxed);
        })
    };
    let server = Server::start(serve_cfg(), sink, ServerHooks::default());
    for req in reqs {
        server.submit(req.clone());
    }
    let snap = server.drain();
    assert_eq!(
        replies.load(Ordering::Relaxed),
        reqs.len() as u64,
        "serve bench dropped replies"
    );
    snap
}

fn bench_serve_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(10));

    let duplicate = requests(512, 0);
    group.throughput(Throughput::Elements(duplicate.len() as u64));
    group.bench_function("duplicate_heavy_512", |b| {
        b.iter(|| drain_batch(&duplicate));
    });

    let mixed = requests(256, 1);
    group.throughput(Throughput::Elements(mixed.len() as u64));
    group.bench_function("mixed_256", |b| {
        b.iter(|| drain_batch(&mixed));
    });

    let adversarial = requests(256, 4);
    group.throughput(Throughput::Elements(adversarial.len() as u64));
    group.bench_function("adversarial_mix_256", |b| {
        b.iter(|| drain_batch(&adversarial));
    });
    group.finish();

    // Tail latency from the server's own histogram, over one dedicated
    // mixed run (not averaged across timing iterations: the gate tracks
    // what a single drill run reports).
    let snap = drain_batch(&mixed);
    c.report_value_ns("serve_latency/mixed_256_p50", (snap.p50_ms * 1e6) as u128);
    c.report_value_ns("serve_latency/mixed_256_p99", (snap.p99_ms * 1e6) as u128);
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
