//! Table 2, rows "Period/Energy": Theorem 19 (Hungarian matching,
//! one-to-one, comm-hom) over the stage count N and Theorems 18/21
//! (interval DP + convolution, fully-hom) over the chain length n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cpo_bench::{comm_hom_instance, fully_hom_instance, workable_period_bounds};
use cpo_core::bi::period_energy::{
    min_energy_interval_fully_hom, min_energy_one_to_one_matching,
};
use cpo_model::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2_period_energy");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(15);
    for n_total in [16usize, 32, 64] {
        let (apps, pf) = comm_hom_instance(4, n_total / 4, n_total, (2, 3));
        let tb = workable_period_bounds(&apps, 2.0);
        g.bench_with_input(BenchmarkId::new("matching_thm19", n_total), &n_total, |b, _| {
            b.iter(|| {
                min_energy_one_to_one_matching(black_box(&apps), &pf, CommModel::Overlap, &tb)
            })
        });
    }
    for n in [8usize, 16, 32] {
        let (apps, pf) = fully_hom_instance(2, n, 8, (3, 3));
        let tb = workable_period_bounds(&apps, 4.0);
        g.bench_with_input(BenchmarkId::new("interval_dp_thm18_21", n), &n, |b, _| {
            b.iter(|| {
                min_energy_interval_fully_hom(black_box(&apps), &pf, CommModel::Overlap, &tb)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
