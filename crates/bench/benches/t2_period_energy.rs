//! Table 2, rows "Period/Energy": Theorem 19 (Hungarian matching,
//! one-to-one, comm-hom) over the stage count N and Theorems 18/21
//! (interval DP + convolution, fully-hom) over the chain length n — plus
//! the full period/energy **front extraction**, naive full-candidate sweep
//! vs the pruned sweep engine (the before/after pair recorded in
//! `BENCH_PR2.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cpo_bench::{comm_hom_instance, fully_hom_instance, workable_period_bounds};
use cpo_core::bi::period_energy::{
    min_energy_interval_fully_hom, min_energy_one_to_one_matching,
};
use cpo_core::pareto::{period_candidates, period_energy_front, ParetoPoint};
use cpo_core::solution::MappingKind;
use cpo_model::num;
use cpo_model::prelude::*;
use std::hint::black_box;

/// The pre-sweep-engine front extraction (the "before" of `BENCH_PR2.json`):
/// one full per-candidate solve — rebuilding every cost table from scratch,
/// exactly like the one-shot Theorem 18/21 and 19 entry points — for each
/// of the `O(A·p·n²·modes)` candidate periods, then the dominance filter.
fn naive_front(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    kind: MappingKind,
) -> Vec<ParetoPoint> {
    let candidates = period_candidates(apps, platform, model, kind);
    let mut points: Vec<ParetoPoint> = Vec::new();
    for t in candidates {
        let bounds: Vec<f64> = apps.apps.iter().map(|a| t / a.weight).collect();
        let sol = match kind {
            MappingKind::Interval => min_energy_interval_fully_hom(apps, platform, model, &bounds),
            MappingKind::OneToOne => {
                min_energy_one_to_one_matching(apps, platform, model, &bounds)
            }
        };
        if let Some(sol) = sol {
            let achieved_t = Evaluator::new(apps, platform).period(&sol.mapping, model);
            let energy = sol.objective;
            if points.last().is_none_or(|last| num::lt(energy, last.energy)) {
                points.push(ParetoPoint { period: achieved_t, energy, solution: sol });
            }
        }
    }
    points
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2_period_energy");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(15);
    for n_total in [16usize, 32, 64] {
        let (apps, pf) = comm_hom_instance(4, n_total / 4, n_total, (2, 3));
        let tb = workable_period_bounds(&apps, 2.0);
        g.bench_with_input(BenchmarkId::new("matching_thm19", n_total), &n_total, |b, _| {
            b.iter(|| {
                min_energy_one_to_one_matching(black_box(&apps), &pf, CommModel::Overlap, &tb)
            })
        });
    }
    // n = 128/256 were previously too slow to bench (quadratic core plus a
    // per-solve allocation storm); the run-decomposed flat-arena DP scales
    // near-linearly, so the ladder now extends to them.
    for n in [8usize, 16, 32, 128, 256] {
        let (apps, pf) = fully_hom_instance(2, n, 8, (3, 3));
        let tb = workable_period_bounds(&apps, 4.0);
        g.bench_with_input(BenchmarkId::new("interval_dp_thm18_21", n), &n, |b, _| {
            b.iter(|| {
                min_energy_interval_fully_hom(black_box(&apps), &pf, CommModel::Overlap, &tb)
            })
        });
    }

    // Front extraction at the acceptance point: A=2 applications of n=64
    // stages, p=8 processors, 4 DVFS modes. "naive" is the pre-engine
    // full-candidate sweep (per-candidate table rebuilds); "sweep" is the
    // pruned + parallel engine with shared cost tables. Both produce the
    // identical front (see the sweep_equivalence property tests).
    let (apps, pf) = fully_hom_instance(2, 64, 8, (4, 4));
    g.bench_function("front_interval_naive/n64", |b| {
        b.iter(|| {
            naive_front(black_box(&apps), &pf, CommModel::Overlap, MappingKind::Interval)
        })
    });
    g.bench_function("front_interval_sweep/n64", |b| {
        b.iter(|| {
            period_energy_front(black_box(&apps), &pf, CommModel::Overlap, MappingKind::Interval)
        })
    });

    // Scaling rows previously out of reach: full front extraction at n=128
    // and n=256 through the sweep engine only (the naive baseline would
    // take minutes per iteration there).
    for n in [128usize, 256] {
        let (apps, pf) = fully_hom_instance(2, n, 8, (4, 4));
        g.bench_with_input(BenchmarkId::new("front_interval_sweep_scale", n), &n, |b, _| {
            b.iter(|| {
                period_energy_front(
                    black_box(&apps),
                    &pf,
                    CommModel::Overlap,
                    MappingKind::Interval,
                )
            })
        });
    }

    // One-to-one counterpart (Theorem 19 matching per candidate).
    let (apps, pf) = comm_hom_instance(2, 8, 16, (2, 2));
    g.bench_function("front_matching_naive/n16", |b| {
        b.iter(|| {
            naive_front(black_box(&apps), &pf, CommModel::Overlap, MappingKind::OneToOne)
        })
    });
    g.bench_function("front_matching_sweep/n16", |b| {
        b.iter(|| {
            period_energy_front(black_box(&apps), &pf, CommModel::Overlap, MappingKind::OneToOne)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
