//! Table 2, row "Period/Latency": the Theorem 15/16 dynamic program
//! (latency under period bounds) and its binary-search dual, fully
//! homogeneous platforms, swept over the chain length n — plus the full
//! period/latency front through the pruned sweep engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cpo_bench::fully_hom_instance;
use cpo_core::bi::period_latency::{
    min_latency_under_period_fully_hom, min_period_under_latency_fully_hom,
};
use cpo_core::mono::period_interval::minimize_global_period;
use cpo_core::pareto::period_latency_front;
use cpo_model::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2_period_latency");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(15);
    for n in [8usize, 16, 32] {
        let (apps, pf) = fully_hom_instance(2, n, 8, (1, 1));
        let base = minimize_global_period(&apps, &pf, CommModel::Overlap)
            .expect("p >= A")
            .objective;
        let tb = vec![base * 1.5; apps.a()];
        g.bench_with_input(BenchmarkId::new("latency_under_period", n), &n, |b, _| {
            b.iter(|| {
                min_latency_under_period_fully_hom(
                    black_box(&apps),
                    &pf,
                    CommModel::Overlap,
                    &tb,
                )
            })
        });
        let lb = vec![1e6; apps.a()];
        g.bench_with_input(BenchmarkId::new("period_under_latency", n), &n, |b, _| {
            b.iter(|| {
                min_period_under_latency_fully_hom(
                    black_box(&apps),
                    &pf,
                    CommModel::Overlap,
                    &lb,
                )
            })
        });
    }

    // Full period/latency front: per-candidate one-shot solves (naive) vs
    // the pruned sweep engine on shared tables. Same top-mode candidate
    // list for both.
    let (apps, pf) = fully_hom_instance(2, 32, 8, (2, 2));
    let tables = cpo_core::bi::interval_cost_tables(&apps, &pf, CommModel::Overlap)
        .expect("fully homogeneous instance");
    let mut buf = Vec::new();
    for t in &tables {
        t.push_weighted_candidates(t.weight, true, &mut buf);
    }
    let cands = cpo_model::num::sorted_candidates(buf);
    g.bench_function("front_naive/n32", |b| {
        b.iter(|| {
            // Naive baseline: one full solver call (table rebuilds and
            // all) per candidate period, then the dominance filter.
            let mut kept = 0usize;
            let mut last = f64::INFINITY;
            for &t in &cands {
                let bounds: Vec<f64> = apps.apps.iter().map(|a| t / a.weight).collect();
                if let Some(sol) = min_latency_under_period_fully_hom(
                    black_box(&apps),
                    &pf,
                    CommModel::Overlap,
                    &bounds,
                ) {
                    if sol.objective < last {
                        last = sol.objective;
                        kept += 1;
                    }
                }
            }
            kept
        })
    });
    g.bench_function("front_sweep/n32", |b| {
        b.iter(|| period_latency_front(black_box(&apps), &pf, CommModel::Overlap))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
