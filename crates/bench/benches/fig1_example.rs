//! FIG1 — the Section 2 motivating example: time every solver involved in
//! reproducing the paper's numbers (exhaustive period, greedy latency,
//! branch-and-bound compromise) plus the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use cpo_core::exact::{exact_optimize, ExactConfig, SpeedPolicy};
use cpo_core::mono::latency::min_latency_interval_comm_hom;
use cpo_core::tri::multimodal::branch_and_bound_tri;
use cpo_core::{Criterion as Crit, MappingKind};
use cpo_model::generator::section2_example;
use cpo_model::prelude::*;
use cpo_simulator::simulate;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (apps, pf) = section2_example();
    let mut g = c.benchmark_group("fig1");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(15);

    g.bench_function("min_period_exhaustive", |b| {
        let cfg = ExactConfig {
            kind: MappingKind::Interval,
            model: CommModel::Overlap,
            speed: SpeedPolicy::MaxOnly,
        };
        b.iter(|| {
            exact_optimize(black_box(&apps), &pf, cfg, Crit::Period, &Thresholds::none())
        })
    });

    g.bench_function("min_latency_greedy_thm12", |b| {
        b.iter(|| min_latency_interval_comm_hom(black_box(&apps), &pf))
    });

    g.bench_function("energy_under_period2_bnb", |b| {
        b.iter(|| {
            branch_and_bound_tri(
                black_box(&apps),
                &pf,
                CommModel::Overlap,
                MappingKind::Interval,
                &[2.0, 2.0],
                &[f64::INFINITY, f64::INFINITY],
            )
        })
    });

    let mapping = Mapping::new()
        .with(Interval::new(0, 0, 2), 2, 1)
        .with(Interval::new(1, 0, 1), 1, 1)
        .with(Interval::new(1, 2, 3), 0, 1);
    g.bench_function("simulate_64_datasets", |b| {
        b.iter(|| simulate(&apps, &pf, black_box(&mapping), CommModel::Overlap, 64))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
