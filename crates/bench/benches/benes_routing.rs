//! BENES — multistage interconnect overhead: what the `CommTopology`
//! layer costs where it is actually exercised.
//!
//! * `benes_route/*` — latency of the looping algorithm computing a full
//!   rearrangement (switch settings + certificate) for permutations of
//!   growing port counts, and of the round decomposition on an irregular
//!   (non-permutation) flow multiset;
//! * `benes_contention_sim/*` — simulator throughput on a multistage
//!   platform vs its dedicated twin at matched sizes: the fabric pays
//!   one `fabric_rounds` certificate per run plus the per-edge overhead
//!   adds, and must stay in the same performance class (the wavefront
//!   fast path remains eligible — valid plain mappings route in one
//!   round). The hop latency is dyadic (`2^-4`) so the steady-state
//!   fast-forward lattice certificate stays live on the fabric too;
//!   a non-representable latency would silently demote the comparison
//!   to fast-forward-vs-full-run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cpo_bench::fully_hom_instance;
use cpo_matching::BenesNetwork;
use cpo_model::prelude::*;
use cpo_simulator::simulate;
use rand::prelude::*;
use std::hint::black_box;

fn make_mapping(apps: &AppSet, platform: &Platform, seed: u64) -> Mapping {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut procs: Vec<usize> = (0..platform.p()).collect();
    procs.shuffle(&mut rng);
    let mut mapping = Mapping::new();
    let mut next = 0usize;
    for (a, app) in apps.apps.iter().enumerate() {
        let mut first = 0usize;
        while first < app.n() {
            let last = rng.gen_range(first..app.n());
            let u = procs[next];
            next += 1;
            mapping.push(Interval::new(a, first, last), u, 0);
            first = last + 1;
        }
    }
    mapping
}

/// The dedicated platform's multistage twin: same processors, a fabric
/// whose links carry the same uniform bandwidth.
fn fabric_twin(dedicated: &Platform, hop_latency: f64) -> Platform {
    let b = match dedicated.links {
        Links::Uniform(b) => b,
        _ => unreachable!("bench twins use uniform links"),
    };
    Platform::multistage(dedicated.procs.clone(), MultistageNetwork::new(b, hop_latency).unwrap())
        .unwrap()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("benes_route");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(20);
    for ports in [8usize, 64, 256] {
        let net = BenesNetwork::new(ports);
        // Worst-case-ish full permutation: bit-reversal-free rotation so
        // every flow crosses subnetworks.
        let dest: Vec<Option<usize>> =
            (0..ports).map(|u| Some((u + ports / 2 + 1) % ports)).collect();
        g.throughput(Throughput::Elements(ports as u64));
        g.bench_with_input(BenchmarkId::new("permutation", ports), &ports, |b, _| {
            b.iter(|| net.route(black_box(&dest)))
        });
    }
    // Irregular multiset: every flow shares one hot source and one hot
    // sink, forcing the exact edge-coloring round decomposition.
    for flows in [16usize, 128] {
        let net = BenesNetwork::new(256);
        let multiset: Vec<(usize, usize)> =
            (0..flows).map(|i| (i % 8, 255 - (i % 4))).collect();
        g.throughput(Throughput::Elements(flows as u64));
        g.bench_with_input(BenchmarkId::new("rounds_irregular", flows), &flows, |b, _| {
            b.iter(|| net.route_rounds(black_box(&multiset)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("benes_contention_sim");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(15);
    let datasets = 4096usize;
    for (a, n, p) in [(2usize, 6usize, 14usize), (3, 10, 32)] {
        let (apps, dedicated) = fully_hom_instance(a, n, p, (1, 1));
        let fabric = fabric_twin(&dedicated, 0.0625);
        let mapping = make_mapping(&apps, &dedicated, 5);
        g.throughput(Throughput::Elements(datasets as u64));
        g.bench_with_input(
            BenchmarkId::new("dedicated", format!("{a}x{n}s{p}p")),
            &datasets,
            |b, &d| b.iter(|| simulate(black_box(&apps), &dedicated, &mapping, CommModel::Overlap, d)),
        );
        g.bench_with_input(
            BenchmarkId::new("multistage", format!("{a}x{n}s{p}p")),
            &datasets,
            |b, &d| b.iter(|| simulate(black_box(&apps), &fabric, &mapping, CommModel::Overlap, d)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
