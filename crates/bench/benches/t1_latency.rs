//! Table 1, rows "Latency": the Theorem 12 greedy (interval, comm-hom)
//! over the application count A, and the trivial Theorem 8 construction
//! (one-to-one, fully homogeneous).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cpo_bench::{comm_hom_instance, fully_hom_instance};
use cpo_core::mono::latency::{
    min_latency_interval_comm_hom, min_latency_one_to_one_fully_hom,
};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1_latency");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(15);
    for a in [4usize, 8, 16, 32] {
        let (apps, pf) = comm_hom_instance(a, 4, a + 4, (1, 3));
        g.bench_with_input(BenchmarkId::new("interval_thm12", a), &a, |b, _| {
            b.iter(|| min_latency_interval_comm_hom(black_box(&apps), &pf).expect("p >= A"))
        });
    }
    for n_total in [16usize, 64] {
        let (apps, pf) = fully_hom_instance(4, n_total / 4, n_total + 2, (1, 2));
        g.bench_with_input(BenchmarkId::new("one_to_one_thm8", n_total), &n_total, |b, _| {
            b.iter(|| min_latency_one_to_one_fully_hom(black_box(&apps), &pf).expect("p >= N"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
