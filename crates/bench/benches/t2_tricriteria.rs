//! Table 2, row "Period/Latency/Energy": the polynomial uni-modal solver
//! (Theorem 24), the exponential blow-up of the exact branch-and-bound on
//! Theorem 26 gadgets (the NP-hardness signature), and the polynomial
//! heuristics of Section 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cpo_bench::fully_hom_instance;
use cpo_core::heuristics::{local_search, LocalSearchConfig};
use cpo_core::tri::multimodal::branch_and_bound_tri;
use cpo_core::tri::unimodal::min_latency_tri_unimodal;
use cpo_core::MappingKind;
use cpo_model::gadgets::{theorem26_encode, TwoPartition};
use cpo_model::generator::section2_example;
use cpo_model::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2_tricriteria");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(15);

    // Polynomial uni-modal variant (Theorem 24).
    for n in [8usize, 16, 32] {
        let (apps, pf) = fully_hom_instance(2, n, 8, (1, 1));
        let e_per = EnergyModel::default().dynamic(pf.procs[0].max_speed());
        let tb: Vec<f64> = apps.apps.iter().map(|a| a.total_work() + 5.0).collect();
        g.bench_with_input(BenchmarkId::new("unimodal_thm24", n), &n, |b, _| {
            b.iter(|| {
                min_latency_tri_unimodal(
                    black_box(&apps),
                    &pf,
                    CommModel::Overlap,
                    &tb,
                    4.0 * e_per,
                )
            })
        });
    }

    // Exponential exact solver on Theorem 26 gadgets: time vs item count.
    for n in [2usize, 3, 4, 5] {
        let inst = TwoPartition::yes_instance(n, 1);
        let gadget = theorem26_encode(&inst);
        g.bench_with_input(BenchmarkId::new("bnb_gadget_items", n), &n, |b, _| {
            b.iter(|| {
                branch_and_bound_tri(
                    black_box(&gadget.apps),
                    &gadget.platform,
                    CommModel::Overlap,
                    MappingKind::OneToOne,
                    &[gadget.target_period],
                    &[gadget.target_latency],
                )
            })
        });
    }

    // Heuristics on the Section 2 example.
    let (apps, pf) = section2_example();
    g.bench_function("local_search_section2", |b| {
        b.iter(|| {
            local_search(
                black_box(&apps),
                &pf,
                CommModel::Overlap,
                &[2.0, 2.0],
                &[f64::INFINITY, f64::INFINITY],
                &LocalSearchConfig { iterations: 1000, seed: 1, ..Default::default() },
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
