//! Substrate bench: the from-scratch Hungarian algorithm (Theorem 19's
//! engine) and Hopcroft–Karp, swept over problem size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cpo_matching::{hungarian_min_cost, max_bipartite_matching};
use rand::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("matching");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(15);
    for n in [16usize, 32, 64, 128] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let cost: Vec<Vec<f64>> =
            (0..n).map(|_| (0..n + 8).map(|_| rng.gen_range(0.0..100.0)).collect()).collect();
        g.bench_with_input(BenchmarkId::new("hungarian", n), &n, |b, _| {
            b.iter(|| hungarian_min_cost(black_box(&cost)).expect("feasible"))
        });

        let adj: Vec<Vec<usize>> = (0..n)
            .map(|_| (0..n).filter(|_| rng.gen_bool(0.3)).collect())
            .collect();
        g.bench_with_input(BenchmarkId::new("hopcroft_karp", n), &n, |b, _| {
            b.iter(|| max_bipartite_matching(n, n, black_box(&adj)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
