//! Shared fixtures for the bench suite.
//!
//! Every bench target regenerates one table or figure artifact of the
//! paper (see DESIGN.md's per-experiment index); the helpers here build
//! the deterministic instances they sweep over.

use cpo_model::generator::{
    random_apps, random_comm_homogeneous, random_fully_homogeneous, AppGenConfig,
    PlatformGenConfig,
};
use cpo_model::prelude::*;

/// `A` applications of `n` stages each plus a communication homogeneous
/// platform of `p` multi-modal processors, deterministic per `(n, p)`.
pub fn comm_hom_instance(a: usize, n: usize, p: usize, modes: (usize, usize)) -> (AppSet, Platform) {
    let apps = random_apps(&AppGenConfig { apps: a, stages: (n, n), ..Default::default() }, 71);
    let pf = random_comm_homogeneous(
        &PlatformGenConfig { procs: p, modes, ..Default::default() },
        72,
    );
    (apps, pf)
}

/// Fully homogeneous counterpart.
pub fn fully_hom_instance(
    a: usize,
    n: usize,
    p: usize,
    modes: (usize, usize),
) -> (AppSet, Platform) {
    let apps = random_apps(&AppGenConfig { apps: a, stages: (n, n), ..Default::default() }, 73);
    let pf = random_fully_homogeneous(
        &PlatformGenConfig { procs: p, modes, ..Default::default() },
        74,
    );
    (apps, pf)
}

/// Period bounds loose enough to be feasible but tight enough to force
/// real mode/splitting decisions.
pub fn workable_period_bounds(apps: &AppSet, divisor: f64) -> Vec<f64> {
    apps.apps.iter().map(|a| a.total_work() / divisor + 2.0).collect()
}
