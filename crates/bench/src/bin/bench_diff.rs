//! Compare two bench JSON reports (the `CPO_BENCH_JSON` format of the
//! vendored criterion shim: a flat object mapping benchmark names to
//! `{"median_ns", "mean_ns", "iters"}`) and gate CI on regressions.
//!
//! ```text
//! bench_diff <baseline.json> <current.json> \
//!     [--fail-ratio 2.0] [--warn-ratio 1.2] [--min-fail-ns 100000]
//! ```
//!
//! For every key present in **both** reports the median ratio
//! `current / baseline` is computed:
//!
//! * ratio > fail-ratio  → counted as a regression; exit code 1 at the end;
//! * ratio > warn-ratio  → a `::warning::` GitHub annotation, job passes;
//! * otherwise           → OK (improvements are reported informationally).
//!
//! Keys whose *baseline* median is below `--min-fail-ns` (default 100 µs)
//! can only ever warn: nanosecond-scale medians are dominated by host and
//! scheduling noise, and a cross-host 2× on a 300 ns benchmark is not a
//! regression signal. Keys present in only one report are listed but never
//! fail the job (new benchmarks appear, old ones get renamed). The parser
//! is hand-rolled for exactly the shim's flat format — no JSON dependency.

use std::collections::BTreeMap;
use std::process::ExitCode;

fn parse_report(text: &str) -> BTreeMap<String, f64> {
    // Format: { "name": {"median_ns": N, "mean_ns": N, "iters": N}, ... }
    let mut out = BTreeMap::new();
    for chunk in text.split('}') {
        let Some(median_pos) = chunk.find("\"median_ns\"") else { continue };
        // Key = last quoted string before the value object opens.
        let head = &chunk[..median_pos];
        let Some(open) = head.rfind(':') else { continue };
        let key: String = head[..open]
            .rsplit('"')
            .nth(1)
            .unwrap_or_default()
            .to_string();
        let tail = &chunk[median_pos..];
        let Some(colon) = tail.find(':') else { continue };
        let digits: String = tail[colon + 1..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let (false, Ok(v)) = (key.is_empty(), digits.parse::<f64>()) {
            out.insert(key, v);
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fail_ratio = 2.0f64;
    let mut warn_ratio = 1.2f64;
    let mut min_fail_ns = 100_000.0f64;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fail-ratio" => {
                fail_ratio = it.next().and_then(|v| v.parse().ok()).unwrap_or(fail_ratio)
            }
            "--warn-ratio" => {
                warn_ratio = it.next().and_then(|v| v.parse().ok()).unwrap_or(warn_ratio)
            }
            "--min-fail-ns" => {
                min_fail_ns = it.next().and_then(|v| v.parse().ok()).unwrap_or(min_fail_ns)
            }
            other => files.push(other.to_string()),
        }
    }
    if files.len() != 2 {
        eprintln!(
            "usage: bench_diff <baseline.json> <current.json> \
             [--fail-ratio R] [--warn-ratio R] [--min-fail-ns N]"
        );
        return ExitCode::from(2);
    }
    let read = |path: &str| -> Option<BTreeMap<String, f64>> {
        match std::fs::read_to_string(path) {
            Ok(text) => Some(parse_report(&text)),
            Err(e) => {
                eprintln!("bench_diff: cannot read {path}: {e}");
                None
            }
        }
    };
    let (Some(base), Some(cur)) = (read(&files[0]), read(&files[1])) else {
        return ExitCode::from(2);
    };

    let mut regressions = 0usize;
    let mut warnings = 0usize;
    let mut shared = 0usize;
    for (key, &b) in &base {
        let Some(&c) = cur.get(key) else {
            println!("  [gone] {key} (only in baseline)");
            continue;
        };
        shared += 1;
        if b <= 0.0 {
            continue;
        }
        let ratio = c / b;
        if ratio > fail_ratio && b >= min_fail_ns {
            regressions += 1;
            println!("::error::bench regression {key}: {b:.0} ns -> {c:.0} ns ({ratio:.2}x > {fail_ratio}x)");
        } else if ratio > warn_ratio {
            warnings += 1;
            println!("::warning::bench slower {key}: {b:.0} ns -> {c:.0} ns ({ratio:.2}x)");
        } else if ratio < 1.0 / warn_ratio {
            println!("  [faster] {key}: {b:.0} ns -> {c:.0} ns ({ratio:.2}x)");
        } else {
            println!("  [ok] {key}: {ratio:.2}x");
        }
    }
    for key in cur.keys() {
        if !base.contains_key(key) {
            println!("  [new] {key} (no baseline)");
        }
    }
    println!(
        "bench_diff: {shared} shared keys, {warnings} warnings (> {warn_ratio}x), \
         {regressions} regressions (> {fail_ratio}x)"
    );
    if regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::parse_report;

    #[test]
    fn parses_the_shim_format() {
        let text = r#"{
  "a/b/8": {"median_ns": 4854, "mean_ns": 5099, "iters": 15},
  "c d": {"median_ns": 201766614, "mean_ns": 204360161, "iters": 9}
}"#;
        let map = parse_report(text);
        assert_eq!(map.len(), 2);
        assert_eq!(map["a/b/8"], 4854.0);
        assert_eq!(map["c d"], 201766614.0);
    }

    #[test]
    fn empty_and_garbage_are_harmless() {
        assert!(parse_report("").is_empty());
        assert!(parse_report("{}").is_empty());
        assert!(parse_report("not json at all").is_empty());
    }
}
