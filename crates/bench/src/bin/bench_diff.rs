//! Compare two bench JSON reports (the `CPO_BENCH_JSON` format of the
//! vendored criterion shim: a flat object mapping benchmark names to
//! `{"median_ns", "mean_ns", "iters"}`) and gate CI on regressions.
//!
//! ```text
//! bench_diff <baseline.json> <current.json> \
//!     [--fail-ratio 2.0] [--warn-ratio 1.2] [--min-fail-ns 100000]
//! ```
//!
//! For every key present in **both** reports the median ratio
//! `current / baseline` is computed:
//!
//! * ratio > fail-ratio  → counted as a regression; exit code 1 at the end;
//! * ratio > warn-ratio  → a `::warning::` GitHub annotation, job passes;
//! * otherwise           → OK (improvements are reported informationally).
//!
//! Keys whose *baseline* median is below `--min-fail-ns` (default 100 µs)
//! can only ever warn: nanosecond-scale medians are dominated by host and
//! scheduling noise, and a cross-host 2× on a 300 ns benchmark is not a
//! regression signal. Keys present in only one report are listed but never
//! fail the job (new benchmarks appear, old ones get renamed). The parser
//! is hand-rolled for exactly the shim's flat format — no JSON dependency.
//!
//! ```text
//! bench_diff --trajectory BENCH_PR2.json BENCH_PR3.json ... [current.json]
//! ```
//!
//! Trajectory mode reads *every* committed per-PR baseline (sorted by the
//! trailing number in the file name, so `BENCH_PR10` follows `BENCH_PR9`)
//! and prints a per-key markdown table of medians across snapshots, plus
//! the cumulative ratio `last / first`. Cumulative drift beyond the fail
//! ratio on a key above `--min-fail-ns` gets a `::warning::` annotation —
//! trajectory mode is observability across PRs, not a gate, so it always
//! exits 0 (2 on usage errors).

use std::collections::BTreeMap;
use std::process::ExitCode;

fn parse_report(text: &str) -> BTreeMap<String, f64> {
    // Format: { "name": {"median_ns": N, "mean_ns": N, "iters": N}, ... }
    let mut out = BTreeMap::new();
    for chunk in text.split('}') {
        let Some(median_pos) = chunk.find("\"median_ns\"") else { continue };
        // Key = last quoted string before the value object opens.
        let head = &chunk[..median_pos];
        let Some(open) = head.rfind(':') else { continue };
        let key: String = head[..open]
            .rsplit('"')
            .nth(1)
            .unwrap_or_default()
            .to_string();
        let tail = &chunk[median_pos..];
        let Some(colon) = tail.find(':') else { continue };
        let digits: String = tail[colon + 1..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let (false, Ok(v)) = (key.is_empty(), digits.parse::<f64>()) {
            out.insert(key, v);
        }
    }
    out
}

/// Sort key for baseline file names: the trailing integer when there is
/// one (`BENCH_PR10.json` → 10), so numeric PR order beats lexicographic.
fn snapshot_order(path: &str) -> (u64, String) {
    let stem = path.rsplit('/').next().unwrap_or(path).trim_end_matches(".json");
    let digits: String =
        stem.chars().rev().take_while(|c| c.is_ascii_digit()).collect::<String>();
    let n = digits.chars().rev().collect::<String>().parse().unwrap_or(u64::MAX);
    (n, path.to_string())
}

fn trajectory(files: &[String], fail_ratio: f64, min_fail_ns: f64) -> ExitCode {
    let mut ordered = files.to_vec();
    ordered.sort_by_key(|f| snapshot_order(f));
    let mut snapshots: Vec<(String, BTreeMap<String, f64>)> = Vec::new();
    for path in &ordered {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let label = path
                    .rsplit('/')
                    .next()
                    .unwrap_or(path)
                    .trim_end_matches(".json")
                    .to_string();
                snapshots.push((label, parse_report(&text)));
            }
            Err(e) => {
                eprintln!("bench_diff: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if snapshots.len() < 2 {
        eprintln!("bench_diff --trajectory needs at least two baseline files");
        return ExitCode::from(2);
    }
    let keys: std::collections::BTreeSet<&String> =
        snapshots.iter().flat_map(|(_, m)| m.keys()).collect();
    print!("| benchmark |");
    for (label, _) in &snapshots {
        print!(" {label} |");
    }
    println!(" last/first |");
    print!("|---|");
    for _ in &snapshots {
        print!("---|");
    }
    println!("---|");
    let mut drifting = 0usize;
    for key in keys {
        let series: Vec<Option<f64>> = snapshots.iter().map(|(_, m)| m.get(key).copied()).collect();
        print!("| {key} |");
        for v in &series {
            match v {
                Some(ns) => print!(" {ns:.0} |"),
                None => print!(" — |"),
            }
        }
        let present: Vec<f64> = series.iter().flatten().copied().collect();
        let (first, last) = (present.first(), present.last());
        match (first, last) {
            (Some(&f), Some(&l)) if f > 0.0 && present.len() >= 2 => {
                let ratio = l / f;
                println!(" {ratio:.2}x |");
                if ratio > fail_ratio && f >= min_fail_ns {
                    drifting += 1;
                    println!(
                        "::warning::bench trajectory drift {key}: {f:.0} ns -> {l:.0} ns \
                         ({ratio:.2}x across {} snapshots)",
                        present.len()
                    );
                }
            }
            _ => println!(" — |"),
        }
    }
    println!(
        "bench_diff: trajectory over {} snapshots, {drifting} keys drifting beyond {fail_ratio}x",
        snapshots.len()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fail_ratio = 2.0f64;
    let mut warn_ratio = 1.2f64;
    let mut min_fail_ns = 100_000.0f64;
    let mut trajectory_mode = false;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fail-ratio" => {
                fail_ratio = it.next().and_then(|v| v.parse().ok()).unwrap_or(fail_ratio)
            }
            "--warn-ratio" => {
                warn_ratio = it.next().and_then(|v| v.parse().ok()).unwrap_or(warn_ratio)
            }
            "--min-fail-ns" => {
                min_fail_ns = it.next().and_then(|v| v.parse().ok()).unwrap_or(min_fail_ns)
            }
            "--trajectory" => trajectory_mode = true,
            other => files.push(other.to_string()),
        }
    }
    if trajectory_mode {
        return trajectory(&files, fail_ratio, min_fail_ns);
    }
    if files.len() != 2 {
        eprintln!(
            "usage: bench_diff <baseline.json> <current.json> \
             [--fail-ratio R] [--warn-ratio R] [--min-fail-ns N]\n\
             \x20      bench_diff --trajectory <snap1.json> <snap2.json> [...] \
             [--fail-ratio R] [--min-fail-ns N]"
        );
        return ExitCode::from(2);
    }
    let read = |path: &str| -> Option<BTreeMap<String, f64>> {
        match std::fs::read_to_string(path) {
            Ok(text) => Some(parse_report(&text)),
            Err(e) => {
                eprintln!("bench_diff: cannot read {path}: {e}");
                None
            }
        }
    };
    let (Some(base), Some(cur)) = (read(&files[0]), read(&files[1])) else {
        return ExitCode::from(2);
    };

    let mut regressions = 0usize;
    let mut warnings = 0usize;
    let mut shared = 0usize;
    for (key, &b) in &base {
        let Some(&c) = cur.get(key) else {
            println!("  [gone] {key} (only in baseline)");
            continue;
        };
        shared += 1;
        if b <= 0.0 {
            continue;
        }
        let ratio = c / b;
        if ratio > fail_ratio && b >= min_fail_ns {
            regressions += 1;
            println!("::error::bench regression {key}: {b:.0} ns -> {c:.0} ns ({ratio:.2}x > {fail_ratio}x)");
        } else if ratio > warn_ratio {
            warnings += 1;
            println!("::warning::bench slower {key}: {b:.0} ns -> {c:.0} ns ({ratio:.2}x)");
        } else if ratio < 1.0 / warn_ratio {
            println!("  [faster] {key}: {b:.0} ns -> {c:.0} ns ({ratio:.2}x)");
        } else {
            println!("  [ok] {key}: {ratio:.2}x");
        }
    }
    for key in cur.keys() {
        if !base.contains_key(key) {
            println!("  [new] {key} (no baseline)");
        }
    }
    println!(
        "bench_diff: {shared} shared keys, {warnings} warnings (> {warn_ratio}x), \
         {regressions} regressions (> {fail_ratio}x)"
    );
    if regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::parse_report;

    #[test]
    fn parses_the_shim_format() {
        let text = r#"{
  "a/b/8": {"median_ns": 4854, "mean_ns": 5099, "iters": 15},
  "c d": {"median_ns": 201766614, "mean_ns": 204360161, "iters": 9}
}"#;
        let map = parse_report(text);
        assert_eq!(map.len(), 2);
        assert_eq!(map["a/b/8"], 4854.0);
        assert_eq!(map["c d"], 201766614.0);
    }

    #[test]
    fn empty_and_garbage_are_harmless() {
        assert!(parse_report("").is_empty());
        assert!(parse_report("{}").is_empty());
        assert!(parse_report("not json at all").is_empty());
    }

    #[test]
    fn snapshot_order_is_numeric_not_lexicographic() {
        let mut files = vec![
            "BENCH_PR10.json".to_string(),
            "BENCH_PR2.json".to_string(),
            "bench/BENCH_PR9.json".to_string(),
        ];
        files.sort_by_key(|f| super::snapshot_order(f));
        assert_eq!(files, ["BENCH_PR2.json", "bench/BENCH_PR9.json", "BENCH_PR10.json"]);
        // Files without a trailing number sort last, by name.
        assert_eq!(super::snapshot_order("current.json").0, u64::MAX);
    }
}
