//! Batch engine guarantees: deterministic, index-ordered results for
//! every thread count; per-item infeasible/unsupported reporting (a bad
//! spec never aborts its batch); streaming callbacks covering every item
//! exactly once; memo-cache hits for repeated specs.

use cpo_core::router;
use cpo_engine::{BatchItem, Engine, EngineConfig};
use cpo_model::generator::section2_example;
use cpo_model::prelude::*;
use parking_lot::Mutex;

fn instance() -> (AppSet, Platform) {
    let (apps, _) = section2_example();
    (apps, Platform::fully_homogeneous(3, vec![1.0, 3.0, 6.0, 8.0], 1.0).unwrap())
}

/// The acceptance batch: 64 specs mixing every objective, both comm
/// models, feasible and infeasible bounds, and unsupported combinations.
fn mixed_specs() -> Vec<ProblemSpec> {
    let mut specs = Vec::new();
    for i in 0..64u32 {
        let comm = if i % 2 == 0 { CommModel::Overlap } else { CommModel::NoOverlap };
        let spec = match i % 8 {
            // Energy under a ladder of period bounds (some infeasible).
            0 | 1 => {
                let tb = 0.25 * f64::from(i / 8 + 1);
                ProblemSpec::new(Objective::Energy, Strategy::Interval, comm)
                    .with_period_bounds(vec![tb, tb])
            }
            // Latency under period bounds.
            2 => {
                let tb = 0.5 * f64::from(i / 8 + 1);
                ProblemSpec::new(Objective::Latency, Strategy::Interval, comm)
                    .with_period_bounds(vec![tb, tb])
            }
            // Plain period minimization (cache fodder: two distinct keys
            // per comm model across the whole batch).
            3 => ProblemSpec::new(Objective::Period, Strategy::Interval, comm),
            // Replicated period minimization.
            4 => ProblemSpec::new(Objective::Period, Strategy::Replicated, comm),
            // Unsupported: general-mapping energy.
            5 => ProblemSpec::new(Objective::Energy, Strategy::General, comm)
                .with_period_bounds(vec![2.0, 2.0]),
            // Invalid: wrong bound count (must come back unsupported, not
            // panic the worker).
            6 => ProblemSpec::new(Objective::Energy, Strategy::Interval, comm)
                .with_period_bounds(vec![2.0]),
            // Period/latency front.
            _ => {
                let mut s =
                    ProblemSpec::new(Objective::PeriodLatencyFront, Strategy::Interval, comm);
                s.hints.sweep_threads = Some(1);
                s
            }
        };
        specs.push(spec);
    }
    specs
}

#[test]
fn mixed_batch_of_64_is_deterministic_ordered_and_complete() {
    let (apps, pf) = instance();
    let specs = mixed_specs();
    assert_eq!(specs.len(), 64);
    let items: Vec<BatchItem<'_>> =
        specs.iter().map(|s| BatchItem::new(&apps, &pf, s)).collect();

    // Reference: the router, called directly in order.
    let reference: Vec<SolveOutcome> =
        specs.iter().map(|s| router::route(&apps, &pf, s)).collect();

    // Every outcome class must actually occur in the batch.
    assert!(reference.iter().any(|o| matches!(o, SolveOutcome::Solution(_))));
    assert!(reference.iter().any(|o| matches!(o, SolveOutcome::Front(_))));
    assert!(reference.iter().any(|o| matches!(o, SolveOutcome::Infeasible { .. })));
    assert!(reference.iter().any(|o| matches!(o, SolveOutcome::Unsupported { .. })));

    for threads in [1usize, 2, 4, 8] {
        for cache in [false, true] {
            // Cutoff 0: genuinely exercise the threaded path even though
            // the batch is tiny.
            let engine = Engine::new(EngineConfig { threads, cache, min_parallel_cost: 0, ..EngineConfig::default() });
            let results = engine.solve_batch(&items);
            assert_eq!(results.len(), 64);
            for (i, (got, want)) in results.iter().zip(&reference).enumerate() {
                assert_eq!(got, want, "threads={threads} cache={cache} item {i}");
            }
        }
    }
}

#[test]
fn per_item_failures_never_abort_the_batch() {
    // Regression test for the mixed feasible/infeasible contract: the
    // items around a failing one must still be solved, and the failing
    // one must carry its own typed outcome.
    let (apps, pf) = instance();
    let specs = [
        ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
            .with_period_bounds(vec![2.0, 2.0]),
        // Infeasible bounds.
        ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
            .with_period_bounds(vec![1e-6, 1e-6]),
        // Unsupported combination.
        ProblemSpec::new(Objective::Latency, Strategy::General, CommModel::Overlap),
        // Invalid: bound count mismatch (would assert inside the solver).
        ProblemSpec::new(Objective::Latency, Strategy::Interval, CommModel::Overlap)
            .with_period_bounds(vec![1.0, 2.0, 3.0]),
        ProblemSpec::new(Objective::Period, Strategy::Interval, CommModel::Overlap),
    ];
    let items: Vec<BatchItem<'_>> =
        specs.iter().map(|s| BatchItem::new(&apps, &pf, s)).collect();
    let results = Engine::new(EngineConfig::sequential()).solve_batch(&items);
    assert_eq!(results.len(), 5);
    assert!((results[0].objective().unwrap() - 46.0).abs() < 1e-9);
    assert!(matches!(&results[1], SolveOutcome::Infeasible { .. }));
    assert!(matches!(&results[2], SolveOutcome::Unsupported { .. }));
    match &results[3] {
        SolveOutcome::Unsupported { reason } => {
            assert!(reason.contains("3 entries"), "got: {reason}")
        }
        other => panic!("expected unsupported for the invalid spec, got {other:?}"),
    }
    assert!(matches!(&results[4], SolveOutcome::Solution(_)));
}

#[test]
fn streaming_callback_sees_every_item_exactly_once() {
    let (apps, pf) = instance();
    let specs = mixed_specs();
    let items: Vec<BatchItem<'_>> =
        specs.iter().map(|s| BatchItem::new(&apps, &pf, s)).collect();
    for threads in [1usize, 4] {
        let engine =
            Engine::new(EngineConfig { threads, cache: false, min_parallel_cost: 0, ..EngineConfig::default() });
        let seen = Mutex::new(vec![0usize; items.len()]);
        let results = engine.solve_batch_with(&items, |i, out| {
            seen.lock()[i] += 1;
            // The streamed outcome is the stored outcome.
            assert!(!out.kind().is_empty());
        });
        assert!(seen.into_inner().iter().all(|&c| c == 1), "threads={threads}");
        assert_eq!(results.len(), items.len());
    }
}

#[test]
fn cache_spans_batches_and_hits_repeats() {
    let (apps, pf) = instance();
    let spec_a = ProblemSpec::new(Objective::Period, Strategy::Interval, CommModel::Overlap);
    let spec_b = ProblemSpec::new(Objective::Period, Strategy::Interval, CommModel::NoOverlap);
    let engine = Engine::new(EngineConfig::with_threads(1));
    let items: Vec<BatchItem<'_>> = [&spec_a, &spec_b, &spec_a, &spec_a, &spec_b]
        .iter()
        .map(|s| BatchItem::new(&apps, &pf, s))
        .collect();
    let first = engine.solve_batch(&items);
    let stats = engine.cache_stats();
    assert_eq!(stats.misses, 2, "two distinct keys");
    assert_eq!(stats.hits, 3, "three repeats");
    // A second batch over the same specs is answered entirely from cache.
    let second = engine.solve_batch(&items);
    assert_eq!(first, second);
    let stats = engine.cache_stats();
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.hits, 8);
    // Different instance ⇒ different key, no false hit.
    let (apps2, _) = section2_example();
    let pf2 = Platform::fully_homogeneous(4, vec![1.0, 3.0, 6.0, 8.0], 1.0).unwrap();
    let other = engine.solve(&apps2, &pf2, &spec_a);
    assert_eq!(engine.cache_stats().misses, 3, "a different platform is a different key");
    assert!(other.is_success());
}

#[test]
fn adaptive_cutoff_keeps_results_bitwise_identical() {
    // The cutoff only changes the schedule, never the outcomes: the same
    // batch with the cutoff forced off (true 4-thread fan-out), forced on
    // (sequential), and left at the default must agree bit for bit.
    let (apps, pf) = instance();
    let specs = mixed_specs();
    let items: Vec<BatchItem<'_>> =
        specs.iter().map(|s| BatchItem::new(&apps, &pf, s)).collect();
    let parallel = Engine::new(EngineConfig::with_threads(4).with_parallel_cutoff(0));
    let sequential = Engine::new(EngineConfig::with_threads(4).with_parallel_cutoff(u64::MAX));
    let default = Engine::new(EngineConfig::with_threads(4));
    assert_eq!(parallel.effective_threads(&items), 4);
    assert_eq!(sequential.effective_threads(&items), 1);
    let a = parallel.solve_batch(&items);
    let b = sequential.solve_batch(&items);
    let c = default.solve_batch(&items);
    assert_eq!(a, b);
    assert_eq!(a, c);
}

#[test]
fn tiny_batches_never_pay_thread_spawn() {
    // A handful of table-sized DP solves sums far below the default
    // cutoff: the engine must keep them on the calling thread.
    let (apps, pf) = instance();
    let spec = ProblemSpec::new(Objective::Period, Strategy::Interval, CommModel::Overlap);
    let items = vec![BatchItem::new(&apps, &pf, &spec); 8];
    let engine = Engine::new(EngineConfig::with_threads(8));
    assert_eq!(engine.effective_threads(&items), 1, "8 tiny DPs never earn 8 threads");

    // One exponential-fallback item justifies the fan-out on its own.
    let mut exact = ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
        .with_period_bounds(vec![2.0, 2.0])
        .with_latency_bounds(vec![1e9, 1e9]);
    exact.hints.exact_fallback = true;
    let mut heavy_specs: Vec<ProblemSpec> = vec![spec.clone(); 7];
    heavy_specs.push(exact);
    let heavy: Vec<BatchItem<'_>> =
        heavy_specs.iter().map(|s| BatchItem::new(&apps, &pf, s)).collect();
    assert_eq!(engine.effective_threads(&heavy), 8);

    // ... but once that batch's outcomes are memoized, re-serving it is
    // pure cache lookups: the cutoff counts cached items as zero work
    // and keeps the replay on the calling thread.
    engine.solve_batch(&heavy);
    assert_eq!(engine.effective_threads(&heavy), 1, "a fully-cached batch never fans out");
}

#[test]
fn cached_batch_is_no_slower_than_uncached() {
    // The memo-cache regression the structural-hash keys fix: on a batch
    // dominated by duplicate (instance, spec) pairs, serving hits must
    // beat re-solving — previously the canonical-JSON keying made the
    // "cache" *slower* than the sequential no-cache path
    // (router_dispatch/engine_batch64_cached vs _seq in BENCH_PR4.json).
    let (apps, pf) = instance();
    let distinct: Vec<ProblemSpec> = (1..=8)
        .map(|i| {
            let tb = 0.5 * i as f64;
            ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
                .with_period_bounds(vec![tb, tb])
        })
        .collect();
    let items: Vec<BatchItem<'_>> = (0..256)
        .map(|i| BatchItem::new(&apps, &pf, &distinct[i % distinct.len()]))
        .collect();

    // Min over interleaved pairs: the minimum is the noise-free estimate
    // (scheduler preemptions only ever inflate a run), so this ordering
    // check cannot flake on a loaded CI runner. The gated
    // `router_dispatch/engine_batch64_cached` bench row tracks the
    // actual magnitude.
    let uncached_engine = Engine::new(EngineConfig::sequential());
    let cached_engine = Engine::new(EngineConfig::with_threads(1));
    cached_engine.solve_batch(&items); // prime
    let mut uncached = std::time::Duration::MAX;
    let mut cached = std::time::Duration::MAX;
    for _ in 0..7 {
        let t0 = std::time::Instant::now();
        assert_eq!(uncached_engine.solve_batch(&items).len(), items.len());
        uncached = uncached.min(t0.elapsed());
        let t0 = std::time::Instant::now();
        assert_eq!(cached_engine.solve_batch(&items).len(), items.len());
        cached = cached.min(t0.elapsed());
    }
    let stats = cached_engine.cache_stats();
    assert_eq!(stats.misses, 8, "eight distinct keys solve once");
    assert!(
        cached <= uncached,
        "cache hits ({cached:?}) must not lose to re-solving ({uncached:?})"
    );
}

#[test]
fn injected_worker_panic_fails_one_item_not_the_batch() {
    // Regression test for the whole-batch abort: a panic that escapes the
    // per-item router backstop (here injected straight into the batch
    // loop) used to unwind through the scope join and kill the process.
    // It must now degrade to a typed outcome for that item only, for
    // every thread count.
    let (apps, pf) = instance();
    let spec = ProblemSpec::new(Objective::Period, Strategy::Interval, CommModel::Overlap);
    let specs = vec![spec; 8];
    let items: Vec<BatchItem<'_>> =
        specs.iter().map(|s| BatchItem::new(&apps, &pf, s)).collect();
    let reference = router::route(&apps, &pf, &specs[0]);
    for threads in [1usize, 2, 4] {
        let engine = Engine::new(EngineConfig {
            threads,
            cache: false,
            min_parallel_cost: 0,
            debug_panic_on_item: Some(3),
            ..EngineConfig::default()
        });
        let results = engine.solve_batch(&items);
        assert_eq!(results.len(), 8, "threads={threads}");
        for (i, got) in results.iter().enumerate() {
            if i == 3 {
                let reason = match got {
                    SolveOutcome::Unsupported { reason } => reason,
                    other => panic!("threads={threads}: expected typed outcome, got {other:?}"),
                };
                let details = cpo_engine::panic_details(reason)
                    .unwrap_or_else(|| panic!("unparseable backstop reason: {reason}"));
                assert_eq!(details.item_index, Some(3));
                assert_eq!(details.instance_digest.len(), 32);
                assert_eq!(details.spec_digest.len(), 32);
                assert!(details.payload.contains("injected fault"), "got: {}", details.payload);
            } else {
                assert_eq!(got, &reference, "threads={threads} item {i}");
            }
        }
    }
}

#[test]
fn panic_details_roundtrip_and_reject_ordinary_reasons() {
    let (apps, pf) = instance();
    let spec = ProblemSpec::new(Objective::Period, Strategy::Interval, CommModel::Overlap);
    let items = [BatchItem::new(&apps, &pf, &spec)];
    let engine = Engine::new(EngineConfig {
        threads: 1,
        cache: false,
        min_parallel_cost: 0,
        debug_panic_on_item: Some(0),
        ..EngineConfig::default()
    });
    let results = engine.solve_batch(&items);
    let reason = match &results[0] {
        SolveOutcome::Unsupported { reason } => reason.clone(),
        other => panic!("expected unsupported, got {other:?}"),
    };
    let details = cpo_engine::panic_details(&reason).expect("structured reason parses");
    // The digests in the backstop are the real structural digests of the
    // failing item — bundle export keys on them.
    assert_eq!(
        details.instance_digest,
        cpo_model::hash::digest_hex(cpo_model::hash::hash_instance(&apps, &pf))
    );
    assert_eq!(
        details.spec_digest,
        cpo_model::hash::digest_hex(cpo_model::hash::hash_spec(&spec))
    );
    // Ordinary unsupported reasons are not misparsed as panics.
    assert!(cpo_engine::panic_details("unsupported combination: general energy").is_none());
}

#[test]
fn batch_results_match_single_solves() {
    let (apps, pf) = instance();
    let specs = mixed_specs();
    let items: Vec<BatchItem<'_>> =
        specs.iter().map(|s| BatchItem::new(&apps, &pf, s)).collect();
    let engine = Engine::new(EngineConfig::with_threads(4));
    let batched = engine.solve_batch(&items);
    let fresh = Engine::new(EngineConfig::sequential());
    for (i, spec) in specs.iter().enumerate() {
        assert_eq!(batched[i], fresh.solve(&apps, &pf, spec), "item {i}");
    }
}

#[test]
fn bounded_cache_evictions_never_change_results() {
    // Duplicate-heavy batch against a deliberately tiny cache: ~40
    // distinct structural keys cycled three times over 16 single-slot
    // shards guarantees eviction churn (pigeonhole), and the re-misses
    // must recompute bit-for-bit what was evicted.
    let (apps, pf) = instance();
    let mut specs = Vec::new();
    for _round in 0..3 {
        for i in 0..40u32 {
            let comm = if i % 2 == 0 { CommModel::Overlap } else { CommModel::NoOverlap };
            let tb = 0.25 * f64::from(i / 2 + 1);
            specs.push(
                ProblemSpec::new(Objective::Energy, Strategy::Interval, comm)
                    .with_period_bounds(vec![tb, tb]),
            );
        }
    }
    let items: Vec<BatchItem<'_>> =
        specs.iter().map(|s| BatchItem::new(&apps, &pf, s)).collect();

    let reference = Engine::new(EngineConfig {
        threads: 1,
        cache: false,
        min_parallel_cost: 0,
        ..EngineConfig::default()
    })
    .solve_batch(&items);

    for threads in [1usize, 4] {
        let engine = Engine::new(
            EngineConfig { threads, min_parallel_cost: 0, ..EngineConfig::default() }
                .with_cache_capacity(1),
        );
        let results = engine.solve_batch(&items);
        let stats = engine.cache_stats();
        assert!(
            stats.evictions > 0,
            "threads={threads}: 40 keys over single-slot shards must evict, got {stats:?}"
        );
        assert!(
            stats.entries <= cpo_engine::cache::SHARDS as u64,
            "threads={threads}: bounded cache overflowed: {stats:?}"
        );
        for (i, (got, want)) in results.iter().zip(&reference).enumerate() {
            assert_eq!(got, want, "threads={threads} item {i} diverged after evictions");
        }
    }
}
