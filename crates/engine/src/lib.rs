//! # cpo-engine — the batched solve engine
//!
//! [`cpo_core::router`] answers one [`ProblemSpec`] at a time; this crate
//! runs *batches*: a work-stealing pool of workers, each owning a
//! reusable [`RouterScratch`] (flat DP arenas, Hungarian workspace,
//! bound buffers), pulls items off a shared atomic cursor and routes
//! them. The design mirrors the Pareto sweep engine's fan-out — scoped
//! threads, results merged by item index — so:
//!
//! * **Results are deterministic and ordered.** The returned vector holds
//!   item `i`'s outcome at position `i`, bit-for-bit identical for every
//!   thread count (each item is solved by the same deterministic router).
//! * **Failures are per-item.** An infeasible or unsupported spec becomes
//!   that item's [`SolveOutcome`]; a solver panic (which the router's
//!   validation should make unreachable) is caught and reported as an
//!   unsupported outcome — a batch never aborts and never panics.
//! * **Repeated work is memoized.** An instance-keyed cache (spec +
//!   instance, serialized canonically) returns previously-computed
//!   outcomes; identical specs in one batch or across batches solve once.
//! * **Results stream.** [`Engine::solve_batch_with`] invokes a callback
//!   as each outcome lands (from the worker that produced it), so callers
//!   can report progress or forward results while the batch continues.

use cpo_core::router::{route_with, RouterScratch};
use cpo_model::io::serde_json_error;
use cpo_model::prelude::*;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One unit of batch work: a problem spec over an instance. Borrowed so a
/// batch of many specs over one instance shares it allocation-free.
#[derive(Debug, Clone, Copy)]
pub struct BatchItem<'a> {
    /// The concurrent applications.
    pub apps: &'a AppSet,
    /// The target platform.
    pub platform: &'a Platform,
    /// The problem to solve on them.
    pub spec: &'a ProblemSpec,
}

impl<'a> BatchItem<'a> {
    /// Bundle an item.
    pub fn new(apps: &'a AppSet, platform: &'a Platform, spec: &'a ProblemSpec) -> Self {
        BatchItem { apps, platform, spec }
    }

    /// Canonical instance part of the cache key: compact JSON of apps +
    /// platform (object keys are sorted by the serializer, so equal
    /// values always produce equal keys). Computed once per distinct
    /// instance per batch — see [`Engine::solve_batch_with`].
    fn instance_key(&self) -> Option<String> {
        let apps = serde_json_error::to_string(self.apps).ok()?;
        let platform = serde_json_error::to_string(self.platform).ok()?;
        Some(format!("{apps}\u{1}{platform}"))
    }

    /// Full cache key: spec + precomputed instance part.
    fn cache_key(&self, instance_key: &str) -> Option<String> {
        let spec = serde_json_error::to_string(self.spec).ok()?;
        Some(format!("{spec}\u{1}{instance_key}"))
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads (`0` = one per available core). `1` keeps the whole
    /// batch on the calling thread — the zero-overhead sequential mode the
    /// dispatch bench gates.
    pub threads: usize,
    /// Enable the instance-keyed memo cache.
    pub cache: bool,
}

impl Default for EngineConfig {
    /// One worker per core, cache on.
    fn default() -> Self {
        EngineConfig { threads: 0, cache: true }
    }
}

impl EngineConfig {
    /// Sequential, cache off: dispatch overhead only.
    pub fn sequential() -> Self {
        EngineConfig { threads: 1, cache: false }
    }

    /// Parallel over `threads` workers, cache on.
    pub fn with_threads(threads: usize) -> Self {
        EngineConfig { threads, cache: true }
    }
}

/// Memo-cache counters (monotone over the engine's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Batch items answered from the cache.
    pub hits: u64,
    /// Batch items that ran a solver.
    pub misses: u64,
}

/// The batched solve engine. Cheap to construct; reusable across batches
/// (the memo cache persists and keeps filling).
pub struct Engine {
    cfg: EngineConfig,
    cache: Mutex<HashMap<String, SolveOutcome>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(EngineConfig::default())
    }
}

impl Engine {
    /// Engine with the given configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        Engine {
            cfg,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Solve one spec (routes through the cache like a 1-item batch).
    pub fn solve(&self, apps: &AppSet, platform: &Platform, spec: &ProblemSpec) -> SolveOutcome {
        let item = BatchItem::new(apps, platform, spec);
        let ikey = if self.cfg.cache { item.instance_key() } else { None };
        let mut scratch = RouterScratch::new();
        self.solve_item(&item, ikey.as_deref(), &mut scratch)
    }

    /// Solve a batch; `results[i]` answers `items[i]`.
    pub fn solve_batch(&self, items: &[BatchItem<'_>]) -> Vec<SolveOutcome> {
        self.solve_batch_with(items, |_, _| {})
    }

    /// [`Engine::solve_batch`] with a streaming callback, invoked once per
    /// item — from the worker thread that solved it, as soon as its
    /// outcome lands (completion order, not item order). The returned
    /// vector is still index-ordered and identical for every thread count.
    pub fn solve_batch_with(
        &self,
        items: &[BatchItem<'_>],
        on_result: impl Fn(usize, &SolveOutcome) + Sync,
    ) -> Vec<SolveOutcome> {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = match self.cfg.threads {
            0 => std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1),
            t => t,
        }
        .min(n);

        // Instance cache-key parts, computed once per *distinct* instance
        // (batches routinely share one instance across many specs; keying
        // must not re-serialize it per item).
        let instance_keys: Vec<Option<String>> = if self.cfg.cache {
            let mut by_ptr: HashMap<(usize, usize), Option<String>> = HashMap::new();
            items
                .iter()
                .map(|item| {
                    let ptrs = (
                        item.apps as *const AppSet as usize,
                        item.platform as *const Platform as usize,
                    );
                    by_ptr.entry(ptrs).or_insert_with(|| item.instance_key()).clone()
                })
                .collect()
        } else {
            vec![None; n]
        };

        if threads == 1 {
            let mut scratch = RouterScratch::new();
            return items
                .iter()
                .zip(&instance_keys)
                .enumerate()
                .map(|(i, (item, ikey))| {
                    let out = self.solve_item(item, ikey.as_deref(), &mut scratch);
                    on_result(i, &out);
                    out
                })
                .collect();
        }

        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<SolveOutcome>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        crossbeam::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| {
                    let mut scratch = RouterScratch::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let out =
                            self.solve_item(&items[i], instance_keys[i].as_deref(), &mut scratch);
                        on_result(i, &out);
                        *slots[i].lock() = Some(out);
                    }
                });
            }
        })
        .expect("engine worker panicked");
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every slot filled"))
            .collect()
    }

    /// Cache counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Drop every memoized outcome.
    pub fn clear_cache(&self) {
        self.cache.lock().clear();
    }

    fn solve_item(
        &self,
        item: &BatchItem<'_>,
        instance_key: Option<&str>,
        scratch: &mut RouterScratch,
    ) -> SolveOutcome {
        let key = instance_key.and_then(|ik| item.cache_key(ik));
        if let Some(k) = &key {
            if let Some(hit) = self.cache.lock().get(k).cloned() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return hit;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // The router validates specs and reports failures as typed
        // outcomes; the catch_unwind is a last-resort guarantee that one
        // item can never take down a batch.
        let out = match catch_unwind(AssertUnwindSafe(|| {
            route_with(item.apps, item.platform, item.spec, scratch)
        })) {
            Ok(out) => out,
            Err(panic) => {
                // The scratch may hold torn state after an unwind; replace
                // it before the worker touches the next item.
                *scratch = RouterScratch::new();
                let what = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".into());
                SolveOutcome::Unsupported { reason: format!("solver panicked: {what}") }
            }
        };
        if let Some(k) = key {
            self.cache.lock().insert(k, out.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::generator::section2_example;

    fn instance() -> (AppSet, Platform) {
        let (apps, _) = section2_example();
        (apps, Platform::fully_homogeneous(3, vec![1.0, 3.0, 6.0, 8.0], 1.0).unwrap())
    }

    #[test]
    fn single_solve_matches_router() {
        let (apps, pf) = instance();
        let spec = ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
            .with_period_bounds(vec![2.0, 2.0]);
        let engine = Engine::default();
        let out = engine.solve(&apps, &pf, &spec);
        assert_eq!(out, cpo_core::route(&apps, &pf, &spec));
        assert!((out.objective().unwrap() - 46.0).abs() < 1e-9);
    }

    #[test]
    fn cache_answers_repeats() {
        let (apps, pf) = instance();
        let spec = ProblemSpec::new(Objective::Period, Strategy::Interval, CommModel::Overlap);
        let engine = Engine::new(EngineConfig { threads: 1, cache: true });
        let items = vec![BatchItem::new(&apps, &pf, &spec); 5];
        let results = engine.solve_batch(&items);
        assert!(results.windows(2).all(|w| w[0] == w[1]));
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
    }

    #[test]
    fn sequential_and_default_configs_exist() {
        assert_eq!(EngineConfig::sequential().threads, 1);
        assert!(!EngineConfig::sequential().cache);
        assert!(EngineConfig::default().cache);
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = Engine::default();
        assert!(engine.solve_batch(&[]).is_empty());
    }
}
