//! # cpo-engine — the batched solve engine
//!
//! [`cpo_core::router`] answers one [`ProblemSpec`] at a time; this crate
//! runs *batches*: a work-stealing pool of workers, each owning a
//! reusable [`RouterScratch`] (flat DP arenas, Hungarian workspace,
//! bound buffers), pulls items off a shared atomic cursor and routes
//! them. The design mirrors the Pareto sweep engine's fan-out — scoped
//! threads, results merged by item index — so:
//!
//! * **Results are deterministic and ordered.** The returned vector holds
//!   item `i`'s outcome at position `i`, bit-for-bit identical for every
//!   thread count (each item is solved by the same deterministic router).
//! * **Failures are per-item.** An infeasible or unsupported spec becomes
//!   that item's [`SolveOutcome`]; a solver panic (which the router's
//!   validation should make unreachable) is caught and reported as an
//!   unsupported outcome — a batch never aborts and never panics.
//! * **Repeated work is memoized.** An instance-keyed cache returns
//!   previously-computed outcomes; identical specs in one batch or across
//!   batches solve once. Keys are 128-bit structural digests
//!   ([`cpo_model::hash`]) — one pass over the instance (computed once
//!   per distinct instance per batch) plus one over the spec — so a cache
//!   hit costs nanoseconds where the former canonical-JSON keys cost more
//!   than many of the solves they skipped. A false hit would need a full
//!   128-bit collision between two live keys (probability ≈ `k²/2^129`
//!   for `k` entries — negligible).
//! * **Threads are earned.** Fanning a batch out only pays off when the
//!   batch carries real work: worker spawn plus result merging costs tens
//!   of microseconds, which dwarfs a batch of table-sized DP solves. The
//!   engine therefore sums a per-item work estimate from each item's
//!   routed [`Plan`](cpo_core::router::Plan) — counting items already
//!   answered by the memo cache as zero — and keeps the batch on the
//!   calling thread below [`EngineConfig::min_parallel_cost`]. Results
//!   are bitwise identical either way, only the schedule changes.
//! * **Results stream.** [`Engine::solve_batch_with`] invokes a callback
//!   as each outcome lands (from the worker that produced it), so callers
//!   can report progress or forward results while the batch continues.

pub mod cache;

use cache::ShardedLru;
pub use cache::CacheKey;
use cpo_core::router::{plan, route_planned, route_with, Plan, RouterScratch};
use cpo_model::hash::{digest_hex, hash_instance, hash_spec};
use cpo_model::prelude::*;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One unit of batch work: a problem spec over an instance. Borrowed so a
/// batch of many specs over one instance shares it allocation-free.
#[derive(Debug, Clone, Copy)]
pub struct BatchItem<'a> {
    /// The concurrent applications.
    pub apps: &'a AppSet,
    /// The target platform.
    pub platform: &'a Platform,
    /// The problem to solve on them.
    pub spec: &'a ProblemSpec,
}

impl<'a> BatchItem<'a> {
    /// Bundle an item.
    pub fn new(apps: &'a AppSet, platform: &'a Platform, spec: &'a ProblemSpec) -> Self {
        BatchItem { apps, platform, spec }
    }

    /// Instance part of the cache key: a 128-bit structural digest of
    /// apps + platform. Computed once per *distinct* instance per batch —
    /// see [`Engine::solve_batch_with`].
    fn instance_key(&self) -> u128 {
        hash_instance(self.apps, self.platform)
    }

    /// Full cache key: precomputed instance digest + spec digest.
    fn cache_key(&self, instance_key: u128) -> CacheKey {
        (instance_key, hash_spec(self.spec))
    }

}

/// A planner verdict computed once by the adaptive cutoff and reused by
/// the solve (`Err` carries the unsupported-combination reason exactly
/// as `route_with` would report it).
type Planned = Result<Plan, String>;

/// Default [`EngineConfig::min_parallel_cost`]: roughly tens of
/// milliseconds of estimated single-thread work. Below it, spawning
/// workers demonstrably costs more than it saves (the
/// `router_dispatch/engine_batch64_*` bench rows gate this).
pub const DEFAULT_PARALLEL_CUTOFF: u64 = 50_000_000;

/// Default [`EngineConfig::cache_capacity`]: enough for every distinct
/// spec a realistic batch or a day of duplicate-heavy serving carries,
/// small enough (outcomes are table-sized mappings) to bound a long-lived
/// server's footprint.
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 16;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads (`0` = one per available core). `1` keeps the whole
    /// batch on the calling thread — the zero-overhead sequential mode the
    /// dispatch bench gates.
    pub threads: usize,
    /// Enable the instance-keyed memo cache.
    pub cache: bool,
    /// Maximum memoized outcomes (sharded LRU; the least recently used
    /// entry is evicted when full). Evictions are counted in
    /// [`CacheStats`] and can never change a result — a re-miss
    /// recomputes the same deterministic outcome bit-for-bit.
    pub cache_capacity: usize,
    /// Adaptive parallel cutoff: a batch whose summed
    /// [`Plan::cost_estimate`](cpo_core::router::Plan::cost_estimate)
    /// falls below this many abstract work units runs on the calling
    /// thread even when `threads > 1` (the threads would cost more than
    /// they save). `0` disables the cutoff — `threads` is then honored
    /// unconditionally. Outcomes are bitwise identical either way.
    pub min_parallel_cost: u64,
    /// Fault injection for the degrade-path regression tests: panic in
    /// the batch loop — *outside* the per-item router backstop — when
    /// this item index is reached. Never set in production; exercises the
    /// worker-level guard that keeps one poisoned item from killing a
    /// batch.
    pub debug_panic_on_item: Option<usize>,
}

impl Default for EngineConfig {
    /// One worker per core, cache on at the default capacity, default
    /// cutoff.
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            cache: true,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            min_parallel_cost: DEFAULT_PARALLEL_CUTOFF,
            debug_panic_on_item: None,
        }
    }
}

impl EngineConfig {
    /// Sequential, cache off: dispatch overhead only.
    pub fn sequential() -> Self {
        EngineConfig { threads: 1, cache: false, ..EngineConfig::default() }
    }

    /// Parallel over up to `threads` workers (cutoff permitting), cache
    /// on.
    pub fn with_threads(threads: usize) -> Self {
        EngineConfig { threads, ..EngineConfig::default() }
    }

    /// Replace the adaptive parallel cutoff (`0` = always honor
    /// `threads`).
    pub fn with_parallel_cutoff(mut self, min_parallel_cost: u64) -> Self {
        self.min_parallel_cost = min_parallel_cost;
        self
    }

    /// Replace the memo-cache capacity (entries).
    pub fn with_cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cache_capacity = cache_capacity;
        self
    }
}

/// The parsed form of a structured panic-backstop reason — see
/// [`panic_details`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicDetails {
    /// Batch item index (`None` for single solves).
    pub item_index: Option<usize>,
    /// Structural digest of (apps, platform), lowercase hex.
    pub instance_digest: String,
    /// Structural digest of the problem spec, lowercase hex.
    pub spec_digest: String,
    /// The panic payload, stringified.
    pub payload: String,
}

/// Parse the structured reason carried by the engine's panic backstop
/// (`SolveOutcome::Unsupported` with a `"solver panicked: ..."` reason).
/// Returns `None` for reasons the backstop didn't produce, so callers can
/// distinguish panics from ordinary unsupported combinations.
pub fn panic_details(reason: &str) -> Option<PanicDetails> {
    let rest = reason.strip_prefix("solver panicked: item=")?;
    let (item, rest) = rest.split_once(" instance=")?;
    let (instance, rest) = rest.split_once(" spec=")?;
    let (spec, payload) = rest.split_once(" payload=")?;
    Some(PanicDetails {
        item_index: if item == "-" { None } else { item.parse().ok() },
        instance_digest: instance.to_string(),
        spec_digest: spec.to_string(),
        payload: payload.to_string(),
    })
}

/// Stringify a caught panic payload.
fn panic_payload(panic: &(dyn std::any::Any + Send)) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic".into())
}

/// The structured backstop reason: stable `"solver panicked:"` prefix,
/// then item index, instance/spec digests and the payload —
/// machine-parseable by [`panic_details`] (bundle export feeds on it).
fn structured_panic_reason(index: Option<usize>, item: &BatchItem<'_>, payload: &str) -> String {
    format!(
        "solver panicked: item={} instance={} spec={} payload={payload}",
        index.map_or_else(|| "-".to_string(), |i| i.to_string()),
        digest_hex(hash_instance(item.apps, item.platform)),
        digest_hex(hash_spec(item.spec)),
    )
}

/// Memo-cache counters (monotone over the engine's lifetime, except
/// `entries` which is the live count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Items answered from the cache.
    pub hits: u64,
    /// Items that ran a solver.
    pub misses: u64,
    /// LRU entries evicted to make room.
    pub evictions: u64,
    /// Live cached outcomes right now.
    pub entries: u64,
}

/// The batched solve engine. Cheap to construct; reusable across batches
/// and across serve requests (the bounded memo cache persists and keeps
/// filling, evicting least-recently-used outcomes when full).
pub struct Engine {
    cfg: EngineConfig,
    cache: ShardedLru<SolveOutcome>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(EngineConfig::default())
    }
}

impl Engine {
    /// Engine with the given configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        let capacity = cfg.cache_capacity.max(1);
        Engine {
            cfg,
            cache: ShardedLru::new(capacity),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Solve one spec (routes through the cache like a 1-item batch).
    pub fn solve(&self, apps: &AppSet, platform: &Platform, spec: &ProblemSpec) -> SolveOutcome {
        let mut scratch = RouterScratch::new();
        self.solve_with(apps, platform, spec, &mut scratch)
    }

    /// Solve one spec on a caller-owned [`RouterScratch`] — the serving
    /// hot path, where each long-lived worker reuses its flat DP arenas
    /// across requests instead of reallocating per solve. Panics degrade
    /// to the structured typed backstop exactly as in batches (the
    /// scratch is replaced before reuse), so a poison request can never
    /// take a serve worker down.
    pub fn solve_with(
        &self,
        apps: &AppSet,
        platform: &Platform,
        spec: &ProblemSpec,
        scratch: &mut RouterScratch,
    ) -> SolveOutcome {
        let item = BatchItem::new(apps, platform, spec);
        let ikey = self.cfg.cache.then(|| item.instance_key());
        self.solve_item_guarded(None, &item, ikey, None, scratch)
    }

    /// Solve a batch; `results[i]` answers `items[i]`.
    pub fn solve_batch(&self, items: &[BatchItem<'_>]) -> Vec<SolveOutcome> {
        self.solve_batch_with(items, |_, _| {})
    }

    /// [`Engine::solve_batch`] with a streaming callback, invoked once per
    /// item — from the worker thread that solved it, as soon as its
    /// outcome lands (completion order, not item order). The returned
    /// vector is still index-ordered and identical for every thread count.
    pub fn solve_batch_with(
        &self,
        items: &[BatchItem<'_>],
        on_result: impl Fn(usize, &SolveOutcome) + Sync,
    ) -> Vec<SolveOutcome> {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let instance_keys = self.instance_keys(items);
        let (threads, plans) = self.decide_threads(items, &instance_keys);

        if threads == 1 {
            let mut scratch = RouterScratch::new();
            return items
                .iter()
                .zip(&instance_keys)
                .zip(&plans)
                .enumerate()
                .map(|(i, ((item, ikey), planned))| {
                    let out =
                        self.solve_item_guarded(Some(i), item, *ikey, planned.as_ref(), &mut scratch);
                    on_result(i, &out);
                    out
                })
                .collect();
        }

        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<SolveOutcome>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        // Workers catch their own panics item-by-item (solve_item_guarded),
        // so nothing should unwind through the scope join; the outer
        // catch_unwind is belt-and-braces for a panic in the caller's
        // `on_result` — any slots left unfilled degrade to typed outcomes
        // below instead of aborting the process.
        let _ = catch_unwind(AssertUnwindSafe(|| {
            crossbeam::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|_| {
                        let mut scratch = RouterScratch::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let out = self.solve_item_guarded(
                                Some(i),
                                &items[i],
                                instance_keys[i],
                                plans[i].as_ref(),
                                &mut scratch,
                            );
                            on_result(i, &out);
                            *slots[i].lock() = Some(out);
                        }
                    });
                }
            })
        }));
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner().unwrap_or_else(|| SolveOutcome::Unsupported {
                    reason: structured_panic_reason(
                        Some(i),
                        &items[i],
                        "worker terminated before answering this item",
                    ),
                })
            })
            .collect()
    }

    /// The worker count this engine would actually use for `items`: the
    /// configured `threads` (resolved against the host), capped by the
    /// batch size, and collapsed to `1` when the batch's summed
    /// [`Plan`](cpo_core::router::Plan) work estimate falls below the
    /// adaptive cutoff. Items already answered by the memo cache
    /// contribute nothing — a fully-cached batch of heavy specs is
    /// nanoseconds of lookups and never pays a fan-out. Exposed so
    /// callers (and the determinism tests) can observe the decision
    /// without timing anything.
    pub fn effective_threads(&self, items: &[BatchItem<'_>]) -> usize {
        let keys = self.instance_keys(items);
        self.decide_threads(items, &keys).0
    }

    /// Instance cache-key parts, computed once per *distinct* instance
    /// (batches routinely share one instance across many specs; keying
    /// must not re-hash it per item). All `None` when the cache is off.
    fn instance_keys(&self, items: &[BatchItem<'_>]) -> Vec<Option<u128>> {
        if !self.cfg.cache {
            return vec![None; items.len()];
        }
        let mut by_ptr: HashMap<(usize, usize), u128> = HashMap::new();
        items
            .iter()
            .map(|item| {
                let ptrs = (
                    item.apps as *const AppSet as usize,
                    item.platform as *const Platform as usize,
                );
                Some(*by_ptr.entry(ptrs).or_insert_with(|| item.instance_key()))
            })
            .collect()
    }

    /// The cutoff decision behind [`Engine::effective_threads`], reusing
    /// already-computed instance keys. Also returns the per-item planner
    /// verdicts it produced along the way (`None` for cached items and
    /// whenever the cutoff is inactive), so the solve paths never plan an
    /// item twice.
    fn decide_threads(
        &self,
        items: &[BatchItem<'_>],
        instance_keys: &[Option<u128>],
    ) -> (usize, Vec<Option<Planned>>) {
        let threads = match self.cfg.threads {
            0 => std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1),
            t => t,
        }
        .min(items.len().max(1));
        if threads <= 1 || self.cfg.min_parallel_cost == 0 {
            return (threads, vec![None; items.len()]);
        }
        // Snapshot cache membership with per-shard probes (`contains`
        // does not bump recency — planning an item is not a use), so the
        // planning loop below never blocks concurrent lookups on this
        // engine.
        let cached: Vec<bool> = if self.cfg.cache {
            items
                .iter()
                .zip(instance_keys)
                .map(|(item, ikey)| {
                    ikey.is_some_and(|ik| self.cache.contains(&item.cache_key(ik)))
                })
                .collect()
        } else {
            vec![false; items.len()]
        };
        let mut estimate = 0u64;
        let mut plans = Vec::with_capacity(items.len());
        for (i, (item, &is_cached)) in items.iter().zip(&cached).enumerate() {
            // Once the cutoff is crossed the decision is final: stop
            // planning serially and let the workers plan the remaining
            // items in parallel (`solve_item` falls back to `route_with`
            // for `None` entries).
            if is_cached || estimate >= self.cfg.min_parallel_cost {
                plans.push(None);
                continue;
            }
            // The planner runs on the calling thread, outside the worker
            // guards — a panic here must degrade to that item's outcome,
            // not abort the batch before it starts.
            let planned =
                catch_unwind(AssertUnwindSafe(|| plan(item.apps, item.platform, item.spec)))
                    .unwrap_or_else(|panic| {
                        Err(structured_panic_reason(Some(i), item, &panic_payload(&*panic)))
                    });
            estimate = estimate.saturating_add(match &planned {
                Ok(p) => p.cost_estimate(item.apps, item.platform, item.spec),
                // Rejected specs cost one validation.
                Err(_) => 1_000,
            });
            plans.push(Some(planned));
        }
        (if estimate >= self.cfg.min_parallel_cost { threads } else { 1 }, plans)
    }

    /// Cache counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.cache.len() as u64,
        }
    }

    /// Drop every memoized outcome (the counters keep accumulating).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// [`Engine::solve_item`] behind the worker-level guard: any panic
    /// reaching the batch loop — the fault-injection hook, the cache
    /// layer, torn scratch state — degrades to a typed outcome for *this*
    /// item; the worker keeps draining the cursor.
    fn solve_item_guarded(
        &self,
        index: Option<usize>,
        item: &BatchItem<'_>,
        instance_key: Option<u128>,
        planned: Option<&Planned>,
        scratch: &mut RouterScratch,
    ) -> SolveOutcome {
        let res = catch_unwind(AssertUnwindSafe(|| {
            if let (Some(i), Some(target)) = (index, self.cfg.debug_panic_on_item) {
                if i == target {
                    panic!("injected fault: debug_panic_on_item({i})");
                }
            }
            self.solve_item(index, item, instance_key, planned, scratch)
        }));
        res.unwrap_or_else(|panic| {
            *scratch = RouterScratch::new();
            SolveOutcome::Unsupported {
                reason: structured_panic_reason(index, item, &panic_payload(&*panic)),
            }
        })
    }

    fn solve_item(
        &self,
        index: Option<usize>,
        item: &BatchItem<'_>,
        instance_key: Option<u128>,
        planned: Option<&Planned>,
        scratch: &mut RouterScratch,
    ) -> SolveOutcome {
        let key = instance_key.map(|ik| item.cache_key(ik));
        if let Some(k) = &key {
            if let Some(hit) = self.cache.get(k) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return hit;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // The router validates specs and reports failures as typed
        // outcomes; the catch_unwind is a last-resort guarantee that one
        // item can never take down a batch.
        let out = match catch_unwind(AssertUnwindSafe(|| match planned {
            // The adaptive cutoff already planned this item; don't pay
            // the planner twice.
            Some(Ok(p)) => route_planned(item.apps, item.platform, item.spec, *p, scratch),
            Some(Err(reason)) => SolveOutcome::Unsupported { reason: reason.clone() },
            None => route_with(item.apps, item.platform, item.spec, scratch),
        })) {
            Ok(out) => out,
            Err(panic) => {
                // The scratch may hold torn state after an unwind; replace
                // it before the worker touches the next item.
                *scratch = RouterScratch::new();
                SolveOutcome::Unsupported {
                    reason: structured_panic_reason(index, item, &panic_payload(&*panic)),
                }
            }
        };
        if let Some(k) = key {
            if self.cache.insert(k, out.clone()) {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::generator::section2_example;

    fn instance() -> (AppSet, Platform) {
        let (apps, _) = section2_example();
        (apps, Platform::fully_homogeneous(3, vec![1.0, 3.0, 6.0, 8.0], 1.0).unwrap())
    }

    #[test]
    fn single_solve_matches_router() {
        let (apps, pf) = instance();
        let spec = ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
            .with_period_bounds(vec![2.0, 2.0]);
        let engine = Engine::default();
        let out = engine.solve(&apps, &pf, &spec);
        assert_eq!(out, cpo_core::route(&apps, &pf, &spec));
        assert!((out.objective().unwrap() - 46.0).abs() < 1e-9);
    }

    #[test]
    fn cache_answers_repeats() {
        let (apps, pf) = instance();
        let spec = ProblemSpec::new(Objective::Period, Strategy::Interval, CommModel::Overlap);
        let engine = Engine::new(EngineConfig::with_threads(1));
        let items = vec![BatchItem::new(&apps, &pf, &spec); 5];
        let results = engine.solve_batch(&items);
        assert!(results.windows(2).all(|w| w[0] == w[1]));
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
    }

    #[test]
    fn sequential_and_default_configs_exist() {
        assert_eq!(EngineConfig::sequential().threads, 1);
        assert!(!EngineConfig::sequential().cache);
        assert!(EngineConfig::default().cache);
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = Engine::default();
        assert!(engine.solve_batch(&[]).is_empty());
    }
}
