//! Sharded, bounded LRU memo cache keyed on 128-bit structural digests.
//!
//! The engine's original memo was a single `Mutex<HashMap>` that grew
//! without bound — fine for one `batch` invocation, fatal for a
//! long-lived server where "millions of users" means millions of distinct
//! (instance, spec) digests. This replaces it with a fixed-capacity cache
//! in both modes (batch and serve share this code path):
//!
//! * **Sharded.** The key is a pair of structural digests
//!   ([`cpo_model::hash`]), already uniformly mixed; the top bits of the
//!   instance digest pick one of [`SHARDS`] independently-locked shards,
//!   so concurrent workers rarely contend on one mutex.
//! * **True LRU per shard.** Each shard is a slab (`Vec` of nodes with
//!   intrusive prev/next indices) plus a `HashMap` from key to slot:
//!   `get` bumps the node to the MRU head in O(1), `insert` evicts the
//!   LRU tail when the shard is full. No allocation after warm-up — a
//!   full shard recycles the evicted slot.
//! * **Counted.** Hits, misses and evictions are reported through
//!   [`crate::CacheStats`] and surfaced in the server's periodic stats
//!   line; an eviction storm (capacity too small for the working set) is
//!   observable, never silent.
//!
//! Eviction can never change a result: entries memoize a deterministic
//! solver, so a re-miss recomputes bit-for-bit what was evicted (the
//! duplicate-heavy regression test in `tests/batch.rs` locks this down).

use parking_lot::Mutex;
use std::collections::HashMap;

/// Shard count (power of two; picked by digest top bits).
pub const SHARDS: usize = 16;

/// (instance digest, spec digest) — see [`cpo_model::hash`].
pub type CacheKey = (u128, u128);

const NIL: u32 = u32::MAX;

struct Node<V> {
    key: CacheKey,
    value: V,
    prev: u32,
    next: u32,
}

/// One LRU shard: slab + index map + intrusive recency list.
struct Shard<V> {
    slab: Vec<Node<V>>,
    map: HashMap<CacheKey, u32>,
    head: u32,
    tail: u32,
    capacity: usize,
}

impl<V> Shard<V> {
    fn new(capacity: usize) -> Self {
        Shard {
            slab: Vec::with_capacity(capacity.min(1024)),
            map: HashMap::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Unlink `slot` from the recency list (it must be linked).
    fn unlink(&mut self, slot: u32) {
        let (prev, next) = {
            let n = &self.slab[slot as usize];
            (n.prev, n.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slab[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            nx => self.slab[nx as usize].prev = prev,
        }
    }

    /// Link `slot` at the MRU head.
    fn link_front(&mut self, slot: u32) {
        let old = self.head;
        {
            let n = &mut self.slab[slot as usize];
            n.prev = NIL;
            n.next = old;
        }
        match old {
            NIL => self.tail = slot,
            h => self.slab[h as usize].prev = slot,
        }
        self.head = slot;
    }

    fn get(&mut self, key: &CacheKey) -> Option<&V> {
        let slot = *self.map.get(key)?;
        self.unlink(slot);
        self.link_front(slot);
        Some(&self.slab[slot as usize].value)
    }

    fn contains(&self, key: &CacheKey) -> bool {
        self.map.contains_key(key)
    }

    /// Insert (or refresh) `key`; returns `true` when an entry was
    /// evicted to make room.
    fn insert(&mut self, key: CacheKey, value: V) -> bool {
        if let Some(&slot) = self.map.get(&key) {
            self.slab[slot as usize].value = value;
            self.unlink(slot);
            self.link_front(slot);
            return false;
        }
        if self.slab.len() < self.capacity {
            let slot = self.slab.len() as u32;
            self.slab.push(Node { key, value, prev: NIL, next: NIL });
            self.map.insert(key, slot);
            self.link_front(slot);
            return false;
        }
        // Full: recycle the LRU tail slot in place.
        let slot = self.tail;
        debug_assert_ne!(slot, NIL, "capacity >= 1 keeps the list non-empty when full");
        self.unlink(slot);
        let old_key = self.slab[slot as usize].key;
        self.map.remove(&old_key);
        {
            let n = &mut self.slab[slot as usize];
            n.key = key;
            n.value = value;
        }
        self.map.insert(key, slot);
        self.link_front(slot);
        true
    }

    fn clear(&mut self) {
        self.slab.clear();
        self.map.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

/// The sharded bounded cache. `V` is cloned out on hits (outcomes are
/// refcounted internally via `Vec`/`String` clones — microseconds against
/// the solves they skip).
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
}

impl<V: Clone> ShardedLru<V> {
    /// Cache with `capacity` total entries spread over [`SHARDS`] shards
    /// (each shard holds at least one entry, so tiny capacities still
    /// cache *something* and the eviction regression tests can force
    /// thrashing with capacity = a handful).
    pub fn new(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        ShardedLru {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new(per_shard))).collect(),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard<V>> {
        // Structural digests are uniformly mixed; the top bits of the
        // instance digest spread batches-of-one-instance is the wrong
        // choice (they'd all land in one shard), so fold the spec digest
        // in first.
        let mixed = (key.0 ^ key.1.rotate_left(64)) as u64 ^ ((key.0 ^ key.1) >> 64) as u64;
        &self.shards[(mixed >> (64 - SHARDS.trailing_zeros())) as usize % SHARDS]
    }

    /// Clone out the cached value, bumping its recency.
    pub fn get(&self, key: &CacheKey) -> Option<V> {
        self.shard(key).lock().get(key).cloned()
    }

    /// Membership probe that does *not* bump recency (the adaptive
    /// parallel cutoff snapshots membership without recording a use).
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.shard(key).lock().contains(key)
    }

    /// Insert; returns `true` when an LRU entry was evicted to make room.
    pub fn insert(&self, key: CacheKey, value: V) -> bool {
        self.shard(&key).lock().insert(key, value)
    }

    /// Live entry count across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().map.is_empty())
    }

    /// Drop every entry (operator reset; counters are the caller's).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u128) -> CacheKey {
        // Spread keys like real digests do (the shard picker uses top
        // bits).
        (i.wrapping_mul(0x9e3779b97f4a7c15_9e3779b97f4a7c15), i)
    }

    #[test]
    fn get_after_insert_round_trips() {
        let c = ShardedLru::new(64);
        assert!(c.is_empty());
        c.insert(k(1), "a");
        c.insert(k(2), "b");
        assert_eq!(c.get(&k(1)), Some("a"));
        assert_eq!(c.get(&k(2)), Some("b"));
        assert_eq!(c.get(&k(3)), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_is_lru_within_a_shard() {
        // Single-entry shards: every insert into an occupied shard evicts.
        let c = ShardedLru::new(1);
        let mut evictions = 0;
        for i in 0..100u128 {
            if c.insert(k(i), i) {
                evictions += 1;
            }
        }
        assert!(evictions > 0, "100 keys over {SHARDS} single-slot shards must evict");
        assert!(c.len() <= SHARDS);
    }

    #[test]
    fn recency_bump_protects_hot_keys() {
        // One shard of capacity 2 (force same shard by reusing one key's
        // shard): use direct Shard to make the assertion deterministic.
        let mut s = Shard::new(2);
        s.insert(k(1), 1);
        s.insert(k(2), 2);
        assert_eq!(s.get(&k(1)), Some(&1)); // bump 1 to MRU
        assert!(s.insert(k(3), 3)); // evicts 2, not 1
        assert!(s.contains(&k(1)));
        assert!(!s.contains(&k(2)));
        assert!(s.contains(&k(3)));
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut s = Shard::new(2);
        s.insert(k(1), 1);
        assert!(!s.insert(k(1), 10));
        assert_eq!(s.get(&k(1)), Some(&10));
        assert_eq!(s.map.len(), 1);
    }

    #[test]
    fn clear_empties_every_shard() {
        let c = ShardedLru::new(32);
        for i in 0..20u128 {
            c.insert(k(i), i);
        }
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&k(5)), None);
    }
}
