//! Bitwise equivalence of the wavefront simulator core against the
//! discrete-event DAG engine, and of the steady-state fast-forward
//! against the full rolling run.
//!
//! The wavefront (`cpo_simulator::wavefront`) claims to execute *the same
//! float operations* as the event engine — `max` is pure selection, the
//! single rounding per grid point is the `+ duration` — so every derived
//! quantity must agree **bit for bit**: completions, busy times,
//! makespan, measured period/latency. The fast-forward additionally
//! claims exactness whenever its lattice/horizon certificate fires. Both
//! claims are soaked here over random instances (integral and
//! full-mantissa durations), both communication models, bounded and
//! unbounded buffers, and the degenerate shapes (one stage, one data
//! set, zero-size data). Honors `PROPTEST_CASES` for deeper soaks.

use cpo_model::generator::{
    random_apps, random_comm_homogeneous, random_fully_homogeneous, AppGenConfig,
    PlatformGenConfig,
};
use cpo_model::prelude::*;
use cpo_simulator::{simulate_reference_dag, simulate_wavefront, SimReport};
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Random valid interval mapping (same shape as the tier-1 suite's).
fn random_mapping(apps: &AppSet, platform: &Platform, rng: &mut StdRng) -> Option<Mapping> {
    let mut procs: Vec<usize> = (0..platform.p()).collect();
    procs.shuffle(rng);
    let mut mapping = Mapping::new();
    let mut next = 0usize;
    for (a, app) in apps.apps.iter().enumerate() {
        let mut first = 0usize;
        while first < app.n() {
            let last = rng.gen_range(first..app.n());
            if next >= procs.len() {
                return None;
            }
            let u = procs[next];
            next += 1;
            let mode = rng.gen_range(0..platform.procs[u].modes());
            mapping.push(Interval::new(a, first, last), u, mode);
            first = last + 1;
        }
    }
    Some(mapping)
}

/// Every float in the two reports, compared by bit pattern.
fn assert_bitwise(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(a.apps.len(), b.apps.len(), "{what}: app count");
    for (i, (x, y)) in a.apps.iter().zip(&b.apps).enumerate() {
        assert_eq!(x.completions.len(), y.completions.len(), "{what}: app {i} completions len");
        for (d, (c1, c2)) in x.completions.iter().zip(&y.completions).enumerate() {
            assert_eq!(
                c1.to_bits(),
                c2.to_bits(),
                "{what}: app {i} data set {d}: {c1} vs {c2}"
            );
        }
        assert_eq!(x.first_latency.to_bits(), y.first_latency.to_bits(), "{what}: app {i} latency");
        assert_eq!(
            x.measured_period.to_bits(),
            y.measured_period.to_bits(),
            "{what}: app {i} period"
        );
    }
    for (u, (b1, b2)) in a.busy.iter().zip(&b.busy).enumerate() {
        assert_eq!(b1.to_bits(), b2.to_bits(), "{what}: busy[{u}]: {b1} vs {b2}");
    }
    assert_eq!(a.period.to_bits(), b.period.to_bits(), "{what}: period");
    assert_eq!(a.latency.to_bits(), b.latency.to_bits(), "{what}: latency");
    assert_eq!(a.makespan.to_bits(), b.makespan.to_bits(), "{what}: makespan");
    assert_eq!(a.power.to_bits(), b.power.to_bits(), "{what}: power");
}

/// One full comparison: wavefront (fast-forward off and on) vs DAG oracle.
fn check_instance(
    apps: &AppSet,
    pf: &Platform,
    mapping: &Mapping,
    model: CommModel,
    datasets: usize,
    capacity: usize,
) {
    let dag = simulate_reference_dag(apps, pf, mapping, model, datasets, capacity);
    let rolling = simulate_wavefront(apps, pf, mapping, model, datasets, capacity, false);
    assert_bitwise(&rolling, &dag, "rolling vs dag");
    let fast = simulate_wavefront(apps, pf, mapping, model, datasets, capacity, true);
    assert_bitwise(&fast, &dag, "fast-forward vs dag");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn wavefront_matches_dag_on_integral_instances(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let apps = random_apps(
            &AppGenConfig { apps: 1 + (seed % 3) as usize, stages: (1, 6), ..Default::default() },
            seed,
        );
        let pf = random_comm_homogeneous(
            &PlatformGenConfig { procs: apps.total_stages() + 2, ..Default::default() },
            seed + 1,
        );
        let Some(mapping) = random_mapping(&apps, &pf, &mut rng) else { continue };
        let datasets = 1 + (seed % 61) as usize;
        for model in [CommModel::Overlap, CommModel::NoOverlap] {
            for capacity in [usize::MAX, 1, 3] {
                check_instance(&apps, &pf, &mapping, model, datasets, capacity);
            }
        }
    }

    #[test]
    fn wavefront_matches_dag_on_full_mantissa_instances(seed in 0u64..1_000_000) {
        // Non-integral works/speeds: durations carry arbitrary mantissas,
        // so the fast-forward certificate must refuse (or fire only where
        // genuinely exact) — either way the bits must match.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let apps = random_apps(
            &AppGenConfig {
                apps: 2,
                stages: (1, 5),
                work: (0.1, 9.7),
                data: (0.0, 3.3),
                integral: false,
            },
            seed,
        );
        let pf = random_fully_homogeneous(
            &PlatformGenConfig {
                procs: apps.total_stages() + 1,
                speed: (0.7, 6.3),
                integral: false,
                ..Default::default()
            },
            seed + 2,
        );
        let Some(mapping) = random_mapping(&apps, &pf, &mut rng) else { continue };
        let datasets = 2 + (seed % 47) as usize;
        for model in [CommModel::Overlap, CommModel::NoOverlap] {
            for capacity in [usize::MAX, 2] {
                check_instance(&apps, &pf, &mapping, model, datasets, capacity);
            }
        }
    }

    #[test]
    fn fast_forward_equals_full_run_wherever_it_detects(seed in 0u64..1_000_000) {
        // Dyadic platforms (power-of-two speeds, unit bandwidth) keep the
        // arithmetic on a coarse lattice: the certificate fires early and
        // the closed-form tail must reproduce the recurrence exactly over
        // long horizons.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1AD);
        let apps = random_apps(
            &AppGenConfig { apps: 2, stages: (1, 4), ..Default::default() },
            seed,
        );
        let speeds: Vec<f64> = vec![1.0, 2.0, 4.0];
        let pf = Platform::fully_homogeneous(apps.total_stages() + 1, speeds, 1.0).unwrap();
        let Some(mapping) = random_mapping(&apps, &pf, &mut rng) else { continue };
        let datasets = 1024 + (seed % 1024) as usize;
        for model in [CommModel::Overlap, CommModel::NoOverlap] {
            let full = simulate_wavefront(&apps, &pf, &mapping, model, datasets, usize::MAX, false);
            let fast = simulate_wavefront(&apps, &pf, &mapping, model, datasets, usize::MAX, true);
            assert_bitwise(&fast, &full, "fast-forward vs full run");
            prop_assert!(
                fast.apps.iter().all(|a| a.steady_state.is_some()),
                "dyadic instances certify within 1k data sets"
            );
            for a in &fast.apps {
                let ss = a.steady_state.unwrap();
                prop_assert!(ss.detected_at < datasets);
                prop_assert!(ss.delta >= 0.0);
            }
        }
    }
}

#[test]
fn degenerate_chains_agree() {
    // 1 stage / 1 data set / zero-size data, both models, both cores.
    for (work, data) in [(1.0, 0.0), (3.0, 2.0), (0.0, 0.0)] {
        let app = cpo_model::application::Application::from_pairs(data, &[(work, data)]);
        let apps = AppSet::single(app);
        let pf = Platform::fully_homogeneous(1, vec![1.0, 2.0], 1.0).unwrap();
        let mapping = Mapping::new().with(Interval::new(0, 0, 0), 0, 1);
        for model in [CommModel::Overlap, CommModel::NoOverlap] {
            for datasets in [1usize, 2, 5] {
                check_instance(&apps, &pf, &mapping, model, datasets, usize::MAX);
                check_instance(&apps, &pf, &mapping, model, datasets, 1);
            }
        }
    }
}

#[test]
fn bounded_buffers_agree_across_capacities() {
    // The receive-bound chain whose steady period visibly depends on the
    // buffer capacity — the wavefront's ring must reproduce the DAG's
    // history dependency at every depth.
    let app = cpo_model::application::Application::from_pairs(0.0, &[(1.0, 4.0), (4.0, 0.0)]);
    let apps = AppSet::single(app);
    let pf = Platform::fully_homogeneous(2, vec![1.0], 1.0).unwrap();
    let mapping = Mapping::new()
        .with(Interval::new(0, 0, 0), 0, 0)
        .with(Interval::new(0, 1, 1), 1, 0);
    for model in [CommModel::Overlap, CommModel::NoOverlap] {
        for capacity in [1usize, 2, 3, 5, 8, 64, usize::MAX] {
            check_instance(&apps, &pf, &mapping, model, 96, capacity);
        }
    }
}

#[test]
fn fast_forward_report_is_complete() {
    // The fast-forwarded run still reports every completion, the same
    // measured period, and per-app steady-state metadata.
    let (apps, pf) = cpo_model::generator::section2_example();
    let mapping = Mapping::new()
        .with(Interval::new(0, 0, 2), 2, 1)
        .with(Interval::new(1, 0, 1), 1, 1)
        .with(Interval::new(1, 2, 3), 0, 1);
    let datasets = 100_000;
    let rep = simulate_wavefront(&apps, &pf, &mapping, CommModel::Overlap, datasets, usize::MAX, true);
    for a in &rep.apps {
        assert_eq!(a.completions.len(), datasets);
        let ss = a.steady_state.expect("section 2 is dyadic");
        // The emitted tail really is an arithmetic progression.
        let d0 = ss.detected_at;
        for d in (d0 + 1)..datasets.min(d0 + 50) {
            let expected = a.completions[d0] + (d - d0) as f64 * ss.delta;
            assert_eq!(a.completions[d].to_bits(), expected.to_bits());
        }
    }
    // And it matches the DAG engine on a prefix-sized rerun (the full
    // 100k DAG build would dominate the test suite's runtime).
    let dag = simulate_reference_dag(&apps, &pf, &mapping, CommModel::Overlap, 512, usize::MAX);
    let wf = simulate_wavefront(&apps, &pf, &mapping, CommModel::Overlap, 512, usize::MAX, true);
    assert_bitwise(&wf, &dag, "512-data-set prefix");
}
