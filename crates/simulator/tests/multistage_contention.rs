//! Multistage fabrics in the simulator:
//!
//! * on valid plain mappings the routed flow pattern is a partial
//!   permutation, the wavefront-eligibility certificate fires
//!   (`fabric_rounds == 1`), and the wavefront fast path must agree
//!   **bit for bit** with the discrete-event DAG oracle — hop overhead
//!   included;
//! * a fabric with zero hop latency reproduces the uniform dedicated
//!   platform's reports bitwise (the refactor is conservative);
//! * an irregular flow multiset (several flows leaving one processor)
//!   drops to the DAG oracle with the serialization model, and can only
//!   slow execution down relative to dedicated links.

use cpo_model::generator::{random_apps, random_fully_homogeneous, AppGenConfig, PlatformGenConfig};
use cpo_model::prelude::*;
use cpo_simulator::{simulate_reference_dag, simulate_with_buffers, SimReport};
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Random valid interval mapping (same shape as the tier-1 suite's).
fn random_mapping(apps: &AppSet, platform: &Platform, rng: &mut StdRng) -> Option<Mapping> {
    let mut procs: Vec<usize> = (0..platform.p()).collect();
    procs.shuffle(rng);
    let mut mapping = Mapping::new();
    let mut next = 0usize;
    for (a, app) in apps.apps.iter().enumerate() {
        let mut first = 0usize;
        while first < app.n() {
            let last = rng.gen_range(first..app.n());
            if next >= procs.len() {
                return None;
            }
            let u = procs[next];
            next += 1;
            let mode = rng.gen_range(0..platform.procs[u].modes());
            mapping.push(Interval::new(a, first, last), u, mode);
            first = last + 1;
        }
    }
    Some(mapping)
}

/// Every float in the two reports, compared by bit pattern.
fn assert_bitwise(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(a.apps.len(), b.apps.len(), "{what}: app count");
    for (i, (x, y)) in a.apps.iter().zip(&b.apps).enumerate() {
        assert_eq!(x.completions.len(), y.completions.len(), "{what}: app {i} completions len");
        for (d, (c1, c2)) in x.completions.iter().zip(&y.completions).enumerate() {
            assert_eq!(c1.to_bits(), c2.to_bits(), "{what}: app {i} data set {d}: {c1} vs {c2}");
        }
        assert_eq!(x.first_latency.to_bits(), y.first_latency.to_bits(), "{what}: app {i} latency");
        assert_eq!(
            x.measured_period.to_bits(),
            y.measured_period.to_bits(),
            "{what}: app {i} period"
        );
    }
    assert_eq!(a.period.to_bits(), b.period.to_bits(), "{what}: period");
    assert_eq!(a.latency.to_bits(), b.latency.to_bits(), "{what}: latency");
    assert_eq!(a.makespan.to_bits(), b.makespan.to_bits(), "{what}: makespan");
}

fn fabric_twin(dedicated: &Platform, hop_latency: f64) -> Platform {
    let b = match dedicated.links {
        Links::Uniform(b) => b,
        _ => unreachable!("twin construction needs uniform links"),
    };
    Platform::multistage(dedicated.procs.clone(), MultistageNetwork::new(b, hop_latency).unwrap())
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Valid plain mappings route in one rearrangement round, so the
    /// wavefront stays eligible on fabrics and must equal the DAG oracle
    /// bitwise — with real (non-zero) hop overhead in every interior edge.
    #[test]
    fn fabric_wavefront_matches_dag_bitwise(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBE2E5);
        let apps = random_apps(
            &AppGenConfig { apps: 1 + (seed % 3) as usize, stages: (1, 5), ..Default::default() },
            seed,
        );
        let dedicated = random_fully_homogeneous(
            &PlatformGenConfig { procs: apps.total_stages() + 2, ..Default::default() },
            seed + 1,
        );
        let fabric = fabric_twin(&dedicated, 0.25);
        let Some(mapping) = random_mapping(&apps, &fabric, &mut rng) else { return };
        let datasets = 2 + (seed % 40) as usize;
        for model in [CommModel::Overlap, CommModel::NoOverlap] {
            for capacity in [usize::MAX, 2] {
                let wf = simulate_with_buffers(&apps, &fabric, &mapping, model, datasets, capacity);
                let dag = simulate_reference_dag(&apps, &fabric, &mapping, model, datasets, capacity);
                assert_bitwise(&wf, &dag, "fabric wavefront vs dag");
            }
        }
    }

    /// Zero hop latency: the fabric simulation is the dedicated
    /// simulation, bit for bit, on both engines.
    #[test]
    fn zero_latency_fabric_simulates_equal_dedicated(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0FAB);
        let apps = random_apps(
            &AppGenConfig { apps: 2, stages: (1, 5), ..Default::default() },
            seed,
        );
        let dedicated = random_fully_homogeneous(
            &PlatformGenConfig { procs: apps.total_stages() + 2, ..Default::default() },
            seed + 1,
        );
        let fabric = fabric_twin(&dedicated, 0.0);
        let Some(mapping) = random_mapping(&apps, &dedicated, &mut rng) else { return };
        let datasets = 2 + (seed % 40) as usize;
        for model in [CommModel::Overlap, CommModel::NoOverlap] {
            let d = simulate_with_buffers(&apps, &dedicated, &mapping, model, datasets, 3);
            let f = simulate_with_buffers(&apps, &fabric, &mapping, model, datasets, 3);
            assert_bitwise(&d, &f, "dedicated vs zero-latency fabric");
            let dd = simulate_reference_dag(&apps, &dedicated, &mapping, model, datasets, 3);
            let fd = simulate_reference_dag(&apps, &fabric, &mapping, model, datasets, 3);
            assert_bitwise(&dd, &fd, "dedicated vs zero-latency fabric (dag)");
        }
    }
}

/// A chain split across two processors on a real fabric: the interior
/// edge pays the stage-traversal overhead, so the fabric run is strictly
/// slower than the dedicated twin — while the I/O edges stay front-end
/// priced and every completion still agrees across both engines. (Flow
/// multisets needing several rearrangement rounds cannot arise from valid
/// plain mappings — each enrolled processor hosts one interval, so the
/// traffic is a partial permutation; the serialization path is exercised
/// by the `pipeline` unit tests that can bypass mapping validation.)
#[test]
fn hop_overhead_is_visible_on_crossing_edges() {
    let app = cpo_model::application::Application::from_pairs(1.0, &[(2.0, 3.0), (1.0, 0.0)]);
    let apps = AppSet::single(app);
    let dedicated = Platform::fully_homogeneous(2, vec![1.0], 1.0).unwrap();
    let fabric = fabric_twin(&dedicated, 0.5);
    let mapping = Mapping::new()
        .with(Interval::new(0, 0, 0), 0, 0)
        .with(Interval::new(0, 1, 1), 1, 0);
    for model in [CommModel::Overlap, CommModel::NoOverlap] {
        let f = simulate_with_buffers(&apps, &fabric, &mapping, model, 16, usize::MAX);
        let dag = simulate_reference_dag(&apps, &fabric, &mapping, model, 16, usize::MAX);
        assert_bitwise(&f, &dag, "fabric run vs dag");
        let d = simulate_with_buffers(&apps, &dedicated, &mapping, model, 16, usize::MAX);
        assert!(
            f.makespan > d.makespan,
            "hop overhead must slow the crossing edge: {} vs {}",
            f.makespan,
            d.makespan
        );
        for (fa, da) in f.apps.iter().zip(&d.apps) {
            for (cf, cd) in fa.completions.iter().zip(&da.completions) {
                assert!(cf >= cd, "fabric completion earlier than dedicated: {cf} < {cd}");
            }
        }
    }
}
