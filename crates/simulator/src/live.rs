//! Live multi-threaded pipeline executor.
//!
//! Runs a linear-chain application for real: one OS thread per enrolled
//! processor (interval of stages), bounded crossbeam channels as the
//! communication links (capacity 1 reproduces the synchronous pipelined
//! regime of the paper), and wall-clock measurements of throughput
//! (1/period) and per-item latency.
//!
//! This is the demonstrator bridging the abstract model to actual
//! execution — see `examples/live_stream.rs`.

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A stage function: consumes one item, produces one item.
pub type StageFn<T> = Box<dyn FnMut(T) -> T + Send>;

/// A timestamped channel pair (item plus its injection instant).
type Link<T> = (Sender<(T, Instant)>, Receiver<(T, Instant)>);

/// A builder for a live pipeline: an ordered list of stage workers.
pub struct LivePipeline<T> {
    stages: Vec<StageFn<T>>,
    capacity: usize,
}

/// Wall-clock measurements of a live run.
#[derive(Debug, Clone)]
pub struct LiveReport {
    /// Number of items processed end to end.
    pub items: usize,
    /// Total wall-clock time from first injection to last completion.
    pub elapsed: Duration,
    /// Items per second (inverse of the measured period).
    pub throughput: f64,
    /// Mean per-item latency (injection → completion).
    pub mean_latency: Duration,
    /// Maximum per-item latency.
    pub max_latency: Duration,
}

impl<T: Send + 'static> LivePipeline<T> {
    /// Empty pipeline with link capacity 1 (fully synchronous pipelining).
    pub fn new() -> Self {
        LivePipeline { stages: Vec::new(), capacity: 1 }
    }

    /// Set the channel capacity of every link (≥ 1).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "links need capacity at least 1");
        self.capacity = capacity;
        self
    }

    /// Append a stage worker (one thread).
    pub fn stage(mut self, f: impl FnMut(T) -> T + Send + 'static) -> Self {
        self.stages.push(Box::new(f));
        self
    }

    /// Number of stage workers.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when no stage was added.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Run all `inputs` through the pipeline; returns outputs in order and
    /// the wall-clock report. Panics on an empty pipeline.
    pub fn run(self, inputs: Vec<T>) -> (Vec<T>, LiveReport) {
        assert!(!self.stages.is_empty(), "a pipeline needs at least one stage");
        let items = inputs.len();
        let latencies: Arc<Mutex<Vec<Duration>>> =
            Arc::new(Mutex::new(Vec::with_capacity(items)));

        let (inject_tx, mut upstream): Link<T> = bounded(self.capacity);
        let mut handles = Vec::with_capacity(self.stages.len());
        let stage_count = self.stages.len();
        for (i, mut f) in self.stages.into_iter().enumerate() {
            let (tx, rx): Link<T> = bounded(self.capacity);
            let input = upstream;
            let lat = Arc::clone(&latencies);
            let is_last = i + 1 == stage_count;
            let handle = std::thread::spawn(move || {
                let mut outputs: Vec<T> = Vec::new();
                for (item, t0) in input.iter() {
                    let out = f(item);
                    if is_last {
                        lat.lock().push(t0.elapsed());
                        outputs.push(out);
                    } else {
                        // Receiver hung up means early shutdown: stop.
                        if tx.send((out, t0)).is_err() {
                            break;
                        }
                    }
                }
                outputs
            });
            handles.push(handle);
            upstream = rx;
        }
        drop(upstream); // the last stage's tx side is unused

        let started = Instant::now();
        for item in inputs {
            inject_tx.send((item, Instant::now())).expect("pipeline alive");
        }
        drop(inject_tx);

        let mut outputs = Vec::new();
        for handle in handles {
            let mut out = handle.join().expect("stage thread panicked");
            outputs.append(&mut out);
        }
        let elapsed = started.elapsed();

        let lats = latencies.lock();
        let mean_latency = if lats.is_empty() {
            Duration::ZERO
        } else {
            lats.iter().sum::<Duration>() / lats.len() as u32
        };
        let max_latency = lats.iter().copied().max().unwrap_or(Duration::ZERO);
        let throughput = if elapsed.as_secs_f64() > 0.0 {
            items as f64 / elapsed.as_secs_f64()
        } else {
            f64::INFINITY
        };
        (
            outputs,
            LiveReport { items, elapsed, throughput, mean_latency, max_latency },
        )
    }
}

impl<T: Send + 'static> Default for LivePipeline<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Busy-spin for roughly `ops` arithmetic operations — a portable stand-in
/// for stage computation requirements in demos and benches.
pub fn spin_work(ops: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..ops {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        std::hint::black_box(acc);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_pipeline_preserves_items() {
        let pipe = LivePipeline::new().stage(|x: u64| x).stage(|x| x);
        let (out, rep) = pipe.run((0..100).collect());
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        assert_eq!(rep.items, 100);
        assert!(rep.throughput > 0.0);
    }

    #[test]
    fn stages_compose_in_order() {
        let pipe = LivePipeline::new().stage(|x: i64| x + 1).stage(|x| x * 10);
        let (out, _) = pipe.run(vec![1, 2, 3]);
        assert_eq!(out, vec![20, 30, 40]);
    }

    #[test]
    fn latency_reported_positive() {
        let pipe = LivePipeline::new().stage(|x: u64| {
            std::thread::sleep(Duration::from_micros(200));
            x
        });
        let (_, rep) = pipe.run(vec![1, 2, 3, 4]);
        assert!(rep.mean_latency >= Duration::from_micros(200));
        assert!(rep.max_latency >= rep.mean_latency);
    }

    #[test]
    fn pipelining_beats_serial_execution() {
        // 3 stages × 2ms each, 8 items. Serial: ~48ms; pipelined: ~22ms.
        let mk = || {
            LivePipeline::new()
                .stage(|x: u64| {
                    std::thread::sleep(Duration::from_millis(2));
                    x
                })
                .stage(|x| {
                    std::thread::sleep(Duration::from_millis(2));
                    x
                })
                .stage(|x| {
                    std::thread::sleep(Duration::from_millis(2));
                    x
                })
        };
        let (_, rep) = mk().run((0..8).collect());
        let serial = Duration::from_millis(3 * 2 * 8);
        assert!(
            rep.elapsed < serial,
            "pipelined {:?} should beat serial {:?}",
            rep.elapsed,
            serial
        );
    }

    #[test]
    fn empty_input_is_fine() {
        let pipe = LivePipeline::new().stage(|x: u64| x);
        let (out, rep) = pipe.run(vec![]);
        assert!(out.is_empty());
        assert_eq!(rep.items, 0);
        assert_eq!(rep.mean_latency, Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_pipeline_panics() {
        let pipe: LivePipeline<u64> = LivePipeline::new();
        let _ = pipe.run(vec![1]);
    }

    #[test]
    fn spin_work_is_deterministic() {
        assert_eq!(spin_work(1000), spin_work(1000));
    }
}
