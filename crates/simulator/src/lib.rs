//! # cpo-simulator — executing mappings instead of trusting formulas
//!
//! The paper *defines* the period and latency of a mapping analytically
//! (Eqs. 3–5). This crate closes the loop by actually **executing**
//! mappings:
//!
//! * [`engine`] — a deterministic discrete-event engine (calendar queue
//!   over a dependency DAG of operations);
//! * [`pipeline`] — the pipelined execution of a mapping: every data set
//!   flows through receive → compute → send operations whose dependency
//!   structure encodes the overlap / no-overlap semantics of Section 3.2;
//!   the report contains the *measured* steady-state period, first-data-set
//!   latency and energy, which the integration tests compare against the
//!   analytic evaluator;
//! * [`trace`] — schedule traces and ASCII Gantt charts;
//! * [`jitter`] — robustness analysis under multiplicative execution noise;
//! * [`live`] — a real multi-threaded executor (one thread per enrolled
//!   processor, crossbeam channels as links) that runs user-supplied stage
//!   functions, demonstrating a mapping on actual hardware.

pub mod engine;
pub mod jitter;
pub mod live;
pub mod pipeline;
pub mod trace;

pub use engine::{Engine, OpId};
pub use live::{LivePipeline, LiveReport};
pub use pipeline::{simulate, simulate_with_buffers, AppTimes, OpMeta, SimReport};
pub use jitter::{jitter_analysis, JitterReport};
pub use trace::{simulate_traced, Trace, TraceEntry};
