//! # cpo-simulator — executing mappings instead of trusting formulas
//!
//! The paper *defines* the period and latency of a mapping analytically
//! (Eqs. 3–5). This crate closes the loop by actually **executing**
//! mappings:
//!
//! * [`wavefront`] — the hot path: a flat SoA rolling recurrence over the
//!   regular (data set × operation) grid that interval mappings induce,
//!   with certified steady-state fast-forward — bitwise identical to the
//!   event engine at a fraction of the cost;
//! * [`engine`] — a deterministic discrete-event engine (calendar queue
//!   over a dependency DAG of operations), kept for irregular DAGs and as
//!   the oracle the wavefront is proved against;
//! * [`pipeline`] — the pipelined execution of a mapping: every data set
//!   flows through receive → compute → send operations whose dependency
//!   structure encodes the overlap / no-overlap semantics of Section 3.2;
//!   the report contains the *measured* steady-state period, first-data-set
//!   latency and energy, which the integration tests compare against the
//!   analytic evaluator;
//! * [`trace`] — schedule traces and ASCII Gantt charts;
//! * [`jitter`] — robustness analysis under multiplicative execution noise;
//! * [`live`] — a real multi-threaded executor (one thread per enrolled
//!   processor, crossbeam channels as links) that runs user-supplied stage
//!   functions, demonstrating a mapping on actual hardware.

pub mod engine;
pub mod jitter;
pub mod live;
pub mod pipeline;
pub mod trace;
pub mod wavefront;

pub use engine::{Engine, OpId};
pub use live::{LivePipeline, LiveReport};
pub use pipeline::{
    simulate, simulate_reference_dag, simulate_with_buffers, AppTimes, OpMeta, SimReport,
};
pub use jitter::{jitter_analysis, JitterReport};
pub use trace::{simulate_traced, Trace, TraceEntry};
pub use wavefront::{simulate_wavefront, SteadyState};
