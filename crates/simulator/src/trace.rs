//! Schedule traces and ASCII Gantt charts.
//!
//! [`simulate_traced`] runs the same discrete-event simulation as
//! [`crate::pipeline::simulate`] but additionally returns every operation's
//! `(start, end)` interval, tagged with its processor or link. The
//! [`Trace::gantt`] renderer draws per-resource timelines — the quickest
//! way to *see* why a mapping's period is what it is (which resource is
//! saturated, where the pipeline bubbles are).

use crate::pipeline::{build_and_run, OpMeta, SimReport};
use cpo_model::prelude::*;

/// One scheduled operation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// What ran.
    pub meta: OpMeta,
    /// Start time.
    pub start: f64,
    /// End time.
    pub end: f64,
}

/// A full schedule trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All operations, sorted by start time.
    pub entries: Vec<TraceEntry>,
    /// Simulated horizon.
    pub makespan: f64,
}

impl Trace {
    /// Operations executed by processor `u` (computes only).
    pub fn proc_ops(&self, u: usize) -> impl Iterator<Item = &TraceEntry> + '_ {
        self.entries
            .iter()
            .filter(move |e| matches!(e.meta, OpMeta::Compute { proc, .. } if proc == u))
    }

    /// Operations on edge `edge` of application `app`.
    pub fn edge_ops(&self, app: usize, edge: usize) -> impl Iterator<Item = &TraceEntry> + '_ {
        self.entries.iter().filter(move |e| {
            matches!(e.meta, OpMeta::Transfer { app: a, edge: j, .. } if a == app && j == edge)
        })
    }

    /// Render an ASCII Gantt chart of the processors' compute activity,
    /// `width` characters wide. Each data set is drawn with the digit
    /// `dataset % 10`; idle time is `·`.
    pub fn gantt(&self, platform: &Platform, width: usize) -> String {
        let width = width.max(10);
        let scale = if self.makespan > 0.0 { width as f64 / self.makespan } else { 0.0 };
        let mut out = String::new();
        for u in 0..platform.p() {
            let mut row = vec!['·'; width];
            let mut any = false;
            for e in self.proc_ops(u) {
                any = true;
                let dataset = match e.meta {
                    OpMeta::Compute { dataset, .. } => dataset,
                    OpMeta::Transfer { dataset, .. } => dataset,
                };
                let c = char::from_digit((dataset % 10) as u32, 10).expect("digit");
                let lo = (e.start * scale).floor() as usize;
                let hi = ((e.end * scale).ceil() as usize).min(width).max(lo + 1);
                for cell in row.iter_mut().take(hi.min(width)).skip(lo.min(width)) {
                    *cell = c;
                }
            }
            if any {
                out.push_str(&format!("P{:<3} |", u + 1));
                out.extend(row);
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "      0{:>width$.2}\n",
            self.makespan,
            width = width.saturating_sub(1)
        ));
        out
    }
}

/// Run the simulation and return both the report and the full trace.
pub fn simulate_traced(
    apps: &AppSet,
    platform: &Platform,
    mapping: &Mapping,
    model: CommModel,
    datasets: usize,
) -> (SimReport, Trace) {
    let (report, engine, meta) = build_and_run(apps, platform, mapping, model, datasets, usize::MAX);
    let mut entries: Vec<TraceEntry> = meta
        .into_iter()
        .enumerate()
        .map(|(op, m)| TraceEntry { meta: m, start: engine.start_of(op), end: engine.end_of(op) })
        .collect();
    entries.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite times"));
    let makespan = report.makespan;
    (report, Trace { entries, makespan })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::generator::section2_example;
    use cpo_model::mapping::Interval;

    fn mapping() -> Mapping {
        Mapping::new()
            .with(Interval::new(0, 0, 2), 2, 1)
            .with(Interval::new(1, 0, 1), 1, 1)
            .with(Interval::new(1, 2, 3), 0, 1)
    }

    #[test]
    fn trace_covers_all_operations() {
        let (apps, pf) = section2_example();
        let datasets = 8;
        let (report, trace) = simulate_traced(&apps, &pf, &mapping(), CommModel::Overlap, datasets);
        // App0: 1 node → 2 edges + 1 compute = 3 ops/dataset; app1: 2 nodes
        // → 3 edges + 2 computes = 5 ops/dataset.
        assert_eq!(trace.entries.len(), (3 + 5) * datasets);
        assert_eq!(trace.makespan, report.makespan);
        // Entries sorted by start and contained in [0, makespan].
        for w in trace.entries.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        for e in &trace.entries {
            assert!(e.start >= 0.0 && e.end <= trace.makespan + 1e-9);
            assert!(e.end >= e.start);
        }
    }

    #[test]
    fn per_processor_ops_are_disjoint_in_time() {
        let (apps, pf) = section2_example();
        let (_, trace) = simulate_traced(&apps, &pf, &mapping(), CommModel::Overlap, 16);
        for u in 0..3 {
            let mut ops: Vec<(f64, f64)> = trace.proc_ops(u).map(|e| (e.start, e.end)).collect();
            ops.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
            for w in ops.windows(2) {
                assert!(
                    w[1].0 >= w[0].1 - 1e-9,
                    "P{u}: overlapping computes {w:?}"
                );
            }
        }
    }

    #[test]
    fn link_ops_are_serial_per_edge() {
        let (apps, pf) = section2_example();
        let (_, trace) = simulate_traced(&apps, &pf, &mapping(), CommModel::NoOverlap, 12);
        for app in 0..2 {
            for edge in 0..=2 {
                let mut ops: Vec<(f64, f64)> =
                    trace.edge_ops(app, edge).map(|e| (e.start, e.end)).collect();
                ops.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
                for w in ops.windows(2) {
                    assert!(w[1].0 >= w[0].1 - 1e-9, "app {app} edge {edge}");
                }
            }
        }
    }

    #[test]
    fn gantt_renders_all_processors() {
        let (apps, pf) = section2_example();
        let (_, trace) = simulate_traced(&apps, &pf, &mapping(), CommModel::Overlap, 6);
        let chart = trace.gantt(&pf, 72);
        assert_eq!(chart.lines().count(), 4); // 3 processors + time axis
        assert!(chart.contains("P1"));
        assert!(chart.contains("P3"));
        // Early data sets appear as digits.
        assert!(chart.contains('0'));
        assert!(chart.contains('5'));
    }

    #[test]
    fn traced_report_matches_untraced() {
        let (apps, pf) = section2_example();
        let (report, _) = simulate_traced(&apps, &pf, &mapping(), CommModel::Overlap, 24);
        let plain = crate::pipeline::simulate(&apps, &pf, &mapping(), CommModel::Overlap, 24);
        assert_eq!(report.period, plain.period);
        assert_eq!(report.latency, plain.latency);
        assert_eq!(report.makespan, plain.makespan);
    }
}
