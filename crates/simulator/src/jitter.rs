//! Robustness under execution noise.
//!
//! The paper's model is deterministic: stage `k` always takes exactly
//! `w_k/s` time units. Real platforms jitter (cache effects, OS noise,
//! congestion). This module re-runs the pipelined execution with every
//! operation duration independently perturbed by a seeded multiplicative
//! factor `U(1-ε, 1+ε)` and reports the measured period/latency
//! degradation — the question a practitioner asks before trusting a
//! mapping chosen by the deterministic optimizer.
//!
//! Because the schedule is a longest-path computation (max-plus), the
//! *expected* period under zero-mean noise is **at least** the
//! deterministic period (Jensen's inequality on the max), which the tests
//! verify empirically.

#![allow(clippy::too_many_arguments)]

use crate::engine::Engine;
use cpo_model::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Result of a jittered run.
#[derive(Debug, Clone)]
pub struct JitterReport {
    /// Deterministic (no-noise) steady-state period.
    pub baseline_period: f64,
    /// Mean measured period over the trials.
    pub mean_period: f64,
    /// Worst measured period.
    pub max_period: f64,
    /// Mean first-data-set latency over the trials.
    pub mean_latency: f64,
    /// Number of trials.
    pub trials: usize,
}

impl JitterReport {
    /// Mean relative period degradation (`mean/baseline - 1`).
    pub fn degradation(&self) -> f64 {
        self.mean_period / self.baseline_period - 1.0
    }
}

/// Measured period and latency of one jittered run.
fn jittered_run(
    apps: &AppSet,
    platform: &Platform,
    mapping: &Mapping,
    model: CommModel,
    datasets: usize,
    epsilon: f64,
    rng: &mut StdRng,
) -> (f64, f64) {
    // Rebuild the dependency DAG with perturbed durations. Reuses the same
    // structural logic as the deterministic simulator, but durations are
    // per-operation samples rather than per-stage constants.
    let mut engine = Engine::new();
    let mut per_app_outputs = Vec::with_capacity(apps.a());
    for (a, app) in apps.apps.iter().enumerate() {
        let chain = mapping.app_chain(a);
        let m = chain.len();
        let (base_transfer, base_compute) =
            crate::pipeline::chain_durations(app, a, platform, &chain);
        let mut jig = |d: f64| {
            if d == 0.0 || epsilon == 0.0 {
                d
            } else {
                d * rng.gen_range(1.0 - epsilon..=1.0 + epsilon)
            }
        };

        let mut prev_t: Vec<Option<usize>> = vec![None; m + 1];
        let mut prev_c: Vec<Option<usize>> = vec![None; m];
        let mut outputs = Vec::with_capacity(datasets);
        for _d in 0..datasets {
            let mut cur_t: Vec<usize> = Vec::with_capacity(m + 1);
            let mut cur_c: Vec<usize> = Vec::with_capacity(m);
            for j in 0..=m {
                let mut deps: Vec<usize> = Vec::with_capacity(3);
                if j > 0 {
                    deps.push(cur_c[j - 1]);
                }
                if let Some(t) = prev_t[j] {
                    deps.push(t);
                }
                if model == CommModel::NoOverlap && j < m {
                    if let Some(t) = prev_t[j + 1] {
                        deps.push(t);
                    }
                }
                let t_op = engine.add_op(jig(base_transfer[j]), None, &deps);
                cur_t.push(t_op);
                if j < m {
                    let mut cdeps: Vec<usize> = vec![t_op];
                    if let Some(c) = prev_c[j] {
                        cdeps.push(c);
                    }
                    let c_op = engine.add_op(jig(base_compute[j]), None, &cdeps);
                    cur_c.push(c_op);
                }
            }
            outputs.push(cur_t[m]);
            prev_t = cur_t.into_iter().map(Some).collect();
            prev_c = cur_c.into_iter().map(Some).collect();
        }
        per_app_outputs.push(outputs);
    }
    engine.run().expect("jittered durations are finite");

    let mut period = 0.0f64;
    let mut latency = 0.0f64;
    for (a, outputs) in per_app_outputs.iter().enumerate() {
        let completions: Vec<f64> = outputs.iter().map(|&op| engine.end_of(op)).collect();
        let lo = completions.len() / 2;
        let hi = completions.len() - 1;
        let t = if hi > lo {
            (completions[hi] - completions[lo]) / (hi - lo) as f64
        } else {
            completions[hi]
        };
        period = cpo_model::num::fmax(period, apps.apps[a].weight * t);
        latency = cpo_model::num::fmax(latency, apps.apps[a].weight * completions[0]);
    }
    (period, latency)
}

/// Run `trials` independent jittered executions (`±epsilon` multiplicative
/// noise on every operation) and aggregate the degradation statistics.
pub fn jitter_analysis(
    apps: &AppSet,
    platform: &Platform,
    mapping: &Mapping,
    model: CommModel,
    datasets: usize,
    epsilon: f64,
    trials: usize,
    seed: u64,
) -> JitterReport {
    assert!((0.0..1.0).contains(&epsilon), "epsilon must be in [0, 1)");
    assert!(trials > 0 && datasets > 1);
    mapping.validate(apps, platform).expect("valid mapping");
    let baseline = crate::pipeline::simulate(apps, platform, mapping, model, datasets);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sum_t = 0.0;
    let mut max_t = 0.0f64;
    let mut sum_l = 0.0;
    for _ in 0..trials {
        let (t, l) = jittered_run(apps, platform, mapping, model, datasets, epsilon, &mut rng);
        sum_t += t;
        max_t = max_t.max(t);
        sum_l += l;
    }
    JitterReport {
        baseline_period: baseline.period,
        mean_period: sum_t / trials as f64,
        max_period: max_t,
        mean_latency: sum_l / trials as f64,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::generator::section2_example;
    use cpo_model::mapping::Interval;

    fn mapping() -> Mapping {
        Mapping::new()
            .with(Interval::new(0, 0, 2), 2, 1)
            .with(Interval::new(1, 0, 1), 1, 1)
            .with(Interval::new(1, 2, 3), 0, 1)
    }

    #[test]
    fn zero_noise_matches_deterministic() {
        let (apps, pf) = section2_example();
        let rep = jitter_analysis(&apps, &pf, &mapping(), CommModel::Overlap, 32, 0.0, 3, 1);
        assert!((rep.mean_period - rep.baseline_period).abs() < 1e-9);
        assert!((rep.degradation()).abs() < 1e-9);
    }

    #[test]
    fn noise_degrades_the_period_on_average() {
        let (apps, pf) = section2_example();
        let rep = jitter_analysis(&apps, &pf, &mapping(), CommModel::Overlap, 64, 0.2, 16, 2);
        assert!(
            rep.mean_period >= rep.baseline_period * 0.999,
            "max-plus noise cannot speed up steady state: {} vs {}",
            rep.mean_period,
            rep.baseline_period
        );
        assert!(rep.max_period >= rep.mean_period);
        // With ±20% noise the degradation stays bounded (sanity).
        assert!(rep.degradation() < 0.5);
    }

    #[test]
    fn degradation_grows_with_epsilon() {
        let (apps, pf) = section2_example();
        let mut last = -1.0;
        for eps in [0.0, 0.1, 0.3] {
            let rep =
                jitter_analysis(&apps, &pf, &mapping(), CommModel::Overlap, 48, eps, 24, 3);
            assert!(
                rep.degradation() >= last - 0.02,
                "eps {eps}: degradation should broadly grow"
            );
            last = rep.degradation();
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (apps, pf) = section2_example();
        let a = jitter_analysis(&apps, &pf, &mapping(), CommModel::Overlap, 32, 0.2, 5, 7);
        let b = jitter_analysis(&apps, &pf, &mapping(), CommModel::Overlap, 32, 0.2, 5, 7);
        assert_eq!(a.mean_period, b.mean_period);
        assert_eq!(a.max_period, b.max_period);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in [0, 1)")]
    fn epsilon_range_enforced() {
        let (apps, pf) = section2_example();
        let _ = jitter_analysis(&apps, &pf, &mapping(), CommModel::Overlap, 8, 1.5, 2, 1);
    }
}
