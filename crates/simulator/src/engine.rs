//! Deterministic discrete-event engine over an operation dependency DAG.
//!
//! Operations are registered with a fixed duration and a list of
//! dependencies (operations that must *finish* before this one starts).
//! The engine releases each operation as soon as its last dependency
//! completes — the "execute as soon as possible" schedule that interval
//! mappings admit (Section 3.3 of the paper: acyclic execution graph, at
//! most one incoming and one outgoing communication per processor).
//!
//! The run is a longest-path computation executed event by event with a
//! calendar queue, so the engine also records, per declared resource, the
//! total busy time (for utilization reports).

use cpo_model::error::ModelError;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier of a registered operation.
pub type OpId = usize;

/// Identifier of a declared resource (for busy-time accounting only).
pub type ResourceId = usize;

struct Op {
    duration: f64,
    /// Number of dependencies not yet finished.
    pending: usize,
    /// Operations depending on this one.
    dependents: Vec<OpId>,
    /// Resource charged for the busy time (optional).
    resource: Option<ResourceId>,
    /// Earliest start so far (max of finished dependency end times).
    ready_at: f64,
    start: f64,
    end: f64,
    done: bool,
}

/// Heap entry ordered by (time, op id) for determinism.
struct Scheduled {
    time: f64,
    op: OpId,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.op == other.op
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; tie-break on op id. `total_cmp` keeps
        // the ordering total even on contaminated inputs — [`Engine::run`]
        // rejects those with a typed error before any event is popped.
        other.time.total_cmp(&self.time).then(other.op.cmp(&self.op))
    }
}

/// The discrete-event engine.
#[derive(Default)]
pub struct Engine {
    ops: Vec<Op>,
    resources: Vec<f64>, // busy time per resource
}

impl Engine {
    /// Fresh engine.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Declare a resource for busy-time accounting; returns its id.
    pub fn add_resource(&mut self) -> ResourceId {
        self.resources.push(0.0);
        self.resources.len() - 1
    }

    /// Register an operation with a duration, an optional resource and its
    /// dependencies. Dependencies must already be registered (DAG built in
    /// topological order of declaration).
    pub fn add_op(&mut self, duration: f64, resource: Option<ResourceId>, deps: &[OpId]) -> OpId {
        // NaN and +∞ are deferred to [`Engine::run`], which reports them
        // as a typed [`ModelError::NonFiniteData`] instead of panicking.
        // (`>= || NaN` keeps NaN flowing to the typed check in `run`.)
        assert!(duration >= 0.0 || duration.is_nan(), "operation durations must be non-negative");
        let id = self.ops.len();
        let mut pending = 0;
        for &d in deps {
            assert!(d < id, "dependencies must be declared before dependents");
            pending += 1;
        }
        self.ops.push(Op {
            duration,
            pending,
            dependents: Vec::new(),
            resource,
            ready_at: 0.0,
            start: f64::NAN,
            end: f64::NAN,
            done: false,
        });
        for &d in deps {
            self.ops[d].dependents.push(id);
        }
        id
    }

    /// Run the simulation to completion; returns the makespan.
    ///
    /// Returns [`ModelError::NonFiniteData`] when any registered duration
    /// is NaN or infinite (e.g. NaN-contaminated stage data that slipped
    /// past model validation) — the same convention as
    /// `PeriodTable::partition` in `cpo_core` — instead of panicking
    /// mid-run on an unordered event time.
    ///
    /// Panics if the dependency graph is cyclic (some operation never
    /// becomes ready) — impossible for graphs built by
    /// [`crate::pipeline::simulate`].
    pub fn run(&mut self) -> Result<f64, ModelError> {
        if self.ops.iter().any(|op| !op.duration.is_finite()) {
            return Err(ModelError::NonFiniteData { what: "simulator operation durations" });
        }
        let mut heap: BinaryHeap<Scheduled> = BinaryHeap::new();
        // Seed with operations that have no pending dependencies.
        for (id, op) in self.ops.iter().enumerate() {
            if op.pending == 0 {
                heap.push(Scheduled { time: op.ready_at + op.duration, op: id });
            }
        }
        let mut completed = 0usize;
        let mut makespan = 0.0f64;
        while let Some(Scheduled { time, op: id }) = heap.pop() {
            if self.ops[id].done {
                continue;
            }
            self.ops[id].done = true;
            self.ops[id].start = time - self.ops[id].duration;
            self.ops[id].end = time;
            if let Some(r) = self.ops[id].resource {
                self.resources[r] += self.ops[id].duration;
            }
            makespan = makespan.max(time);
            completed += 1;
            let dependents = std::mem::take(&mut self.ops[id].dependents);
            for dep in &dependents {
                let op = &mut self.ops[*dep];
                op.ready_at = op.ready_at.max(time);
                op.pending -= 1;
                if op.pending == 0 {
                    heap.push(Scheduled { time: op.ready_at + op.duration, op: *dep });
                }
            }
            self.ops[id].dependents = dependents;
        }
        assert_eq!(completed, self.ops.len(), "dependency graph must be acyclic and connected to sources");
        Ok(makespan)
    }

    /// End time of an operation (NaN before [`run`](Engine::run)).
    pub fn end_of(&self, op: OpId) -> f64 {
        self.ops[op].end
    }

    /// Start time of an operation.
    pub fn start_of(&self, op: OpId) -> f64 {
        self.ops[op].start
    }

    /// Busy time accumulated on a resource.
    pub fn busy(&self, r: ResourceId) -> f64 {
        self.resources[r]
    }

    /// Number of registered operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operation is registered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_sequential() {
        let mut e = Engine::new();
        let a = e.add_op(2.0, None, &[]);
        let b = e.add_op(3.0, None, &[a]);
        let c = e.add_op(1.0, None, &[b]);
        assert_eq!(e.run().unwrap(), 6.0);
        assert_eq!(e.end_of(a), 2.0);
        assert_eq!(e.start_of(b), 2.0);
        assert_eq!(e.end_of(c), 6.0);
    }

    #[test]
    fn diamond_takes_longest_path() {
        let mut e = Engine::new();
        let s = e.add_op(1.0, None, &[]);
        let l = e.add_op(5.0, None, &[s]);
        let r = e.add_op(2.0, None, &[s]);
        let j = e.add_op(1.0, None, &[l, r]);
        assert_eq!(e.run().unwrap(), 7.0);
        assert_eq!(e.start_of(j), 6.0);
    }

    #[test]
    fn independent_ops_run_in_parallel() {
        let mut e = Engine::new();
        let a = e.add_op(4.0, None, &[]);
        let b = e.add_op(2.0, None, &[]);
        assert_eq!(e.run().unwrap(), 4.0);
        assert_eq!(e.start_of(a), 0.0);
        assert_eq!(e.start_of(b), 0.0);
    }

    #[test]
    fn resource_busy_time_accumulates() {
        let mut e = Engine::new();
        let r = e.add_resource();
        let a = e.add_op(2.0, Some(r), &[]);
        let _b = e.add_op(3.0, Some(r), &[a]);
        e.run().unwrap();
        assert_eq!(e.busy(r), 5.0);
    }

    #[test]
    fn zero_duration_ops_are_fine() {
        let mut e = Engine::new();
        let a = e.add_op(0.0, None, &[]);
        let b = e.add_op(0.0, None, &[a]);
        assert_eq!(e.run().unwrap(), 0.0);
        assert_eq!(e.end_of(b), 0.0);
    }

    #[test]
    #[should_panic(expected = "declared before dependents")]
    fn forward_dependency_rejected() {
        let mut e = Engine::new();
        let _ = e.add_op(1.0, None, &[3]);
    }

    #[test]
    fn nan_duration_is_a_typed_error_not_a_panic() {
        let mut e = Engine::new();
        let a = e.add_op(1.0, None, &[]);
        let _ = e.add_op(f64::NAN, None, &[a]);
        assert_eq!(
            e.run(),
            Err(ModelError::NonFiniteData { what: "simulator operation durations" })
        );
    }

    #[test]
    fn infinite_duration_is_a_typed_error_too() {
        let mut e = Engine::new();
        let _ = e.add_op(f64::INFINITY, None, &[]);
        assert!(matches!(e.run(), Err(ModelError::NonFiniteData { .. })));
    }

    #[test]
    fn determinism_under_ties() {
        // Two identical runs produce identical schedules.
        let build = || {
            let mut e = Engine::new();
            let a = e.add_op(1.0, None, &[]);
            let b = e.add_op(1.0, None, &[]);
            let c = e.add_op(1.0, None, &[a, b]);
            e.run().unwrap();
            (e.start_of(a), e.start_of(b), e.start_of(c))
        };
        assert_eq!(build(), build());
    }
}
