//! Pipelined execution of a mapping.
//!
//! Every data set `d` of application `a` traverses the chain of interval
//! assignments: a *transfer* along each link (including the `P_in_a` input
//! edge and the `P_out_a` output edge) and a *compute* on each enrolled
//! processor. The dependency structure encodes the paper's scheduling
//! semantics (Section 3.3, "each operation is executed as soon as
//! possible"):
//!
//! * a transfer waits for the producer's compute of the same data set and
//!   for the previous transfer on the same link (links are serial);
//! * a compute waits for its input transfer and the previous compute on the
//!   same processor (processors are serial);
//! * under **no-overlap**, a processor additionally cannot receive data set
//!   `d+1` before finishing its send of data set `d` (receive, compute and
//!   send are serialized), which is exactly one extra dependency per
//!   transfer.
//!
//! [`simulate`] and [`simulate_with_buffers`] execute that structure
//! through the flat [`crate::wavefront`] recurrence — heap-free,
//! `O(stages)` state, with certified steady-state fast-forward. The
//! original event-by-event build over [`crate::engine::Engine`] remains
//! available as [`simulate_reference_dag`]: it is the oracle the
//! wavefront is proved bitwise identical to
//! (`tests/wavefront_equivalence.rs`), and the backend
//! [`crate::trace::simulate_traced`] uses when per-operation intervals
//! are requested.
//!
//! With a saturated source (all data sets available at `t = 0`), the
//! measured steady-state inter-completion gap converges to the analytic
//! period (Eqs. 3/4) and the first data set's completion time equals the
//! analytic latency (Eq. 5) — the integration tests assert both.

use crate::engine::Engine;
use crate::wavefront::{simulate_wavefront, SteadyState};
use cpo_model::mapping::Assignment;
use cpo_model::prelude::*;

/// Timing results for one application.
#[derive(Debug, Clone)]
pub struct AppTimes {
    /// Completion time of every simulated data set.
    pub completions: Vec<f64>,
    /// Completion time of data set 0 = latency of an uncontended data set.
    pub first_latency: f64,
    /// Average inter-completion gap over the second half of the run
    /// (steady state).
    pub measured_period: f64,
    /// The wavefront core's certified steady-state fast-forward, when it
    /// fired (`None` on DAG-engine runs and on instances whose arithmetic
    /// could not be certified exact — see [`crate::wavefront`]).
    pub steady_state: Option<SteadyState>,
}

/// Full simulation report.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-application timings.
    pub apps: Vec<AppTimes>,
    /// Global weighted measured period `max_a W_a · T̂_a`.
    pub period: f64,
    /// Global weighted first-data-set latency `max_a W_a · L̂_a`.
    pub latency: f64,
    /// Power of the enrolled processors (energy per time unit, Section 3.5).
    pub power: f64,
    /// Total simulated time (last completion).
    pub makespan: f64,
    /// `busy[u]` = total compute busy time of processor `u`.
    pub busy: Vec<f64>,
}

impl SimReport {
    /// Compute utilization of processor `u` (busy time / makespan).
    pub fn utilization(&self, u: usize) -> f64 {
        if self.makespan > 0.0 {
            self.busy[u] / self.makespan
        } else {
            0.0
        }
    }

    /// Energy consumed over the simulated horizon (power × makespan).
    pub fn energy_over_horizon(&self) -> f64 {
        self.power * self.makespan
    }
}

/// Simulate `datasets` data sets of every application through `mapping`
/// with unbounded inter-stage buffers (the paper's model).
///
/// Runs on the flat wavefront core (`O(datasets × stages)` worst case,
/// `O(warm-up × stages)` when the steady state certifies — bitwise
/// identical results either way, and bitwise identical to
/// [`simulate_reference_dag`]).
///
/// Panics if the mapping is invalid (call [`Mapping::validate`] first when
/// unsure) or `datasets == 0`.
pub fn simulate(
    apps: &AppSet,
    platform: &Platform,
    mapping: &Mapping,
    model: CommModel,
    datasets: usize,
) -> SimReport {
    simulate_with_buffers(apps, platform, mapping, model, datasets, usize::MAX)
}

/// [`simulate`] with **bounded buffers**: each enrolled processor can hold
/// at most `capacity ≥ 1` received-but-unprocessed data sets, so the
/// transfer of data set `d` into a processor cannot start before that
/// processor began consuming data set `d − capacity`.
///
/// This is an extension beyond the paper (which implicitly assumes enough
/// buffering): with `capacity = 1` the classic coupling appears — under the
/// overlap model the steady period grows from
/// `max(incoming, compute, outgoing)` towards `incoming + compute` on
/// receive-bound processors. `capacity = usize::MAX` recovers the paper's
/// semantics exactly.
pub fn simulate_with_buffers(
    apps: &AppSet,
    platform: &Platform,
    mapping: &Mapping,
    model: CommModel,
    datasets: usize,
    capacity: usize,
) -> SimReport {
    // Wavefront eligibility: the routed communication pattern must be
    // regular (one Benes rearrangement round, i.e. contention-free wires).
    // Valid plain mappings always qualify — on both topologies — so this
    // only drops to the DAG oracle with its serialization model for
    // irregular flow multisets.
    if fabric_rounds(apps, platform, mapping) > 1 {
        return build_and_run(apps, platform, mapping, model, datasets, capacity).0;
    }
    simulate_wavefront(apps, platform, mapping, model, datasets, capacity, true)
}

/// The original discrete-event build over the generic
/// [`Engine`](crate::engine::Engine): one heap event per
/// `(data set × operation)`. Kept as the independently-implemented oracle
/// the wavefront core is proved against, and for irregular extensions the
/// grid recurrence cannot express. Same semantics and panics as
/// [`simulate_with_buffers`].
pub fn simulate_reference_dag(
    apps: &AppSet,
    platform: &Platform,
    mapping: &Mapping,
    model: CommModel,
    datasets: usize,
    capacity: usize,
) -> SimReport {
    build_and_run(apps, platform, mapping, model, datasets, capacity).0
}

/// Metadata attached to every simulated operation (for traces).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpMeta {
    /// A communication along edge `edge` of application `app` (edge 0 is
    /// the input link, edge `m` the output link).
    Transfer {
        /// Application index.
        app: usize,
        /// Edge index along the chain.
        edge: usize,
        /// Data set index.
        dataset: usize,
    },
    /// A computation of chain node `node` on processor `proc`.
    Compute {
        /// Application index.
        app: usize,
        /// Chain position.
        node: usize,
        /// Executing processor.
        proc: usize,
        /// Data set index.
        dataset: usize,
    },
}

/// Per-edge transfer durations (`m + 1` entries, input edge first, output
/// edge last) and per-node compute durations (`m` entries) of one
/// application's chain — the duration vocabulary both simulator cores
/// share. Topology-aware: on `Dedicated` platforms every entry is exactly
/// the historical `δ / bw` division (bit for bit); on `Multistage`
/// platforms the interior edges carry the fabric traversal overhead.
pub(crate) fn chain_durations(
    app: &cpo_model::application::Application,
    a: usize,
    platform: &Platform,
    chain: &[Assignment],
) -> (Vec<f64>, Vec<f64>) {
    chain_durations_with(app, a, platform, chain, 1)
}

/// [`chain_durations`] with an explicit fabric **contention factor**: when
/// `contention > 1` every interior transfer that actually crosses the
/// multistage fabric is stretched by that factor — the conservative
/// serialization model for flow patterns the Benes network can only route
/// in `contention` rearrangement rounds. Plain interval/one-to-one
/// mappings always route in one round ([`fabric_rounds`] returns 1), so
/// this path only fires for irregular extensions.
pub(crate) fn chain_durations_with(
    app: &cpo_model::application::Application,
    a: usize,
    platform: &Platform,
    chain: &[Assignment],
    contention: usize,
) -> (Vec<f64>, Vec<f64>) {
    let m = chain.len();
    let transfer: Vec<f64> = (0..=m)
        .map(|j| {
            if j == 0 {
                platform.transfer_time_input(a, chain[0].proc, app.input)
            } else if j == m {
                platform.transfer_time_output(a, chain[m - 1].proc, app.result_size())
            } else {
                let t = platform.transfer_time_inter(
                    a,
                    chain[j - 1].proc,
                    chain[j].proc,
                    app.input_of(chain[j].interval.first),
                );
                if contention > 1
                    && platform.is_multistage()
                    && chain[j - 1].proc != chain[j].proc
                {
                    t * contention as f64
                } else {
                    t
                }
            }
        })
        .collect();
    let compute: Vec<f64> = chain
        .iter()
        .map(|asg| {
            app.interval_work(asg.interval.first, asg.interval.last)
                / platform.procs[asg.proc].speed(asg.mode)
        })
        .collect();
    (transfer, compute)
}

/// Number of Benes rearrangement rounds needed to route the mapping's
/// inter-processor flows through a multistage fabric — the simulator's
/// wavefront-eligibility certificate. `1` on dedicated links, and `1` on
/// multistage platforms whenever the flow pattern is a partial
/// permutation (always true for valid plain mappings: each enrolled
/// processor hosts one interval, hence at most one predecessor edge and
/// one successor edge). A value above 1 means shared-wire contention:
/// the DAG oracle then runs with the conservative serialization model of
/// [`chain_durations_with`], and the wavefront fast path is skipped.
pub(crate) fn fabric_rounds(apps: &AppSet, platform: &Platform, mapping: &Mapping) -> usize {
    if !platform.is_multistage() {
        return 1;
    }
    let mut flows: Vec<(usize, usize)> = Vec::new();
    for a in 0..apps.a() {
        let chain = mapping.app_chain(a);
        for w in chain.windows(2) {
            if w[0].proc != w[1].proc {
                flows.push((w[0].proc, w[1].proc));
            }
        }
    }
    if flows.is_empty() {
        return 1;
    }
    let net = cpo_matching::BenesNetwork::with_capacity_for(platform.p());
    net.route_rounds(&flows).len().max(1)
}

/// Average inter-completion gap over the second half of the run (NaN for
/// a single data set) — the shared steady-state period estimator.
pub(crate) fn measured_period(completions: &[f64]) -> f64 {
    if completions.len() >= 2 {
        let lo = completions.len() / 2;
        let hi = completions.len() - 1;
        if hi > lo {
            (completions[hi] - completions[lo]) / (hi - lo) as f64
        } else {
            completions[hi] - completions[hi - 1]
        }
    } else {
        f64::NAN
    }
}

/// Fold per-application timings into the report (weighted period/latency,
/// power of the enrolled processors) — shared by both simulator cores.
pub(crate) fn assemble_report(
    apps: &AppSet,
    platform: &Platform,
    mapping: &Mapping,
    app_times: Vec<AppTimes>,
    busy: Vec<f64>,
    makespan: f64,
) -> SimReport {
    let period = app_times
        .iter()
        .zip(&apps.apps)
        .map(|(t, app)| app.weight * t.measured_period)
        .fold(0.0, cpo_model::num::fmax);
    let latency = app_times
        .iter()
        .zip(&apps.apps)
        .map(|(t, app)| app.weight * t.first_latency)
        .fold(0.0, cpo_model::num::fmax);
    let power = EnergyModel::default().mapping_energy(mapping, platform);
    SimReport { apps: app_times, period, latency, power, makespan, busy }
}

pub(crate) fn build_and_run(
    apps: &AppSet,
    platform: &Platform,
    mapping: &Mapping,
    model: CommModel,
    datasets: usize,
    capacity: usize,
) -> (SimReport, Engine, Vec<OpMeta>) {
    assert!(datasets > 0, "simulate at least one data set");
    assert!(capacity >= 1, "buffers need capacity at least 1");
    mapping.validate(apps, platform).expect("valid mapping");
    let mut meta: Vec<OpMeta> = Vec::new();
    let mut engine = Engine::new();
    let cpu_res: Vec<_> = (0..platform.p()).map(|_| engine.add_resource()).collect();

    let mut per_app_outputs: Vec<Vec<usize>> = Vec::with_capacity(apps.a());
    // The DAG oracle models routed-path contention: flow multisets the
    // Benes fabric needs several rearrangement rounds for get their
    // crossing transfers stretched accordingly (factor 1 — a no-op — for
    // every valid plain mapping and for all dedicated platforms).
    let rounds = fabric_rounds(apps, platform, mapping);
    for (a, app) in apps.apps.iter().enumerate() {
        let chain = mapping.app_chain(a);
        let m = chain.len();
        let (transfer_time, compute_time) = chain_durations_with(app, a, platform, &chain, rounds);

        // Operation ids of the previous data set, plus the full compute
        // history per node for the bounded-buffer dependency.
        let mut prev_t: Vec<Option<usize>> = vec![None; m + 1];
        let mut prev_c: Vec<Option<usize>> = vec![None; m];
        let mut hist_c: Vec<Vec<usize>> = vec![Vec::with_capacity(datasets); m];
        let mut outputs = Vec::with_capacity(datasets);
        for d in 0..datasets {
            let mut cur_t: Vec<usize> = Vec::with_capacity(m + 1);
            let mut cur_c: Vec<usize> = Vec::with_capacity(m);
            for j in 0..=m {
                let mut deps: Vec<usize> = Vec::with_capacity(4);
                if j > 0 {
                    deps.push(cur_c[j - 1]); // producer finished computing d
                }
                if let Some(t) = prev_t[j] {
                    deps.push(t); // link is serial
                }
                if model == CommModel::NoOverlap && j < m {
                    // Receiver (node j) must have finished *sending* the
                    // previous data set before receiving this one.
                    if let Some(t) = prev_t[j + 1] {
                        deps.push(t);
                    }
                }
                // Bounded buffer at the receiver: data set d may only be
                // delivered once data set d - capacity has been consumed.
                if j < m && capacity != usize::MAX && d >= capacity {
                    deps.push(hist_c[j][d - capacity]);
                }
                let t_op = engine.add_op(transfer_time[j], None, &deps);
                meta.push(OpMeta::Transfer { app: a, edge: j, dataset: d });
                debug_assert_eq!(meta.len() - 1, t_op);
                cur_t.push(t_op);
                if j < m {
                    let mut cdeps: Vec<usize> = vec![t_op];
                    if let Some(c) = prev_c[j] {
                        cdeps.push(c); // processor is serial
                    }
                    let c_op =
                        engine.add_op(compute_time[j], Some(cpu_res[chain[j].proc]), &cdeps);
                    meta.push(OpMeta::Compute { app: a, node: j, proc: chain[j].proc, dataset: d });
                    debug_assert_eq!(meta.len() - 1, c_op);
                    cur_c.push(c_op);
                    hist_c[j].push(c_op);
                }
            }
            outputs.push(cur_t[m]);
            prev_t = cur_t.into_iter().map(Some).collect();
            prev_c = cur_c.into_iter().map(Some).collect();
        }
        per_app_outputs.push(outputs);
    }

    let makespan = engine.run().expect("validated mappings have finite durations");

    let mut app_times = Vec::with_capacity(apps.a());
    for outputs in &per_app_outputs {
        let completions: Vec<f64> = outputs.iter().map(|&op| engine.end_of(op)).collect();
        let first_latency = completions[0];
        let period = measured_period(&completions);
        app_times.push(AppTimes {
            completions,
            first_latency,
            measured_period: period,
            steady_state: None,
        });
    }

    let busy = (0..platform.p()).map(|u| engine.busy(u)).collect();
    let report = assemble_report(apps, platform, mapping, app_times, busy, makespan);
    (report, engine, meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::generator::section2_example;
    use cpo_model::mapping::Interval;

    fn period_mapping() -> Mapping {
        Mapping::new()
            .with(Interval::new(0, 0, 2), 2, 1)
            .with(Interval::new(1, 0, 1), 1, 1)
            .with(Interval::new(1, 2, 3), 0, 1)
    }

    #[test]
    fn measured_matches_analytic_overlap() {
        let (apps, pf) = section2_example();
        let mapping = period_mapping();
        let ev = Evaluator::new(&apps, &pf);
        let rep = simulate(&apps, &pf, &mapping, CommModel::Overlap, 64);
        let analytic_t = ev.period(&mapping, CommModel::Overlap);
        let analytic_l = ev.latency(&mapping);
        assert!(
            (rep.period - analytic_t).abs() < 1e-9,
            "measured {} vs analytic {}",
            rep.period,
            analytic_t
        );
        assert!((rep.latency - analytic_l).abs() < 1e-9);
    }

    #[test]
    fn measured_matches_analytic_no_overlap() {
        let (apps, pf) = section2_example();
        let mapping = period_mapping();
        let ev = Evaluator::new(&apps, &pf);
        let rep = simulate(&apps, &pf, &mapping, CommModel::NoOverlap, 64);
        let analytic_t = ev.period(&mapping, CommModel::NoOverlap);
        assert!(
            (rep.period - analytic_t).abs() < 1e-9,
            "measured {} vs analytic {}",
            rep.period,
            analytic_t
        );
        // Latency is model independent.
        assert!((rep.latency - ev.latency(&mapping)).abs() < 1e-9);
    }

    #[test]
    fn no_overlap_throughput_never_better() {
        let (apps, pf) = section2_example();
        let mapping = period_mapping();
        let ov = simulate(&apps, &pf, &mapping, CommModel::Overlap, 48);
        let no = simulate(&apps, &pf, &mapping, CommModel::NoOverlap, 48);
        assert!(ov.period <= no.period + 1e-9);
    }

    #[test]
    fn completions_are_monotone_and_evenly_spaced_in_steady_state() {
        let (apps, pf) = section2_example();
        let rep = simulate(&apps, &pf, &period_mapping(), CommModel::Overlap, 32);
        for at in &rep.apps {
            for w in at.completions.windows(2) {
                assert!(w[1] > w[0] - 1e-12);
            }
            // Steady state: the last gaps all equal the measured period.
            let n = at.completions.len();
            let gap = at.completions[n - 1] - at.completions[n - 2];
            assert!((gap - at.measured_period).abs() < 1e-9);
        }
    }

    #[test]
    fn power_and_energy_accounting() {
        let (apps, pf) = section2_example();
        let rep = simulate(&apps, &pf, &period_mapping(), CommModel::Overlap, 16);
        assert!((rep.power - 136.0).abs() < 1e-9); // 6² + 8² + 6²
        assert!(rep.energy_over_horizon() > 0.0);
        assert!(rep.makespan > 0.0);
    }

    #[test]
    fn utilization_of_critical_processor_approaches_one() {
        let (apps, pf) = section2_example();
        // In the period-1 mapping every processor has compute time exactly
        // 1 per data set and the period is 1: utilization → 1.
        let rep = simulate(&apps, &pf, &period_mapping(), CommModel::Overlap, 256);
        for u in 0..3 {
            assert!(
                rep.utilization(u) > 0.9,
                "proc {u} utilization {}",
                rep.utilization(u)
            );
        }
    }

    #[test]
    fn single_dataset_run() {
        let (apps, pf) = section2_example();
        let rep = simulate(&apps, &pf, &period_mapping(), CommModel::Overlap, 1);
        assert!(rep.apps[0].measured_period.is_nan());
        assert!(rep.latency > 0.0);
    }

    #[test]
    fn unbounded_capacity_matches_default() {
        let (apps, pf) = section2_example();
        let m = period_mapping();
        let a = simulate(&apps, &pf, &m, CommModel::Overlap, 32);
        let b = simulate_with_buffers(&apps, &pf, &m, CommModel::Overlap, 32, usize::MAX);
        let c = simulate_with_buffers(&apps, &pf, &m, CommModel::Overlap, 32, 1_000);
        assert_eq!(a.period, b.period);
        assert_eq!(a.period, c.period);
        assert_eq!(a.latency, c.latency);
    }

    #[test]
    fn capacity_one_degrades_receive_bound_pipelines() {
        // A 2-stage chain where the second processor's incoming transfer
        // time equals its compute time: with capacity 1 the transfer of
        // d+1 must wait for compute of d, so the steady period doubles
        // from max(in, comp) = 4 to in + comp = 8 under overlap.
        let app = cpo_model::application::Application::from_pairs(0.0, &[(1.0, 4.0), (4.0, 0.0)]);
        let apps = AppSet::single(app);
        let pf = Platform::fully_homogeneous(2, vec![1.0], 1.0).unwrap();
        let m = Mapping::new()
            .with(Interval::new(0, 0, 0), 0, 0)
            .with(Interval::new(0, 1, 1), 1, 0);
        let unbounded = simulate(&apps, &pf, &m, CommModel::Overlap, 64);
        let tight = simulate_with_buffers(&apps, &pf, &m, CommModel::Overlap, 64, 1);
        assert!((unbounded.period - 4.0).abs() < 1e-9);
        assert!((tight.period - 8.0).abs() < 1e-9, "got {}", tight.period);
        // Latency of the first data set is unaffected by buffering.
        assert!((tight.latency - unbounded.latency).abs() < 1e-9);
    }

    #[test]
    fn larger_buffers_monotonically_recover_throughput() {
        let app = cpo_model::application::Application::from_pairs(0.0, &[(1.0, 4.0), (4.0, 0.0)]);
        let apps = AppSet::single(app);
        let pf = Platform::fully_homogeneous(2, vec![1.0], 1.0).unwrap();
        let m = Mapping::new()
            .with(Interval::new(0, 0, 0), 0, 0)
            .with(Interval::new(0, 1, 1), 1, 0);
        let mut last = f64::INFINITY;
        for cap in [1usize, 2, 4, 8] {
            let rep = simulate_with_buffers(&apps, &pf, &m, CommModel::Overlap, 64, cap);
            assert!(rep.period <= last + 1e-9, "capacity {cap}");
            last = rep.period;
        }
        let unbounded = simulate(&apps, &pf, &m, CommModel::Overlap, 64);
        assert!((last - unbounded.period).abs() < 1e-9, "cap 8 saturates");
    }

    #[test]
    #[should_panic(expected = "capacity at least 1")]
    fn zero_capacity_rejected() {
        let (apps, pf) = section2_example();
        let _ = simulate_with_buffers(&apps, &pf, &period_mapping(), CommModel::Overlap, 4, 0);
    }

    #[test]
    fn wavefront_and_dag_agree_bitwise_on_the_section2_example() {
        let (apps, pf) = section2_example();
        let m = period_mapping();
        for model in [CommModel::Overlap, CommModel::NoOverlap] {
            for capacity in [usize::MAX, 1, 3] {
                let wf = simulate_with_buffers(&apps, &pf, &m, model, 48, capacity);
                let dag = simulate_reference_dag(&apps, &pf, &m, model, 48, capacity);
                assert_eq!(wf.period.to_bits(), dag.period.to_bits());
                assert_eq!(wf.latency.to_bits(), dag.latency.to_bits());
                assert_eq!(wf.makespan.to_bits(), dag.makespan.to_bits());
                for (a, b) in wf.busy.iter().zip(&dag.busy) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                for (wa, da) in wf.apps.iter().zip(&dag.apps) {
                    assert_eq!(wa.completions.len(), da.completions.len());
                    for (x, y) in wa.completions.iter().zip(&da.completions) {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "valid mapping")]
    fn invalid_mapping_panics() {
        let (apps, pf) = section2_example();
        let broken = Mapping::new().with(Interval::new(0, 0, 2), 0, 0);
        let _ = simulate(&apps, &pf, &broken, CommModel::Overlap, 4);
    }

    #[test]
    fn fabric_rounds_certifies_valid_mappings() {
        use cpo_model::platform::Processor;
        use cpo_model::topology::MultistageNetwork;
        let (apps, pf) = section2_example();
        let mapping = period_mapping();
        // Dedicated links never need rearrangement rounds.
        assert_eq!(fabric_rounds(&apps, &pf, &mapping), 1);
        // Valid plain mappings are partial permutations: one round on a
        // fabric too, so the wavefront fast path stays eligible.
        let fabric = Platform::multistage(
            pf.procs.clone(),
            MultistageNetwork::new(1.0, 0.1).unwrap(),
        )
        .unwrap();
        assert_eq!(fabric_rounds(&apps, &fabric, &mapping), 1);
        // An irregular flow multiset (two flows leaving processor 0 —
        // impossible for a validated plain mapping, reachable only from
        // future irregular extensions) needs several rounds: the DAG
        // oracle then serializes the crossing transfers.
        let fabric4 = Platform::multistage(
            vec![Processor::new(vec![1.0]).unwrap(); 4],
            MultistageNetwork::new(1.0, 0.1).unwrap(),
        )
        .unwrap();
        let irregular = Mapping::new()
            .with(Interval::new(0, 0, 0), 0, 0)
            .with(Interval::new(0, 1, 2), 1, 0)
            .with(Interval::new(1, 0, 1), 0, 0)
            .with(Interval::new(1, 2, 3), 2, 0);
        assert!(fabric_rounds(&apps, &fabric4, &irregular) > 1);
    }

    #[test]
    fn contention_stretches_only_interior_crossing_edges() {
        use cpo_model::application::Application;
        use cpo_model::platform::Processor;
        use cpo_model::topology::MultistageNetwork;
        let app = Application::from_pairs(4.0, &[(2.0, 3.0), (1.0, 5.0)]);
        let fabric = Platform::multistage(
            vec![Processor::new(vec![1.0]).unwrap(); 4],
            MultistageNetwork::new(1.0, 0.5).unwrap(),
        )
        .unwrap();
        let mapping = Mapping::new()
            .with(Interval::new(0, 0, 0), 0, 0)
            .with(Interval::new(0, 1, 1), 1, 0);
        let chain = mapping.app_chain(0);
        let (base, _) = chain_durations_with(&app, 0, &fabric, &chain, 1);
        let (stretched, _) = chain_durations_with(&app, 0, &fabric, &chain, 3);
        // Input and output edges ride the dedicated front-end links:
        // untouched by contention.
        assert_eq!(base[0].to_bits(), stretched[0].to_bits());
        assert_eq!(base[2].to_bits(), stretched[2].to_bits());
        // The interior crossing edge is serialized across the rounds.
        assert_eq!(stretched[1].to_bits(), (base[1] * 3.0).to_bits());
    }
}
