//! Flat SoA wavefront recurrence — the simulator hot path.
//!
//! # Why a wavefront
//!
//! For interval (and one-to-one) mappings the paper's scheduling semantics
//! (Section 3.3: transfer-then-compute, serial links, serial processors,
//! plus the extra no-overlap edge) form a **regular grid**: the dependency
//! DAG of `(data set d, operation j)` pairs has the same local stencil at
//! every grid point, and mappings keep every processor exclusive to one
//! interval ([`Mapping::validate`] rejects sharing), so applications are
//! mutually independent. The generic event engine
//! ([`crate::engine::Engine`]) materializes that grid as one heap event
//! per operation — `O(datasets × stages)` allocations, dependents lists
//! and `BinaryHeap` traffic. This module replaces it with a rolling
//! recurrence over a handful of flat `Vec<f64>` rows:
//!
//! ```text
//! T[d][j] = max( C[d][j-1]            (producer finished, j > 0)
//!              , T[d-1][j]            (link is serial,     d > 0)
//!              , T[d-1][j+1]          (no-overlap only,    d > 0, j < m)
//!              , C[d-cap][j] )        (bounded buffers,    d ≥ cap, j < m)
//!            + transfer[j]
//! C[d][j] = max(T[d][j], C[d-1][j]) + compute[j]
//! ```
//!
//! Only the previous row is live, so the run is `O(datasets × stages)`
//! time and `O(stages)` state (plus the completions vector the report
//! exposes, and a `capacity × stages` ring when buffers are bounded).
//!
//! **Bitwise identity with the DAG engine.** The event engine computes
//! every operation's end as `max(dependency ends, 0) + duration`:
//! `f64::max` merely *selects* one operand, so the fold order the calendar
//! queue happens to use is irrelevant, and the single rounding per
//! operation is the `+ duration`. The recurrence above performs exactly
//! the same selections and the same single addition per grid point, so
//! completions, busy times, makespan and the derived period/latency are
//! equal **bit for bit** — proved over random instances by
//! `tests/wavefront_equivalence.rs`.
//!
//! # Steady-state fast-forward
//!
//! With a saturated source the schedule is a max-plus linear system, so
//! completions eventually advance by one constant Δ per data set. When
//! the module can *certify* that the remaining floating-point run is
//! exact (see below), it stops iterating and emits the remaining
//! completions in closed form — `completions[d] = base + (d − d₀)·Δ` —
//! making million-data-set runs cost `O(warm-up × stages)`.
//!
//! The certificate has two parts, both checked, so fast-forward is **only
//! taken when it is bitwise exact**:
//!
//! 1. **Per-component rates with argmax dominance.** Let
//!    `δ[j] = row_d[j] − row_{d−1}[j]` be the observed per-component
//!    increments (components need not share one rate: a zero-size input
//!    edge sits at rate 0 forever while the bottleneck advances at the
//!    period). Predicting `row_{d+k} = row_d + k·δ` is sound iff every
//!    `max` in the stencil keeps its winner: each cell's inputs are
//!    `(value when row d was computed, that component's rate)` pairs —
//!    including the literal `0.0` seeding every transfer's max — and the
//!    certificate requires, per cell, that some input attaining the
//!    maximum *value* also attains the maximum *rate*, and that the
//!    cell's own observed increment equals that winning rate. Then
//!    `u_w + k·r_w ≥ u_i + k·r_i` for every input and every `k ≥ 0`:
//!    winners stay winners, and by induction over cells (ascending `j`)
//!    and rows the whole orbit is affine in `k`.
//! 2. **Exactness (lattice + horizon).** The dominance argument is a
//!    *real-arithmetic* statement; floating point must be shown to agree
//!    with it. The certificate therefore requires every value the
//!    remaining run touches to live on a lattice `2^e·ℤ` (with `e` the
//!    minimum lowest-set-bit exponent over the durations, both live
//!    rows, the per-node busy accumulators and every rate) and the
//!    largest reachable value — `max_j(row[j] + remaining·δ[j])`, also
//!    covering every busy total — to stay at or below `2^(52+e)`. Then
//!    every `+` the remaining recurrence would execute, every
//!    closed-form product `k·δ` (an integer times a lattice point with
//!    an exactly representable result) and every busy-time extension is
//!    exact: floating-point *is* real arithmetic from here on, and the
//!    closed form reproduces the recurrence bit for bit.
//!
//! Instances whose durations carry full 52-bit mantissas (arbitrary
//! `work / speed` ratios) usually fail the horizon check long before a
//! million data sets — they simply keep the plain `O(datasets × stages)`
//! rolling recurrence, which is still heap-free and allocation-free.
//! Dyadic instances (integer or power-of-two-scaled durations, e.g. every
//! instance of the paper's Section 2 family) fast-forward after a few
//! rows. Bounded-buffer runs never fast-forward: their state includes a
//! `capacity`-deep history, and certifying a uniform shift across it
//! would cost what it saves.

use crate::pipeline::{assemble_report, chain_durations, measured_period, AppTimes, SimReport};
use cpo_model::mapping::Assignment;
use cpo_model::prelude::*;

/// Certificate that an application's wavefront entered an exactly
/// periodic regime (see the module docs for the soundness argument).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteadyState {
    /// Data-set index of the last explicitly simulated row; every later
    /// completion was emitted in closed form.
    pub detected_at: usize,
    /// Exact per-data-set completion increment from `detected_at` on.
    pub delta: f64,
}

/// Simulate through the wavefront recurrence. Semantics and panics match
/// [`crate::pipeline::simulate_with_buffers`]; `fast_forward` enables the
/// certified steady-state extension (the result is bitwise identical
/// either way — disabling it only forces the full `O(datasets × stages)`
/// run, which the equivalence suite uses as a cross-check).
pub fn simulate_wavefront(
    apps: &AppSet,
    platform: &Platform,
    mapping: &Mapping,
    model: CommModel,
    datasets: usize,
    capacity: usize,
    fast_forward: bool,
) -> SimReport {
    assert!(datasets > 0, "simulate at least one data set");
    assert!(capacity >= 1, "buffers need capacity at least 1");
    mapping.validate(apps, platform).expect("valid mapping");

    let mut busy = vec![0.0f64; platform.p()];
    let mut app_times = Vec::with_capacity(apps.a());
    let mut makespan = 0.0f64;
    for (a, app) in apps.apps.iter().enumerate() {
        let chain = mapping.app_chain(a);
        let (transfer, compute) = chain_durations(app, a, platform, &chain);
        // Mirror the event engine's guards (`add_op` + `run`): stage
        // fields are `pub`, so NaN-contaminated data can reach a
        // validated mapping — fail loudly rather than emit a NaN report.
        for &d in transfer.iter().chain(compute.iter()) {
            assert!(d >= 0.0 || d.is_nan(), "operation durations must be non-negative");
            assert!(
                d.is_finite(),
                "non-finite data contaminated simulator operation durations \
                 (app {a}: NaN/infinite stage work, data size, speed or bandwidth)"
            );
        }
        let at = run_app(&transfer, &compute, model, datasets, capacity, fast_forward, &chain, &mut busy);
        makespan = makespan.max(*at.completions.last().expect("at least one data set"));
        app_times.push(at);
    }
    assemble_report(apps, platform, mapping, app_times, busy, makespan)
}

/// One application's rolling recurrence (applications are independent:
/// valid mappings never share a processor).
#[allow(clippy::too_many_arguments)]
fn run_app(
    transfer: &[f64],
    compute: &[f64],
    model: CommModel,
    datasets: usize,
    capacity: usize,
    fast_forward: bool,
    chain: &[Assignment],
    busy: &mut [f64],
) -> AppTimes {
    let m = compute.len();
    let no_overlap = model == CommModel::NoOverlap;
    // `capacity ≥ datasets` can never delay anything: data set `d` only
    // waits for `d − capacity ≥ 0`.
    let bounded = capacity != usize::MAX && capacity < datasets;
    let mut t_prev = vec![0.0f64; m + 1];
    let mut t_cur = vec![0.0f64; m + 1];
    let mut c_prev = vec![0.0f64; m];
    let mut c_cur = vec![0.0f64; m];
    let mut ring: Vec<f64> = if bounded { vec![0.0; capacity * m] } else { Vec::new() };
    // Per-node busy accumulators: repeated addition of the same constant,
    // mirroring the DAG engine's per-completion `+=` bit for bit.
    let mut node_busy = vec![0.0f64; m];
    let mut completions: Vec<f64> = Vec::with_capacity(datasets);
    let mut steady = None;
    // Cheap steady-state precheck: only run the full certificate once the
    // completion increment repeats (NaN never equals itself, so the first
    // row always skips).
    let mut last_dm = f64::NAN;

    for d in 0..datasets {
        for j in 0..=m {
            let mut ready = 0.0f64;
            if j > 0 {
                ready = ready.max(c_cur[j - 1]);
            }
            if d > 0 {
                ready = ready.max(t_prev[j]);
                if no_overlap && j < m {
                    ready = ready.max(t_prev[j + 1]);
                }
            }
            if bounded && j < m && d >= capacity {
                ready = ready.max(ring[(d - capacity) % capacity * m + j]);
            }
            t_cur[j] = ready + transfer[j];
            if j < m {
                c_cur[j] = t_cur[j].max(c_prev[j]) + compute[j];
                node_busy[j] += compute[j];
            }
        }
        if bounded {
            let row = (d % capacity) * m;
            ring[row..row + m].copy_from_slice(&c_cur);
        }
        completions.push(t_cur[m]);

        if fast_forward && !bounded && d > 0 {
            let remaining = datasets - 1 - d;
            let dm = t_cur[m] - t_prev[m];
            if remaining > 0 && dm == last_dm {
                if let Some(delta) = certified_rates(
                    &t_prev, &t_cur, &c_prev, &c_cur, transfer, compute, &node_busy, no_overlap,
                    remaining,
                ) {
                    let base = t_cur[m];
                    for k in 1..=remaining {
                        completions.push(base + k as f64 * delta);
                    }
                    for (nb, &c) in node_busy.iter_mut().zip(compute) {
                        *nb += remaining as f64 * c;
                    }
                    steady = Some(SteadyState { detected_at: d, delta });
                    break;
                }
            }
            last_dm = dm;
        }
        std::mem::swap(&mut t_prev, &mut t_cur);
        std::mem::swap(&mut c_prev, &mut c_cur);
    }

    for (nb, asg) in node_busy.iter().zip(chain) {
        busy[asg.proc] += nb;
    }
    let first_latency = completions[0];
    let period = measured_period(&completions);
    AppTimes { completions, first_latency, measured_period: period, steady_state: steady }
}

/// The fast-forward certificate: returns the completion increment Δ when
/// the last two rows exhibit per-component rates whose argmax structure
/// is stable **and** the remaining run is provably exact in floating
/// point (lattice + horizon conditions — see the module docs). `None`
/// simply means "keep iterating".
#[allow(clippy::too_many_arguments)]
fn certified_rates(
    t_prev: &[f64],
    t_cur: &[f64],
    c_prev: &[f64],
    c_cur: &[f64],
    transfer: &[f64],
    compute: &[f64],
    node_busy: &[f64],
    no_overlap: bool,
    remaining: usize,
) -> Option<f64> {
    let m = compute.len();
    let dt = |j: usize| t_cur[j] - t_prev[j];
    let dc = |j: usize| c_cur[j] - c_prev[j];

    // Argmax dominance, cell by cell: some input attaining the maximum
    // value must also attain the maximum rate, and the cell's observed
    // increment must equal that rate. Winners then stay winners for every
    // k ≥ 0 and the orbit is affine. The subtractions and comparisons
    // here are certified exact by the lattice check below, so a pass is a
    // genuine real-arithmetic statement.
    for j in 0..=m {
        let d_cell = dt(j);
        if !d_cell.is_finite() || d_cell < 0.0 {
            return None;
        }
        // Inputs of transfer cell j: the literal 0.0 seeding the max, the
        // producer compute of the same row, the serial-link predecessor,
        // and (no-overlap) the receiver's previous send.
        let mut vmax = 0.0f64; // max input value
        let mut vr = 0.0f64; // max rate among max-value inputs
        let mut rmax = 0.0f64; // max rate over all inputs
        let mut feed = |v: f64, r: f64| {
            if v > vmax {
                vmax = v;
                vr = r;
            } else if v == vmax && r > vr {
                vr = r;
            }
            if r > rmax {
                rmax = r;
            }
        };
        if j > 0 {
            feed(c_cur[j - 1], dc(j - 1));
        }
        feed(t_prev[j], dt(j));
        if no_overlap && j < m {
            feed(t_prev[j + 1], dt(j + 1));
        }
        if vr != rmax || d_cell != rmax {
            return None;
        }
        if j < m {
            // Compute cell j: max(transfer end of this row, serial
            // predecessor on the processor).
            let d_cell = dc(j);
            if !d_cell.is_finite() || d_cell < 0.0 {
                return None;
            }
            let (ta, ra) = (t_cur[j], dt(j));
            let (cb, rb) = (c_prev[j], dc(j));
            let (vr, rmax) = if ta > cb {
                (ra, ra.max(rb))
            } else if cb > ta {
                (rb, ra.max(rb))
            } else {
                (ra.max(rb), ra.max(rb))
            };
            if vr != rmax || d_cell != rmax {
                return None;
            }
        }
    }

    // Lattice exponent: every value the remaining run touches must be an
    // integer multiple of 2^e.
    let mut e = i32::MAX;
    let mut lattice = |v: f64| -> bool {
        if v == 0.0 {
            return true;
        }
        if !v.is_finite() {
            return false;
        }
        e = e.min(lsb_exponent(v));
        true
    };
    for row in [t_prev, t_cur, c_prev, c_cur, transfer, compute, node_busy] {
        for &v in row {
            if !lattice(v) {
                return None;
            }
        }
    }
    for j in 0..=m {
        if !lattice(dt(j)) {
            return None;
        }
        if j < m && !lattice(dc(j)) {
            return None;
        }
    }
    let delta = dt(m);
    if e == i32::MAX {
        // Every duration and every time is exactly zero: trivially exact.
        return Some(delta);
    }

    // Horizon: the largest value any later row, closed-form product or
    // busy total can reach. Requiring it ≤ 2^(52+e) leaves a factor-2
    // margin over the 2^(53+e) exactness limit, which swallows the
    // rounding of this very bound computation.
    let r = remaining as f64;
    let mut bound = 0.0f64;
    for (j, &t) in t_cur.iter().enumerate() {
        bound = bound.max(t + r * dt(j));
    }
    for j in 0..m {
        bound = bound.max(c_cur[j] + r * dc(j));
        bound = bound.max(node_busy[j] + r * compute[j]);
    }
    let k = 52 + e;
    let threshold = if k >= 1024 {
        f64::INFINITY
    } else if k < -1074 {
        0.0
    } else {
        2.0f64.powi(k)
    };
    if !bound.is_finite() || bound > threshold {
        return None;
    }
    Some(delta)
}

/// Exponent of the lowest set bit of a finite, non-zero f64: the largest
/// `e` with `v ∈ 2^e·ℤ`.
fn lsb_exponent(v: f64) -> i32 {
    let bits = v.to_bits();
    let exp_field = ((bits >> 52) & 0x7ff) as i32;
    let mant = bits & ((1u64 << 52) - 1);
    if exp_field == 0 {
        // Subnormal: v = mant × 2^-1074 (mant ≠ 0 since v ≠ 0).
        -1074 + mant.trailing_zeros() as i32
    } else {
        let full = mant | (1 << 52);
        exp_field - 1075 + full.trailing_zeros() as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::generator::section2_example;
    use cpo_model::mapping::Interval;

    fn period_mapping() -> Mapping {
        Mapping::new()
            .with(Interval::new(0, 0, 2), 2, 1)
            .with(Interval::new(1, 0, 1), 1, 1)
            .with(Interval::new(1, 2, 3), 0, 1)
    }

    #[test]
    fn lsb_exponent_identifies_the_lattice() {
        assert_eq!(lsb_exponent(1.0), 0);
        assert_eq!(lsb_exponent(2.0), 1);
        assert_eq!(lsb_exponent(0.5), -1);
        assert_eq!(lsb_exponent(3.0), 0);
        assert_eq!(lsb_exponent(6.0), 1);
        assert_eq!(lsb_exponent(0.75), -2);
        assert_eq!(lsb_exponent(f64::MIN_POSITIVE), -1022);
        // 0.1 is not dyadic: its mantissa uses nearly every bit
        // (0x3FB999999999999A ends in ...1010 ⇒ one trailing zero).
        assert_eq!(lsb_exponent(0.1), -55);
    }

    #[test]
    fn section2_fast_forwards_exactly() {
        // Dyadic durations: the Section 2 example enters the certified
        // steady state almost immediately.
        let (apps, pf) = section2_example();
        let m = period_mapping();
        let full = simulate_wavefront(&apps, &pf, &m, CommModel::Overlap, 4096, usize::MAX, false);
        let fast = simulate_wavefront(&apps, &pf, &m, CommModel::Overlap, 4096, usize::MAX, true);
        for (f, s) in full.apps.iter().zip(&fast.apps) {
            assert_eq!(f.completions.len(), s.completions.len());
            for (x, y) in f.completions.iter().zip(&s.completions) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(full.period.to_bits(), fast.period.to_bits());
        assert_eq!(full.makespan.to_bits(), fast.makespan.to_bits());
        for (b, c) in full.busy.iter().zip(&fast.busy) {
            assert_eq!(b.to_bits(), c.to_bits());
        }
        let ss = fast.apps[0].steady_state.expect("dyadic instance reaches steady state");
        assert!(ss.detected_at < 64, "detected at {}", ss.detected_at);
        assert!(ss.delta > 0.0);
        assert!(full.apps[0].steady_state.is_none(), "full run never fast-forwards");
    }

    #[test]
    fn million_datasets_complete_quickly_on_dyadic_instances() {
        let (apps, pf) = section2_example();
        let m = period_mapping();
        let rep = simulate_wavefront(&apps, &pf, &m, CommModel::Overlap, 1_000_000, usize::MAX, true);
        assert_eq!(rep.apps[0].completions.len(), 1_000_000);
        assert!(rep.apps[0].steady_state.is_some());
        // Period 1 mapping: the millionth completion sits near t = 1e6.
        assert!((rep.makespan - 1e6).abs() / 1e6 < 1e-2, "makespan {}", rep.makespan);
        assert!((rep.period - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-finite data contaminated")]
    fn nan_contaminated_durations_fail_loudly() {
        // Application fields are `pub`: contaminated data can reach a
        // mapping that still validates structurally (`input` feeds the
        // input-edge transfer directly). The wavefront must refuse (like
        // the event engine's typed NonFiniteData path), not emit a
        // NaN-filled report.
        let (mut apps, pf) = section2_example();
        apps.apps[0].input = f64::NAN;
        let m = period_mapping();
        let _ = simulate_wavefront(&apps, &pf, &m, CommModel::Overlap, 8, usize::MAX, true);
    }

    #[test]
    fn non_dyadic_instances_never_certify_falsely() {
        // work/speed = 1/3: repeating binary fraction, full mantissa. The
        // lattice-horizon certificate must reject fast-forwarding long
        // runs rather than emit an inexact closed form.
        let app = cpo_model::application::Application::from_pairs(0.0, &[(1.0, 0.0)]);
        let apps = AppSet::single(app);
        let pf = Platform::fully_homogeneous(1, vec![3.0], 1.0).unwrap();
        let m = Mapping::new().with(Interval::new(0, 0, 0), 0, 0);
        let full = simulate_wavefront(&apps, &pf, &m, CommModel::Overlap, 100_000, usize::MAX, false);
        let fast = simulate_wavefront(&apps, &pf, &m, CommModel::Overlap, 100_000, usize::MAX, true);
        for (x, y) in full.apps[0].completions.iter().zip(&fast.apps[0].completions) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(full.busy[0].to_bits(), fast.busy[0].to_bits());
    }
}
