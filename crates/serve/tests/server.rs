//! Server-level robustness contracts: typed admission verdicts, deadline
//! shedding and downgrade, quarantine circuit breaking, graceful drain —
//! and the headline property test, exactly one reply per submitted
//! request across thread counts under injected worker panics.

use cpo_engine::EngineConfig;
use cpo_model::generator::section2_example;
use cpo_model::prelude::*;
use cpo_model::spec::Strategy;
use cpo_serve::chaos::ChaosConfig;
use cpo_serve::{
    DeadlineStage, RejectReason, ReplySink, ServeConfig, ServeOutcome, ServeReply, Server,
    ServerHooks,
};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

/// A sink collecting every reply.
fn collecting_sink() -> (ReplySink, Arc<Mutex<Vec<ServeReply>>>) {
    let replies: Arc<Mutex<Vec<ServeReply>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_replies = Arc::clone(&replies);
    let sink: ReplySink = Arc::new(move |r: &ServeReply| sink_replies.lock().push(r.clone()));
    (sink, replies)
}

/// Apps from the paper's running example over a fully homogeneous
/// platform (the polynomial interval DPs apply there).
fn instance() -> (AppSet, Platform) {
    let (apps, _) = section2_example();
    (apps, Platform::fully_homogeneous(3, vec![1.0, 3.0, 6.0, 8.0], 1.0).unwrap())
}

fn request(desc: &str) -> SolveRequest {
    let (apps, pf) = instance();
    SolveRequest::new(
        desc,
        apps,
        pf,
        ProblemSpec::new(Objective::Period, Strategy::Interval, CommModel::Overlap),
    )
}

/// A structurally distinct request per `i` (distinct period bounds →
/// distinct spec digests).
fn distinct_request(i: u32) -> SolveRequest {
    let (apps, pf) = instance();
    let tb = 0.25 * f64::from(i + 1);
    SolveRequest::new(
        format!("req-{i}"),
        apps,
        pf,
        ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
            .with_period_bounds(vec![tb, tb]),
    )
    .with_id(format!("id-{i}"))
}

fn serve_cfg(threads: usize) -> ServeConfig {
    ServeConfig {
        threads,
        engine: EngineConfig { threads: 1, ..EngineConfig::default() },
        ..ServeConfig::default()
    }
}

/// Block until `n` replies have landed (strike/quarantine tests need
/// admission verdicts ordered after earlier workers finished).
fn wait_for_replies(replies: &Arc<Mutex<Vec<ServeReply>>>, n: usize) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while replies.lock().len() < n {
        assert!(std::time::Instant::now() < deadline, "timed out waiting for {n} replies");
        std::thread::yield_now();
    }
}

#[test]
fn solves_and_echoes_the_envelope() {
    let (sink, replies) = collecting_sink();
    let server = Server::start(serve_cfg(2), sink, ServerHooks::default());
    server.submit(request("r").with_id("alpha").with_tenant("t1"));
    let stats = server.drain();
    let replies = replies.lock();
    assert_eq!(replies.len(), 1);
    assert_eq!(replies[0].id.as_deref(), Some("alpha"));
    assert_eq!(replies[0].tenant.as_deref(), Some("t1"));
    assert!(matches!(
        &replies[0].outcome,
        ServeOutcome::Done { result: SolveOutcome::Solution(_) }
    ));
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.done, 1);
    assert_eq!(stats.replies(), 1);
}

#[test]
fn garbage_lines_get_typed_invalid_replies() {
    let (sink, replies) = collecting_sink();
    let server = Server::start(serve_cfg(1), sink, ServerHooks::default());
    server.submit_line("this is not json");
    server.submit_line(&request("ok").with_id("good").to_json_compact().unwrap());
    server.submit_line("{\"version\":99}");
    let stats = server.drain();
    let replies = replies.lock();
    assert_eq!(replies.len(), 3);
    let invalid: Vec<_> = replies
        .iter()
        .filter(|r| {
            matches!(
                &r.outcome,
                ServeOutcome::Rejected { reason: RejectReason::Invalid, detail }
                    if detail.starts_with("parse error:")
            )
        })
        .collect();
    assert_eq!(invalid.len(), 2);
    assert!(invalid.iter().all(|r| r.id.is_none()));
    assert_eq!(stats.rejected_invalid, 2);
    assert_eq!(stats.done, 1);
}

#[test]
fn full_queue_rejects_with_queue_full() {
    let (sink, replies) = collecting_sink();
    // No workers draining: 0-thread servers are not allowed, so use a
    // poison-free stall to keep the single worker busy while we flood.
    let cfg = ServeConfig {
        queue_capacity: 2,
        chaos: Some(ChaosConfig::parse("stall=1.0:300", 0).unwrap()),
        ..serve_cfg(1)
    };
    let server = Server::start(cfg, sink, ServerHooks::default());
    // 1 in flight (stalling) + 2 queued; the rest must bounce.
    for i in 0..8 {
        server.submit(request(&format!("flood-{i}")));
    }
    let stats = server.drain();
    let replies = replies.lock();
    assert_eq!(replies.len(), 8, "every submission is answered");
    let bounced = replies
        .iter()
        .filter(|r| {
            matches!(
                &r.outcome,
                ServeOutcome::Rejected { reason: RejectReason::QueueFull, .. }
            )
        })
        .count();
    assert!(bounced >= 5, "capacity 2 + 1 in flight can absorb at most 3, got {bounced} bounces");
    assert_eq!(stats.rejected_queue_full as usize, bounced);
    assert_eq!(stats.replies(), 8);
}

#[test]
fn flooding_tenant_is_rate_limited_without_starving_others() {
    let (sink, replies) = collecting_sink();
    let cfg = ServeConfig { rate_per_sec: 0.001, burst: 2.0, ..serve_cfg(1) };
    let server = Server::start(cfg, sink, ServerHooks::default());
    for i in 0..10 {
        server.submit(request(&format!("f{i}")).with_tenant("flooder").with_id(format!("f{i}")));
    }
    server.submit(request("q").with_tenant("quiet").with_id("quiet-1"));
    let stats = server.drain();
    let replies = replies.lock();
    assert_eq!(replies.len(), 11);
    let limited = replies
        .iter()
        .filter(|r| {
            matches!(
                &r.outcome,
                ServeOutcome::Rejected { reason: RejectReason::RateLimited, .. }
            )
        })
        .count();
    assert_eq!(limited, 8, "burst 2 admits 2 flooder requests");
    let quiet = replies.iter().find(|r| r.id.as_deref() == Some("quiet-1")).unwrap();
    assert!(
        matches!(&quiet.outcome, ServeOutcome::Done { .. }),
        "the quiet tenant is admitted: {:?}",
        quiet.outcome
    );
    assert_eq!(stats.rejected_rate_limited, 8);
}

#[test]
fn deadline_zero_is_shed_at_dequeue() {
    let (sink, replies) = collecting_sink();
    // The stall burns the whole 0ms budget before the dequeue check.
    let cfg = ServeConfig {
        chaos: Some(ChaosConfig::parse("stall=1.0:5", 0).unwrap()),
        ..serve_cfg(1)
    };
    let server = Server::start(cfg, sink, ServerHooks::default());
    server.submit(request("doa").with_id("doa").with_deadline_ms(0));
    let stats = server.drain();
    let replies = replies.lock();
    assert_eq!(replies.len(), 1);
    match &replies[0].outcome {
        ServeOutcome::Deadline {
            exceeded_at: DeadlineStage::Dequeue,
            budget_ms: 0,
            elapsed_ms,
            ..
        } => {
            assert!(*elapsed_ms >= 5, "the stall burned the budget, elapsed {elapsed_ms}ms");
        }
        other => panic!("expected dequeue-shed, got {other:?}"),
    }
    assert_eq!(stats.deadline_dequeue, 1);
    assert_eq!(stats.replies(), 1);
}

#[test]
fn provably_over_budget_work_is_shed_at_plan_time() {
    let (sink, replies) = collecting_sink();
    let server = Server::start(serve_cfg(1), sink, ServerHooks::default());
    // Exact general-mapping enumeration saturates the cost estimate
    // (u64::MAX/4 units ≫ any budget), so the plan gate must shed it.
    let (apps, pf) = instance();
    let mut spec = ProblemSpec::new(Objective::Period, Strategy::General, CommModel::Overlap);
    spec.hints.exact_fallback = true;
    server.submit(SolveRequest::new("exact", apps, pf, spec).with_id("x").with_deadline_ms(60_000));
    let stats = server.drain();
    let replies = replies.lock();
    assert_eq!(replies.len(), 1);
    match &replies[0].outcome {
        ServeOutcome::Deadline {
            exceeded_at: DeadlineStage::Plan,
            budget_ms: 60_000,
            estimated_ms,
            ..
        } => {
            assert!(*estimated_ms > 60_000, "estimate must dwarf the budget, got {estimated_ms}");
        }
        other => panic!("expected plan-shed, got {other:?}"),
    }
    assert_eq!(stats.deadline_plan, 1);
}

#[test]
fn downgrade_rescues_over_budget_work_when_enabled() {
    let (sink, replies) = collecting_sink();
    let cfg = ServeConfig { deadline_downgrade: true, ..serve_cfg(1) };
    let server = Server::start(cfg, sink, ServerHooks::default());
    let (apps, pf) = instance();
    let mut spec = ProblemSpec::new(Objective::Period, Strategy::General, CommModel::Overlap);
    spec.hints.exact_fallback = true;
    server.submit(SolveRequest::new("exact", apps, pf, spec).with_id("x").with_deadline_ms(60_000));
    let stats = server.drain();
    let replies = replies.lock();
    assert_eq!(replies.len(), 1);
    assert!(replies[0].downgraded, "LPT heuristic fits the budget: {:?}", replies[0].outcome);
    assert!(
        matches!(&replies[0].outcome, ServeOutcome::Done { result: SolveOutcome::Solution(_) }),
        "downgraded solve still answers: {:?}",
        replies[0].outcome
    );
    assert_eq!(stats.downgraded, 1);
}

#[test]
fn poison_digest_is_quarantined_after_k_strikes_and_reset_reopens() {
    let (sink, replies) = collecting_sink();
    let exported: Arc<Mutex<Vec<(FailureKind, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let hook_exported = Arc::clone(&exported);
    let hooks = ServerHooks {
        failure: Some(Arc::new(move |_req, kind, msg| {
            hook_exported.lock().push((kind, msg.to_string()));
            true
        })),
        check: None,
    };
    let cfg = ServeConfig {
        strikes: 2,
        chaos: Some(ChaosConfig::parse("poison=POISON", 7).unwrap()),
        ..serve_cfg(1)
    };
    let server = Server::start(cfg, sink, hooks);
    // Same structural digest each time (description is not hashed).
    // Serialize submissions so each strike lands before the next
    // admission verdict.
    for i in 0..5 {
        server.submit(request("a POISON pill").with_id(format!("p{i}")));
        wait_for_replies(&replies, i as usize + 1);
    }
    server.reset_quarantine();
    server.submit(request("a POISON pill").with_id("after-reset"));
    let stats = server.drain();
    let replies = replies.lock();
    assert_eq!(replies.len(), 6);
    let failed = replies
        .iter()
        .filter(|r| matches!(&r.outcome, ServeOutcome::Failed { reason } if reason.contains("chaos")))
        .count();
    let quarantined = replies
        .iter()
        .filter(|r| {
            matches!(
                &r.outcome,
                ServeOutcome::Rejected { reason: RejectReason::Quarantined, .. }
            )
        })
        .count();
    assert_eq!(failed, 3, "2 strikes before the breaker opens + 1 after reset");
    assert_eq!(quarantined, 3, "submissions 3..5 are rejected at admission");
    assert_eq!(stats.strikes, 3);
    // First strike exports; the operator reset re-arms capture, so the
    // post-reset strike exports again.
    assert_eq!(stats.bundles_exported, 2);
    let exported = exported.lock();
    assert_eq!(exported.len(), 2);
    assert!(matches!(exported[0].0, FailureKind::EnginePanic));
    assert!(exported[0].1.contains("worker panicked"));
}

#[test]
fn check_mismatch_degrades_to_failed_and_strikes() {
    let (sink, replies) = collecting_sink();
    let hooks = ServerHooks {
        failure: None,
        check: Some(Arc::new(|_req, _out| Err("objective drifted".to_string()))),
    };
    let cfg = ServeConfig { strikes: 1, ..serve_cfg(1) };
    let server = Server::start(cfg, sink, hooks);
    server.submit(request("r").with_id("a"));
    wait_for_replies(&replies, 1);
    server.submit(request("r").with_id("b"));
    let stats = server.drain();
    let replies = replies.lock();
    assert_eq!(replies.len(), 2);
    assert!(replies.iter().any(|r| matches!(
        &r.outcome,
        ServeOutcome::Failed { reason } if reason.contains("check mismatch: objective drifted")
    )));
    assert!(replies.iter().any(|r| matches!(
        &r.outcome,
        ServeOutcome::Rejected { reason: RejectReason::Quarantined, .. }
    )));
    assert_eq!(stats.failed, 1);
    assert!(stats.strikes >= 1);
}

#[test]
fn draining_server_rejects_new_work_but_answers_accepted_work() {
    let (sink, replies) = collecting_sink();
    let cfg = ServeConfig {
        queue_capacity: 64,
        chaos: Some(ChaosConfig::parse("stall=1.0:20", 0).unwrap()),
        ..serve_cfg(2)
    };
    let server = Server::start(cfg, sink, ServerHooks::default());
    for i in 0..10 {
        server.submit(distinct_request(i));
    }
    let stats = server.drain();
    assert_eq!(stats.accepted, 10);
    assert_eq!(stats.done, 10, "drain answers every accepted request");
    assert_eq!(replies.lock().len(), 10);
}

#[test]
fn reply_roundtrips_through_json() {
    let reply = ServeReply {
        seq: 42,
        id: Some("abc".into()),
        tenant: None,
        downgraded: true,
        elapsed_ms: 1.5,
        outcome: ServeOutcome::Deadline {
            exceeded_at: DeadlineStage::Plan,
            budget_ms: 10,
            elapsed_ms: 2,
            estimated_ms: 500,
        },
    };
    let json = reply.to_json_compact().unwrap();
    assert_eq!(ServeReply::from_json(&json).unwrap(), reply);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The drain contract under fire: for every thread count and chaos
    /// seed, every submitted request receives exactly one reply — a
    /// solver verdict, a typed rejection, or a typed failure — and every
    /// accepted request is answered by a worker.
    #[test]
    fn every_request_is_answered_exactly_once_under_panics(
        threads_idx in 0usize..4,
        seed in 0u64..10_000,
        n in 16u32..48,
    ) {
        let threads = [1usize, 2, 4, 8][threads_idx];
        let (sink, replies) = collecting_sink();
        let cfg = ServeConfig {
            queue_capacity: 8, // small: force some QueueFull verdicts too
            strikes: 3,
            chaos: Some(ChaosConfig::parse("panic=0.25", seed).unwrap()),
            ..serve_cfg(threads)
        };
        let server = Server::start(cfg, sink, ServerHooks::default());
        for i in 0..n {
            server.submit(distinct_request(i % 24));
        }
        let stats = server.drain();
        let replies = replies.lock();

        // Exactly one reply per submission…
        prop_assert_eq!(replies.len() as u32, n);
        prop_assert_eq!(stats.replies() as u32, n);
        // …and per-id reply counts exactly match per-id submission
        // counts (no id dropped, none answered twice).
        let mut got = std::collections::HashMap::new();
        for r in replies.iter() {
            *got.entry(r.id.clone()).or_insert(0u32) += 1;
        }
        let mut want = std::collections::HashMap::new();
        for i in 0..n {
            *want.entry(Some(format!("id-{}", i % 24))).or_insert(0u32) += 1;
        }
        prop_assert_eq!(got, want);
        // Every accepted request got a worker verdict (Done / Deadline /
        // Failed — never silently dropped).
        let worker_replies = stats.done + stats.deadline_dequeue + stats.deadline_plan + stats.failed;
        prop_assert_eq!(worker_replies, stats.accepted);
        // Chaos panics surfaced as typed failures, not lost replies.
        prop_assert_eq!(stats.failed, stats.chaos_panics);
    }
}
