//! Serve counters and the periodic JSONL stats line.
//!
//! Counters are relaxed atomics bumped on the hot path; latency is a
//! log2-bucketed histogram of admission→reply times (microsecond
//! resolution, so p50/p99 are bucket upper bounds — the bench harness
//! measures exact percentiles separately). [`StatsSnapshot`] is the
//! serialized form: one compact JSON object per stats interval on
//! stderr, greppable and machine-parseable.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// log2 buckets of microseconds: bucket `i` holds latencies in
/// `[2^i, 2^(i+1))` µs; 48 buckets cover ~9 years.
const BUCKETS: usize = 48;

/// Live counters (one instance per server, shared by all workers).
pub struct ServeStats {
    /// Requests admitted into the queue.
    pub accepted: AtomicU64,
    /// Replies whose outcome is `Done` (solved, infeasible or
    /// unsupported — a typed solver answer).
    pub done: AtomicU64,
    /// Typed rejections: queue full.
    pub rejected_queue_full: AtomicU64,
    /// Typed rejections: tenant out of tokens.
    pub rejected_rate_limited: AtomicU64,
    /// Typed rejections: digest quarantined.
    pub rejected_quarantined: AtomicU64,
    /// Typed rejections: draining.
    pub rejected_shutting_down: AtomicU64,
    /// Typed rejections: unparseable or invalid request.
    pub rejected_invalid: AtomicU64,
    /// Deadline shed at dequeue.
    pub deadline_dequeue: AtomicU64,
    /// Deadline shed at plan time.
    pub deadline_plan: AtomicU64,
    /// Worker-level failures (injected panics, check mismatches).
    pub failed: AtomicU64,
    /// Requests solved under a heuristic downgrade.
    pub downgraded: AtomicU64,
    /// Strikes charged to digests.
    pub strikes: AtomicU64,
    /// Repro bundles exported.
    pub bundles_exported: AtomicU64,
    /// Chaos: injected panics taken.
    pub chaos_panics: AtomicU64,
    /// Chaos: injected stalls taken.
    pub chaos_stalls: AtomicU64,
    latency_buckets: [AtomicU64; BUCKETS],
}

impl Default for ServeStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        ServeStats {
            accepted: AtomicU64::new(0),
            done: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_rate_limited: AtomicU64::new(0),
            rejected_quarantined: AtomicU64::new(0),
            rejected_shutting_down: AtomicU64::new(0),
            rejected_invalid: AtomicU64::new(0),
            deadline_dequeue: AtomicU64::new(0),
            deadline_plan: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            downgraded: AtomicU64::new(0),
            strikes: AtomicU64::new(0),
            bundles_exported: AtomicU64::new(0),
            chaos_panics: AtomicU64::new(0),
            chaos_stalls: AtomicU64::new(0),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one admission→reply latency.
    pub fn record_latency(&self, nanos: u64) {
        let micros = nanos / 1_000;
        let bucket = (64 - micros.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Histogram-resolution percentile (0 < q <= 1) in milliseconds:
    /// the upper bound of the bucket holding the q-quantile, or 0.0 when
    /// nothing was recorded.
    pub fn latency_percentile_ms(&self, q: f64) -> f64 {
        let counts: Vec<u64> =
            self.latency_buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket i: 2^(i+1) µs.
                return (1u64 << (i + 1)) as f64 / 1_000.0;
            }
        }
        unreachable!("rank <= total")
    }

    /// Freeze a snapshot for the stats line.
    pub fn snapshot(&self, uptime_ms: u64, cache: CacheSnapshot, quarantined: u64) -> StatsSnapshot {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        StatsSnapshot {
            uptime_ms,
            accepted: ld(&self.accepted),
            done: ld(&self.done),
            rejected_queue_full: ld(&self.rejected_queue_full),
            rejected_rate_limited: ld(&self.rejected_rate_limited),
            rejected_quarantined: ld(&self.rejected_quarantined),
            rejected_shutting_down: ld(&self.rejected_shutting_down),
            rejected_invalid: ld(&self.rejected_invalid),
            deadline_dequeue: ld(&self.deadline_dequeue),
            deadline_plan: ld(&self.deadline_plan),
            failed: ld(&self.failed),
            downgraded: ld(&self.downgraded),
            strikes: ld(&self.strikes),
            bundles_exported: ld(&self.bundles_exported),
            chaos_panics: ld(&self.chaos_panics),
            chaos_stalls: ld(&self.chaos_stalls),
            quarantined,
            cache,
            p50_ms: self.latency_percentile_ms(0.50),
            p99_ms: self.latency_percentile_ms(0.99),
        }
    }
}

/// Engine cache counters, mirrored into the serializable snapshot (the
/// engine crate itself carries no serde dependency).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// Memo hits.
    pub hits: u64,
    /// Memo misses.
    pub misses: u64,
    /// LRU evictions.
    pub evictions: u64,
    /// Live entries.
    pub entries: u64,
}

/// One periodic stats line (compact JSON on stderr).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// See [`ServeStats::accepted`].
    pub accepted: u64,
    /// See [`ServeStats::done`].
    pub done: u64,
    /// See [`ServeStats::rejected_queue_full`].
    pub rejected_queue_full: u64,
    /// See [`ServeStats::rejected_rate_limited`].
    pub rejected_rate_limited: u64,
    /// See [`ServeStats::rejected_quarantined`].
    pub rejected_quarantined: u64,
    /// See [`ServeStats::rejected_shutting_down`].
    pub rejected_shutting_down: u64,
    /// See [`ServeStats::rejected_invalid`].
    pub rejected_invalid: u64,
    /// See [`ServeStats::deadline_dequeue`].
    pub deadline_dequeue: u64,
    /// See [`ServeStats::deadline_plan`].
    pub deadline_plan: u64,
    /// See [`ServeStats::failed`].
    pub failed: u64,
    /// See [`ServeStats::downgraded`].
    pub downgraded: u64,
    /// See [`ServeStats::strikes`].
    pub strikes: u64,
    /// See [`ServeStats::bundles_exported`].
    pub bundles_exported: u64,
    /// See [`ServeStats::chaos_panics`].
    pub chaos_panics: u64,
    /// See [`ServeStats::chaos_stalls`].
    pub chaos_stalls: u64,
    /// Digests currently quarantined.
    pub quarantined: u64,
    /// Engine memo cache counters.
    pub cache: CacheSnapshot,
    /// Histogram-resolution median latency, milliseconds.
    pub p50_ms: f64,
    /// Histogram-resolution p99 latency, milliseconds.
    pub p99_ms: f64,
}

impl StatsSnapshot {
    /// Replies emitted (every admission verdict and every worker reply).
    pub fn replies(&self) -> u64 {
        self.done
            + self.rejected_queue_full
            + self.rejected_rate_limited
            + self.rejected_quarantined
            + self.rejected_shutting_down
            + self.rejected_invalid
            + self.deadline_dequeue
            + self.deadline_plan
            + self.failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_walk_the_histogram() {
        let s = ServeStats::new();
        assert_eq!(s.latency_percentile_ms(0.5), 0.0, "empty histogram");
        // 99 fast (≈1µs) + 1 slow (≈16ms) sample.
        for _ in 0..99 {
            s.record_latency(1_000);
        }
        s.record_latency(16_000_000);
        let p50 = s.latency_percentile_ms(0.50);
        let p99 = s.latency_percentile_ms(0.99);
        let p999 = s.latency_percentile_ms(0.999);
        assert!(p50 < 0.01, "median in the fast bucket, got {p50}ms");
        assert!(p99 < 0.01, "p99 still fast (99/100), got {p99}ms");
        assert!(p999 >= 16.0, "p99.9 catches the outlier, got {p999}ms");
    }

    #[test]
    fn snapshot_serializes_and_counts_replies() {
        let s = ServeStats::new();
        s.accepted.fetch_add(3, Ordering::Relaxed);
        s.done.fetch_add(2, Ordering::Relaxed);
        s.failed.fetch_add(1, Ordering::Relaxed);
        s.record_latency(2_000_000);
        let snap = s.snapshot(1234, CacheSnapshot { hits: 1, misses: 2, evictions: 0, entries: 2 }, 0);
        assert_eq!(snap.replies(), 3);
        let json = cpo_model::io::serde_json_error::to_string(&snap).unwrap();
        assert!(json.contains("\"accepted\":3"), "got: {json}");
        let back: StatsSnapshot = cpo_model::io::serde_json_error::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
