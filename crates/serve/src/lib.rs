//! `cpo_serve`: the long-lived solve service over the batch engine.
//!
//! A [`Server`] owns a worker pool, a bounded ingress queue, and the
//! robustness layers the ROADMAP's serving story needs — each one a
//! *typed* degraded mode, never a silent drop:
//!
//! * **Admission control** ([`queue`], [`tenant`]): a full queue or an
//!   out-of-tokens tenant gets an immediate `Rejected{..}` reply; the
//!   accept loop never blocks on solver progress.
//! * **Deadlines**: `deadline_ms` budgets are enforced at dequeue and
//!   again at plan time via [`Plan::cost_estimate`] — provably
//!   over-budget work is shed *before* it burns a worker, optionally
//!   downgrading to a heuristic plan that fits the budget.
//! * **Quarantine** ([`quarantine`]): engine panics (already degraded to
//!   typed outcomes by the engine backstop), worker panics and `--check`
//!   mismatches charge strikes against the request's structural digest;
//!   repeat offenders are rejected at admission until operator reset,
//!   and the first strike per digest exports a repro bundle through the
//!   [`FailureHook`].
//! * **Graceful drain**: [`Server::drain`] closes the queue, lets the
//!   workers finish every accepted request, and joins them. The
//!   invariant — proven by the exactly-once property test — is one reply
//!   per submitted request, always.
//! * **Chaos** ([`chaos`]): deterministic fault injection (worker
//!   panics, stalls, poison markers) so the drill in CI exercises the
//!   degraded modes on every run.
//!
//! The crate is transport-free: callers push [`SolveRequest`]s (or raw
//! JSONL lines) in and receive [`ServeReply`]s through a [`ReplySink`]
//! closure. stdin/Unix-socket framing, stats printing and bundle export
//! live in the `cpo-experiments serve` binary, wired in through hooks so
//! this crate never depends on the trust subsystem above it.

pub mod chaos;
pub mod quarantine;
pub mod queue;
pub mod stats;
pub mod tenant;

use chaos::{ChaosAction, ChaosConfig};
use cpo_core::router::{plan, RouterScratch};
use cpo_engine::{CacheKey, Engine, EngineConfig};
use cpo_model::bundle::FailureKind;
use cpo_model::hash::{hash_instance, hash_spec};
use cpo_model::io::serde_json_error;
use cpo_model::prelude::*;
use quarantine::Quarantine;
use queue::BoundedQueue;
use serde::{Deserialize, Serialize};
use stats::{CacheSnapshot, ServeStats};
pub use stats::StatsSnapshot;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use tenant::TenantGovernor;

/// Default ingress queue capacity.
pub const DEFAULT_QUEUE_CAPACITY: usize = 256;
/// Default quarantine strike threshold.
pub const DEFAULT_STRIKES: u32 = 3;
/// Default deadline calibration: abstract [`Plan::cost_estimate`] units
/// per millisecond (the estimates are "roughly nanoseconds", so 1e6
/// units/ms, derated 2× for safety margin).
pub const DEFAULT_COST_UNITS_PER_MS: u64 = 2_000_000;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (`0` = one per available core).
    pub threads: usize,
    /// Ingress queue capacity (admission rejects beyond it).
    pub queue_capacity: usize,
    /// Per-tenant token refill rate, requests/second (`0` = unlimited).
    pub rate_per_sec: f64,
    /// Per-tenant burst capacity, tokens.
    pub burst: f64,
    /// Strikes before a digest is quarantined.
    pub strikes: u32,
    /// When a deadline cannot be met by the planned solver, retry the
    /// plan with `heuristic_fallback` before shedding.
    pub deadline_downgrade: bool,
    /// Deadline calibration, [`Plan::cost_estimate`] units per
    /// millisecond.
    pub cost_units_per_ms: u64,
    /// Engine configuration (the memo cache lives here).
    pub engine: EngineConfig,
    /// Fault injection (`None` = no chaos).
    pub chaos: Option<ChaosConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 0,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            rate_per_sec: 0.0,
            burst: 64.0,
            strikes: DEFAULT_STRIKES,
            deadline_downgrade: false,
            cost_units_per_ms: DEFAULT_COST_UNITS_PER_MS,
            engine: EngineConfig::default(),
            chaos: None,
        }
    }
}

/// Why admission rejected a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The bounded ingress queue is full — back off and retry.
    QueueFull,
    /// The tenant's token bucket is empty.
    RateLimited,
    /// The structural digest is quarantined (too many strikes).
    Quarantined,
    /// The server is draining.
    ShuttingDown,
    /// The request line did not parse.
    Invalid,
}

/// Where a deadline was found unmeetable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeadlineStage {
    /// The budget had already elapsed when a worker dequeued the
    /// request.
    Dequeue,
    /// The planned solver's cost estimate provably overruns the budget.
    Plan,
}

/// The typed verdict carried by every reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServeOutcome {
    /// The solver answered (solution, front, infeasible or unsupported —
    /// all typed solver verdicts, including the engine's panic
    /// backstop).
    Done {
        /// The solver's verdict.
        result: SolveOutcome,
    },
    /// Admission refused the request.
    Rejected {
        /// Why.
        reason: RejectReason,
        /// Human-readable detail (tenant, queue depth, parse error…).
        detail: String,
    },
    /// The deadline budget was provably unmeetable; the request was
    /// shed without burning a worker on it.
    Deadline {
        /// Where the overrun was detected.
        exceeded_at: DeadlineStage,
        /// The request's budget, milliseconds from admission.
        budget_ms: u64,
        /// Time already spent when the verdict was reached.
        elapsed_ms: u64,
        /// Estimated solve cost in milliseconds (0 at dequeue stage).
        estimated_ms: u64,
    },
    /// The worker failed while holding the request (injected panic,
    /// check mismatch). The request is answered — exactly once — all
    /// the same.
    Failed {
        /// What happened.
        reason: String,
    },
}

/// One reply line: every submitted request produces exactly one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReply {
    /// Admission sequence number (server-assigned, monotonic).
    pub seq: u64,
    /// The request's correlation id, echoed verbatim.
    #[serde(default)]
    pub id: Option<String>,
    /// The request's tenant, echoed verbatim.
    #[serde(default)]
    pub tenant: Option<String>,
    /// True when the solve ran under a deadline-driven heuristic
    /// downgrade (feasible but not certified optimal).
    pub downgraded: bool,
    /// Admission→reply latency, milliseconds (0 for admission-time
    /// rejections).
    pub elapsed_ms: f64,
    /// The verdict.
    pub outcome: ServeOutcome,
}

impl ServeReply {
    /// Compact single-line JSON (the serve wire format).
    pub fn to_json_compact(&self) -> Result<String, serde_json_error::Error> {
        serde_json_error::to_string(self)
    }

    /// Parse a reply line.
    pub fn from_json(json: &str) -> Result<Self, serde_json_error::Error> {
        serde_json_error::from_str(json)
    }
}

/// Where replies go. Called exactly once per submitted request, from
/// admission (rejections) or worker threads (everything else) — the sink
/// must be thread-safe and is expected to be cheap (serialize + write).
pub type ReplySink = Arc<dyn Fn(&ServeReply) + Send + Sync>;

/// Failure capture: called on the *first* strike of a digest with the
/// offending request, the failure kind and a message. Returns `true`
/// when a repro bundle was exported (counted in stats). The binary wires
/// this to the trust subsystem's bundle export.
pub type FailureHook = Arc<dyn Fn(&SolveRequest, FailureKind, &str) -> bool + Send + Sync>;

/// Result cross-validation (`--check`): `Err(message)` marks the outcome
/// untrusted — the reply degrades to `Failed` and the digest is struck.
pub type CheckHook = Arc<dyn Fn(&SolveRequest, &SolveOutcome) -> Result<(), String> + Send + Sync>;

/// Optional capture hooks (both default to "off").
#[derive(Default, Clone)]
pub struct ServerHooks {
    /// See [`FailureHook`].
    pub failure: Option<FailureHook>,
    /// See [`CheckHook`].
    pub check: Option<CheckHook>,
}

/// One queued unit of accepted work.
struct Entry {
    seq: u64,
    req: SolveRequest,
    key: CacheKey,
    admitted_nanos: u64,
}

struct Inner {
    cfg: ServeConfig,
    engine: Engine,
    queue: BoundedQueue<Entry>,
    governor: TenantGovernor,
    quarantine: Quarantine,
    stats: ServeStats,
    sink: ReplySink,
    hooks: ServerHooks,
    draining: AtomicBool,
    seq: AtomicU64,
    clock: Instant,
}

/// The long-lived solve service. See the crate docs for the layer map.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start the worker pool. Replies flow to `sink` from this moment
    /// on; the server runs until [`Server::drain`].
    pub fn start(cfg: ServeConfig, sink: ReplySink, hooks: ServerHooks) -> Server {
        let threads = if cfg.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            cfg.threads
        };
        let inner = Arc::new(Inner {
            engine: Engine::new(cfg.engine.clone()),
            queue: BoundedQueue::new(cfg.queue_capacity),
            governor: TenantGovernor::new(cfg.rate_per_sec, cfg.burst),
            quarantine: Quarantine::new(cfg.strikes),
            stats: ServeStats::new(),
            sink,
            hooks,
            draining: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            clock: Instant::now(),
            cfg,
        });
        let workers = (0..threads)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Server { inner, workers }
    }

    /// Submit one raw JSONL line: parse errors get a typed
    /// `Rejected{Invalid}` reply instead of tearing the stream down.
    /// Returns the admission sequence number of the reply.
    pub fn submit_line(&self, line: &str) -> u64 {
        self.inner.submit_line(line)
    }

    /// Submit one request. Admission is synchronous: a rejection reply
    /// is emitted before this returns; an accepted request is answered
    /// later by a worker. Either way, exactly one reply, carrying the
    /// returned sequence number.
    pub fn submit(&self, req: SolveRequest) -> u64 {
        self.inner.submit(req)
    }

    /// A cloneable ingress handle for reader threads (stdin, sockets):
    /// submit and observe without owning the drain.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { inner: Arc::clone(&self.inner) }
    }

    /// Graceful drain: stop admitting, let the workers answer every
    /// accepted request, join them. Consumes the server; the final
    /// [`StatsSnapshot`] is returned for the shutdown stats line.
    pub fn drain(self) -> StatsSnapshot {
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.queue.close();
        for w in self.workers {
            // A worker that somehow panicked outside the per-request
            // guard is a bug, but one that must not turn drain into an
            // abort — the remaining workers still drain the queue.
            let _ = w.join();
        }
        self.inner.snapshot()
    }

    /// Current stats snapshot (periodic stats line).
    pub fn snapshot(&self) -> StatsSnapshot {
        self.inner.snapshot()
    }

    /// Operator reset of the quarantine list.
    pub fn reset_quarantine(&self) {
        self.inner.quarantine.reset();
    }

    /// Queued-but-unanswered requests right now.
    pub fn backlog(&self) -> usize {
        self.inner.queue.len()
    }
}

/// See [`Server::handle`].
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<Inner>,
}

impl ServerHandle {
    /// See [`Server::submit_line`].
    pub fn submit_line(&self, line: &str) -> u64 {
        self.inner.submit_line(line)
    }

    /// See [`Server::submit`].
    pub fn submit(&self, req: SolveRequest) -> u64 {
        self.inner.submit(req)
    }

    /// See [`Server::snapshot`].
    pub fn snapshot(&self) -> StatsSnapshot {
        self.inner.snapshot()
    }

    /// See [`Server::reset_quarantine`].
    pub fn reset_quarantine(&self) {
        self.inner.quarantine.reset();
    }

    /// See [`Server::backlog`].
    pub fn backlog(&self) -> usize {
        self.inner.queue.len()
    }
}

impl Inner {
    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    fn submit_line(&self, line: &str) -> u64 {
        match SolveRequest::from_json(line) {
            Ok(req) => self.submit(req),
            Err(e) => {
                let seq = self.next_seq();
                self.stats.rejected_invalid.fetch_add(1, Ordering::Relaxed);
                self.emit(ServeReply {
                    seq,
                    id: None,
                    tenant: None,
                    downgraded: false,
                    elapsed_ms: 0.0,
                    outcome: ServeOutcome::Rejected {
                        reason: RejectReason::Invalid,
                        detail: format!("parse error: {e}"),
                    },
                });
                seq
            }
        }
    }

    fn submit(&self, req: SolveRequest) -> u64 {
        let seq = self.next_seq();
        let reject = |reason: RejectReason, detail: String| {
            self.emit(ServeReply {
                seq,
                id: req.id.clone(),
                tenant: req.tenant.clone(),
                downgraded: false,
                elapsed_ms: 0.0,
                outcome: ServeOutcome::Rejected { reason, detail },
            });
        };
        if self.draining.load(Ordering::SeqCst) {
            self.stats.rejected_shutting_down.fetch_add(1, Ordering::Relaxed);
            reject(RejectReason::ShuttingDown, "server is draining".into());
            return seq;
        }
        let key = (hash_instance(&req.apps, &req.platform), hash_spec(&req.problem));
        if self.quarantine.is_quarantined(&key) {
            self.stats.rejected_quarantined.fetch_add(1, Ordering::Relaxed);
            reject(
                RejectReason::Quarantined,
                format!("digest struck {} times", self.quarantine.threshold()),
            );
            return seq;
        }
        let tenant = req.tenant.as_deref().unwrap_or("");
        if !self.governor.admit(tenant, self.now_nanos()) {
            self.stats.rejected_rate_limited.fetch_add(1, Ordering::Relaxed);
            reject(RejectReason::RateLimited, format!("tenant `{tenant}` is out of tokens"));
            return seq;
        }
        let entry = Entry { seq, req, key, admitted_nanos: self.now_nanos() };
        match self.queue.push(entry) {
            Ok(()) => {
                self.stats.accepted.fetch_add(1, Ordering::Relaxed);
            }
            Err(entry) => {
                let detail = format!("queue at capacity {}", self.cfg.queue_capacity);
                self.stats.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                self.emit(ServeReply {
                    seq: entry.seq,
                    id: entry.req.id,
                    tenant: entry.req.tenant,
                    downgraded: false,
                    elapsed_ms: 0.0,
                    outcome: ServeOutcome::Rejected { reason: RejectReason::QueueFull, detail },
                });
            }
        }
        seq
    }

    fn now_nanos(&self) -> u64 {
        self.clock.elapsed().as_nanos() as u64
    }

    fn emit(&self, reply: ServeReply) {
        (self.sink)(&reply);
    }

    fn snapshot(&self) -> StatsSnapshot {
        let cs = self.engine.cache_stats();
        self.stats.snapshot(
            self.clock.elapsed().as_millis() as u64,
            CacheSnapshot {
                hits: cs.hits,
                misses: cs.misses,
                evictions: cs.evictions,
                entries: cs.entries,
            },
            self.quarantine.quarantined() as u64,
        )
    }

    /// Strike the digest; on the first strike, hand the request to the
    /// failure hook for bundle export.
    fn register_failure(&self, req: &SolveRequest, key: CacheKey, kind: FailureKind, message: &str) {
        self.stats.strikes.fetch_add(1, Ordering::Relaxed);
        let strikes = self.quarantine.strike(key);
        if strikes == 1 {
            if let Some(hook) = &self.hooks.failure {
                if hook(req, kind, message) {
                    self.stats.bundles_exported.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

fn worker_loop(inner: &Inner) {
    let mut scratch = RouterScratch::new();
    while let Some(entry) = inner.queue.pop() {
        // Everything needed for the panic-arm reply is cloned out
        // before the guarded section: a worker panic can poison the
        // request processing, never the reply obligation.
        let seq = entry.seq;
        let id = entry.req.id.clone();
        let tenant = entry.req.tenant.clone();
        let admitted = entry.admitted_nanos;
        let key = entry.key;
        let result = catch_unwind(AssertUnwindSafe(|| process(inner, &entry, &mut scratch)));
        let (outcome, downgraded) = match result {
            Ok(v) => v,
            Err(panic) => {
                scratch = RouterScratch::new();
                let reason = format!("worker panicked: {}", panic_text(&*panic));
                inner.register_failure(&entry.req, key, FailureKind::EnginePanic, &reason);
                (ServeOutcome::Failed { reason }, false)
            }
        };
        let elapsed_nanos = inner.now_nanos().saturating_sub(admitted);
        match &outcome {
            ServeOutcome::Done { .. } => {
                inner.stats.done.fetch_add(1, Ordering::Relaxed);
            }
            ServeOutcome::Deadline { exceeded_at, .. } => {
                let c = match exceeded_at {
                    DeadlineStage::Dequeue => &inner.stats.deadline_dequeue,
                    DeadlineStage::Plan => &inner.stats.deadline_plan,
                };
                c.fetch_add(1, Ordering::Relaxed);
            }
            ServeOutcome::Failed { .. } => {
                inner.stats.failed.fetch_add(1, Ordering::Relaxed);
            }
            // Workers never produce admission rejections.
            ServeOutcome::Rejected { .. } => {}
        }
        if downgraded {
            inner.stats.downgraded.fetch_add(1, Ordering::Relaxed);
        }
        inner.stats.record_latency(elapsed_nanos);
        inner.emit(ServeReply {
            seq,
            id,
            tenant,
            downgraded,
            elapsed_ms: elapsed_nanos as f64 / 1e6,
            outcome,
        });
    }
}

/// Process one accepted request on a worker. Runs under the worker's
/// `catch_unwind`; returns the typed verdict plus the downgrade flag.
fn process(inner: &Inner, entry: &Entry, scratch: &mut RouterScratch) -> (ServeOutcome, bool) {
    let req = &entry.req;
    let elapsed_ms = || inner.now_nanos().saturating_sub(entry.admitted_nanos) / 1_000_000;

    // Chaos verdict first: injected faults model infrastructure failure,
    // which does not wait for the request to be cheap.
    if let Some(chaos) = &inner.cfg.chaos {
        match chaos.decide(entry.seq, &req.description) {
            ChaosAction::None => {}
            ChaosAction::Panic => {
                inner.stats.chaos_panics.fetch_add(1, Ordering::Relaxed);
                panic!("chaos: injected worker panic (seq={})", entry.seq);
            }
            ChaosAction::Stall(ms) => {
                inner.stats.chaos_stalls.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
        }
    }

    // Deadline gate 1: dead on arrival (queueing ate the budget).
    let mut downgraded = false;
    let mut spec = None;
    if let Some(budget_ms) = req.deadline_ms {
        let waited = elapsed_ms();
        if waited > budget_ms {
            return (
                ServeOutcome::Deadline {
                    exceeded_at: DeadlineStage::Dequeue,
                    budget_ms,
                    elapsed_ms: waited,
                    estimated_ms: 0,
                },
                false,
            );
        }
        // Deadline gate 2: the planned solver provably overruns what is
        // left of the budget. `plan` errors fall through — the solve
        // below reports the typed unsupported verdict.
        if let Ok(p) = plan(&req.apps, &req.platform, &req.problem) {
            let units = inner.cfg.cost_units_per_ms.max(1);
            let est_ms = p.cost_estimate(&req.apps, &req.platform, &req.problem) / units;
            if waited + est_ms > budget_ms {
                let mut shed = true;
                if inner.cfg.deadline_downgrade && !req.problem.hints.heuristic_fallback {
                    // Downgrade: trade certified optimality for a plan
                    // that fits the budget.
                    let mut cheap = req.problem.clone();
                    cheap.hints.heuristic_fallback = true;
                    cheap.hints.exact_fallback = false;
                    if let Ok(p2) = plan(&req.apps, &req.platform, &cheap) {
                        let est2 = p2.cost_estimate(&req.apps, &req.platform, &cheap) / units;
                        if waited + est2 <= budget_ms {
                            spec = Some(cheap);
                            downgraded = true;
                            shed = false;
                        }
                    }
                }
                if shed {
                    return (
                        ServeOutcome::Deadline {
                            exceeded_at: DeadlineStage::Plan,
                            budget_ms,
                            elapsed_ms: waited,
                            estimated_ms: est_ms,
                        },
                        false,
                    );
                }
            }
        }
    }

    let spec = spec.as_ref().unwrap_or(&req.problem);
    let result = inner.engine.solve_with(&req.apps, &req.platform, spec, scratch);

    // The engine's panic backstop degrades solver panics to typed
    // `Unsupported` outcomes; recognize them and charge a strike so a
    // poison spec trips the breaker instead of panicking forever.
    if let SolveOutcome::Unsupported { reason } = &result {
        if cpo_engine::panic_details(reason).is_some() {
            inner.register_failure(req, entry.key, FailureKind::EnginePanic, reason);
        }
    }

    // Cross-validation: a mismatch means the result cannot be trusted —
    // degrade to `Failed` and strike the digest.
    if let Some(check) = &inner.hooks.check {
        if let Err(message) = check(req, &result) {
            let reason = format!("check mismatch: {message}");
            inner.register_failure(req, entry.key, FailureKind::CheckMismatch, &reason);
            return (ServeOutcome::Failed { reason }, downgraded);
        }
    }

    (ServeOutcome::Done { result }, downgraded)
}

fn panic_text(panic: &(dyn std::any::Any + Send)) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic".into())
}
