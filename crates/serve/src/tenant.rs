//! Per-tenant token-bucket fairness.
//!
//! Admission charges one token per request against the tenant named in
//! the request envelope (absent = the shared anonymous tenant). Buckets
//! refill continuously at `rate_per_sec` up to `burst`, so a flooding
//! client exhausts *its own* bucket and gets typed `Rejected{rate_limited}`
//! replies while everyone else's tokens are untouched.
//!
//! Time is an explicit nanosecond argument (the server feeds its
//! monotonic clock) so tests can replay any schedule deterministically.

use parking_lot::Mutex;
use std::collections::HashMap;

struct Bucket {
    tokens: f64,
    last_nanos: u64,
}

/// The admission governor: one token bucket per tenant key.
pub struct TenantGovernor {
    buckets: Mutex<HashMap<String, Bucket>>,
    rate_per_sec: f64,
    burst: f64,
}

impl TenantGovernor {
    /// Governor refilling `rate_per_sec` tokens per second up to `burst`.
    /// `rate_per_sec == 0` disables rate limiting entirely.
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        TenantGovernor {
            buckets: Mutex::new(HashMap::new()),
            rate_per_sec: rate_per_sec.max(0.0),
            burst: burst.max(1.0),
        }
    }

    /// Charge one token to `tenant` at time `now_nanos`. `false` means
    /// the bucket is empty — reject, the bucket is left untouched.
    pub fn admit(&self, tenant: &str, now_nanos: u64) -> bool {
        if self.rate_per_sec == 0.0 {
            return true;
        }
        let mut buckets = self.buckets.lock();
        let bucket = buckets
            .entry(tenant.to_string())
            .or_insert(Bucket { tokens: self.burst, last_nanos: now_nanos });
        let dt = now_nanos.saturating_sub(bucket.last_nanos) as f64 * 1e-9;
        bucket.tokens = (bucket.tokens + dt * self.rate_per_sec).min(self.burst);
        bucket.last_nanos = now_nanos;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tenants with live buckets.
    pub fn tenants(&self) -> usize {
        self.buckets.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn burst_then_refill() {
        let g = TenantGovernor::new(2.0, 3.0);
        // Burst of 3 at t=0, then empty.
        assert!(g.admit("a", 0));
        assert!(g.admit("a", 0));
        assert!(g.admit("a", 0));
        assert!(!g.admit("a", 0));
        // Half a second refills one token (2/sec).
        assert!(g.admit("a", SEC / 2));
        assert!(!g.admit("a", SEC / 2));
    }

    #[test]
    fn tenants_are_isolated() {
        let g = TenantGovernor::new(1.0, 1.0);
        assert!(g.admit("flooder", 0));
        for _ in 0..100 {
            assert!(!g.admit("flooder", 0), "flooder is out of tokens");
        }
        assert!(g.admit("quiet", 0), "other tenants keep their tokens");
        assert_eq!(g.tenants(), 2);
    }

    #[test]
    fn refill_caps_at_burst() {
        let g = TenantGovernor::new(1000.0, 2.0);
        assert!(g.admit("a", 0));
        // An hour later the bucket holds `burst`, not rate*3600.
        assert!(g.admit("a", 3600 * SEC));
        assert!(g.admit("a", 3600 * SEC));
        assert!(!g.admit("a", 3600 * SEC));
    }

    #[test]
    fn zero_rate_disables_limiting() {
        let g = TenantGovernor::new(0.0, 1.0);
        for _ in 0..1000 {
            assert!(g.admit("anyone", 0));
        }
    }
}
