//! Fault injection for the serve drill (`CPO_SERVE_CHAOS`).
//!
//! The chaos spec is a comma-separated list:
//!
//! * `panic=P` — with probability `P`, the worker panics mid-request
//!   (exercises the exactly-once reply guarantee and strike counting);
//! * `stall=P:MS` — with probability `P`, the worker sleeps `MS`
//!   milliseconds before solving (exercises deadline shedding and drain
//!   under slow solvers);
//! * `poison=MARKER` — a request whose description contains `MARKER`
//!   always panics the worker (a deterministic poison digest, so the
//!   drill can prove strikes accumulate into quarantine).
//!
//! Decisions are a pure function of `(seed, admission sequence number)`
//! via splitmix64 — `CPO_SERVE_CHAOS_SEED` replays a drill bit-for-bit,
//! whatever the thread interleaving.

/// What the injector decided for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// No fault.
    None,
    /// Panic the worker while it holds the request.
    Panic,
    /// Sleep this many milliseconds before solving.
    Stall(u64),
}

/// Parsed chaos configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosConfig {
    /// Probability of an injected worker panic.
    pub panic_p: f64,
    /// Probability of an injected stall.
    pub stall_p: f64,
    /// Stall duration, milliseconds.
    pub stall_ms: u64,
    /// Description substring that always panics the worker.
    pub poison_marker: Option<String>,
    /// Decision seed.
    pub seed: u64,
}

impl ChaosConfig {
    /// Parse a `CPO_SERVE_CHAOS` spec (see module docs). Empty spec =
    /// no faults.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let mut cfg = ChaosConfig { seed, ..ChaosConfig::default() };
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos: `{part}` is not key=value"))?;
            match key {
                "panic" => {
                    cfg.panic_p = parse_probability(value)
                        .ok_or_else(|| format!("chaos: panic probability `{value}`"))?;
                }
                "stall" => {
                    let (p, ms) = value
                        .split_once(':')
                        .ok_or_else(|| format!("chaos: stall wants P:MS, got `{value}`"))?;
                    cfg.stall_p = parse_probability(p)
                        .ok_or_else(|| format!("chaos: stall probability `{p}`"))?;
                    cfg.stall_ms =
                        ms.parse().map_err(|_| format!("chaos: stall millis `{ms}`"))?;
                }
                "poison" => cfg.poison_marker = Some(value.to_string()),
                other => return Err(format!("chaos: unknown fault `{other}`")),
            }
        }
        Ok(cfg)
    }

    /// True when the spec injects nothing.
    pub fn is_inert(&self) -> bool {
        self.panic_p == 0.0 && self.stall_p == 0.0 && self.poison_marker.is_none()
    }

    /// The verdict for admission sequence number `seq` on a request with
    /// this description. Pure: same `(seed, seq, description)` → same
    /// action on every run and thread.
    pub fn decide(&self, seq: u64, description: &str) -> ChaosAction {
        if let Some(marker) = &self.poison_marker {
            if description.contains(marker.as_str()) {
                return ChaosAction::Panic;
            }
        }
        let unit = splitmix64(self.seed ^ seq.wrapping_mul(0x9e3779b97f4a7c15)) as f64
            / (u64::MAX as f64);
        if unit < self.panic_p {
            ChaosAction::Panic
        } else if unit < self.panic_p + self.stall_p {
            ChaosAction::Stall(self.stall_ms)
        } else {
            ChaosAction::None
        }
    }
}

fn parse_probability(s: &str) -> Option<f64> {
    let p: f64 = s.parse().ok()?;
    (0.0..=1.0).contains(&p).then_some(p)
}

/// splitmix64: the standard 64-bit finalizer-style mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let cfg = ChaosConfig::parse("panic=0.1, stall=0.25:20, poison=BAD", 7).unwrap();
        assert_eq!(cfg.panic_p, 0.1);
        assert_eq!(cfg.stall_p, 0.25);
        assert_eq!(cfg.stall_ms, 20);
        assert_eq!(cfg.poison_marker.as_deref(), Some("BAD"));
        assert_eq!(cfg.seed, 7);
        assert!(!cfg.is_inert());
        assert!(ChaosConfig::parse("", 0).unwrap().is_inert());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(ChaosConfig::parse("panic", 0).is_err());
        assert!(ChaosConfig::parse("panic=2.0", 0).is_err());
        assert!(ChaosConfig::parse("stall=0.5", 0).is_err());
        assert!(ChaosConfig::parse("warp=0.5", 0).is_err());
    }

    #[test]
    fn decisions_are_deterministic_and_roughly_calibrated() {
        let cfg = ChaosConfig::parse("panic=0.2,stall=0.3:5", 42).unwrap();
        let first: Vec<ChaosAction> = (0..4000).map(|s| cfg.decide(s, "r")).collect();
        let second: Vec<ChaosAction> = (0..4000).map(|s| cfg.decide(s, "r")).collect();
        assert_eq!(first, second, "same seed, same verdicts");
        let panics = first.iter().filter(|a| **a == ChaosAction::Panic).count();
        let stalls = first.iter().filter(|a| **a == ChaosAction::Stall(5)).count();
        assert!((600..1000).contains(&panics), "~20% of 4000, got {panics}");
        assert!((1000..1500).contains(&stalls), "~30% of 4000, got {stalls}");
    }

    #[test]
    fn poison_marker_always_fires() {
        let cfg = ChaosConfig::parse("poison=BAD", 0).unwrap();
        for seq in 0..100 {
            assert_eq!(cfg.decide(seq, "a BAD spec"), ChaosAction::Panic);
            assert_eq!(cfg.decide(seq, "a good spec"), ChaosAction::None);
        }
    }
}
