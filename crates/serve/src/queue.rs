//! The bounded ingress queue: the single backpressure point between
//! admission and the worker pool.
//!
//! `push` never blocks — a full queue is an *admission verdict*
//! (`Rejected{queue_full}`), not a stall, so a flooding client slows
//! itself down instead of the accept loop. `pop` blocks until work
//! arrives or the queue is closed, and — the drain guarantee — a closed
//! queue still hands out everything that was accepted before the close:
//! `pop` returns `None` only once the queue is both closed *and* empty.
//!
//! Built on `std::sync::{Mutex, Condvar}` (the vendored `parking_lot`
//! subset deliberately ships no condvar).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue with non-blocking producers and draining close.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue without blocking. `Err` returns the item when the queue is
    /// full or already closed — the caller owns the rejection reply.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.state.lock().unwrap();
        if st.closed || st.items.len() >= self.capacity {
            return Err(item);
        }
        st.items.push_back(item);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue, blocking until an item arrives. Returns `None` only when
    /// the queue is closed *and* drained — every accepted item is handed
    /// to exactly one popper first.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap();
        }
    }

    /// Close the queue: producers start failing, consumers drain what is
    /// left and then see `None`.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Items currently waiting.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BoundedQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_accepted_items_then_ends() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        q.close();
        assert_eq!(q.push(99), Err(99), "closed queue rejects producers");
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<i32>::new(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.push(7).unwrap();
        q.close();
        let got: Vec<Option<i32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(got.iter().filter(|o| o.is_some()).count(), 1);
        assert_eq!(got.iter().filter(|o| o.is_none()).count(), 2);
    }
}
