//! Poison quarantine: the per-digest circuit breaker.
//!
//! Every failure attributable to a specific piece of work — an engine
//! panic degraded to the typed backstop, a `--check` mismatch, a worker
//! panic while holding the request — charges one *strike* against the
//! request's structural identity, the `(instance digest, spec digest)`
//! pair ([`cpo_model::hash`]). After `threshold` strikes the digest is
//! quarantined: admission rejects it instantly with a typed
//! `Rejected{quarantined}` until an operator reset. Identity is
//! structural, so a poison spec resubmitted under a different tenant or
//! id is still caught, while envelope-only differences never quarantine
//! innocent work.

use cpo_engine::CacheKey;
use parking_lot::Mutex;
use std::collections::HashMap;

/// The strike counter / circuit breaker.
pub struct Quarantine {
    strikes: Mutex<HashMap<CacheKey, u32>>,
    threshold: u32,
}

impl Quarantine {
    /// Breaker opening after `threshold` strikes (minimum 1).
    pub fn new(threshold: u32) -> Self {
        Quarantine { strikes: Mutex::new(HashMap::new()), threshold: threshold.max(1) }
    }

    /// The configured strike threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Charge one strike; returns the new count for this digest.
    pub fn strike(&self, key: CacheKey) -> u32 {
        let mut strikes = self.strikes.lock();
        let n = strikes.entry(key).or_insert(0);
        *n += 1;
        *n
    }

    /// True when the digest has reached the threshold.
    pub fn is_quarantined(&self, key: &CacheKey) -> bool {
        self.strikes.lock().get(key).is_some_and(|&n| n >= self.threshold)
    }

    /// Digests currently quarantined.
    pub fn quarantined(&self) -> usize {
        self.strikes.lock().values().filter(|&&n| n >= self.threshold).count()
    }

    /// Operator reset: forget every strike.
    pub fn reset(&self) {
        self.strikes.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_at_threshold_and_resets() {
        let q = Quarantine::new(3);
        let key = (1u128, 2u128);
        assert_eq!(q.strike(key), 1);
        assert!(!q.is_quarantined(&key));
        assert_eq!(q.strike(key), 2);
        assert!(!q.is_quarantined(&key));
        assert_eq!(q.strike(key), 3);
        assert!(q.is_quarantined(&key));
        assert_eq!(q.quarantined(), 1);
        q.reset();
        assert!(!q.is_quarantined(&key));
        assert_eq!(q.quarantined(), 0);
    }

    #[test]
    fn digests_are_independent() {
        let q = Quarantine::new(1);
        q.strike((1, 1));
        assert!(q.is_quarantined(&(1, 1)));
        assert!(!q.is_quarantined(&(1, 2)));
        assert!(!q.is_quarantined(&(2, 1)));
    }
}
