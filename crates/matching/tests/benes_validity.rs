//! Property tests: Benes routings are valid rearrangeable permutation
//! routings — every routed source reaches exactly its destination and no
//! two flows ever share a stage wire (stage-edge-disjointness) — and the
//! round decomposition of arbitrary flow multisets is Δ-optimal.

use cpo_matching::benes::{decompose_rounds, BenesNetwork};
use proptest::prelude::*;
use rand::prelude::*;

/// A random partial permutation on `n` ports: each port routes with
/// probability `density`, destinations are a random subset in random
/// order.
fn random_partial_perm(n: usize, density: f64, rng: &mut StdRng) -> Vec<Option<usize>> {
    let sources: Vec<usize> = (0..n).filter(|_| rng.gen_bool(density)).collect();
    let mut targets: Vec<usize> = (0..n).collect();
    targets.shuffle(rng);
    let mut dest = vec![None; n];
    for (&s, &t) in sources.iter().zip(&targets) {
        dest[s] = Some(t);
    }
    dest
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn full_permutations_route_contention_free(
        seed in 0u64..1_000_000,
        levels in 1u32..6,
    ) {
        let n = 1usize << levels;
        let net = BenesNetwork::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rng);
        let dest: Vec<Option<usize>> = perm.iter().map(|&t| Some(t)).collect();
        let routing = net.route(&dest);
        prop_assert!(routing.verify(&dest), "invalid routing for {:?}", perm);
        prop_assert_eq!(routing.max_occupation(), 1);
        // Every path has one wire per stage and starts adjacent to its
        // source (stage 0 can only keep or flip bit 0).
        for (src, path) in routing.paths.iter().enumerate() {
            let path = path.as_ref().expect("full permutation routes every port");
            prop_assert_eq!(path.len(), net.stages());
            prop_assert!(path[0] == src || path[0] == src ^ 1);
        }
    }

    #[test]
    fn partial_permutations_route_contention_free(
        seed in 0u64..1_000_000,
        levels in 1u32..6,
        density_pct in 0u32..=100,
    ) {
        let n = 1usize << levels;
        let net = BenesNetwork::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let dest = random_partial_perm(n, f64::from(density_pct) / 100.0, &mut rng);
        let routing = net.route(&dest);
        prop_assert!(routing.verify(&dest));
        prop_assert!(routing.max_occupation() <= 1);
    }

    #[test]
    fn round_decomposition_is_exact_and_delta_bounded(
        seed in 0u64..1_000_000,
        levels in 1u32..5,
        m in 0usize..24,
    ) {
        let n = 1usize << levels;
        let net = BenesNetwork::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let flows: Vec<(usize, usize)> =
            (0..m).map(|_| (rng.gen_range(0..n), rng.gen_range(0..n))).collect();
        let mut deg = vec![0usize; 2 * n];
        for &(s, t) in &flows {
            deg[s] += 1;
            deg[n + t] += 1;
        }
        let delta = deg.iter().copied().max().unwrap_or(0);

        let rounds = decompose_rounds(&flows, n);
        prop_assert_eq!(rounds.len(), delta, "König: exactly Δ rounds");
        let mut covered: Vec<(usize, usize)> =
            rounds.iter().flatten().copied().collect();
        covered.sort_unstable();
        let mut expect = flows.clone();
        expect.sort_unstable();
        prop_assert_eq!(covered, expect, "every flow in exactly one round");

        // Each routed round is itself a contention-free routing.
        for routing in net.route_rounds(&flows) {
            prop_assert!(routing.max_occupation() <= 1);
        }
    }
}
