//! Maximum-cardinality bipartite matching (Hopcroft–Karp).
//!
//! The paper cites Hopcroft–Karp for the Theorem 19 matching step; while
//! the energy-minimization variant needs weights (see
//! [`crate::hungarian`]), the pure cardinality algorithm answers
//! *feasibility* questions — "can all `N` stages be placed at all under the
//! period bounds?" — in O(E·√V).

/// Compute a maximum matching of the bipartite graph with `n_left` left
/// vertices and `n_right` right vertices, given as adjacency lists
/// `adj[l] = right neighbours of l`.
///
/// Returns `match_left[l] = Some(r)` for matched pairs.
pub fn max_bipartite_matching(n_left: usize, n_right: usize, adj: &[Vec<usize>]) -> Vec<Option<usize>> {
    assert_eq!(adj.len(), n_left, "adjacency list length must equal n_left");
    debug_assert!(adj.iter().flatten().all(|&r| r < n_right));

    const NIL: usize = usize::MAX;
    let mut match_l = vec![NIL; n_left];
    let mut match_r = vec![NIL; n_right];
    let mut dist = vec![0_u32; n_left];

    loop {
        // BFS phase: layer free left vertices.
        let mut queue = std::collections::VecDeque::new();
        let mut found_augmenting = false;
        for l in 0..n_left {
            if match_l[l] == NIL {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = u32::MAX;
            }
        }
        while let Some(l) = queue.pop_front() {
            for &r in &adj[l] {
                let next = match_r[r];
                if next == NIL {
                    found_augmenting = true;
                } else if dist[next] == u32::MAX {
                    dist[next] = dist[l] + 1;
                    queue.push_back(next);
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS phase: vertex-disjoint shortest augmenting paths.
        for l in 0..n_left {
            if match_l[l] == NIL {
                dfs(l, adj, &mut match_l, &mut match_r, &mut dist);
            }
        }
    }

    match_l.into_iter().map(|r| if r == NIL { None } else { Some(r) }).collect()
}

fn dfs(
    l: usize,
    adj: &[Vec<usize>],
    match_l: &mut [usize],
    match_r: &mut [usize],
    dist: &mut [u32],
) -> bool {
    const NIL: usize = usize::MAX;
    for &r in &adj[l] {
        let next = match_r[r];
        if next == NIL || (dist[next] == dist[l] + 1 && dfs(next, adj, match_l, match_r, dist)) {
            match_l[l] = r;
            match_r[r] = l;
            return true;
        }
    }
    dist[l] = u32::MAX;
    false
}

/// Size of the maximum matching (helper).
pub fn max_matching_size(n_left: usize, n_right: usize, adj: &[Vec<usize>]) -> usize {
    max_bipartite_matching(n_left, n_right, adj).iter().filter(|m| m.is_some()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_on_cycle() {
        // 3 left, 3 right, C6 structure.
        let adj = vec![vec![0, 1], vec![1, 2], vec![2, 0]];
        let m = max_bipartite_matching(3, 3, &adj);
        assert!(m.iter().all(|x| x.is_some()));
        let mut rs: Vec<usize> = m.iter().map(|x| x.unwrap()).collect();
        rs.sort_unstable();
        assert_eq!(rs, vec![0, 1, 2]);
    }

    #[test]
    fn bottleneck_limits_matching() {
        // Both left vertices only reach right vertex 0.
        let adj = vec![vec![0], vec![0]];
        assert_eq!(max_matching_size(2, 2, &adj), 1);
    }

    #[test]
    fn empty_graph() {
        let adj = vec![vec![], vec![]];
        assert_eq!(max_matching_size(2, 3, &adj), 0);
        assert_eq!(max_matching_size(0, 0, &[]), 0);
    }

    #[test]
    fn rectangular_graph() {
        let adj = vec![vec![0, 1, 2, 3, 4]];
        assert_eq!(max_matching_size(1, 5, &adj), 1);
    }

    /// König-style sanity: matching size equals brute-force max on randoms.
    #[test]
    fn matches_brute_force() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let n = rng.gen_range(1..=6);
            let m = rng.gen_range(1..=6);
            let adj: Vec<Vec<usize>> = (0..n)
                .map(|_| (0..m).filter(|_| rng.gen_bool(0.4)).collect())
                .collect();
            let fast = max_matching_size(n, m, &adj);
            let slow = brute_force(n, m, &adj);
            assert_eq!(fast, slow);
        }
    }

    fn brute_force(n: usize, m: usize, adj: &[Vec<usize>]) -> usize {
        fn rec(l: usize, n: usize, used: &mut Vec<bool>, adj: &[Vec<usize>]) -> usize {
            if l == n {
                return 0;
            }
            let mut best = rec(l + 1, n, used, adj); // leave l unmatched
            for &r in &adj[l] {
                if !used[r] {
                    used[r] = true;
                    best = best.max(1 + rec(l + 1, n, used, adj));
                    used[r] = false;
                }
            }
            best
        }
        rec(0, n, &mut vec![false; m], adj)
    }

    #[test]
    fn matched_pairs_are_consistent() {
        let adj = vec![vec![1, 2], vec![0], vec![0, 2]];
        let m = max_bipartite_matching(3, 3, &adj);
        // Every matched right vertex appears exactly once.
        let mut seen = std::collections::HashSet::new();
        for (l, r) in m.iter().enumerate() {
            if let Some(r) = r {
                assert!(adj[l].contains(r), "matched edge must exist");
                assert!(seen.insert(*r));
            }
        }
        assert_eq!(seen.len(), 3);
    }
}
