//! Benes rearrangeable permutation routing (the looping algorithm) and
//! exact bipartite round decomposition for multistage interconnects.
//!
//! A Benes network on `N = 2^k` ports has `2k − 1` stages of `N/2`
//! two-by-two switches. Stage `s` (0-based) exchanges the wire pairs that
//! differ in bit `B[s] = min(s, 2k − 2 − s)` — the bit sequence
//! `0, 1, …, k−2, k−1, k−2, …, 1, 0`. After stage 0 the remaining middle
//! stages never touch bit 0 again until the final stage, so they split
//! into two independent `N/2`-port Benes subnetworks (the even and odd
//! wire classes): the classic recursive structure that makes the network
//! **rearrangeable** — every (partial) permutation of the ports admits a
//! routing in which no two flows share a stage wire (Beneš 1964; see also
//! Kannan's KR-Benes construction, cs/0309006).
//!
//! [`BenesNetwork::route`] computes such a routing with the **looping
//! algorithm**: 2-color the flows so that flows sharing an entry or exit
//! switch take different subnetworks (the conflict graph has maximum
//! degree 2 and only even cycles, so greedy chain propagation 2-colors
//! it), set the first/last stage switches from the colors, and recurse.
//! `O(N log N)` per routing.
//!
//! [`BenesNetwork::route_rounds`] extends routing to arbitrary flow
//! multisets (several flows per port, as arise from replicated or
//! processor-sharing mappings): the flows are first decomposed into
//! `Δ` partial permutations by **exact bipartite edge coloring**
//! (alternating-path recoloring, König's theorem), then each round is
//! routed contention-free. The round count *is* the contention factor of
//! a time-multiplexed fabric. We deliberately do not peel rounds with
//! repeated Hopcroft–Karp maximum matchings
//! ([`crate::hopcroft_karp`]): removing a maximum matching from a
//! bipartite multigraph can strand low-degree edges and exceed `Δ`
//! rounds (e.g. `{a–c, a–d, b–c, e–d}` has `Δ = 2` but a bad maximum
//! matching `{a–c, e–d}` forces 3 rounds), while edge coloring is
//! optimal by König.

/// A Benes network on `ports = 2^k ≥ 2` ports.
#[derive(Debug, Clone)]
pub struct BenesNetwork {
    ports: usize,
    levels: u32,
    /// `bits[s]` = the wire bit exchanged by stage `s`.
    bits: Vec<usize>,
}

/// A computed routing: per-stage switch settings plus the wire path of
/// every routed source.
#[derive(Debug, Clone)]
pub struct BenesRouting {
    ports: usize,
    /// `settings[s][i] == true` — switch `i` of stage `s` crosses.
    pub settings: Vec<Vec<bool>>,
    /// `paths[src]` = the wire occupied after each stage (length
    /// `stages`), for routed sources; `None` for idle ports.
    pub paths: Vec<Option<Vec<usize>>>,
}

impl BenesNetwork {
    /// Build the network for a given power-of-two port count (≥ 2).
    ///
    /// Panics if `ports` is not a power of two or is below 2.
    pub fn new(ports: usize) -> Self {
        assert!(ports >= 2 && ports.is_power_of_two(), "Benes needs 2^k >= 2 ports");
        let levels = ports.trailing_zeros();
        let stages = 2 * levels as usize - 1;
        let bits = (0..stages).map(|s| s.min(stages - 1 - s)).collect();
        BenesNetwork { ports, levels, bits }
    }

    /// Smallest network that can host `p` endpoints (`2^⌈log₂ max(p,2)⌉`
    /// ports).
    pub fn with_capacity_for(p: usize) -> Self {
        BenesNetwork::new(p.max(2).next_power_of_two())
    }

    /// Number of ports `N`.
    #[inline]
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Number of switch stages `2·log₂N − 1`.
    #[inline]
    pub fn stages(&self) -> usize {
        self.bits.len()
    }

    /// The switch index handling wire `w` at stage `s` (the wire index
    /// with the exchanged bit removed).
    #[inline]
    fn switch_of(&self, s: usize, w: usize) -> usize {
        let b = self.bits[s];
        ((w >> (b + 1)) << b) | (w & ((1 << b) - 1))
    }

    /// Route the partial permutation `dest` (`dest[src] = Some(dst)`)
    /// through the network.
    ///
    /// Panics if `dest.len() != ports`, a destination is out of range, or
    /// two sources share a destination — callers route *partial
    /// permutations* only; use [`BenesNetwork::route_rounds`] for general
    /// flow multisets.
    pub fn route(&self, dest: &[Option<usize>]) -> BenesRouting {
        assert_eq!(dest.len(), self.ports, "one entry per port");
        let mut seen = vec![false; self.ports];
        for d in dest.iter().flatten() {
            assert!(*d < self.ports, "destination out of range");
            assert!(!seen[*d], "duplicate destination: not a partial permutation");
            seen[*d] = true;
        }
        let stages = self.stages();
        let mut settings: Vec<Vec<bool>> = (0..stages).map(|_| vec![false; self.ports / 2]).collect();
        self.route_rec(0, 0, dest, &mut settings);
        let paths = (0..self.ports)
            .map(|src| dest[src].map(|_| self.walk(src, &settings)))
            .collect();
        BenesRouting { ports: self.ports, settings, paths }
    }

    /// Recursive looping step on the depth-`d` subnetwork whose wires
    /// share the low `d` bits `base`. `dest` is in local port
    /// coordinates (local port `i` ↔ global wire `(i << d) | base`).
    fn route_rec(&self, d: usize, base: usize, dest: &[Option<usize>], settings: &mut [Vec<bool>]) {
        let n = dest.len();
        debug_assert_eq!(n, self.ports >> d);
        if n == 2 {
            // Single middle-stage switch (global stage k − 1).
            let s = self.levels as usize - 1;
            let cross = dest[0] == Some(1) || dest[1] == Some(0);
            let sw = self.switch_of(s, base);
            settings[s][sw] = cross;
            return;
        }
        // 2-color the flows: color = subnetwork, flows sharing an entry
        // switch (src >> 1) or exit switch (dst >> 1) must differ. The
        // conflict graph has degree ≤ 2 and only even cycles (edges
        // alternate entry- and exit-switch constraints), so propagating
        // alternate colors along every chain/cycle always succeeds.
        let mut src_of = vec![usize::MAX; n]; // inverse of dest
        for (i, d) in dest.iter().enumerate() {
            if let Some(j) = d {
                src_of[*j] = i;
            }
        }
        let mut color: Vec<Option<u8>> = vec![None; n];
        let mut stack: Vec<usize> = Vec::new();
        for start in 0..n {
            if dest[start].is_none() || color[start].is_some() {
                continue;
            }
            color[start] = Some(0);
            stack.push(start);
            while let Some(i) = stack.pop() {
                let c = color[i].expect("pushed with a color");
                // Entry-switch partner.
                let mate = i ^ 1;
                if dest[mate].is_some() && color[mate].is_none() {
                    color[mate] = Some(1 - c);
                    stack.push(mate);
                }
                // Exit-switch partner.
                let j = dest[i].expect("flows only");
                let other = src_of[j ^ 1];
                if other != usize::MAX && color[other].is_none() {
                    color[other] = Some(1 - c);
                    stack.push(other);
                }
            }
        }
        // Entry stage (global stage d): local ports 2t / 2t+1 → the
        // straight output feeds subnetwork 0, the crossed one subnetwork
        // 1, so port 2t colored c needs cross = (c == 1) and port 2t+1
        // colored c needs cross = (c == 0). The coloring guarantees both
        // constraints agree when the switch carries two flows.
        let entry = d;
        let exit = self.stages() - 1 - d;
        for t in 0..n / 2 {
            let cross = match (color[2 * t], color[2 * t + 1]) {
                (Some(c), _) => c == 1,
                (None, Some(c)) => c == 0,
                (None, None) => false,
            };
            let sw = self.switch_of(entry, ((2 * t) << d) | base);
            settings[entry][sw] = cross;
        }
        // Exit stage: a flow colored c arrives on the bit-0 = c side of
        // the switch serving its destination pair.
        for t in 0..n / 2 {
            let c0 = dest.iter().position(|&x| x == Some(2 * t)).and_then(|i| color[i]);
            let c1 = dest.iter().position(|&x| x == Some(2 * t + 1)).and_then(|i| color[i]);
            let cross = match (c0, c1) {
                (Some(c), _) => c == 1,
                (None, Some(c)) => c == 0,
                (None, None) => false,
            };
            let sw = self.switch_of(exit, ((2 * t) << d) | base);
            settings[exit][sw] = cross;
        }
        // Recurse into the two subnetworks.
        let mut sub = [vec![None; n / 2], vec![None; n / 2]];
        for i in 0..n {
            if let (Some(j), Some(c)) = (dest[i], color[i]) {
                sub[c as usize][i >> 1] = Some(j >> 1);
            }
        }
        for (c, sub_dest) in sub.iter().enumerate() {
            self.route_rec(d + 1, (c << d) | base, sub_dest, settings);
        }
    }

    /// Wire occupied after each stage when `src` enters a configured
    /// network.
    fn walk(&self, src: usize, settings: &[Vec<bool>]) -> Vec<usize> {
        let mut w = src;
        let mut path = Vec::with_capacity(self.stages());
        for s in 0..self.stages() {
            if settings[s][self.switch_of(s, w)] {
                w ^= 1 << self.bits[s];
            }
            path.push(w);
        }
        path
    }

    /// Route an arbitrary flow multiset `(src, dst)` as a sequence of
    /// contention-free rounds (one routing per round). The number of
    /// rounds equals the maximum port degree `Δ` — optimal by König —
    /// and is the contention factor of a time-multiplexed fabric.
    pub fn route_rounds(&self, flows: &[(usize, usize)]) -> Vec<BenesRouting> {
        decompose_rounds(flows, self.ports)
            .into_iter()
            .map(|round| {
                let mut dest = vec![None; self.ports];
                for (s, t) in round {
                    dest[s] = Some(t);
                }
                self.route(&dest)
            })
            .collect()
    }
}

impl BenesRouting {
    /// Number of ports of the routed network.
    #[inline]
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// `occupation[s][w]` = number of flows leaving stage `s` on wire
    /// `w`. A valid rearrangeable routing has every entry ≤ 1.
    pub fn occupation(&self) -> Vec<Vec<u32>> {
        let stages = self.settings.len();
        let mut occ = vec![vec![0u32; self.ports]; stages];
        for path in self.paths.iter().flatten() {
            for (s, &w) in path.iter().enumerate() {
                occ[s][w] += 1;
            }
        }
        occ
    }

    /// The worst per-wire load across all stages (0 when nothing is
    /// routed, 1 for a contention-free routing).
    pub fn max_occupation(&self) -> u32 {
        self.occupation().iter().flatten().copied().max().unwrap_or(0)
    }

    /// Check the routing realizes `dest` with stage-edge-disjoint paths:
    /// every routed source exits on its destination wire and no stage
    /// wire carries two flows.
    pub fn verify(&self, dest: &[Option<usize>]) -> bool {
        if dest.len() != self.ports {
            return false;
        }
        for (src, d) in dest.iter().enumerate() {
            match (d, &self.paths[src]) {
                (Some(t), Some(path)) => {
                    if path.last() != Some(t) {
                        return false;
                    }
                }
                (None, None) => {}
                _ => return false,
            }
        }
        self.max_occupation() <= 1
    }
}

/// Decompose a bipartite flow multiset into `Δ` rounds, each using every
/// source and destination port at most once, by alternating-path edge
/// coloring (König's theorem: a bipartite multigraph is `Δ`-edge-
/// colorable).
pub fn decompose_rounds(flows: &[(usize, usize)], ports: usize) -> Vec<Vec<(usize, usize)>> {
    if flows.is_empty() {
        return Vec::new();
    }
    let mut deg_s = vec![0usize; ports];
    let mut deg_d = vec![0usize; ports];
    for &(s, t) in flows {
        assert!(s < ports && t < ports, "flow endpoint out of range");
        deg_s[s] += 1;
        deg_d[t] += 1;
    }
    let delta = deg_s.iter().chain(&deg_d).copied().max().expect("non-empty");
    const NIL: usize = usize::MAX;
    // at_src[u][c] / at_dst[v][c] = flow index colored c at that port.
    let mut at_src = vec![vec![NIL; delta]; ports];
    let mut at_dst = vec![vec![NIL; delta]; ports];
    let mut color = vec![NIL; flows.len()];
    for (e, &(u, v)) in flows.iter().enumerate() {
        let cu = (0..delta).find(|&c| at_src[u][c] == NIL).expect("degree <= delta");
        let cv = (0..delta).find(|&c| at_dst[v][c] == NIL).expect("degree <= delta");
        let c = if cu == cv {
            cu
        } else {
            // Flip the (cu, cv)-alternating path starting at v. It never
            // reaches u: entering u would need a cu edge, and cu is free
            // at u (bipartite — the classic König argument).
            let mut path = Vec::new();
            let mut at_right = true;
            let mut vertex = v;
            let mut want = cu;
            loop {
                let slot =
                    if at_right { at_dst[vertex][want] } else { at_src[vertex][want] };
                if slot == NIL {
                    break;
                }
                path.push(slot);
                let (ue, ve) = flows[slot];
                vertex = if at_right { ue } else { ve };
                at_right = !at_right;
                want = if want == cu { cv } else { cu };
            }
            // Two passes so shared endpoints along the path stay sound.
            for &ei in &path {
                let (ue, ve) = flows[ei];
                at_src[ue][color[ei]] = NIL;
                at_dst[ve][color[ei]] = NIL;
            }
            for &ei in &path {
                let (ue, ve) = flows[ei];
                let nc = if color[ei] == cu { cv } else { cu };
                color[ei] = nc;
                at_src[ue][nc] = ei;
                at_dst[ve][nc] = ei;
            }
            cu
        };
        color[e] = c;
        at_src[u][c] = e;
        at_dst[v][c] = e;
    }
    let mut rounds: Vec<Vec<(usize, usize)>> = vec![Vec::new(); delta];
    for (e, &(u, v)) in flows.iter().enumerate() {
        rounds[color[e]].push((u, v));
    }
    rounds.retain(|r| !r.is_empty());
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_perm(net: &BenesNetwork, perm: &[usize]) -> Vec<Option<usize>> {
        let mut dest = vec![None; net.ports()];
        for (s, &t) in perm.iter().enumerate() {
            dest[s] = Some(t);
        }
        dest
    }

    #[test]
    fn network_shape() {
        let net = BenesNetwork::new(8);
        assert_eq!(net.ports(), 8);
        assert_eq!(net.stages(), 5);
        assert_eq!(net.bits, vec![0, 1, 2, 1, 0]);
        assert_eq!(BenesNetwork::with_capacity_for(5).ports(), 8);
        assert_eq!(BenesNetwork::with_capacity_for(1).ports(), 2);
    }

    #[test]
    fn identity_and_reversal_route_on_two_ports() {
        let net = BenesNetwork::new(2);
        let id = net.route(&full_perm(&net, &[0, 1]));
        assert!(id.verify(&full_perm(&net, &[0, 1])));
        let rev = net.route(&full_perm(&net, &[1, 0]));
        assert!(rev.verify(&full_perm(&net, &[1, 0])));
        assert_eq!(rev.max_occupation(), 1);
    }

    #[test]
    fn all_permutations_of_four_ports_route_contention_free() {
        let net = BenesNetwork::new(4);
        // All 4! = 24 permutations, exhaustively.
        let mut perm = [0usize, 1, 2, 3];
        let mut count = 0;
        permute(&mut perm, 0, &mut |p| {
            let dest = full_perm(&net, p);
            let routing = net.route(&dest);
            assert!(routing.verify(&dest), "failed on {p:?}");
            count += 1;
        });
        assert_eq!(count, 24);
    }

    fn permute(arr: &mut [usize; 4], i: usize, f: &mut impl FnMut(&[usize])) {
        if i == arr.len() {
            f(arr);
            return;
        }
        for j in i..arr.len() {
            arr.swap(i, j);
            permute(arr, i + 1, f);
            arr.swap(i, j);
        }
    }

    #[test]
    fn partial_permutations_route() {
        let net = BenesNetwork::new(8);
        let mut dest = vec![None; 8];
        dest[1] = Some(6);
        dest[4] = Some(0);
        dest[7] = Some(7);
        let routing = net.route(&dest);
        assert!(routing.verify(&dest));
        assert_eq!(routing.max_occupation(), 1);
        assert!(routing.paths[0].is_none());
        assert_eq!(routing.paths[1].as_ref().unwrap().last(), Some(&6));
    }

    #[test]
    fn empty_routing_is_trivially_valid() {
        let net = BenesNetwork::new(4);
        let dest = vec![None; 4];
        let routing = net.route(&dest);
        assert!(routing.verify(&dest));
        assert_eq!(routing.max_occupation(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate destination")]
    fn duplicate_destinations_rejected() {
        let net = BenesNetwork::new(4);
        let mut dest = vec![None; 4];
        dest[0] = Some(2);
        dest[1] = Some(2);
        let _ = net.route(&dest);
    }

    #[test]
    fn round_decomposition_is_delta_optimal() {
        // The repeated-max-matching counterexample from the module docs:
        // Δ = 2 but a bad matching peel needs 3 rounds.
        let flows = [(0, 2), (0, 3), (1, 2), (4, 3)];
        let rounds = decompose_rounds(&flows, 8);
        assert_eq!(rounds.len(), 2);
        let total: usize = rounds.iter().map(Vec::len).sum();
        assert_eq!(total, flows.len());
        for round in &rounds {
            let mut src_seen = [false; 8];
            let mut dst_seen = [false; 8];
            for &(s, t) in round {
                assert!(!src_seen[s] && !dst_seen[t]);
                src_seen[s] = true;
                dst_seen[t] = true;
            }
        }
    }

    #[test]
    fn route_rounds_covers_every_flow() {
        let net = BenesNetwork::new(8);
        let flows = [(0, 1), (0, 2), (0, 3), (5, 1), (5, 2), (6, 6)];
        let routings = net.route_rounds(&flows);
        assert_eq!(routings.len(), 3); // Δ = deg(0) = 3
        let mut routed = 0;
        for r in &routings {
            assert!(r.max_occupation() <= 1);
            routed += r.paths.iter().flatten().count();
        }
        assert_eq!(routed, flows.len());
    }
}
