//! Minimum-cost bipartite assignment (Hungarian algorithm).
//!
//! Implementation of the Kuhn–Munkres algorithm in its O(n²·m) potential /
//! shortest-augmenting-path formulation, for **rectangular** problems with
//! `n ≤ m` rows (every row must be assigned, columns may stay free) and
//! `f64` costs where `f64::INFINITY` marks a forbidden edge.
//!
//! This is the exact primitive needed by the paper's Theorem 19: rows are
//! pipeline stages, columns are processors, and the cost of edge `(k, u)` is
//! the energy of the *slowest mode* of `P_u` that still meets stage `k`'s
//! period bound (or `∞` when even the fastest mode is too slow).

/// Result of a minimum-cost assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignmentResult {
    /// `row_to_col[r]` = column assigned to row `r`.
    pub row_to_col: Vec<usize>,
    /// Total cost of the assignment.
    pub cost: f64,
}

/// Flat, reusable row-major cost matrix.
///
/// The sweep engines stage one assignment instance per candidate threshold;
/// a nested `Vec<Vec<f64>>` costs one allocation per row per candidate.
/// This arena keeps a single buffer alive across solves (growing to the
/// largest instance seen) — the same idiom as [`HungarianWorkspace`] and
/// `cpo_core`'s `DpScratch`.
#[derive(Debug, Default, Clone)]
pub struct CostMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl CostMatrix {
    /// Empty matrix; the buffer grows lazily.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resize to `rows × cols`, zero-filled, reusing the allocation.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cost of edge `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        let cols = self.cols;
        &mut self.data[r * cols..(r + 1) * cols]
    }
}

/// Reusable scratch buffers for [`hungarian_min_cost`].
///
/// A Pareto sweep solves one assignment per candidate period — hundreds to
/// thousands of back-to-back instances of identical shape. Keeping the six
/// internal arrays alive across solves removes every per-candidate
/// allocation except the returned `row_to_col`.
#[derive(Debug, Default)]
pub struct HungarianWorkspace {
    u: Vec<f64>,
    v: Vec<f64>,
    p: Vec<usize>,
    way: Vec<usize>,
    minv: Vec<f64>,
    used: Vec<bool>,
}

impl HungarianWorkspace {
    /// Fresh workspace; buffers grow lazily to the largest instance solved.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset the buffers for an `n × m` instance (1-based arrays, column 0
    /// is a sentinel).
    fn reset(&mut self, n: usize, m: usize) {
        self.u.clear();
        self.u.resize(n + 1, 0.0);
        self.v.clear();
        self.v.resize(m + 1, 0.0);
        self.p.clear();
        self.p.resize(m + 1, 0);
        self.way.clear();
        self.way.resize(m + 1, 0);
        self.minv.resize(m + 1, f64::INFINITY);
        self.used.resize(m + 1, false);
    }

    /// Solve the rectangular min-cost assignment problem.
    ///
    /// `cost[r][c]` is the cost of assigning row `r` to column `c`;
    /// `f64::INFINITY` forbids the edge. Requires `rows ≤ cols`. Returns
    /// `None` when no complete (all-rows) finite-cost assignment exists.
    ///
    /// Runs in O(rows² · cols) time — polynomial, as Theorem 19 requires.
    pub fn solve(&mut self, cost: &[Vec<f64>]) -> Option<AssignmentResult> {
        let n = cost.len();
        if n == 0 {
            return Some(AssignmentResult { row_to_col: vec![], cost: 0.0 });
        }
        let m = cost[0].len();
        assert!(
            cost.iter().all(|row| row.len() == m),
            "cost matrix must be rectangular"
        );
        assert!(n <= m, "hungarian_min_cost requires rows <= cols");
        debug_assert!(
            cost.iter().flatten().all(|&c| c.is_infinite() || c.is_finite()),
            "costs must be finite or +inf"
        );
        self.solve_inner(n, m, |r, c| cost[r][c])
    }

    /// [`HungarianWorkspace::solve`] on a flat [`CostMatrix`] — identical
    /// results, no nested-Vec staging.
    pub fn solve_flat(&mut self, cost: &CostMatrix) -> Option<AssignmentResult> {
        let (n, m) = (cost.rows(), cost.cols());
        if n == 0 {
            return Some(AssignmentResult { row_to_col: vec![], cost: 0.0 });
        }
        assert!(n <= m, "hungarian_min_cost requires rows <= cols");
        self.solve_inner(n, m, |r, c| cost.at(r, c))
    }

    fn solve_inner(
        &mut self,
        n: usize,
        m: usize,
        cost: impl Fn(usize, usize) -> f64,
    ) -> Option<AssignmentResult> {
        const INF: f64 = f64::INFINITY;
        // p[c] = row matched to column c (0 = free), u/v = potentials.
        self.reset(n, m);
        let (u, v, p, way, minv, used) =
            (&mut self.u, &mut self.v, &mut self.p, &mut self.way, &mut self.minv, &mut self.used);

        for r in 1..=n {
            p[0] = r;
            let mut j0 = 0_usize;
            minv[..=m].fill(INF);
            used[..=m].fill(false);
            loop {
                used[j0] = true;
                let i0 = p[j0];
                let mut delta = INF;
                let mut j1 = 0_usize;
                for j in 1..=m {
                    if used[j] {
                        continue;
                    }
                    let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
                if !delta.is_finite() {
                    // No augmenting path with finite cost: the instance is
                    // infeasible (some row cannot be assigned).
                    return None;
                }
                for j in 0..=m {
                    if used[j] {
                        u[p[j]] += delta;
                        v[j] -= delta;
                    } else {
                        minv[j] -= delta;
                    }
                }
                j0 = j1;
                if p[j0] == 0 {
                    break;
                }
            }
            // Augment along the alternating path.
            loop {
                let j1 = way[j0];
                p[j0] = p[j1];
                j0 = j1;
                if j0 == 0 {
                    break;
                }
            }
        }

        let mut row_to_col = vec![usize::MAX; n];
        for c in 1..=m {
            if p[c] != 0 {
                row_to_col[p[c] - 1] = c - 1;
            }
        }
        // All rows must be matched on a finite edge.
        let mut total = 0.0;
        for (r, &c) in row_to_col.iter().enumerate() {
            if c == usize::MAX {
                return None;
            }
            let edge = cost(r, c);
            if !edge.is_finite() {
                return None;
            }
            total += edge;
        }
        Some(AssignmentResult { row_to_col, cost: total })
    }
}

/// Solve one rectangular min-cost assignment with a fresh workspace. See
/// [`HungarianWorkspace::solve`]; callers solving many instances should hold
/// a workspace instead.
pub fn hungarian_min_cost(cost: &[Vec<f64>]) -> Option<AssignmentResult> {
    HungarianWorkspace::new().solve(cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force minimum over all injective row→column maps.
    fn brute_force(cost: &[Vec<f64>]) -> Option<f64> {
        let n = cost.len();
        let m = cost[0].len();
        let mut cols: Vec<usize> = (0..m).collect();
        let mut best: Option<f64> = None;
        permute(&mut cols, 0, n, &mut |perm| {
            let total: f64 = (0..n).map(|r| cost[r][perm[r]]).sum();
            if total.is_finite() {
                best = Some(match best {
                    None => total,
                    Some(b) => b.min(total),
                });
            }
        });
        best
    }

    fn permute(cols: &mut Vec<usize>, k: usize, n: usize, f: &mut impl FnMut(&[usize])) {
        if k == n {
            f(cols);
            return;
        }
        for i in k..cols.len() {
            cols.swap(k, i);
            permute(cols, k + 1, n, f);
            cols.swap(k, i);
        }
    }

    #[test]
    fn square_known_answer() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let res = hungarian_min_cost(&cost).unwrap();
        assert_eq!(res.cost, 5.0); // 1 + 2 + 2
        assert_eq!(res.row_to_col, vec![1, 0, 2]);
    }

    #[test]
    fn rectangular_leaves_columns_free() {
        let cost = vec![vec![10.0, 1.0, 7.0, 3.0], vec![2.0, 9.0, 8.0, 4.0]];
        let res = hungarian_min_cost(&cost).unwrap();
        assert_eq!(res.cost, 3.0); // rows pick columns 1 and 0
    }

    #[test]
    fn forbidden_edges_are_avoided() {
        let inf = f64::INFINITY;
        let cost = vec![vec![inf, 5.0], vec![1.0, inf]];
        let res = hungarian_min_cost(&cost).unwrap();
        assert_eq!(res.row_to_col, vec![1, 0]);
        assert_eq!(res.cost, 6.0);
    }

    #[test]
    fn infeasible_returns_none() {
        let inf = f64::INFINITY;
        // Row 1 has no finite edge.
        let cost = vec![vec![1.0, 2.0], vec![inf, inf]];
        assert!(hungarian_min_cost(&cost).is_none());
        // Both rows can only use column 0.
        let cost = vec![vec![1.0, inf], vec![1.0, inf]];
        assert!(hungarian_min_cost(&cost).is_none());
    }

    #[test]
    fn empty_problem() {
        let res = hungarian_min_cost(&[]).unwrap();
        assert_eq!(res.cost, 0.0);
        assert!(res.row_to_col.is_empty());
    }

    #[test]
    #[should_panic(expected = "rows <= cols")]
    fn too_many_rows_panics() {
        let _ = hungarian_min_cost(&[vec![1.0], vec![2.0]]);
    }

    #[test]
    fn workspace_reuse_across_shapes_matches_fresh_solves() {
        // One workspace solving growing/shrinking instances must agree with
        // fresh per-instance solves (stale buffer contents must not leak).
        let instances = [
            vec![vec![4.0, 1.0, 3.0], vec![2.0, 0.0, 5.0], vec![3.0, 2.0, 2.0]],
            vec![vec![10.0, 1.0, 7.0, 3.0], vec![2.0, 9.0, 8.0, 4.0]],
            vec![vec![f64::INFINITY, 5.0], vec![1.0, f64::INFINITY]],
            vec![vec![1.0, 2.0], vec![f64::INFINITY, f64::INFINITY]],
            vec![vec![4.0, 1.0, 3.0], vec![2.0, 0.0, 5.0], vec![3.0, 2.0, 2.0]],
        ];
        let mut ws = HungarianWorkspace::new();
        for cost in &instances {
            assert_eq!(ws.solve(cost), hungarian_min_cost(cost));
        }
    }

    #[test]
    fn flat_matrix_solves_match_nested() {
        // The flat-arena staging must reproduce the nested-Vec form on
        // every instance shape, including infeasible ones, with one matrix
        // reused across solves.
        let instances = [
            vec![vec![4.0, 1.0, 3.0], vec![2.0, 0.0, 5.0], vec![3.0, 2.0, 2.0]],
            vec![vec![10.0, 1.0, 7.0, 3.0], vec![2.0, 9.0, 8.0, 4.0]],
            vec![vec![f64::INFINITY, 5.0], vec![1.0, f64::INFINITY]],
            vec![vec![1.0, 2.0], vec![f64::INFINITY, f64::INFINITY]],
        ];
        let mut ws = HungarianWorkspace::new();
        let mut flat = CostMatrix::new();
        for cost in &instances {
            flat.reset(cost.len(), cost[0].len());
            for (r, row) in cost.iter().enumerate() {
                flat.row_mut(r).copy_from_slice(row);
            }
            assert_eq!(ws.solve_flat(&flat), hungarian_min_cost(cost));
        }
        // Empty problem through the flat path.
        flat.reset(0, 0);
        let res = ws.solve_flat(&flat).unwrap();
        assert!(res.row_to_col.is_empty());
        assert_eq!(res.cost, 0.0);
    }

    #[test]
    fn matches_brute_force_on_randoms() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
        for trial in 0..200 {
            let n = rng.gen_range(1..=5);
            let m = rng.gen_range(n..=6);
            let cost: Vec<Vec<f64>> = (0..n)
                .map(|_| {
                    (0..m)
                        .map(|_| {
                            if rng.gen_bool(0.15) {
                                f64::INFINITY
                            } else {
                                rng.gen_range(0..100) as f64
                            }
                        })
                        .collect()
                })
                .collect();
            let expected = brute_force(&cost);
            let got = hungarian_min_cost(&cost);
            match (expected, got) {
                (None, None) => {}
                (Some(e), Some(g)) => {
                    assert!((e - g.cost).abs() < 1e-9, "trial {trial}: {e} vs {}", g.cost)
                }
                (e, g) => panic!("trial {trial}: feasibility mismatch {e:?} vs {g:?}"),
            }
        }
    }

    proptest::proptest! {
        #[test]
        fn assignment_is_injective(seed in 0u64..500) {
            use rand::prelude::*;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let n = rng.gen_range(1..=6);
            let m = rng.gen_range(n..=8);
            let cost: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.gen_range(0.0..50.0)).collect())
                .collect();
            let res = hungarian_min_cost(&cost).expect("all-finite instance is feasible");
            let mut seen = std::collections::HashSet::new();
            for &c in &res.row_to_col {
                proptest::prop_assert!(c < m);
                proptest::prop_assert!(seen.insert(c), "column used twice");
            }
        }
    }
}
