//! # cpo-matching — bipartite matching substrate
//!
//! The Theorem 19 construction of the paper reduces one-to-one
//! period/energy optimization to a **minimum-weight bipartite matching**
//! between stages and processors. This crate implements the required
//! machinery from scratch:
//!
//! * [`hungarian`] — the Hungarian algorithm (Kuhn–Munkres with potentials,
//!   O(n²m)) for minimum-cost assignment with forbidden (`∞`) edges and
//!   rectangular cost matrices;
//! * [`hopcroft_karp`] — Hopcroft–Karp maximum-cardinality matching
//!   (O(E·√V)), used for pure feasibility questions;
//! * [`benes`] — rearrangeable permutation routing through Benes
//!   multistage networks (the looping algorithm) plus exact bipartite
//!   round decomposition, the machinery behind
//!   `CommTopology::Multistage` platforms.

pub mod benes;
pub mod hopcroft_karp;
pub mod hungarian;

pub use benes::{decompose_rounds, BenesNetwork, BenesRouting};
pub use hopcroft_karp::max_bipartite_matching;
pub use hungarian::{hungarian_min_cost, AssignmentResult, CostMatrix, HungarianWorkspace};
