//! Exhaustive baselines.
//!
//! Every polynomial algorithm in this crate is *certified* against the
//! enumerators below on thousands of small random instances (see
//! EXPERIMENTS.md), and the NP-hard cells of Tables 1 and 2 are
//! demonstrated by running them on reduction gadgets. The enumeration walks
//! all valid one-to-one or interval mappings (optionally all mode
//! selections) with symmetry breaking across interchangeable processors.

use crate::solution::{Criterion, MappingKind, Solution};
use cpo_model::num;
use cpo_model::prelude::*;

/// Which modes the enumeration explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpeedPolicy {
    /// Highest mode only — correct for performance-only problems
    /// (Section 4: without energy, processors run as fast as possible).
    MaxOnly,
    /// All modes — required whenever energy is involved.
    All,
}

/// Enumeration configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExactConfig {
    /// Mapping rule to enumerate.
    pub kind: MappingKind,
    /// Communication model used for evaluation.
    pub model: CommModel,
    /// Mode exploration policy.
    pub speed: SpeedPolicy,
}

struct Dfs<'a, F: FnMut(&Mapping)> {
    apps: &'a AppSet,
    platform: &'a Platform,
    cfg: ExactConfig,
    symmetry: bool,
    mapping: Mapping,
    used: Vec<bool>,
    visit: F,
}

impl<'a, F: FnMut(&Mapping)> Dfs<'a, F> {
    fn run(&mut self) {
        self.rec_app(0);
    }

    fn rec_app(&mut self, a: usize) {
        if a == self.apps.a() {
            (self.visit)(&self.mapping);
            return;
        }
        self.rec_stage(a, 0);
    }

    /// Processors equivalent to `u` for mapping purposes (identical speed
    /// set and static energy; only meaningful with homogeneous links).
    fn same_class(&self, u: usize, v: usize) -> bool {
        self.platform.procs[u] == self.platform.procs[v]
    }

    fn rec_stage(&mut self, a: usize, first: usize) {
        let n = self.apps.apps[a].n();
        if first == n {
            self.rec_app(a + 1);
            return;
        }
        let last_hi = match self.cfg.kind {
            MappingKind::OneToOne => first,
            MappingKind::Interval => n - 1,
        };
        for last in first..=last_hi {
            let mut reps: Vec<usize> = Vec::new();
            for u in 0..self.platform.p() {
                if self.used[u] {
                    continue;
                }
                if self.symmetry && reps.iter().any(|&r| self.same_class(r, u)) {
                    continue;
                }
                reps.push(u);
                let modes = match self.cfg.speed {
                    SpeedPolicy::MaxOnly => {
                        (self.platform.procs[u].modes() - 1)..self.platform.procs[u].modes()
                    }
                    SpeedPolicy::All => 0..self.platform.procs[u].modes(),
                };
                for mode in modes {
                    self.used[u] = true;
                    self.mapping.push(Interval::new(a, first, last), u, mode);
                    self.rec_stage(a, last + 1);
                    self.mapping.assignments.pop();
                    self.used[u] = false;
                }
            }
        }
    }
}

/// Enumerate every valid mapping under `cfg`, invoking `visit` on each.
///
/// Symmetry breaking (skipping interchangeable processors) is applied
/// automatically when the platform has homogeneous links, which reduces the
/// enumeration exponentially on fully homogeneous platforms without losing
/// any objective value.
pub fn for_each_mapping(
    apps: &AppSet,
    platform: &Platform,
    cfg: ExactConfig,
    visit: impl FnMut(&Mapping),
) {
    let symmetry = platform.has_homogeneous_links();
    let mut dfs = Dfs {
        apps,
        platform,
        cfg,
        symmetry,
        mapping: Mapping::new(),
        used: vec![false; platform.p()],
        visit,
    };
    dfs.run();
}

/// Count the mappings `for_each_mapping` would visit (diagnostics).
pub fn count_mappings(apps: &AppSet, platform: &Platform, cfg: ExactConfig) -> u64 {
    let mut count = 0u64;
    for_each_mapping(apps, platform, cfg, |_| count += 1);
    count
}

/// Exhaustively optimize `objective` subject to `thresholds`, returning the
/// best feasible mapping. Exponential — certification of small instances
/// only. Returns `None` when no valid mapping satisfies the thresholds.
pub fn exact_optimize(
    apps: &AppSet,
    platform: &Platform,
    cfg: ExactConfig,
    objective: Criterion,
    thresholds: &Thresholds,
) -> Option<Solution> {
    let ev = Evaluator::new(apps, platform);
    let mut best: Option<Solution> = None;
    for_each_mapping(apps, platform, cfg, |mapping| {
        let e = ev.evaluate(mapping, cfg.model);
        if !thresholds.satisfied_by(&e.periods, &e.latencies, e.energy) {
            return;
        }
        let value = match objective {
            Criterion::Period => e.period,
            Criterion::Latency => e.latency,
            Criterion::Energy => e.energy,
        };
        if best.as_ref().is_none_or(|b| num::lt(value, b.objective)) {
            best = Some(Solution::new(mapping.clone(), value));
        }
    });
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::application::Application;
    use cpo_model::generator::section2_example;

    #[test]
    fn counts_are_sane_for_tiny_instances() {
        // One app, 2 stages, 2 identical uni-modal procs, uniform links.
        let apps = AppSet::single(Application::from_pairs(0.0, &[(1.0, 0.0), (1.0, 0.0)]));
        let pf = Platform::fully_homogeneous(2, vec![1.0], 1.0).unwrap();
        let cfg = ExactConfig {
            kind: MappingKind::Interval,
            model: CommModel::Overlap,
            speed: SpeedPolicy::MaxOnly,
        };
        // Partitions: [0,1] on one proc (1 class) or [0][1] on two procs
        // (1 symmetric choice) → 2.
        assert_eq!(count_mappings(&apps, &pf, cfg), 2);
        let cfg11 = ExactConfig { kind: MappingKind::OneToOne, ..cfg };
        assert_eq!(count_mappings(&apps, &pf, cfg11), 1);
    }

    #[test]
    fn symmetry_breaking_preserves_optimum() {
        let apps = AppSet::single(Application::from_pairs(1.0, &[(4.0, 2.0), (4.0, 1.0)]));
        // Two *distinct* processors: no symmetry.
        let pf_het = Platform::comm_homogeneous(
            vec![
                cpo_model::platform::Processor::uni_modal(2.0).unwrap(),
                cpo_model::platform::Processor::uni_modal(4.0).unwrap(),
            ],
            1.0,
        )
        .unwrap();
        let cfg = ExactConfig {
            kind: MappingKind::Interval,
            model: CommModel::Overlap,
            speed: SpeedPolicy::MaxOnly,
        };
        let het = exact_optimize(&apps, &pf_het, cfg, Criterion::Period, &Thresholds::none())
            .unwrap();
        // Identical twin platform (both speed 4): symmetric enumeration must
        // still find the same optimum as manual reasoning: single interval
        // on speed-4 proc → max(1/1, 8/4, 1/1) = 2.
        let pf_hom = Platform::fully_homogeneous(2, vec![4.0], 1.0).unwrap();
        let hom = exact_optimize(&apps, &pf_hom, cfg, Criterion::Period, &Thresholds::none())
            .unwrap();
        assert!((hom.objective - 2.0).abs() < 1e-9);
        assert!(het.objective <= 2.0 + 1e-9);
    }

    #[test]
    fn section2_period_1_found_exhaustively() {
        let (apps, pf) = section2_example();
        let cfg = ExactConfig {
            kind: MappingKind::Interval,
            model: CommModel::Overlap,
            speed: SpeedPolicy::MaxOnly,
        };
        let sol = exact_optimize(&apps, &pf, cfg, Criterion::Period, &Thresholds::none()).unwrap();
        assert!((sol.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn section2_min_energy_10() {
        let (apps, pf) = section2_example();
        let cfg = ExactConfig {
            kind: MappingKind::Interval,
            model: CommModel::Overlap,
            speed: SpeedPolicy::All,
        };
        let sol = exact_optimize(&apps, &pf, cfg, Criterion::Energy, &Thresholds::none()).unwrap();
        // Section 2: minimum energy 3² + 1² = 10.
        assert!((sol.objective - 10.0).abs() < 1e-9);
    }

    #[test]
    fn section2_energy_under_period_2_is_46() {
        let (apps, pf) = section2_example();
        let cfg = ExactConfig {
            kind: MappingKind::Interval,
            model: CommModel::Overlap,
            speed: SpeedPolicy::All,
        };
        let th = Thresholds::uniform_period(2.0, 2);
        let sol = exact_optimize(&apps, &pf, cfg, Criterion::Energy, &th).unwrap();
        assert!((sol.objective - 46.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_thresholds_give_none() {
        let (apps, pf) = section2_example();
        let cfg = ExactConfig {
            kind: MappingKind::Interval,
            model: CommModel::Overlap,
            speed: SpeedPolicy::All,
        };
        let th = Thresholds::uniform_period(0.01, 2);
        assert!(exact_optimize(&apps, &pf, cfg, Criterion::Energy, &th).is_none());
    }

    #[test]
    fn one_to_one_requires_enough_processors() {
        // 3 stages, 2 procs: no valid one-to-one mapping exists.
        let apps = AppSet::single(Application::from_pairs(0.0, &[(1.0, 0.0); 3]));
        let pf = Platform::fully_homogeneous(2, vec![1.0], 1.0).unwrap();
        let cfg = ExactConfig {
            kind: MappingKind::OneToOne,
            model: CommModel::Overlap,
            speed: SpeedPolicy::MaxOnly,
        };
        assert_eq!(count_mappings(&apps, &pf, cfg), 0);
        assert!(exact_optimize(&apps, &pf, cfg, Criterion::Period, &Thresholds::none()).is_none());
    }
}
