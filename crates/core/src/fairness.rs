//! Fairness objectives: computing the Eq. (6) weights.
//!
//! Eq. (6) of the paper lets `W_a` be "1 (we retrieve a simple maximum) or
//! a priority ratio (fixed by the platform manager and/or paid by the
//! user). We can also let `W_a = 1/X_a*`, where `X_a*` is the objective
//! function computed when the application is executed alone on the
//! platform; in this case `W_a·X_a` represents the slowdown factor of
//! application `a`, and `X` corresponds to the maximum stretch."
//!
//! This module computes the reference values `X_a*` (per-application
//! optima alone on the platform) and packages them into
//! [`cpo_model::objective::Aggregation::Stretch`] weights — plus the
//! Theorem 7-style scaling helpers used by the stretch variants of the
//! NP-hardness results.

use crate::mono::latency::min_latency_interval_comm_hom;
use crate::mono::period_interval::minimize_global_period;
use cpo_model::prelude::*;

/// Per-application reference periods `T_a*`: each application alone on the
/// platform, interval mapping, weight forced to 1.
///
/// Polynomial on fully homogeneous platforms (Theorem 3 with `A = 1`);
/// returns `None` when any reference is unsolvable there (wrong platform
/// class — fall back to [`reference_periods_exact`] on small instances).
pub fn reference_periods(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
) -> Option<Vec<f64>> {
    apps.apps
        .iter()
        .map(|app| {
            let mut solo_app = app.clone();
            solo_app.weight = 1.0;
            let solo = AppSet::single(solo_app);
            minimize_global_period(&solo, platform, model).map(|s| s.objective)
        })
        .collect()
}

/// Exhaustive fallback for [`reference_periods`] on platforms where the
/// polynomial solver does not apply (small instances only).
pub fn reference_periods_exact(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
) -> Option<Vec<f64>> {
    apps.apps
        .iter()
        .map(|app| {
            let mut solo_app = app.clone();
            solo_app.weight = 1.0;
            let solo = AppSet::single(solo_app);
            crate::exact::exact_optimize(
                &solo,
                platform,
                crate::exact::ExactConfig {
                    kind: crate::MappingKind::Interval,
                    model,
                    speed: crate::exact::SpeedPolicy::MaxOnly,
                },
                crate::Criterion::Period,
                &Thresholds::none(),
            )
            .map(|s| s.objective)
        })
        .collect()
}

/// Per-application reference latencies `L_a*` on communication homogeneous
/// platforms (Theorem 12 with `A = 1`: whole chain on the fastest
/// processor).
pub fn reference_latencies(apps: &AppSet, platform: &Platform) -> Option<Vec<f64>> {
    apps.apps
        .iter()
        .map(|app| {
            let mut solo_app = app.clone();
            solo_app.weight = 1.0;
            let solo = AppSet::single(solo_app);
            min_latency_interval_comm_hom(&solo, platform).map(|s| s.objective)
        })
        .collect()
}

/// Install max-stretch weights (`W_a = 1/T_a*`) into the application set;
/// returns the references used. After this, any period solver minimizes the
/// maximum period-stretch.
pub fn apply_period_stretch_weights(
    apps: &mut AppSet,
    platform: &Platform,
    model: CommModel,
) -> Option<Vec<f64>> {
    let refs = reference_periods(apps, platform, model)
        .or_else(|| reference_periods_exact(apps, platform, model))?;
    Aggregation::Stretch(refs.clone()).apply(apps);
    Some(refs)
}

/// The Theorem 6 scaling trick, reusable: scaling every work of
/// application `a` by `W_a` turns a weighted-period instance into an
/// unweighted one (`W_a·T_a(w) = T_a(W_a·w)` when communications are
/// scaled likewise). Returns the scaled application set with unit weights.
pub fn scale_out_weights(apps: &AppSet) -> AppSet {
    let scaled = apps
        .apps
        .iter()
        .map(|app| {
            let w = app.weight;
            let stages = app
                .stages
                .iter()
                .map(|st| cpo_model::application::Stage::new(st.work * w, st.output * w))
                .collect();
            cpo_model::application::Application::named(
                app.name.clone(),
                app.input * w,
                stages,
                1.0,
            )
            .expect("scaling preserves validity")
        })
        .collect();
    AppSet::new(scaled).expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::application::Application;

    fn apps() -> AppSet {
        AppSet::new(vec![
            Application::from_pairs(0.0, &[(4.0, 0.0), (4.0, 0.0)]),
            Application::from_pairs(0.0, &[(12.0, 0.0)]),
        ])
        .unwrap()
    }

    #[test]
    fn references_are_solo_optima() {
        let apps = apps();
        let pf = Platform::fully_homogeneous(4, vec![2.0], 1.0).unwrap();
        let refs = reference_periods(&apps, &pf, CommModel::Overlap).unwrap();
        // App0 alone on 4 procs: [4|4] → 2; app1 monolithic: 6.
        assert_eq!(refs, vec![2.0, 6.0]);
        let exact = reference_periods_exact(&apps, &pf, CommModel::Overlap).unwrap();
        assert_eq!(refs, exact);
    }

    #[test]
    fn stretch_weights_balance_slowdowns() {
        let mut apps = apps();
        let pf = Platform::fully_homogeneous(3, vec![2.0], 1.0).unwrap();
        let refs =
            apply_period_stretch_weights(&mut apps, &pf, CommModel::Overlap).unwrap();
        assert_eq!(apps.apps[0].weight, 1.0 / refs[0]);
        let sol = minimize_global_period(&apps, &pf, CommModel::Overlap).unwrap();
        // The objective is now the max stretch; with 3 processors both apps
        // can achieve their solo optimum except app0 loses one processor:
        // app0 on 2 procs → 2 (stretch 1 vs ref 2 on 3 procs? alone on 3
        // procs app0 still gets 2 (only 2 stages)); app1 → 6, stretch 1.
        assert!((sol.objective - 1.0).abs() < 1e-9, "both tenants unharmed: {}", sol.objective);
    }

    #[test]
    fn reference_latencies_on_comm_hom() {
        let apps = apps();
        let pf = Platform::comm_homogeneous(
            vec![
                cpo_model::platform::Processor::uni_modal(1.0).unwrap(),
                cpo_model::platform::Processor::uni_modal(4.0).unwrap(),
            ],
            1.0,
        )
        .unwrap();
        let refs = reference_latencies(&apps, &pf).unwrap();
        // Alone, each app takes the fastest processor (speed 4).
        assert_eq!(refs, vec![2.0, 3.0]);
    }

    #[test]
    fn theorem6_scaling_preserves_weighted_period() {
        // W_a·T_a(original) == T_a(scaled) for whole-chain mappings.
        let mut apps = apps();
        apps.apps[0].weight = 3.0;
        apps.apps[1].weight = 0.5;
        let scaled = scale_out_weights(&apps);
        assert_eq!(scaled.apps[0].weight, 1.0);
        let pf = Platform::fully_homogeneous(2, vec![2.0], 1.0).unwrap();
        let ev_orig = Evaluator::new(&apps, &pf);
        let ev_scaled = Evaluator::new(&scaled, &pf);
        let m = Mapping::new()
            .with(Interval::new(0, 0, 1), 0, 0)
            .with(Interval::new(1, 0, 0), 1, 0);
        for model in CommModel::ALL {
            let weighted = ev_orig.period(&m, model);
            let unweighted_scaled = ev_scaled.period(&m, model);
            assert!(
                (weighted - unweighted_scaled).abs() < 1e-9,
                "{model:?}: {weighted} vs {unweighted_scaled}"
            );
        }
    }

    #[test]
    fn scaling_is_involution_up_to_weight() {
        let mut apps = apps();
        apps.apps[0].weight = 2.0;
        let scaled = scale_out_weights(&apps);
        // Scaling again with unit weights is the identity.
        let twice = scale_out_weights(&scaled);
        assert_eq!(scaled, twice);
    }
}
