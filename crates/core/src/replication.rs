//! Solvers for **replicated** interval mappings (Section 6 extension,
//! following reference [4] of the paper).
//!
//! * [`replicated_period_table`] — single-application dynamic program over
//!   (prefix, processor budget): each interval chooses a replication
//!   factor `r`, dividing its cycle-time by `r` at the price of `r`
//!   processors. `O(n²·p²)`.
//! * [`minimize_global_period_replicated`] — multi-application version via
//!   the paper's Algorithm 2 (the per-application optimum is still
//!   non-increasing in the processor count).
//! * [`min_energy_replicated_under_period`] — the energy-aware variant:
//!   a DP over (prefix, processor budget) choosing each interval's split
//!   and replication factor jointly, with the cheapest feasible mode per
//!   `(interval, r)` (replication as an alternative to DVFS: `r` slow
//!   processors vs one fast processor — the ablation the benches quantify).
//! * [`exact_min_period_replicated`] — exhaustive baseline for
//!   certification.

#![allow(clippy::needless_range_loop)]
use crate::alloc::allocate_processors;
use crate::dp::HomCtx;
use cpo_model::num;
use cpo_model::prelude::*;
use cpo_model::replication::{ReplicatedEvaluator, ReplicatedMapping};

/// A chain partition with replication factors and modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicatedPartition {
    /// Intervals `(first, last)` in chain order.
    pub intervals: Vec<(usize, usize)>,
    /// Replication factor per interval.
    pub factors: Vec<usize>,
    /// Mode per interval (all replicas share it).
    pub modes: Vec<usize>,
}

impl ReplicatedPartition {
    /// Total processors consumed.
    pub fn procs_used(&self) -> usize {
        self.factors.iter().sum()
    }
}

/// Result of the replicated period DP.
#[derive(Debug, Clone)]
pub struct ReplicatedPeriodTable {
    /// `best[q-1]` = minimum period using at most `q` processors.
    pub best: Vec<f64>,
    n: usize,
    /// `exact[k][i]` = min period, exactly `k` processors, first `i` stages.
    exact: Vec<Vec<f64>>,
    /// `(split point j, replication factor r)` realizing `exact[k][i]`.
    parent: Vec<Vec<(usize, usize)>>,
}

/// Single-application replicated period DP at the top speed. `O(n²·qmax²)`.
pub fn replicated_period_table(ctx: &HomCtx<'_>, qmax: usize) -> ReplicatedPeriodTable {
    let n = ctx.app.n();
    let s = ctx.max_speed();
    let inf = f64::INFINITY;
    let kcap = qmax.max(1);
    let mut exact = vec![vec![inf; n + 1]; kcap + 1];
    let mut parent = vec![vec![(usize::MAX, 0usize); n + 1]; kcap + 1];
    exact[0][0] = 0.0;
    for k in 1..=kcap {
        exact[k][0] = 0.0;
        for i in 1..=n {
            let mut best = inf;
            let mut arg = (usize::MAX, 0usize);
            for j in 0..i {
                // Last interval is stages j..=i-1, replicated r times.
                let cycle = ctx.cycle(j, i - 1, s);
                for r in 1..=k {
                    if exact[k - r][j].is_finite() {
                        let cand = num::fmax(exact[k - r][j], cycle / r as f64);
                        if cand < best {
                            best = cand;
                            arg = (j, r);
                        }
                    }
                }
            }
            exact[k][i] = best;
            parent[k][i] = arg;
        }
    }
    let mut bestv = Vec::with_capacity(qmax);
    let mut acc = inf;
    for q in 1..=qmax {
        acc = num::fmin(acc, exact[q][n]);
        bestv.push(acc);
    }
    ReplicatedPeriodTable { best: bestv, n, exact, parent }
}

impl ReplicatedPeriodTable {
    /// Reconstruct a partition achieving `best[q-1]`.
    pub fn partition(&self, q: usize, top_mode: usize) -> ReplicatedPartition {
        let target = self.best[q - 1];
        let k = (1..=q)
            .find(|&k| num::le(self.exact[k][self.n], target))
            .expect("replicated period table is consistent");
        let mut intervals = Vec::new();
        let mut factors = Vec::new();
        let mut i = self.n;
        let mut kk = k;
        while i > 0 {
            let (j, r) = self.parent[kk][i];
            intervals.push((j, i - 1));
            factors.push(r);
            kk -= r;
            i = j;
        }
        intervals.reverse();
        factors.reverse();
        let modes = vec![top_mode; intervals.len()];
        ReplicatedPartition { intervals, factors, modes }
    }
}

/// Assemble a global replicated mapping from per-application partitions.
fn mapping_from_replicated(partitions: &[ReplicatedPartition]) -> ReplicatedMapping {
    let mut mapping = ReplicatedMapping::new();
    let mut next = 0usize;
    for (a, part) in partitions.iter().enumerate() {
        for (iv, &(first, last)) in part.intervals.iter().enumerate() {
            let r = part.factors[iv];
            let procs: Vec<usize> = (next..next + r).collect();
            next += r;
            mapping.push(Interval::new(a, first, last), procs, vec![part.modes[iv]; r]);
        }
    }
    mapping
}

/// Minimize the global weighted period with replication on a fully
/// homogeneous platform (Algorithm 2 over the replicated DP).
pub fn minimize_global_period_replicated(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
) -> Option<(ReplicatedMapping, f64)> {
    if platform.class() != PlatformClass::FullyHomogeneous {
        return None;
    }
    let p = platform.p();
    let a_count = apps.a();
    if p < a_count {
        return None;
    }
    let speeds = platform.procs[0].speeds().to_vec();
    let b = match &platform.links {
        cpo_model::platform::Links::Uniform(b) => *b,
        cpo_model::platform::Links::PerApp(bs) => bs[0],
        cpo_model::platform::Links::Heterogeneous { .. } => return None,
    };
    let qmax = p - a_count + 1;
    let tables: Vec<ReplicatedPeriodTable> = apps
        .apps
        .iter()
        .map(|app| {
            let ctx = HomCtx::new(app, &speeds, b, model);
            replicated_period_table(&ctx, qmax)
        })
        .collect();
    let weights: Vec<f64> = apps.apps.iter().map(|a| a.weight).collect();
    let alloc = allocate_processors(a_count, p, &weights, |a, q| tables[a].best[q - 1])?;
    let top = speeds.len() - 1;
    let partitions: Vec<_> =
        (0..a_count).map(|a| tables[a].partition(alloc.procs[a], top)).collect();
    let mapping = mapping_from_replicated(&partitions);
    debug_assert!(mapping.validate(apps, platform).is_ok());
    let achieved = ReplicatedEvaluator::new(apps, platform).period(&mapping, model);
    Some((mapping, achieved))
}

/// Cheapest mode for an interval replicated exactly `r` times under a
/// period bound: the slowest feasible speed (dynamic energy is increasing
/// in speed since `α > 1`). Returns `(mode, total energy of the r replicas)`.
fn cheapest_mode_for_factor(
    ctx: &HomCtx<'_>,
    lo: usize,
    hi: usize,
    t_bound: f64,
    r: usize,
) -> Option<(usize, f64)> {
    for (m, &s) in ctx.speeds.iter().enumerate() {
        if num::le(ctx.cycle(lo, hi, s) / r as f64, t_bound) {
            return Some((m, r as f64 * (ctx.e_stat + ctx.energy.dynamic(s))));
        }
    }
    None
}

/// Minimum-energy replicated mapping of a single application under a period
/// bound (fully homogeneous platform): DP over (prefix, processors used)
/// choosing each interval's split and replication factor `r` jointly
/// (each candidate `r` takes its cheapest feasible mode). Returns
/// `(mapping, energy)`.
pub fn min_energy_replicated_under_period(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    period_bounds: &[f64],
) -> Option<(ReplicatedMapping, f64)> {
    assert_eq!(period_bounds.len(), apps.a());
    if platform.class() != PlatformClass::FullyHomogeneous {
        return None;
    }
    let p = platform.p();
    let a_count = apps.a();
    if p < a_count {
        return None;
    }
    let speeds = platform.procs[0].speeds().to_vec();
    let e_stat = platform.procs[0].e_stat;
    let b = match &platform.links {
        cpo_model::platform::Links::Uniform(b) => *b,
        cpo_model::platform::Links::PerApp(bs) => bs[0],
        cpo_model::platform::Links::Heterogeneous { .. } => return None,
    };
    let inf = f64::INFINITY;
    let qmax = p - a_count + 1;

    // Per-application DP: e[k][i] = min energy, exactly k processors, first
    // i stages; each interval contributes its cheapest (r, mode).
    struct AppTable {
        exact_k: Vec<f64>,
        parent: Vec<Vec<(usize, usize, usize)>>, // (split j, r, mode)
    }
    let mut tables = Vec::with_capacity(a_count);
    for (a, app) in apps.apps.iter().enumerate() {
        let mut ctx = HomCtx::new(app, &speeds, b, model);
        ctx.e_stat = e_stat;
        let n = app.n();
        let mut exact = vec![vec![inf; n + 1]; qmax + 1];
        let mut parent = vec![vec![(usize::MAX, 0usize, 0usize); n + 1]; qmax + 1];
        exact[0][0] = 0.0;
        for k in 1..=qmax {
            exact[k][0] = 0.0;
            for i in 1..=n {
                let mut best = inf;
                let mut arg = (usize::MAX, 0usize, 0usize);
                for j in 0..i {
                    // The replication factor must be chosen jointly with the
                    // split: the globally cheapest (r, mode) can starve the
                    // prefix of processors while a costlier smaller r fits.
                    for r in 1..=k {
                        if !exact[k - r][j].is_finite() {
                            continue;
                        }
                        if let Some((m, e)) =
                            cheapest_mode_for_factor(&ctx, j, i - 1, period_bounds[a], r)
                        {
                            if exact[k - r][j] + e < best {
                                best = exact[k - r][j] + e;
                                arg = (j, r, m);
                            }
                        }
                    }
                }
                exact[k][i] = best;
                parent[k][i] = arg;
            }
        }
        let exact_k: Vec<f64> = (1..=qmax).map(|k| exact[k][n]).collect();
        tables.push((AppTable { exact_k, parent }, n));
    }

    // Theorem-21-style convolution across applications.
    let mut e = vec![vec![inf; p + 1]; a_count + 1];
    let mut choice = vec![vec![usize::MAX; p + 1]; a_count + 1];
    e[0][0] = 0.0;
    for a in 1..=a_count {
        for k in a..=p {
            let mut best = inf;
            let mut arg = usize::MAX;
            let qcap = tables[a - 1].0.exact_k.len().min(k - (a - 1));
            for q in 1..=qcap {
                let prev = e[a - 1][k - q];
                let cur = tables[a - 1].0.exact_k[q - 1];
                if prev.is_finite() && cur.is_finite() && prev + cur < best {
                    best = prev + cur;
                    arg = q;
                }
            }
            e[a][k] = best;
            choice[a][k] = arg;
        }
    }
    let (k_best, &e_best) = e[a_count]
        .iter()
        .enumerate()
        .min_by(|(_, x), (_, y)| x.partial_cmp(y).expect("no NaN"))?;
    if !e_best.is_finite() {
        return None;
    }

    // Reconstruct.
    let mut counts = vec![0usize; a_count];
    let mut k = k_best;
    for a in (1..=a_count).rev() {
        counts[a - 1] = choice[a][k];
        k -= choice[a][k];
    }
    let mut partitions = Vec::with_capacity(a_count);
    for a in 0..a_count {
        let (table, n) = &tables[a];
        let mut intervals = Vec::new();
        let mut factors = Vec::new();
        let mut modes = Vec::new();
        let mut i = *n;
        let mut kk = counts[a];
        while i > 0 {
            let (j, r, m) = table.parent[kk][i];
            intervals.push((j, i - 1));
            factors.push(r);
            modes.push(m);
            kk -= r;
            i = j;
        }
        intervals.reverse();
        factors.reverse();
        modes.reverse();
        partitions.push(ReplicatedPartition { intervals, factors, modes });
    }
    let mapping = mapping_from_replicated(&partitions);
    debug_assert!(mapping.validate(apps, platform).is_ok());
    let achieved = ReplicatedEvaluator::new(apps, platform).energy(&mapping);
    debug_assert!(num::approx_eq(achieved, e_best));
    Some((mapping, achieved))
}

/// Exhaustive replicated-period baseline (single application, identical
/// processors): enumerate all partitions and factor vectors. Exponential;
/// certification only.
pub fn exact_min_period_replicated(ctx: &HomCtx<'_>, p: usize) -> f64 {
    fn rec(ctx: &HomCtx<'_>, first: usize, procs_left: usize, current_max: f64, best: &mut f64) {
        let n = ctx.app.n();
        if first == n {
            *best = num::fmin(*best, current_max);
            return;
        }
        if procs_left == 0 {
            return;
        }
        let s = ctx.max_speed();
        for last in first..n {
            let cycle = ctx.cycle(first, last, s);
            for r in 1..=procs_left {
                let m = num::fmax(current_max, cycle / r as f64);
                if m < *best {
                    rec(ctx, last + 1, procs_left - r, m, best);
                }
            }
        }
    }
    let mut best = f64::INFINITY;
    rec(ctx, 0, p, 0.0, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::application::Application;
    use cpo_model::generator::{random_apps, AppGenConfig};

    fn ctx_for<'a>(app: &'a Application, speeds: &'a [f64]) -> HomCtx<'a> {
        HomCtx::new(app, speeds, 1.0, CommModel::Overlap)
    }

    #[test]
    fn replication_beats_plain_on_monolithic_stage() {
        // One heavy stage: splitting is impossible, replication is the only
        // way to improve the period.
        let app = Application::from_pairs(0.0, &[(8.0, 0.0)]);
        let speeds = [2.0];
        let ctx = ctx_for(&app, &speeds);
        let plain = crate::dp::period_table(&ctx, 4).best[3];
        let repl = replicated_period_table(&ctx, 4).best[3];
        assert!((plain - 4.0).abs() < 1e-12);
        assert!((repl - 1.0).abs() < 1e-12); // 8/2/4
    }

    #[test]
    fn replicated_table_matches_exhaustive() {
        let cfg = AppGenConfig { apps: 1, stages: (1, 4), ..Default::default() };
        for seed in 0..80 {
            let apps = random_apps(&cfg, seed);
            let speeds = [2.0];
            let ctx = ctx_for(&apps.apps[0], &speeds);
            for p in 1..=5 {
                let dp = replicated_period_table(&ctx, p).best[p - 1];
                let brute = exact_min_period_replicated(&ctx, p);
                assert!(
                    (dp - brute).abs() < 1e-9,
                    "seed {seed} p {p}: dp {dp} vs brute {brute}"
                );
            }
        }
    }

    #[test]
    fn replication_never_hurts() {
        let cfg = AppGenConfig { apps: 1, stages: (2, 5), ..Default::default() };
        for seed in 0..40 {
            let apps = random_apps(&cfg, seed);
            let speeds = [1.0, 3.0];
            let ctx = ctx_for(&apps.apps[0], &speeds);
            for p in 1..=5 {
                let plain = crate::dp::period_table(&ctx, p).best[p - 1];
                let repl = replicated_period_table(&ctx, p).best[p - 1];
                assert!(repl <= plain + 1e-9, "seed {seed} p {p}");
            }
        }
    }

    #[test]
    fn global_replicated_solver_builds_valid_mappings() {
        let apps = AppSet::new(vec![
            Application::from_pairs(0.0, &[(8.0, 0.0)]),
            Application::from_pairs(0.0, &[(4.0, 0.0), (4.0, 0.0)]),
        ])
        .unwrap();
        let pf = Platform::fully_homogeneous(5, vec![2.0], 1.0).unwrap();
        let (mapping, period) =
            minimize_global_period_replicated(&apps, &pf, CommModel::Overlap).unwrap();
        mapping.validate(&apps, &pf).unwrap();
        // 5 procs: app0 gets 3 replicas (8/2/3 = 4/3), app1 two procs
        // ([4][4] → 2 each)… or app0 2 replicas (2) and app1 3 procs.
        // Either way the greedy balances: best achievable max is 4/3 vs 2.
        let plain =
            crate::mono::period_interval::minimize_global_period(&apps, &pf, CommModel::Overlap)
                .unwrap();
        assert!(period <= plain.objective + 1e-9);
        assert!(period < plain.objective, "replication should strictly help here");
    }

    #[test]
    fn energy_aware_replication_prefers_slow_replicas_when_alpha_makes_it_cheap() {
        // Work 8, period bound 1. Options: 1 proc at speed 8 (energy 64);
        // 2 replicas at speed 4 (2×16 = 32); 4 replicas at speed 2
        // (4×4 = 16); 8 replicas at speed 1 (8×1 = 8) — with α = 2,
        // maximal replication of slowest modes wins (no static cost).
        let apps = AppSet::single(Application::from_pairs(0.0, &[(8.0, 0.0)]));
        let pf = Platform::fully_homogeneous(8, vec![1.0, 2.0, 4.0, 8.0], 1.0).unwrap();
        let (mapping, energy) =
            min_energy_replicated_under_period(&apps, &pf, CommModel::Overlap, &[1.0]).unwrap();
        mapping.validate(&apps, &pf).unwrap();
        assert!((energy - 8.0).abs() < 1e-9, "got {energy}");
        assert_eq!(mapping.assignments[0].r(), 8);
    }

    #[test]
    fn static_energy_reverses_the_replication_choice() {
        // Same instance but a big static cost per enrolled processor makes
        // one fast processor cheaper than eight slow ones.
        let apps = AppSet::single(Application::from_pairs(0.0, &[(8.0, 0.0)]));
        let proto = cpo_model::platform::Processor::new(vec![1.0, 2.0, 4.0, 8.0])
            .unwrap()
            .with_static_energy(50.0);
        let pf = Platform::new(vec![proto; 8], cpo_model::platform::Links::Uniform(1.0)).unwrap();
        let (mapping, energy) =
            min_energy_replicated_under_period(&apps, &pf, CommModel::Overlap, &[1.0]).unwrap();
        assert_eq!(mapping.assignments[0].r(), 1);
        assert!((energy - (50.0 + 64.0)).abs() < 1e-9);
    }

    #[test]
    fn infeasible_period_bound_returns_none() {
        let apps = AppSet::single(Application::from_pairs(1.0, &[(8.0, 1.0)]));
        let pf = Platform::fully_homogeneous(2, vec![1.0], 1.0).unwrap();
        // Input edge alone costs 1; bound 0.1 unreachable even replicated?
        // cycle/r with r = 2: max(1, 8, 1)/2 = 4 > 0.1 → infeasible.
        assert!(
            min_energy_replicated_under_period(&apps, &pf, CommModel::Overlap, &[0.1]).is_none()
        );
    }

    #[test]
    fn energy_matches_unreplicated_dp_when_replication_is_useless() {
        // Static energy so high that r > 1 never pays; the replicated DP
        // must coincide with the plain Theorem 18/21 DP.
        let cfg = AppGenConfig { apps: 2, stages: (1, 3), ..Default::default() };
        for seed in 0..30 {
            let apps = random_apps(&cfg, seed);
            let proto = cpo_model::platform::Processor::new(vec![1.0, 2.0, 4.0, 8.0, 16.0])
                .unwrap()
                .with_static_energy(1000.0);
            let pf =
                Platform::new(vec![proto; 4], cpo_model::platform::Links::Uniform(1.0)).unwrap();
            let tb: Vec<f64> = apps.apps.iter().map(|a| a.total_work() / 2.0 + 2.0).collect();
            let plain = crate::bi::period_energy::min_energy_interval_fully_hom(
                &apps,
                &pf,
                CommModel::Overlap,
                &tb,
            );
            let repl =
                min_energy_replicated_under_period(&apps, &pf, CommModel::Overlap, &tb);
            match (plain, repl) {
                (None, None) => {}
                // Replication may rescue feasibility the plain DP lacks
                // (r slow processors meet a bound one processor cannot).
                (None, Some(_)) => {}
                (Some(p), Some((_, e))) => {
                    assert!(e <= p.objective + 1e-9, "seed {seed}");
                    // With prohibitive static energy they should agree.
                    assert!((e - p.objective).abs() < 1e-9, "seed {seed}: {e} vs {}", p.objective);
                }
                (Some(_), None) => {
                    panic!("seed {seed}: replication lost feasibility the plain DP had")
                }
            }
        }
    }
}
