//! Solvers for **replicated** interval mappings (Section 6 extension,
//! following reference [4] of the paper).
//!
//! * [`replicated_period_table`] — single-application dynamic program over
//!   (prefix, processor budget): each interval chooses a replication
//!   factor `r`, dividing its cycle-time by `r` at the price of `r`
//!   processors. `O(n²·p²)`.
//! * [`minimize_global_period_replicated`] — multi-application version via
//!   the paper's Algorithm 2 (the per-application optimum is still
//!   non-increasing in the processor count).
//! * [`min_energy_replicated_under_period`] — the energy-aware variant:
//!   a DP over (prefix, processor budget) choosing each interval's split
//!   and replication factor jointly, with the cheapest feasible mode per
//!   `(interval, r)` (replication as an alternative to DVFS: `r` slow
//!   processors vs one fast processor — the ablation the benches quantify).
//! * [`exact_min_period_replicated`] — exhaustive baseline for
//!   certification.

#![allow(clippy::needless_range_loop)]
use crate::alloc::allocate_processors;
use crate::dp::HomCtx;
use cpo_model::num;
use cpo_model::prelude::*;
use cpo_model::replication::{ReplicatedEvaluator, ReplicatedMapping};

/// A chain partition with replication factors and modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicatedPartition {
    /// Intervals `(first, last)` in chain order.
    pub intervals: Vec<(usize, usize)>,
    /// Replication factor per interval.
    pub factors: Vec<usize>,
    /// Mode per interval (all replicas share it).
    pub modes: Vec<usize>,
}

impl ReplicatedPartition {
    /// Total processors consumed.
    pub fn procs_used(&self) -> usize {
        self.factors.iter().sum()
    }
}

/// Result of the replicated period DP.
#[derive(Debug, Clone)]
pub struct ReplicatedPeriodTable {
    /// `best[q-1]` = minimum period using at most `q` processors.
    pub best: Vec<f64>,
    n: usize,
    stride: usize,
    /// `exact[k·stride + i]` = min period, exactly `k` processors, first
    /// `i` stages (flat arena).
    exact: Vec<f64>,
    /// Split point `j` realizing `exact` (`u32::MAX` = none).
    parent_j: Vec<u32>,
    /// Replication factor `r` realizing `exact`.
    parent_r: Vec<u32>,
}

/// Single-application replicated period DP at the top speed, in flat
/// arenas. Worst case `O(n²·qmax²)`, but the inner scan walks splits
/// descending and stops once even maximal replication of the last interval
/// (`W(j, i-1)/(s·k)`, a bitwise lower bound of every candidate and
/// monotone in the split) exceeds the incumbent — exact and typically
/// near-linear.
pub fn replicated_period_table(ctx: &HomCtx<'_>, qmax: usize) -> ReplicatedPeriodTable {
    let n = ctx.app.n();
    let s = ctx.max_speed();
    let inf = f64::INFINITY;
    let kcap = qmax.max(1);
    let stride = n + 1;
    let mut exact = vec![inf; (kcap + 1) * stride];
    let mut parent_j = vec![u32::MAX; (kcap + 1) * stride];
    let mut parent_r = vec![0u32; (kcap + 1) * stride];
    exact[0] = 0.0;
    for k in 1..=kcap {
        exact[k * stride] = 0.0;
        for i in 1..=n {
            let mut best = inf;
            let mut arg = (u32::MAX, 0u32);
            // Descending split scan with `≤` keeps the smallest (j, then r)
            // attaining the minimum — the same pair as the reference
            // ascending strict scan — while allowing the monotone early
            // stop on the compute lower bound.
            for j in (0..i).rev() {
                let w = ctx.app.interval_work(j, i - 1) / s;
                if w / k as f64 > best {
                    break;
                }
                // Last interval is stages j..=i-1, replicated r times.
                let cycle = ctx.cycle(j, i - 1, s);
                let mut best_j = inf;
                let mut arg_r = 0u32;
                for r in 1..=k {
                    // `cand ≥ cycle/r ≥ w/r`: r cannot improve this split.
                    if w / r as f64 > best_j {
                        continue;
                    }
                    if exact[(k - r) * stride + j].is_finite() {
                        let cand = num::fmax(exact[(k - r) * stride + j], cycle / r as f64);
                        if cand < best_j {
                            best_j = cand;
                            arg_r = r as u32;
                        }
                    }
                }
                if best_j <= best {
                    best = best_j;
                    arg = (j as u32, arg_r);
                }
            }
            exact[k * stride + i] = best;
            parent_j[k * stride + i] = arg.0;
            parent_r[k * stride + i] = arg.1;
        }
    }
    let mut bestv = Vec::with_capacity(qmax);
    let mut acc = inf;
    for q in 1..=qmax {
        acc = num::fmin(acc, exact[q * stride + n]);
        bestv.push(acc);
    }
    ReplicatedPeriodTable { best: bestv, n, stride, exact, parent_j, parent_r }
}

impl ReplicatedPeriodTable {
    /// Reconstruct a partition achieving `best[q-1]`.
    pub fn partition(&self, q: usize, top_mode: usize) -> ReplicatedPartition {
        let target = self.best[q - 1];
        let k = (1..=q)
            .find(|&k| num::le(self.exact[k * self.stride + self.n], target))
            .expect("replicated period table is consistent");
        let mut intervals = Vec::new();
        let mut factors = Vec::new();
        let mut i = self.n;
        let mut kk = k;
        while i > 0 {
            let j = self.parent_j[kk * self.stride + i] as usize;
            let r = self.parent_r[kk * self.stride + i] as usize;
            intervals.push((j, i - 1));
            factors.push(r);
            kk -= r;
            i = j;
        }
        intervals.reverse();
        factors.reverse();
        let modes = vec![top_mode; intervals.len()];
        ReplicatedPartition { intervals, factors, modes }
    }
}

/// Assemble a global replicated mapping from per-application partitions.
fn mapping_from_replicated(partitions: &[ReplicatedPartition]) -> ReplicatedMapping {
    let mut mapping = ReplicatedMapping::new();
    let mut next = 0usize;
    for (a, part) in partitions.iter().enumerate() {
        for (iv, &(first, last)) in part.intervals.iter().enumerate() {
            let r = part.factors[iv];
            let procs: Vec<usize> = (next..next + r).collect();
            next += r;
            mapping.push(Interval::new(a, first, last), procs, vec![part.modes[iv]; r]);
        }
    }
    mapping
}

/// Minimize the global weighted period with replication on a fully
/// homogeneous platform (Algorithm 2 over the replicated DP).
pub fn minimize_global_period_replicated(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
) -> Option<(ReplicatedMapping, f64)> {
    if platform.class() != PlatformClass::FullyHomogeneous {
        return None;
    }
    let p = platform.p();
    let a_count = apps.a();
    if p < a_count {
        return None;
    }
    // Replication multiplexes one logical edge over several physical
    // routes; on a shared multistage fabric that breaks the
    // partial-permutation property the Benes routing certificate relies
    // on, so the replicated solvers stay dedicated-links only.
    if platform.is_multistage() {
        return None;
    }
    let speeds = platform.procs[0].speeds().to_vec();
    let b = match &platform.links {
        cpo_model::platform::Links::Uniform(b) => *b,
        cpo_model::platform::Links::PerApp(bs) => bs[0],
        cpo_model::platform::Links::Heterogeneous { .. } => return None,
    };
    let qmax = p - a_count + 1;
    let tables: Vec<ReplicatedPeriodTable> = apps
        .apps
        .iter()
        .map(|app| {
            let ctx = HomCtx::new(app, &speeds, b, model);
            replicated_period_table(&ctx, qmax)
        })
        .collect();
    let weights: Vec<f64> = apps.apps.iter().map(|a| a.weight).collect();
    let alloc = allocate_processors(a_count, p, &weights, |a, q| tables[a].best[q - 1])?;
    let top = speeds.len() - 1;
    let partitions: Vec<_> =
        (0..a_count).map(|a| tables[a].partition(alloc.procs[a], top)).collect();
    let mapping = mapping_from_replicated(&partitions);
    debug_assert!(mapping.validate(apps, platform).is_ok());
    let achieved = ReplicatedEvaluator::new(apps, platform).period(&mapping, model);
    Some((mapping, achieved))
}

/// Cheapest mode for an interval replicated exactly `r` times under a
/// period bound: the slowest feasible speed (dynamic energy is increasing
/// in speed since `α > 1`). Returns `(mode, total energy of the r replicas)`.
fn cheapest_mode_for_factor(
    ctx: &HomCtx<'_>,
    lo: usize,
    hi: usize,
    t_bound: f64,
    r: usize,
) -> Option<(usize, f64)> {
    for (m, &s) in ctx.speeds.iter().enumerate() {
        if num::le(ctx.cycle(lo, hi, s) / r as f64, t_bound) {
            return Some((m, r as f64 * (ctx.e_stat + ctx.energy.dynamic(s))));
        }
    }
    None
}

/// Minimum-energy replicated mapping of a single application under a period
/// bound (fully homogeneous platform): DP over (prefix, processors used)
/// choosing each interval's split and replication factor `r` jointly
/// (each candidate `r` takes its cheapest feasible mode). Returns
/// `(mapping, energy)`.
pub fn min_energy_replicated_under_period(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    period_bounds: &[f64],
) -> Option<(ReplicatedMapping, f64)> {
    assert_eq!(period_bounds.len(), apps.a());
    if platform.class() != PlatformClass::FullyHomogeneous {
        return None;
    }
    let p = platform.p();
    let a_count = apps.a();
    if p < a_count {
        return None;
    }
    // Same dedicated-links-only gate as `minimize_global_period_replicated`.
    if platform.is_multistage() {
        return None;
    }
    let speeds = platform.procs[0].speeds().to_vec();
    let e_stat = platform.procs[0].e_stat;
    let b = match &platform.links {
        cpo_model::platform::Links::Uniform(b) => *b,
        cpo_model::platform::Links::PerApp(bs) => bs[0],
        cpo_model::platform::Links::Heterogeneous { .. } => return None,
    };
    let inf = f64::INFINITY;
    let qmax = p - a_count + 1;

    // Per-application DP: e[k][i] = min energy, exactly k processors, first
    // i stages; each interval contributes its cheapest (r, mode). Flat
    // arenas; every (j, r) pair whose compute lower bound `W/(s_top·r)`
    // already misses the period bound is skipped exactly (the cycle-time at
    // every mode dominates that bound bitwise, so the reference scan would
    // have found no feasible mode either).
    struct AppTable {
        n: usize,
        stride: usize,
        exact_k: Vec<f64>,
        parent_j: Vec<u32>,
        parent_r: Vec<u32>,
        parent_m: Vec<u32>,
    }
    let s_top = *speeds.last().expect("non-empty speed set");
    let mut tables = Vec::with_capacity(a_count);
    for (a, app) in apps.apps.iter().enumerate() {
        let mut ctx = HomCtx::new(app, &speeds, b, model);
        ctx.e_stat = e_stat;
        let n = app.n();
        let stride = n + 1;
        let cells = (qmax + 1) * stride;
        let mut exact = vec![inf; cells];
        let mut parent_j = vec![u32::MAX; cells];
        let mut parent_r = vec![0u32; cells];
        let mut parent_m = vec![0u32; cells];
        exact[0] = 0.0;
        for k in 1..=qmax {
            exact[k * stride] = 0.0;
            for i in 1..=n {
                let mut best = inf;
                let mut arg = (u32::MAX, 0u32, 0u32);
                for j in 0..i {
                    let w_top = app.interval_work(j, i - 1) / s_top;
                    // Even maximal replication misses the bound: no r fits.
                    if !num::le(w_top / k as f64, period_bounds[a]) {
                        continue;
                    }
                    // The replication factor must be chosen jointly with the
                    // split: the globally cheapest (r, mode) can starve the
                    // prefix of processors while a costlier smaller r fits.
                    for r in 1..=k {
                        if !exact[(k - r) * stride + j].is_finite() {
                            continue;
                        }
                        if !num::le(w_top / r as f64, period_bounds[a]) {
                            continue;
                        }
                        if let Some((m, e)) =
                            cheapest_mode_for_factor(&ctx, j, i - 1, period_bounds[a], r)
                        {
                            let prev = exact[(k - r) * stride + j];
                            if prev + e < best {
                                best = prev + e;
                                arg = (j as u32, r as u32, m as u32);
                            }
                        }
                    }
                }
                exact[k * stride + i] = best;
                parent_j[k * stride + i] = arg.0;
                parent_r[k * stride + i] = arg.1;
                parent_m[k * stride + i] = arg.2;
            }
        }
        let exact_k: Vec<f64> = (1..=qmax).map(|k| exact[k * stride + n]).collect();
        tables.push(AppTable { n, stride, exact_k, parent_j, parent_r, parent_m });
    }

    // Theorem-21-style convolution across applications (flat arena).
    let cstride = p + 1;
    let mut e = vec![inf; (a_count + 1) * cstride];
    let mut choice = vec![u32::MAX; (a_count + 1) * cstride];
    e[0] = 0.0;
    for a in 1..=a_count {
        for k in a..=p {
            let mut best = inf;
            let mut arg = u32::MAX;
            let qcap = tables[a - 1].exact_k.len().min(k - (a - 1));
            for q in 1..=qcap {
                let prev = e[(a - 1) * cstride + k - q];
                let cur = tables[a - 1].exact_k[q - 1];
                if prev.is_finite() && cur.is_finite() && prev + cur < best {
                    best = prev + cur;
                    arg = q as u32;
                }
            }
            e[a * cstride + k] = best;
            choice[a * cstride + k] = arg;
        }
    }
    let (k_best, &e_best) = e[a_count * cstride..(a_count + 1) * cstride]
        .iter()
        .enumerate()
        .min_by(|(_, x), (_, y)| x.partial_cmp(y).expect("no NaN"))?;
    if !e_best.is_finite() {
        return None;
    }

    // Reconstruct.
    let mut counts = vec![0usize; a_count];
    let mut k = k_best;
    for a in (1..=a_count).rev() {
        let q = choice[a * cstride + k] as usize;
        counts[a - 1] = q;
        k -= q;
    }
    let mut partitions = Vec::with_capacity(a_count);
    for (a, table) in tables.iter().enumerate() {
        let mut kk = counts[a];
        let mut intervals = Vec::new();
        let mut factors = Vec::new();
        let mut modes = Vec::new();
        let mut i = table.n;
        while i > 0 {
            let cell = kk * table.stride + i;
            let j = table.parent_j[cell] as usize;
            let r = table.parent_r[cell] as usize;
            intervals.push((j, i - 1));
            factors.push(r);
            modes.push(table.parent_m[cell] as usize);
            kk -= r;
            i = j;
        }
        intervals.reverse();
        factors.reverse();
        modes.reverse();
        partitions.push(ReplicatedPartition { intervals, factors, modes });
    }
    let mapping = mapping_from_replicated(&partitions);
    debug_assert!(mapping.validate(apps, platform).is_ok());
    let achieved = ReplicatedEvaluator::new(apps, platform).energy(&mapping);
    debug_assert!(num::approx_eq(achieved, e_best));
    Some((mapping, achieved))
}

/// Exhaustive replicated-period baseline (single application, identical
/// processors): enumerate all partitions and factor vectors. Exponential;
/// certification only.
pub fn exact_min_period_replicated(ctx: &HomCtx<'_>, p: usize) -> f64 {
    fn rec(ctx: &HomCtx<'_>, first: usize, procs_left: usize, current_max: f64, best: &mut f64) {
        let n = ctx.app.n();
        if first == n {
            *best = num::fmin(*best, current_max);
            return;
        }
        if procs_left == 0 {
            return;
        }
        let s = ctx.max_speed();
        for last in first..n {
            let cycle = ctx.cycle(first, last, s);
            for r in 1..=procs_left {
                let m = num::fmax(current_max, cycle / r as f64);
                if m < *best {
                    rec(ctx, last + 1, procs_left - r, m, best);
                }
            }
        }
    }
    let mut best = f64::INFINITY;
    rec(ctx, 0, p, 0.0, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::application::Application;
    use cpo_model::generator::{random_apps, AppGenConfig};

    fn ctx_for<'a>(app: &'a Application, speeds: &'a [f64]) -> HomCtx<'a> {
        HomCtx::new(app, speeds, 1.0, CommModel::Overlap)
    }

    #[test]
    fn replication_beats_plain_on_monolithic_stage() {
        // One heavy stage: splitting is impossible, replication is the only
        // way to improve the period.
        let app = Application::from_pairs(0.0, &[(8.0, 0.0)]);
        let speeds = [2.0];
        let ctx = ctx_for(&app, &speeds);
        let plain = crate::dp::period_table(&ctx, 4).best[3];
        let repl = replicated_period_table(&ctx, 4).best[3];
        assert!((plain - 4.0).abs() < 1e-12);
        assert!((repl - 1.0).abs() < 1e-12); // 8/2/4
    }

    #[test]
    fn replicated_table_matches_exhaustive() {
        let cfg = AppGenConfig { apps: 1, stages: (1, 4), ..Default::default() };
        for seed in 0..80 {
            let apps = random_apps(&cfg, seed);
            let speeds = [2.0];
            let ctx = ctx_for(&apps.apps[0], &speeds);
            for p in 1..=5 {
                let dp = replicated_period_table(&ctx, p).best[p - 1];
                let brute = exact_min_period_replicated(&ctx, p);
                assert!(
                    (dp - brute).abs() < 1e-9,
                    "seed {seed} p {p}: dp {dp} vs brute {brute}"
                );
            }
        }
    }

    #[test]
    fn replication_never_hurts() {
        let cfg = AppGenConfig { apps: 1, stages: (2, 5), ..Default::default() };
        for seed in 0..40 {
            let apps = random_apps(&cfg, seed);
            let speeds = [1.0, 3.0];
            let ctx = ctx_for(&apps.apps[0], &speeds);
            for p in 1..=5 {
                let plain = crate::dp::period_table(&ctx, p).best[p - 1];
                let repl = replicated_period_table(&ctx, p).best[p - 1];
                assert!(repl <= plain + 1e-9, "seed {seed} p {p}");
            }
        }
    }

    #[test]
    fn global_replicated_solver_builds_valid_mappings() {
        let apps = AppSet::new(vec![
            Application::from_pairs(0.0, &[(8.0, 0.0)]),
            Application::from_pairs(0.0, &[(4.0, 0.0), (4.0, 0.0)]),
        ])
        .unwrap();
        let pf = Platform::fully_homogeneous(5, vec![2.0], 1.0).unwrap();
        let (mapping, period) =
            minimize_global_period_replicated(&apps, &pf, CommModel::Overlap).unwrap();
        mapping.validate(&apps, &pf).unwrap();
        // 5 procs: app0 gets 3 replicas (8/2/3 = 4/3), app1 two procs
        // ([4][4] → 2 each)… or app0 2 replicas (2) and app1 3 procs.
        // Either way the greedy balances: best achievable max is 4/3 vs 2.
        let plain =
            crate::mono::period_interval::minimize_global_period(&apps, &pf, CommModel::Overlap)
                .unwrap();
        assert!(period <= plain.objective + 1e-9);
        assert!(period < plain.objective, "replication should strictly help here");
    }

    #[test]
    fn energy_aware_replication_prefers_slow_replicas_when_alpha_makes_it_cheap() {
        // Work 8, period bound 1. Options: 1 proc at speed 8 (energy 64);
        // 2 replicas at speed 4 (2×16 = 32); 4 replicas at speed 2
        // (4×4 = 16); 8 replicas at speed 1 (8×1 = 8) — with α = 2,
        // maximal replication of slowest modes wins (no static cost).
        let apps = AppSet::single(Application::from_pairs(0.0, &[(8.0, 0.0)]));
        let pf = Platform::fully_homogeneous(8, vec![1.0, 2.0, 4.0, 8.0], 1.0).unwrap();
        let (mapping, energy) =
            min_energy_replicated_under_period(&apps, &pf, CommModel::Overlap, &[1.0]).unwrap();
        mapping.validate(&apps, &pf).unwrap();
        assert!((energy - 8.0).abs() < 1e-9, "got {energy}");
        assert_eq!(mapping.assignments[0].r(), 8);
    }

    #[test]
    fn static_energy_reverses_the_replication_choice() {
        // Same instance but a big static cost per enrolled processor makes
        // one fast processor cheaper than eight slow ones.
        let apps = AppSet::single(Application::from_pairs(0.0, &[(8.0, 0.0)]));
        let proto = cpo_model::platform::Processor::new(vec![1.0, 2.0, 4.0, 8.0])
            .unwrap()
            .with_static_energy(50.0);
        let pf = Platform::new(vec![proto; 8], cpo_model::platform::Links::Uniform(1.0)).unwrap();
        let (mapping, energy) =
            min_energy_replicated_under_period(&apps, &pf, CommModel::Overlap, &[1.0]).unwrap();
        assert_eq!(mapping.assignments[0].r(), 1);
        assert!((energy - (50.0 + 64.0)).abs() < 1e-9);
    }

    #[test]
    fn infeasible_period_bound_returns_none() {
        let apps = AppSet::single(Application::from_pairs(1.0, &[(8.0, 1.0)]));
        let pf = Platform::fully_homogeneous(2, vec![1.0], 1.0).unwrap();
        // Input edge alone costs 1; bound 0.1 unreachable even replicated?
        // cycle/r with r = 2: max(1, 8, 1)/2 = 4 > 0.1 → infeasible.
        assert!(
            min_energy_replicated_under_period(&apps, &pf, CommModel::Overlap, &[0.1]).is_none()
        );
    }

    #[test]
    fn energy_matches_unreplicated_dp_when_replication_is_useless() {
        // Static energy so high that r > 1 never pays; the replicated DP
        // must coincide with the plain Theorem 18/21 DP.
        let cfg = AppGenConfig { apps: 2, stages: (1, 3), ..Default::default() };
        for seed in 0..30 {
            let apps = random_apps(&cfg, seed);
            let proto = cpo_model::platform::Processor::new(vec![1.0, 2.0, 4.0, 8.0, 16.0])
                .unwrap()
                .with_static_energy(1000.0);
            let pf =
                Platform::new(vec![proto; 4], cpo_model::platform::Links::Uniform(1.0)).unwrap();
            let tb: Vec<f64> = apps.apps.iter().map(|a| a.total_work() / 2.0 + 2.0).collect();
            let plain = crate::bi::period_energy::min_energy_interval_fully_hom(
                &apps,
                &pf,
                CommModel::Overlap,
                &tb,
            );
            let repl =
                min_energy_replicated_under_period(&apps, &pf, CommModel::Overlap, &tb);
            match (plain, repl) {
                (None, None) => {}
                // Replication may rescue feasibility the plain DP lacks
                // (r slow processors meet a bound one processor cannot).
                (None, Some(_)) => {}
                (Some(p), Some((_, e))) => {
                    assert!(e <= p.objective + 1e-9, "seed {seed}");
                    // With prohibitive static energy they should agree.
                    assert!((e - p.objective).abs() < 1e-9, "seed {seed}: {e} vs {}", p.objective);
                }
                (Some(_), None) => {
                    panic!("seed {seed}: replication lost feasibility the plain DP had")
                }
            }
        }
    }
}
