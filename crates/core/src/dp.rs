//! Single-application chain-partition dynamic programs on identical
//! processors.
//!
//! Everything the paper's fully-homogeneous algorithms need boils down to
//! partitioning one linear chain into `k` intervals over identical
//! processors and optimizing period, latency or energy:
//!
//! * [`period_table`] — minimum period with at most `q` intervals
//!   (the single-application algorithm of [3, 4] that the paper's
//!   Algorithm 2 calls as a subroutine, Theorem 3);
//! * [`latency_under_period`] — minimum latency subject to a period bound
//!   (the `(L, T)(i, q)` recurrence of Theorem 15);
//! * [`min_period_under_latency`] — the dual, by binary search over the
//!   finite candidate-period set (Theorem 15);
//! * [`energy_under_period`] — minimum energy subject to a period bound,
//!   with the per-interval cheapest-feasible-mode rule (the `E(i, j, k)`
//!   recurrence of Theorem 18).
//!
//! All programs run in `O(n²·q)` (times the number of modes for energy) and
//! return reconstructible partitions.

#![allow(clippy::needless_range_loop)]
use cpo_model::application::Application;
use cpo_model::energy::EnergyModel;
use cpo_model::eval::CommModel;
use cpo_model::num;

/// Context for a single application on identical (homogeneous) processors.
#[derive(Debug, Clone, Copy)]
pub struct HomCtx<'a> {
    /// The application being partitioned.
    pub app: &'a Application,
    /// The shared speed set (ascending). Performance-only programs use the
    /// highest speed; the energy program searches all modes.
    pub speeds: &'a [f64],
    /// Static energy per enrolled processor.
    pub e_stat: f64,
    /// Uniform link bandwidth `b`.
    pub bandwidth: f64,
    /// Communication model (overlap / no-overlap).
    pub model: CommModel,
    /// Energy model (`α`).
    pub energy: EnergyModel,
}

impl<'a> HomCtx<'a> {
    /// Context with the default energy model.
    pub fn new(app: &'a Application, speeds: &'a [f64], bandwidth: f64, model: CommModel) -> Self {
        HomCtx { app, speeds, e_stat: 0.0, bandwidth, model, energy: EnergyModel::default() }
    }

    /// Highest available speed.
    #[inline]
    pub fn max_speed(&self) -> f64 {
        *self.speeds.last().expect("non-empty speed set")
    }

    /// Cycle-time of the interval `[lo, hi]` (0-based inclusive) at `speed`.
    #[inline]
    pub fn cycle(&self, lo: usize, hi: usize, speed: f64) -> f64 {
        let incoming = self.app.input_of(lo) / self.bandwidth;
        let compute = self.app.interval_work(lo, hi) / speed;
        let outgoing = self.app.output_of(hi) / self.bandwidth;
        self.model.combine(incoming, compute, outgoing)
    }

    /// Latency contribution of interval `[lo, hi]`: compute + outgoing
    /// communication (the incoming edge of the *first* interval is added
    /// separately, Eq. 5).
    #[inline]
    pub fn latency_term(&self, lo: usize, hi: usize, speed: f64) -> f64 {
        self.app.interval_work(lo, hi) / speed + self.app.output_of(hi) / self.bandwidth
    }

    /// Cheapest mode running `[lo, hi]` within period `t_bound`:
    /// the slowest feasible speed (energy is increasing in speed since
    /// `α > 1`). Returns `(mode index, energy)`.
    ///
    /// Speeds ascend, so the cycle-time is non-increasing in the mode index
    /// and feasibility is a monotone boundary: binary-search the first
    /// feasible mode instead of scanning linearly.
    pub fn cheapest_feasible_mode(&self, lo: usize, hi: usize, t_bound: f64) -> Option<(usize, f64)> {
        let m = self
            .speeds
            .partition_point(|&s| !num::le(self.cycle(lo, hi, s), t_bound));
        (m < self.speeds.len()).then(|| (m, self.e_stat + self.energy.dynamic(self.speeds[m])))
    }

    /// All candidate period values: cycle-times of every interval at every
    /// speed. The optimal period over any partition is always one of them.
    /// Routed through [`IntervalCostTable`] so every candidate enumeration
    /// in the workspace draws from the same cycle-time values.
    pub fn period_candidates(&self) -> Vec<f64> {
        IntervalCostTable::build(self).candidates()
    }
}

// ---------------------------------------------------------------------------
// Shared interval cost precomputation
// ---------------------------------------------------------------------------

/// Precomputed per-application interval costs: every `cycle(lo, hi, s)`,
/// per-mode energies, and the top-mode latency terms of [`HomCtx`].
///
/// The Pareto sweep engine re-runs the Theorem 15/18/21 dynamic programs
/// once per candidate period; without this table each run recomputes the
/// identical `O(n²·modes)` cycle-time values. Building the table once per
/// `(application, platform, model)` and sharing it across the sweep turns
/// those recomputations into lookups, and keeps every consumer (candidate
/// enumeration, feasibility probes, DP cost rows) reading from one source
/// so the values cannot drift apart.
#[derive(Debug, Clone)]
pub struct IntervalCostTable {
    n: usize,
    modes: usize,
    /// Application weight `W_a` (scales candidates to the global objective).
    pub weight: f64,
    /// `mode_energy[m]` = `E_stat + s_m^α`.
    pub mode_energy: Vec<f64>,
    /// `cycle[(lo * n + hi) * modes + m]`, valid for `lo ≤ hi`.
    cycle: Vec<f64>,
    /// Latency term of `[lo, hi]` at the top mode (`lo * n + hi`).
    latency_top: Vec<f64>,
    /// Input-edge latency `δ^0 / b` of the whole chain.
    input_edge: f64,
}

impl IntervalCostTable {
    /// Precompute all interval costs of `ctx` (`O(n²·modes)` time/space).
    pub fn build(ctx: &HomCtx<'_>) -> Self {
        let n = ctx.app.n();
        let modes = ctx.speeds.len();
        let top = ctx.max_speed();
        let mut cycle = vec![f64::INFINITY; n * n * modes];
        let mut latency_top = vec![f64::INFINITY; n * n];
        for lo in 0..n {
            for hi in lo..n {
                let base = (lo * n + hi) * modes;
                for (m, &s) in ctx.speeds.iter().enumerate() {
                    cycle[base + m] = ctx.cycle(lo, hi, s);
                }
                latency_top[lo * n + hi] = ctx.latency_term(lo, hi, top);
            }
        }
        let mode_energy =
            ctx.speeds.iter().map(|&s| ctx.e_stat + ctx.energy.dynamic(s)).collect();
        IntervalCostTable {
            n,
            modes,
            weight: ctx.app.weight,
            mode_energy,
            cycle,
            latency_top,
            input_edge: ctx.app.input_of(0) / ctx.bandwidth,
        }
    }

    /// Number of stages `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of modes.
    #[inline]
    pub fn modes(&self) -> usize {
        self.modes
    }

    /// Cycle-time of `[lo, hi]` at mode `m`.
    #[inline]
    pub fn cycle(&self, lo: usize, hi: usize, m: usize) -> f64 {
        self.cycle[(lo * self.n + hi) * self.modes + m]
    }

    /// Cycle-time of `[lo, hi]` at the top mode.
    #[inline]
    pub fn top_cycle(&self, lo: usize, hi: usize) -> f64 {
        self.cycle(lo, hi, self.modes - 1)
    }

    /// Latency term of `[lo, hi]` at the top mode.
    #[inline]
    pub fn latency_term_top(&self, lo: usize, hi: usize) -> f64 {
        self.latency_top[lo * self.n + hi]
    }

    /// Input-edge latency `δ^0 / b`.
    #[inline]
    pub fn input_edge(&self) -> f64 {
        self.input_edge
    }

    /// Cheapest feasible mode of `[lo, hi]` under `t_bound`, by
    /// partition-point binary search (cycle-times descend over modes).
    /// Identical to [`HomCtx::cheapest_feasible_mode`].
    pub fn cheapest_feasible_mode(&self, lo: usize, hi: usize, t_bound: f64) -> Option<(usize, f64)> {
        let base = (lo * self.n + hi) * self.modes;
        let row = &self.cycle[base..base + self.modes];
        let m = row.partition_point(|&c| !num::le(c, t_bound));
        (m < self.modes).then(|| (m, self.mode_energy[m]))
    }

    /// All candidate period values (unweighted), sorted and deduplicated —
    /// the same set as [`HomCtx::period_candidates`].
    pub fn candidates(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n * (self.n + 1) / 2 * self.modes);
        self.push_weighted_candidates(1.0, false, &mut out);
        num::sorted_candidates(out)
    }

    /// Append `weight ×` cycle-time candidates to `out`: every mode when
    /// `top_only` is false, only the top mode otherwise (for the
    /// performance-only solvers that never downclock).
    pub fn push_weighted_candidates(&self, weight: f64, top_only: bool, out: &mut Vec<f64>) {
        for lo in 0..self.n {
            for hi in lo..self.n {
                let base = (lo * self.n + hi) * self.modes;
                let first = if top_only { self.modes - 1 } else { 0 };
                for m in first..self.modes {
                    out.push(weight * self.cycle[base + m]);
                }
            }
        }
    }
}

/// A partition of the chain with the selected mode per interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Intervals `(first, last)` in chain order (0-based inclusive).
    pub intervals: Vec<(usize, usize)>,
    /// Mode index per interval (into the shared speed set).
    pub modes: Vec<usize>,
}

impl Partition {
    /// Number of intervals (= processors used).
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// True when the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Period minimization (Theorem 3 subroutine)
// ---------------------------------------------------------------------------

/// Result of the period DP: for every `q`, the minimum period achievable
/// with at most `q` intervals at the highest speed.
#[derive(Debug, Clone)]
pub struct PeriodTable {
    /// `best[q-1]` = minimum period with at most `q` intervals.
    pub best: Vec<f64>,
    n: usize,
    /// `exact[k][i]` = min period, exactly `k` intervals over first `i` stages.
    exact: Vec<Vec<f64>>,
    /// `parent[k][i]` = split point `j` (stages `j..i` form the last interval).
    parent: Vec<Vec<usize>>,
}

/// Minimum period of `app` with at most `q ∈ {1..qmax}` intervals, running
/// every interval at the top speed (performance-only setting). `O(n²·qmax)`.
pub fn period_table(ctx: &HomCtx<'_>, qmax: usize) -> PeriodTable {
    let n = ctx.app.n();
    let s = ctx.max_speed();
    let kcap = qmax.min(n).max(1);
    let inf = f64::INFINITY;
    let mut exact = vec![vec![inf; n + 1]; kcap + 1];
    let mut parent = vec![vec![usize::MAX; n + 1]; kcap + 1];
    for i in 1..=n {
        exact[1][i] = ctx.cycle(0, i - 1, s);
        parent[1][i] = 0;
    }
    for k in 2..=kcap {
        for i in k..=n {
            let mut best = inf;
            let mut arg = usize::MAX;
            for j in (k - 1)..i {
                let cand = num::fmax(exact[k - 1][j], ctx.cycle(j, i - 1, s));
                if cand < best {
                    best = cand;
                    arg = j;
                }
            }
            exact[k][i] = best;
            parent[k][i] = arg;
        }
    }
    let mut best = Vec::with_capacity(qmax);
    let mut acc = inf;
    for q in 1..=qmax {
        let k = q.min(kcap);
        acc = num::fmin(acc, exact[k][n]);
        best.push(acc);
    }
    PeriodTable { best, n, exact, parent }
}

impl PeriodTable {
    /// Reconstruct a partition achieving `best[q-1]` (at most `q` intervals,
    /// all at the top mode).
    pub fn partition(&self, q: usize, top_mode: usize) -> Partition {
        let kcap = self.exact.len() - 1;
        // Smallest k whose exact value attains best[q-1].
        let target = self.best[q - 1];
        let k = (1..=q.min(kcap))
            .find(|&k| num::le(self.exact[k][self.n], target))
            .expect("period table is consistent");
        let mut intervals = Vec::with_capacity(k);
        let mut i = self.n;
        let mut kk = k;
        while kk > 0 {
            let j = self.parent[kk][i];
            intervals.push((j, i - 1));
            i = j;
            kk -= 1;
        }
        intervals.reverse();
        let modes = vec![top_mode; intervals.len()];
        Partition { intervals, modes }
    }
}

// ---------------------------------------------------------------------------
// Latency under a period bound (Theorem 15)
// ---------------------------------------------------------------------------

/// Result of the latency-under-period DP.
#[derive(Debug, Clone)]
pub struct LatencyTable {
    /// `best[q-1]` = minimum latency with at most `q` intervals whose
    /// cycle-times all respect the period bound; `+∞` when infeasible.
    pub best: Vec<f64>,
    n: usize,
    exact: Vec<Vec<f64>>,
    parent: Vec<Vec<usize>>,
}

/// Minimum latency of `app` with at most `q ∈ {1..qmax}` intervals subject
/// to every interval's cycle-time ≤ `t_bound` (the paper's `(L, T)(i, q)`
/// recurrence, Theorem 15). Runs at the top speed. `O(n²·qmax)`.
pub fn latency_under_period(ctx: &HomCtx<'_>, t_bound: f64, qmax: usize) -> LatencyTable {
    let s = ctx.max_speed();
    latency_dp_core(
        ctx.app.n(),
        ctx.app.input_of(0) / ctx.bandwidth,
        t_bound,
        qmax,
        &|lo, hi| ctx.cycle(lo, hi, s),
        &|lo, hi| ctx.latency_term(lo, hi, s),
    )
}

/// [`latency_under_period`] on a prebuilt [`IntervalCostTable`]: identical
/// results, but the `O(n²)` cycle-times and latency terms are lookups —
/// the form every per-candidate solve of a Pareto sweep uses.
pub fn latency_under_period_with(
    table: &IntervalCostTable,
    t_bound: f64,
    qmax: usize,
) -> LatencyTable {
    latency_dp_core(
        table.n(),
        table.input_edge(),
        t_bound,
        qmax,
        &|lo, hi| table.top_cycle(lo, hi),
        &|lo, hi| table.latency_term_top(lo, hi),
    )
}

fn latency_dp_core(
    n: usize,
    input_edge: f64,
    t_bound: f64,
    qmax: usize,
    cycle_top: &impl Fn(usize, usize) -> f64,
    latency_top: &impl Fn(usize, usize) -> f64,
) -> LatencyTable {
    let kcap = qmax.min(n).max(1);
    let inf = f64::INFINITY;
    let mut exact = vec![vec![inf; n + 1]; kcap + 1];
    let mut parent = vec![vec![usize::MAX; n + 1]; kcap + 1];
    for i in 1..=n {
        if num::le(cycle_top(0, i - 1), t_bound) {
            exact[1][i] = input_edge + latency_top(0, i - 1);
            parent[1][i] = 0;
        }
    }
    for k in 2..=kcap {
        for i in k..=n {
            let mut best = inf;
            let mut arg = usize::MAX;
            for j in (k - 1)..i {
                if exact[k - 1][j].is_finite() && num::le(cycle_top(j, i - 1), t_bound) {
                    let cand = exact[k - 1][j] + latency_top(j, i - 1);
                    if cand < best {
                        best = cand;
                        arg = j;
                    }
                }
            }
            exact[k][i] = best;
            parent[k][i] = arg;
        }
    }
    let mut best = Vec::with_capacity(qmax);
    let mut acc = inf;
    for q in 1..=qmax {
        let k = q.min(kcap);
        acc = num::fmin(acc, exact[k][n]);
        best.push(acc);
    }
    LatencyTable { best, n, exact, parent }
}

impl LatencyTable {
    /// Reconstruct a partition achieving `best[q-1]`; `None` if infeasible.
    pub fn partition(&self, q: usize, top_mode: usize) -> Option<Partition> {
        let target = self.best[q - 1];
        if !target.is_finite() {
            return None;
        }
        let kcap = self.exact.len() - 1;
        let k = (1..=q.min(kcap))
            .find(|&k| num::le(self.exact[k][self.n], target))
            .expect("latency table is consistent");
        let mut intervals = Vec::with_capacity(k);
        let mut i = self.n;
        let mut kk = k;
        while kk > 0 {
            let j = self.parent[kk][i];
            intervals.push((j, i - 1));
            i = j;
            kk -= 1;
        }
        intervals.reverse();
        let modes = vec![top_mode; intervals.len()];
        Some(Partition { intervals, modes })
    }
}

/// Minimum period achievable with at most `q` intervals subject to a
/// latency bound, via binary search over the candidate-period set plus the
/// Theorem 15 DP as feasibility probe. Returns `(period, partition)`.
pub fn min_period_under_latency(
    ctx: &HomCtx<'_>,
    l_bound: f64,
    q: usize,
) -> Option<(f64, Partition)> {
    let table = IntervalCostTable::build(ctx);
    let candidates = table.candidates();
    min_period_under_latency_with(&table, &candidates, l_bound, q)
}

/// [`min_period_under_latency`] on a prebuilt cost table and candidate set,
/// so a multi-application allocation (or a Pareto sweep) probing many
/// `(l_bound, q)` pairs builds both exactly once per application.
pub fn min_period_under_latency_with(
    table: &IntervalCostTable,
    candidates: &[f64],
    l_bound: f64,
    q: usize,
) -> Option<(f64, Partition)> {
    // Feasible(T) := best latency under period T ≤ l_bound. Monotone in T.
    let feasible = |t: f64| -> bool {
        let l = latency_under_period_with(table, t, q).best[q - 1];
        l.is_finite() && num::le(l, l_bound)
    };
    let mut lo = 0usize;
    let mut hi = candidates.len();
    // Invariant: all indices < lo infeasible; find first feasible.
    while lo < hi {
        let mid = (lo + hi) / 2;
        if feasible(candidates[mid]) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    if lo == candidates.len() {
        return None;
    }
    let t = candidates[lo];
    let dp = latency_under_period_with(table, t, q);
    let top = table.modes() - 1;
    let partition = dp.partition(q, top)?;
    Some((t, partition))
}

// ---------------------------------------------------------------------------
// Energy under a period bound (Theorem 18)
// ---------------------------------------------------------------------------

/// Result of the energy-under-period DP.
#[derive(Debug, Clone)]
pub struct EnergyTable {
    /// `exact_k[k-1]` = minimum energy with **exactly** `k` intervals
    /// (`+∞` when infeasible). Needed by the Theorem 21 multi-application
    /// convolution.
    pub exact_k: Vec<f64>,
    /// Minimum over all `k ≤ qmax`.
    pub best: f64,
    n: usize,
    parent: Vec<Vec<usize>>,
    mode_of: Vec<Vec<usize>>,
}

/// Minimum energy of `app` subject to every interval cycle-time ≤ `t_bound`
/// (Theorem 18 DP). Each interval independently selects its cheapest
/// feasible mode. `O(n²·(qmax + log modes))`.
pub fn energy_under_period(ctx: &HomCtx<'_>, t_bound: f64, qmax: usize) -> EnergyTable {
    energy_dp_core(ctx.app.n(), t_bound, qmax, &|lo, hi, tb| {
        ctx.cheapest_feasible_mode(lo, hi, tb)
    })
}

/// [`energy_under_period`] on a prebuilt [`IntervalCostTable`]: identical
/// results, with all cycle-times looked up instead of recomputed — the form
/// the Pareto sweep uses for its per-candidate solves.
pub fn energy_under_period_with(
    table: &IntervalCostTable,
    t_bound: f64,
    qmax: usize,
) -> EnergyTable {
    energy_dp_core(table.n(), t_bound, qmax, &|lo, hi, tb| {
        table.cheapest_feasible_mode(lo, hi, tb)
    })
}

fn energy_dp_core(
    n: usize,
    t_bound: f64,
    qmax: usize,
    cheapest: &impl Fn(usize, usize, f64) -> Option<(usize, f64)>,
) -> EnergyTable {
    let kcap = qmax.min(n).max(1);
    let inf = f64::INFINITY;
    // cost1[j][i-1]: cheapest single-processor energy for stages j..=i-1,
    // and the corresponding mode.
    let mut cost1 = vec![vec![inf; n]; n];
    let mut mode1 = vec![vec![usize::MAX; n]; n];
    for lo in 0..n {
        for hi in lo..n {
            if let Some((m, e)) = cheapest(lo, hi, t_bound) {
                cost1[lo][hi] = e;
                mode1[lo][hi] = m;
            }
        }
    }
    let mut exact = vec![vec![inf; n + 1]; kcap + 1];
    let mut parent = vec![vec![usize::MAX; n + 1]; kcap + 1];
    let mut mode_of = vec![vec![usize::MAX; n + 1]; kcap + 1];
    for i in 1..=n {
        exact[1][i] = cost1[0][i - 1];
        parent[1][i] = 0;
        mode_of[1][i] = mode1[0][i - 1];
    }
    for k in 2..=kcap {
        for i in k..=n {
            let mut best = inf;
            let mut arg = usize::MAX;
            let mut bm = usize::MAX;
            for j in (k - 1)..i {
                if exact[k - 1][j].is_finite() && cost1[j][i - 1].is_finite() {
                    let cand = exact[k - 1][j] + cost1[j][i - 1];
                    if cand < best {
                        best = cand;
                        arg = j;
                        bm = mode1[j][i - 1];
                    }
                }
            }
            exact[k][i] = best;
            parent[k][i] = arg;
            mode_of[k][i] = bm;
        }
    }
    let exact_k: Vec<f64> = (1..=kcap).map(|k| exact[k][n]).collect();
    let best = exact_k.iter().copied().fold(inf, num::fmin);
    EnergyTable { exact_k, best, n, parent, mode_of }
}

impl EnergyTable {
    /// Reconstruct the partition achieving `exact_k[k-1]`; `None` if `+∞`.
    pub fn partition_exact(&self, k: usize) -> Option<Partition> {
        if k == 0 || k > self.exact_k.len() || !self.exact_k[k - 1].is_finite() {
            return None;
        }
        let mut intervals = Vec::with_capacity(k);
        let mut modes = Vec::with_capacity(k);
        let mut i = self.n;
        let mut kk = k;
        while kk > 0 {
            let j = self.parent[kk][i];
            intervals.push((j, i - 1));
            modes.push(self.mode_of[kk][i]);
            i = j;
            kk -= 1;
        }
        intervals.reverse();
        modes.reverse();
        Some(Partition { intervals, modes })
    }

    /// Reconstruct the overall best partition; `None` if infeasible.
    pub fn partition_best(&self) -> Option<Partition> {
        let k = (1..=self.exact_k.len())
            .filter(|&k| self.exact_k[k - 1].is_finite())
            .min_by(|&a, &b| {
                self.exact_k[a - 1].partial_cmp(&self.exact_k[b - 1]).expect("finite")
            })?;
        self.partition_exact(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::application::Application;

    fn app() -> Application {
        // App2 of the Section 2 example.
        Application::from_pairs(0.0, &[(2.0, 1.0), (6.0, 1.0), (4.0, 1.0), (2.0, 1.0)])
    }

    #[test]
    fn period_table_single_proc() {
        let a = app();
        let speeds = [8.0];
        let ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::Overlap);
        let t = period_table(&ctx, 1);
        // One interval: max(0/1, 14/8, 1/1) = 1.75.
        assert!((t.best[0] - 1.75).abs() < 1e-12);
        let part = t.partition(1, 0);
        assert_eq!(part.intervals, vec![(0, 3)]);
    }

    #[test]
    fn period_table_improves_with_processors() {
        let a = app();
        let speeds = [8.0];
        let ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::Overlap);
        let t = period_table(&ctx, 4);
        // Non-increasing in q.
        for w in t.best.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        // Two intervals split (0,1)/(2,3): max(8/8, 1) then max(1, 6/8, 1) = 1.
        assert!((t.best[1] - 1.0).abs() < 1e-12);
        let part = t.partition(2, 0);
        assert_eq!(part.intervals.len(), 2);
        assert_eq!(part.intervals[0].0, 0);
        assert_eq!(part.intervals.last().unwrap().1, 3);
    }

    #[test]
    fn period_table_no_overlap_is_worse() {
        let a = app();
        let speeds = [8.0];
        let ov = HomCtx::new(&a, &speeds, 1.0, CommModel::Overlap);
        let no = HomCtx::new(&a, &speeds, 1.0, CommModel::NoOverlap);
        for q in 1..=4 {
            let tov = period_table(&ov, q).best[q - 1];
            let tno = period_table(&no, q).best[q - 1];
            assert!(tov <= tno + 1e-12);
        }
    }

    #[test]
    fn latency_under_loose_period_is_single_interval() {
        let a = app();
        let speeds = [8.0];
        let ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::Overlap);
        let t = latency_under_period(&ctx, 100.0, 4);
        // Single interval minimizes latency: 0 + 14/8 + 1 = 2.75.
        assert!((t.best[3] - 2.75).abs() < 1e-12);
        let part = t.partition(4, 0).unwrap();
        assert_eq!(part.intervals, vec![(0, 3)]);
    }

    #[test]
    fn latency_under_tight_period_needs_splits() {
        let a = app();
        let speeds = [8.0];
        let ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::Overlap);
        // Period bound 1 forces ≥ 2 intervals (14/8 > 1).
        let t = latency_under_period(&ctx, 1.0, 4);
        assert!(t.best[0].is_infinite());
        assert!(t.best[1].is_finite());
        // Split (0,1)/(2,3): latency 0 + 8/8 + 1/1 + 6/8 + 1/1 = 3.75.
        assert!((t.best[1] - 3.75).abs() < 1e-12);
        let part = t.partition(2, 0).unwrap();
        assert_eq!(part.intervals, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn latency_table_infeasible_when_period_too_small() {
        let a = app();
        let speeds = [8.0];
        let ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::Overlap);
        // Outgoing edge of stage 3 costs 1; period 0.5 unachievable.
        let t = latency_under_period(&ctx, 0.5, 4);
        assert!(t.best.iter().all(|l| l.is_infinite()));
        assert!(t.partition(4, 0).is_none());
    }

    #[test]
    fn dual_period_under_latency() {
        let a = app();
        let speeds = [8.0];
        let ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::Overlap);
        // Unbounded latency: dual returns the unconstrained optimum period.
        let (t, _) = min_period_under_latency(&ctx, f64::INFINITY, 4).unwrap();
        let unconstrained = period_table(&ctx, 4).best[3];
        assert!((t - unconstrained).abs() < 1e-12);
        // Latency bound 2.75 forces the single interval: period 1.75.
        let (t, part) = min_period_under_latency(&ctx, 2.75, 4).unwrap();
        assert!((t - 1.75).abs() < 1e-12);
        assert_eq!(part.intervals, vec![(0, 3)]);
        // Impossible latency bound.
        assert!(min_period_under_latency(&ctx, 0.1, 4).is_none());
    }

    #[test]
    fn energy_picks_slowest_feasible_modes() {
        let a = app();
        let speeds = [1.0, 6.0, 8.0];
        let ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::Overlap);
        // Period bound 14: one processor at speed 1 suffices (14/1 = 14).
        let t = energy_under_period(&ctx, 14.0, 3);
        assert!((t.exact_k[0] - 1.0).abs() < 1e-12);
        assert!((t.best - 1.0).abs() < 1e-12);
        let part = t.partition_best().unwrap();
        assert_eq!(part.modes, vec![0]);
        // Period bound 2: single proc needs speed ≥ 7 → mode 2 (64); two
        // procs can run at 6 (36 + 36 = 72) or mixed; best single = 64.
        let t = energy_under_period(&ctx, 2.0, 3);
        assert!((t.exact_k[0] - 64.0).abs() < 1e-12);
        assert!(t.best <= 64.0);
    }

    #[test]
    fn energy_exact_k_infeasible_marked() {
        let a = app();
        let speeds = [1.0];
        let ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::Overlap);
        // Period 1 with speed 1: stage 1 alone costs 2/1 = 2 > 1 → infeasible
        // at any k.
        let t = energy_under_period(&ctx, 1.0, 4);
        assert!(t.exact_k.iter().all(|e| e.is_infinite()));
        assert!(t.partition_best().is_none());
        assert!(t.partition_exact(2).is_none());
    }

    #[test]
    fn energy_static_cost_discourages_splitting() {
        let a = app();
        let speeds = [1.0, 2.0, 4.0];
        let mut ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::Overlap);
        ctx.e_stat = 100.0;
        let with_static = energy_under_period(&ctx, 4.0, 4);
        // Splitting pays +100 per extra processor; best should use 1 proc.
        let best_k = (1..=4)
            .min_by(|&x, &y| {
                with_static.exact_k[x - 1]
                    .partial_cmp(&with_static.exact_k[y - 1])
                    .unwrap()
            })
            .unwrap();
        assert_eq!(best_k, 1);
    }

    #[test]
    fn candidate_set_contains_optimum() {
        let a = app();
        let speeds = [2.0, 8.0];
        let ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::NoOverlap);
        let cands = ctx.period_candidates();
        for q in 1..=3 {
            let t = period_table(&ctx, q).best[q - 1];
            assert!(
                cands.iter().any(|c| (c - t).abs() < 1e-9),
                "optimum {t} missing from candidates"
            );
        }
    }

    #[test]
    fn cost_table_matches_ctx() {
        let a = app();
        let speeds = [1.0, 6.0, 8.0];
        for model in CommModel::ALL {
            let mut ctx = HomCtx::new(&a, &speeds, 2.0, model);
            ctx.e_stat = 1.5;
            let table = IntervalCostTable::build(&ctx);
            for lo in 0..a.n() {
                for hi in lo..a.n() {
                    for (m, &s) in speeds.iter().enumerate() {
                        assert_eq!(table.cycle(lo, hi, m), ctx.cycle(lo, hi, s));
                    }
                    assert_eq!(table.top_cycle(lo, hi), ctx.cycle(lo, hi, 8.0));
                    assert_eq!(table.latency_term_top(lo, hi), ctx.latency_term(lo, hi, 8.0));
                    for tb in [0.1, 0.5, 1.0, 2.0, 7.0, 100.0] {
                        assert_eq!(
                            table.cheapest_feasible_mode(lo, hi, tb),
                            ctx.cheapest_feasible_mode(lo, hi, tb),
                            "[{lo},{hi}] under {tb}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn binary_search_mode_matches_linear_scan() {
        let a = app();
        let speeds = [1.0, 2.0, 3.0, 6.0, 8.0];
        let ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::NoOverlap);
        for lo in 0..a.n() {
            for hi in lo..a.n() {
                for tb_tenths in 1..200 {
                    let tb = tb_tenths as f64 / 10.0;
                    let linear = speeds
                        .iter()
                        .enumerate()
                        .find(|&(_, &s)| num::le(ctx.cycle(lo, hi, s), tb))
                        .map(|(m, &s)| (m, ctx.e_stat + ctx.energy.dynamic(s)));
                    assert_eq!(ctx.cheapest_feasible_mode(lo, hi, tb), linear);
                }
            }
        }
    }

    #[test]
    fn table_dp_variants_match_direct() {
        let a = app();
        let speeds = [1.0, 6.0, 8.0];
        for model in CommModel::ALL {
            let mut ctx = HomCtx::new(&a, &speeds, 1.0, model);
            ctx.e_stat = 0.5;
            let table = IntervalCostTable::build(&ctx);
            assert_eq!(table.candidates(), ctx.period_candidates());
            for tb in [0.5, 1.0, 2.0, 4.0, 14.0] {
                for q in 1..=4 {
                    let e_direct = energy_under_period(&ctx, tb, q);
                    let e_table = energy_under_period_with(&table, tb, q);
                    assert_eq!(e_direct.exact_k, e_table.exact_k);
                    assert_eq!(e_direct.best, e_table.best);
                    assert_eq!(e_direct.partition_best(), e_table.partition_best());
                    let l_direct = latency_under_period(&ctx, tb, q);
                    let l_table = latency_under_period_with(&table, tb, q);
                    assert_eq!(l_direct.best, l_table.best);
                    assert_eq!(l_direct.partition(q, 2), l_table.partition(q, 2));
                }
            }
        }
    }

    #[test]
    fn partitions_cover_the_chain() {
        let a = app();
        let speeds = [1.0, 8.0];
        let ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::Overlap);
        for q in 1..=4 {
            let t = period_table(&ctx, q);
            let part = t.partition(q, 1);
            assert_eq!(part.intervals[0].0, 0);
            assert_eq!(part.intervals.last().unwrap().1, a.n() - 1);
            for w in part.intervals.windows(2) {
                assert_eq!(w[1].0, w[0].1 + 1);
            }
        }
    }
}
