//! Single-application chain-partition dynamic programs on identical
//! processors.
//!
//! Everything the paper's fully-homogeneous algorithms need boils down to
//! partitioning one linear chain into `k` intervals over identical
//! processors and optimizing period, latency or energy:
//!
//! * [`period_table`] — minimum period with at most `q` intervals
//!   (the single-application algorithm of [3, 4] that the paper's
//!   Algorithm 2 calls as a subroutine, Theorem 3);
//! * [`latency_under_period`] — minimum latency subject to a period bound
//!   (the `(L, T)(i, q)` recurrence of Theorem 15);
//! * [`min_period_under_latency`] — the dual, by binary search over the
//!   finite candidate-period set (Theorem 15);
//! * [`energy_under_period`] — minimum energy subject to a period bound,
//!   with the per-interval cheapest-feasible-mode rule (the `E(i, j, k)`
//!   recurrence of Theorem 18).
//!
//! # The fast cores
//!
//! All recurrences run through three shared, **exactness-preserving**
//! optimizations (every `best` value, table entry and reconstructed
//! partition is bit-for-bit identical to the textbook `O(n²·q)` scans —
//! proved by the `dp_scratch_equivalence` oracle tests):
//!
//! 1. **Monotone work-window pruning.** Under both communication models the
//!    cycle-time of `[j, i-1]` is lower-bounded by its compute term
//!    `W(j, i-1)/s_top`, which is non-increasing in `j` and non-decreasing
//!    in `i`. For the bounded DPs (latency/energy) every split `j` below
//!    the two-pointer frontier `jw(i)` is therefore infeasible and is
//!    skipped without being evaluated; for the unbounded period DP the
//!    inner scan walks `j` *descending* and stops as soon as the compute
//!    lower bound alone exceeds the incumbent. Tight thresholds — the
//!    common case inside a Pareto sweep — clip the quadratic scan to a
//!    near-constant window. (The classic divide-and-conquer argmin
//!    recursion is *not* used: the split argmin is provably non-monotone
//!    here — the no-overlap model and non-convex mode-energy steps both
//!    break the quadrangle inequality — so it could not reproduce the
//!    reference cores exactly.)
//! 2. **Flat arena storage.** All DP state lives in a reusable
//!    [`DpScratch`] (single row-major buffers), threaded through the
//!    Pareto sweep's per-thread [`crate::sweep::CandidateSolver`] state via
//!    [`DpWorkspace`] exactly like `HungarianWorkspace`: zero allocation
//!    per candidate solve.
//! 3. **Incremental sweep-wide mode frontiers.** The cheapest feasible
//!    mode of `(lo, hi)` is monotone in the threshold, so the scratch
//!    caches each cell's mode partition point across solves and walks it
//!    (usually 0–1 steps) instead of re-binary-searching, amortizing the
//!    `O(n²·modes)` single-interval cost table across a whole sweep.

#![allow(clippy::needless_range_loop)]
use cpo_model::application::Application;
use cpo_model::energy::EnergyModel;
use cpo_model::error::ModelError;
use cpo_model::eval::CommModel;
use cpo_model::num;

/// Context for a single application on identical (homogeneous) processors.
#[derive(Debug, Clone, Copy)]
pub struct HomCtx<'a> {
    /// The application being partitioned.
    pub app: &'a Application,
    /// The shared speed set (ascending). Performance-only programs use the
    /// highest speed; the energy program searches all modes.
    pub speeds: &'a [f64],
    /// Static energy per enrolled processor.
    pub e_stat: f64,
    /// Uniform link bandwidth `b`.
    pub bandwidth: f64,
    /// Per-transfer latency of **inter-processor** edges (a multistage
    /// fabric's stage traversal; `0.0` on dedicated links). The chain's
    /// external input/output edges never pay it.
    pub comm_overhead: f64,
    /// Communication model (overlap / no-overlap).
    pub model: CommModel,
    /// Energy model (`α`).
    pub energy: EnergyModel,
}

impl<'a> HomCtx<'a> {
    /// Context with the default energy model (dedicated uniform links —
    /// zero inter-processor overhead).
    pub fn new(app: &'a Application, speeds: &'a [f64], bandwidth: f64, model: CommModel) -> Self {
        HomCtx {
            app,
            speeds,
            e_stat: 0.0,
            bandwidth,
            comm_overhead: 0.0,
            model,
            energy: EnergyModel::default(),
        }
    }

    /// Context over an explicit uniform communication structure
    /// (bandwidth + inter-processor overhead), e.g. from
    /// [`cpo_model::Platform::uniform_comm`].
    pub fn with_comm(
        app: &'a Application,
        speeds: &'a [f64],
        comm: cpo_model::topology::UniformComm,
        model: CommModel,
    ) -> Self {
        let mut ctx = HomCtx::new(app, speeds, comm.bandwidth, model);
        ctx.comm_overhead = comm.inter_overhead;
        ctx
    }

    /// Highest available speed.
    #[inline]
    pub fn max_speed(&self) -> f64 {
        *self.speeds.last().expect("non-empty speed set")
    }

    /// Incoming transfer time of an interval starting at stage `lo`:
    /// `input_of(lo)/b`, plus the inter-processor overhead when the edge
    /// comes from a predecessor interval (`lo > 0`) rather than `P_in`.
    /// The add is gated so the zero-overhead case stays the bare
    /// division, bit for bit.
    #[inline]
    pub fn in_time(&self, lo: usize) -> f64 {
        let t = self.app.input_of(lo) / self.bandwidth;
        if lo > 0 && self.comm_overhead != 0.0 {
            t + self.comm_overhead
        } else {
            t
        }
    }

    /// Outgoing transfer time of an interval ending at stage `hi`:
    /// `output_of(hi)/b`, plus the inter-processor overhead when the edge
    /// feeds a successor interval (`hi + 1 < n`) rather than `P_out`.
    #[inline]
    pub fn out_time(&self, hi: usize) -> f64 {
        let t = self.app.output_of(hi) / self.bandwidth;
        if hi + 1 < self.app.n() && self.comm_overhead != 0.0 {
            t + self.comm_overhead
        } else {
            t
        }
    }

    /// Cycle-time of the interval `[lo, hi]` (0-based inclusive) at `speed`.
    #[inline]
    pub fn cycle(&self, lo: usize, hi: usize, speed: f64) -> f64 {
        let incoming = self.in_time(lo);
        let compute = self.app.interval_work(lo, hi) / speed;
        let outgoing = self.out_time(hi);
        self.model.combine(incoming, compute, outgoing)
    }

    /// Latency contribution of interval `[lo, hi]`: compute + outgoing
    /// communication (the incoming edge of the *first* interval is added
    /// separately, Eq. 5).
    #[inline]
    pub fn latency_term(&self, lo: usize, hi: usize, speed: f64) -> f64 {
        self.app.interval_work(lo, hi) / speed + self.out_time(hi)
    }

    /// Cheapest mode running `[lo, hi]` within period `t_bound`:
    /// the slowest feasible speed (energy is increasing in speed since
    /// `α > 1`). Returns `(mode index, energy)`.
    ///
    /// Speeds ascend, so the cycle-time is non-increasing in the mode index
    /// and feasibility is a monotone boundary: binary-search the first
    /// feasible mode instead of scanning linearly.
    pub fn cheapest_feasible_mode(&self, lo: usize, hi: usize, t_bound: f64) -> Option<(usize, f64)> {
        let m = self
            .speeds
            .partition_point(|&s| !num::le(self.cycle(lo, hi, s), t_bound));
        (m < self.speeds.len()).then(|| (m, self.e_stat + self.energy.dynamic(self.speeds[m])))
    }

    /// All candidate period values: cycle-times of every interval at every
    /// speed. The optimal period over any partition is always one of them.
    /// Routed through [`IntervalCostTable`] so every candidate enumeration
    /// in the workspace draws from the same cycle-time values.
    pub fn period_candidates(&self) -> Vec<f64> {
        IntervalCostTable::build(self).candidates()
    }
}

// ---------------------------------------------------------------------------
// Shared interval cost precomputation
// ---------------------------------------------------------------------------

/// Precomputed per-application interval costs: every `cycle(lo, hi, s)`,
/// per-mode energies, the top-mode latency terms and the work prefix sums of
/// [`HomCtx`].
///
/// The Pareto sweep engine re-runs the Theorem 15/18/21 dynamic programs
/// once per candidate period; without this table each run recomputes the
/// identical `O(n²·modes)` cycle-time values. Building the table once per
/// `(application, platform, model)` and sharing it across the sweep turns
/// those recomputations into lookups, and keeps every consumer (candidate
/// enumeration, feasibility probes, DP cost rows) reading from one source
/// so the values cannot drift apart.
#[derive(Debug, Clone)]
pub struct IntervalCostTable {
    n: usize,
    modes: usize,
    /// Application weight `W_a` (scales candidates to the global objective).
    pub weight: f64,
    /// `mode_energy[m]` = `E_stat + s_m^α`.
    pub mode_energy: Vec<f64>,
    /// `cycle[(lo * n + hi) * modes + m]`, valid for `lo ≤ hi`.
    cycle: Vec<f64>,
    /// Latency term of `[lo, hi]` at the top mode (`lo * n + hi`).
    latency_top: Vec<f64>,
    /// Input-edge latency `δ^0 / b` of the whole chain.
    input_edge: f64,
    /// Work prefix sums (`work_prefix[k]` = total work of stages `0..k`),
    /// bitwise-identical to [`Application::interval_work`]'s internal sums.
    work_prefix: Vec<f64>,
    /// Top speed `s_top` (for the compute-term lower bound).
    top_speed: f64,
    /// The speed set (ascending) — the exact divisors of the cycle compute
    /// terms, for the per-mode feasibility boundaries.
    speeds: Vec<f64>,
    /// Incoming-edge term `input_of(lo)/b` per stage — the exact first
    /// operand of every `cycle(lo, ·, ·)`.
    in_edge: Vec<f64>,
    /// Outgoing-edge term `output_of(hi)/b` per stage — the exact last
    /// operand of every `cycle(·, hi, ·)`.
    out_edge: Vec<f64>,
    /// Communication model the cycle-times were combined under.
    model: CommModel,
}

impl IntervalCostTable {
    /// Precompute all interval costs of `ctx` (`O(n²·modes)` time/space).
    pub fn build(ctx: &HomCtx<'_>) -> Self {
        let n = ctx.app.n();
        let modes = ctx.speeds.len();
        let top = ctx.max_speed();
        let mut cycle = vec![f64::INFINITY; n * n * modes];
        let mut latency_top = vec![f64::INFINITY; n * n];
        for lo in 0..n {
            // Hoist the per-lo and per-cell operands: same exact float
            // expressions as `ctx.cycle`/`ctx.latency_term`, computed once
            // instead of once per mode.
            let incoming = ctx.in_time(lo);
            for hi in lo..n {
                let work = ctx.app.interval_work(lo, hi);
                let outgoing = ctx.out_time(hi);
                let base = (lo * n + hi) * modes;
                for (m, &s) in ctx.speeds.iter().enumerate() {
                    cycle[base + m] = ctx.model.combine(incoming, work / s, outgoing);
                }
                latency_top[lo * n + hi] = work / top + outgoing;
            }
        }
        Self::assemble(ctx, cycle, latency_top)
    }

    /// Lean build for the overlap-model energy path: every cheap field
    /// (work prefix, edges, speeds, mode energies) but **no** `O(n²·modes)`
    /// cycle matrix and no latency terms. The run-decomposed energy core is
    /// the only consumer that needs nothing else; any accidental use of
    /// `cycle`/`top_cycle`/`latency_term_top`/`candidates` on a lean table
    /// panics on an out-of-bounds slice, so lean tables must not escape the
    /// one-shot solvers that create them.
    pub(crate) fn build_lean(ctx: &HomCtx<'_>) -> Self {
        Self::assemble(ctx, Vec::new(), Vec::new())
    }

    fn assemble(ctx: &HomCtx<'_>, cycle: Vec<f64>, latency_top: Vec<f64>) -> Self {
        let n = ctx.app.n();
        let mode_energy =
            ctx.speeds.iter().map(|&s| ctx.e_stat + ctx.energy.dynamic(s)).collect();
        let mut work_prefix = Vec::with_capacity(n + 1);
        work_prefix.push(0.0);
        for k in 1..=n {
            // `interval_work(0, k-1)` = prefix[k] − 0.0 = prefix[k] exactly.
            work_prefix.push(ctx.app.interval_work(0, k - 1));
        }
        let in_edge = (0..n).map(|k| ctx.in_time(k)).collect();
        let out_edge = (0..n).map(|k| ctx.out_time(k)).collect();
        IntervalCostTable {
            n,
            modes: ctx.speeds.len(),
            weight: ctx.app.weight,
            mode_energy,
            cycle,
            latency_top,
            input_edge: ctx.in_time(0),
            work_prefix,
            top_speed: ctx.max_speed(),
            speeds: ctx.speeds.to_vec(),
            in_edge,
            out_edge,
            model: ctx.model,
        }
    }

    /// Number of stages `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of modes.
    #[inline]
    pub fn modes(&self) -> usize {
        self.modes
    }

    /// Cycle-time of `[lo, hi]` at mode `m`.
    #[inline]
    pub fn cycle(&self, lo: usize, hi: usize, m: usize) -> f64 {
        self.cycle[(lo * self.n + hi) * self.modes + m]
    }

    /// All mode cycle-times of `[lo, hi]` (descending over modes).
    #[inline]
    pub(crate) fn cycle_row(&self, lo: usize, hi: usize) -> &[f64] {
        let base = (lo * self.n + hi) * self.modes;
        &self.cycle[base..base + self.modes]
    }

    /// Cycle-time of `[lo, hi]` at the top mode.
    #[inline]
    pub fn top_cycle(&self, lo: usize, hi: usize) -> f64 {
        self.cycle(lo, hi, self.modes - 1)
    }

    /// Compute term `W(lo, hi) / s_top` of `[lo, hi]` at the top mode —
    /// bitwise-identical to the compute operand inside [`HomCtx::cycle`],
    /// and a lower bound of the cycle-time at *every* mode under both
    /// communication models. Non-increasing in `lo`, non-decreasing in
    /// `hi`: the monotone quantity behind the DP work windows.
    #[inline]
    pub fn top_compute(&self, lo: usize, hi: usize) -> f64 {
        (self.work_prefix[hi + 1] - self.work_prefix[lo]) / self.top_speed
    }

    /// Compute term `W(lo, hi) / s_m` at mode `m` (same exact expression as
    /// the cycle's compute operand).
    #[inline]
    fn compute_at(&self, lo: usize, hi: usize, m: usize) -> f64 {
        (self.work_prefix[hi + 1] - self.work_prefix[lo]) / self.speeds[m]
    }

    /// True when the cycle-times were combined under the overlap model, in
    /// which the cycle is an exact three-way max — the structural property
    /// the run-decomposed energy core relies on.
    #[inline]
    fn is_overlap(&self) -> bool {
        matches!(self.model, CommModel::Overlap)
    }

    /// Latency term of `[lo, hi]` at the top mode.
    #[inline]
    pub fn latency_term_top(&self, lo: usize, hi: usize) -> f64 {
        self.latency_top[lo * self.n + hi]
    }

    /// Input-edge latency `δ^0 / b`.
    #[inline]
    pub fn input_edge(&self) -> f64 {
        self.input_edge
    }

    /// Cheapest feasible mode of `[lo, hi]` under `t_bound`, by
    /// partition-point binary search (cycle-times descend over modes).
    /// Identical to [`HomCtx::cheapest_feasible_mode`].
    pub fn cheapest_feasible_mode(&self, lo: usize, hi: usize, t_bound: f64) -> Option<(usize, f64)> {
        let row = self.cycle_row(lo, hi);
        let m = row.partition_point(|&c| !num::le(c, t_bound));
        (m < self.modes).then(|| (m, self.mode_energy[m]))
    }

    /// All candidate period values (unweighted), sorted and deduplicated —
    /// the same set as [`HomCtx::period_candidates`].
    pub fn candidates(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n * (self.n + 1) / 2 * self.modes);
        self.push_weighted_candidates(1.0, false, &mut out);
        num::sorted_candidates(out)
    }

    /// Append `weight ×` cycle-time candidates to `out`: every mode when
    /// `top_only` is false, only the top mode otherwise (for the
    /// performance-only solvers that never downclock).
    pub fn push_weighted_candidates(&self, weight: f64, top_only: bool, out: &mut Vec<f64>) {
        for lo in 0..self.n {
            for hi in lo..self.n {
                let base = (lo * self.n + hi) * self.modes;
                let first = if top_only { self.modes - 1 } else { 0 };
                for m in first..self.modes {
                    out.push(weight * self.cycle[base + m]);
                }
            }
        }
    }
}

/// A partition of the chain with the selected mode per interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Intervals `(first, last)` in chain order (0-based inclusive).
    pub intervals: Vec<(usize, usize)>,
    /// Mode index per interval (into the shared speed set).
    pub modes: Vec<usize>,
}

impl Partition {
    /// Number of intervals (= processors used).
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// True when the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Flat DP arenas
// ---------------------------------------------------------------------------

const NONE_U32: u32 = u32::MAX;

/// Reusable flat workspace for the chain-partition dynamic programs.
///
/// One scratch holds every buffer a single-application solve needs — the
/// `(k, i)` value/parent/mode tables as row-major arenas, the two-pointer
/// work window, the single-interval cost row and the per-cell cheapest-mode
/// frontier — and is reused across solves (any mix of thresholds, programs
/// and applications; buffers grow to the largest instance seen). A Pareto
/// sweep worker keeps one [`DpWorkspace`] (one scratch per application) in
/// its [`crate::sweep::CandidateSolver::State`], eliminating every
/// per-candidate allocation.
///
/// The mode frontier persists across solves on purpose: the cheapest
/// feasible mode of a cell is monotone in the threshold, so consecutive
/// sweep candidates move each frontier by a step or two at most. The cached
/// position is only ever a *walk starting point* — each solve walks it to
/// the exact partition point for the current threshold — so reuse across
/// unrelated tables is merely slower, never wrong.
#[derive(Debug, Default, Clone)]
pub struct DpScratch {
    n: usize,
    kcap: usize,
    qmax: usize,
    /// `exact[k * (n+1) + i]` (row-major over `k`).
    exact: Vec<f64>,
    /// Split point realizing `exact` (`NONE_U32` = none).
    parent: Vec<u32>,
    /// Mode of the last interval (energy DP only).
    mode_of: Vec<u32>,
    /// `jw[i]` = first split `j` whose last interval `[j, i-1]` passes the
    /// top-mode compute lower bound (splits below are infeasible).
    jw: Vec<u32>,
    /// Cached cheapest-mode partition point per `(lo, hi)` cell.
    frontier: Vec<u32>,
    /// Cheapest single-interval energy per `(lo, hi)` cell at the current
    /// threshold (refreshed for window cells only).
    cost1: Vec<f64>,
    /// Mode realizing `cost1`.
    mode1: Vec<u32>,
    /// `best[q-1]` of the last period/latency solve.
    best: Vec<f64>,
    /// `exact_k[k-1]` of the last energy solve.
    exact_k: Vec<f64>,
    /// Overall best of the last energy solve.
    best_val: f64,
    /// Rolling rows for the best-only probes.
    roll_a: Vec<f64>,
    roll_b: Vec<f64>,
    /// Per-mode feasibility boundaries `b[m·(n+1) + i]` = first split `j`
    /// whose last interval `[j, i-1]` fits mode `m`'s compute term.
    mode_bound: Vec<u32>,
    /// Monotone deques of the run-decomposed energy core, one per mode, as
    /// flat forward-only arenas (`m·n .. (m+1)·n`): each split enters a
    /// deque at most once per row, so head/tail only ever advance.
    run_key: Vec<f64>,
    run_idx: Vec<u32>,
    run_head: Vec<u32>,
    run_tail: Vec<u32>,
    /// Per-mode entrant pointers of the run deques.
    run_entrant: Vec<u32>,
}

impl DpScratch {
    /// Fresh scratch; buffers grow lazily to the largest instance solved.
    pub fn new() -> Self {
        Self::default()
    }

    /// Size (and re-initialize) the arenas for an `n`-stage solve with
    /// `kcap` exact rows; the frontier cache survives as long as `n` does.
    fn ensure(&mut self, n: usize, kcap: usize, qmax: usize, with_modes: bool) {
        if self.n != n {
            self.n = n;
            // Invalidate the per-cell arrays; they are (re)sized lazily by
            // the cores that actually use them (`ensure_cells`), so the
            // run-decomposed path never pays for the O(n²) arenas.
            self.frontier.clear();
            self.cost1.clear();
            self.mode1.clear();
        }
        self.kcap = kcap;
        self.qmax = qmax;
        let cells = (kcap + 1) * (n + 1);
        self.exact.clear();
        self.exact.resize(cells, f64::INFINITY);
        self.parent.clear();
        self.parent.resize(cells, NONE_U32);
        if with_modes {
            self.mode_of.clear();
            self.mode_of.resize(cells, NONE_U32);
        }
        self.best.clear();
        self.best.resize(qmax, f64::INFINITY);
        self.jw.clear();
        self.jw.resize(n + 1, 0);
    }

    /// Two-pointer fill of the work window: `jw[i]` = first `j < i` with
    /// `top_compute(j, i-1) ≤ t_bound` (or `i` when even the single stage
    /// fails). Since the compute term is non-increasing in `j` and
    /// non-decreasing in `i`, the frontier is non-decreasing in `i` and the
    /// whole fill is `O(n)`. Every skipped split is infeasible under both
    /// communication models (the cycle-time dominates its compute term
    /// bitwise), so clipping the DP scans to the window is exact.
    fn fill_window(&mut self, table: &IntervalCostTable, t_bound: f64) {
        let n = self.n;
        let mut j = 0usize;
        for i in 1..=n {
            while j < i && !num::le(table.top_compute(j, i - 1), t_bound) {
                j += 1;
            }
            self.jw[i] = j as u32;
        }
    }

    /// Fill the per-mode feasibility boundaries, column-major
    /// (`mode_bound[i·modes + m]`): first `j < i` with
    /// `compute_at(j, i-1, m) ≤ t_bound` (or `i` when none). One
    /// two-pointer per mode — `O(n·modes)` — since each compute term is
    /// non-increasing in `j` and non-decreasing in `i`.
    fn fill_mode_bounds(&mut self, table: &IntervalCostTable, t_bound: f64) {
        let n = self.n;
        let modes = table.modes();
        self.mode_bound.clear();
        self.mode_bound.resize((n + 1) * modes, 0);
        for m in 0..modes {
            let mut j = 0usize;
            for i in 1..=n {
                while j < i && !num::le(table.compute_at(j, i - 1, m), t_bound) {
                    j += 1;
                }
                self.mode_bound[i * modes + m] = j as u32;
            }
        }
    }

    /// Refresh `cost1`/`mode1` for every window cell by walking the cached
    /// mode frontier to the exact partition point for `t_bound` (identical
    /// to [`IntervalCostTable::cheapest_feasible_mode`]). Cells outside the
    /// window are left stale — the DP never reads them.
    fn refresh_cost1(&mut self, table: &IntervalCostTable, t_bound: f64) {
        let n = self.n;
        let modes = table.modes();
        if self.frontier.len() != n * n {
            self.frontier.clear();
            self.frontier.resize(n * n, 0);
            self.cost1.clear();
            self.cost1.resize(n * n, f64::INFINITY);
            self.mode1.clear();
            self.mode1.resize(n * n, NONE_U32);
        }
        for i in 1..=n {
            let hi = i - 1;
            for j in (self.jw[i] as usize)..i {
                let cell = j * n + hi;
                let row = table.cycle_row(j, hi);
                let mut m = (self.frontier[cell] as usize).min(modes);
                while m < modes && !num::le(row[m], t_bound) {
                    m += 1;
                }
                while m > 0 && num::le(row[m - 1], t_bound) {
                    m -= 1;
                }
                self.frontier[cell] = m as u32;
                if m < modes {
                    self.cost1[cell] = table.mode_energy[m];
                    self.mode1[cell] = m as u32;
                } else {
                    self.cost1[cell] = f64::INFINITY;
                    self.mode1[cell] = NONE_U32;
                }
            }
        }
    }

    /// `best[q-1]` values of the last period or latency solve.
    #[inline]
    pub fn best_row(&self) -> &[f64] {
        &self.best
    }

    /// `exact_k` values of the last energy solve.
    #[inline]
    pub fn energy_exact_k(&self) -> &[f64] {
        &self.exact_k
    }

    /// Overall best of the last energy solve.
    #[inline]
    pub fn energy_best(&self) -> f64 {
        self.best_val
    }

    /// Walk the parent chain for `k` intervals ending at stage `n`.
    fn walk_parents(&self, k: usize, with_modes: bool) -> Option<Partition> {
        let stride = self.n + 1;
        let mut intervals = Vec::with_capacity(k);
        let mut modes = Vec::with_capacity(if with_modes { k } else { 0 });
        let mut i = self.n;
        let mut kk = k;
        while kk > 0 {
            let p = self.parent[kk * stride + i];
            if p == NONE_U32 || p as usize >= i {
                return None;
            }
            intervals.push((p as usize, i - 1));
            if with_modes {
                modes.push(self.mode_of[kk * stride + i] as usize);
            }
            i = p as usize;
            kk -= 1;
        }
        if i != 0 {
            return None;
        }
        intervals.reverse();
        modes.reverse();
        Some(Partition { intervals, modes })
    }

    /// Reconstruct a partition achieving `best_row()[q-1]` of the last
    /// *period* solve (all intervals at `top_mode`).
    pub fn period_partition(&self, q: usize, top_mode: usize) -> Result<Partition, ModelError> {
        let stride = self.n + 1;
        let target = self.best[q - 1];
        if !target.is_finite() {
            return Err(ModelError::NonFiniteData { what: "period DP best value" });
        }
        let k = (1..=q.min(self.kcap))
            .find(|&k| num::le(self.exact[k * stride + self.n], target))
            .ok_or(ModelError::NonFiniteData { what: "period DP table" })?;
        let mut part = self
            .walk_parents(k, false)
            .ok_or(ModelError::NonFiniteData { what: "period DP parents" })?;
        part.modes = vec![top_mode; part.intervals.len()];
        Ok(part)
    }

    /// Reconstruct a partition achieving `best_row()[q-1]` of the last
    /// *latency* solve; `None` when infeasible.
    pub fn latency_partition(&self, q: usize, top_mode: usize) -> Option<Partition> {
        let stride = self.n + 1;
        let target = self.best[q - 1];
        if !target.is_finite() {
            return None;
        }
        let k = (1..=q.min(self.kcap))
            .find(|&k| num::le(self.exact[k * stride + self.n], target))?;
        let mut part = self.walk_parents(k, false)?;
        part.modes = vec![top_mode; part.intervals.len()];
        Some(part)
    }

    /// Reconstruct the partition achieving `energy_exact_k()[k-1]` of the
    /// last *energy* solve; `None` when infeasible.
    pub fn energy_partition_exact(&self, k: usize) -> Option<Partition> {
        if k == 0 || k > self.exact_k.len() || !self.exact_k[k - 1].is_finite() {
            return None;
        }
        self.walk_parents(k, true)
    }

    /// Reconstruct the overall best partition of the last energy solve.
    pub fn energy_partition_best(&self) -> Option<Partition> {
        let k = (1..=self.exact_k.len())
            .filter(|&k| self.exact_k[k - 1].is_finite())
            .min_by(|&a, &b| {
                self.exact_k[a - 1].partial_cmp(&self.exact_k[b - 1]).expect("finite")
            })?;
        self.energy_partition_exact(k)
    }

    fn export_period(&self) -> PeriodTable {
        let stride = self.n + 1;
        let used = (self.kcap + 1) * stride;
        PeriodTable {
            best: self.best.clone(),
            n: self.n,
            stride,
            exact: self.exact[..used].to_vec(),
            parent: self.parent[..used].to_vec(),
        }
    }

    fn export_latency(&self) -> LatencyTable {
        let stride = self.n + 1;
        let used = (self.kcap + 1) * stride;
        LatencyTable {
            best: self.best.clone(),
            n: self.n,
            stride,
            exact: self.exact[..used].to_vec(),
            parent: self.parent[..used].to_vec(),
        }
    }

    fn export_energy(&self) -> EnergyTable {
        let stride = self.n + 1;
        let used = (self.kcap + 1) * stride;
        EnergyTable {
            exact_k: self.exact_k.clone(),
            best: self.best_val,
            n: self.n,
            stride,
            parent: self.parent[..used].to_vec(),
            mode_of: self.mode_of[..used].to_vec(),
        }
    }
}

/// Per-thread workspace of a multi-application solve: one [`DpScratch`] per
/// application plus flat buffers for the Theorem 21 convolution. This is
/// (part of) the `CandidateSolver::State` of the interval Pareto solvers.
#[derive(Debug, Default)]
pub struct DpWorkspace {
    pub(crate) per_app: Vec<DpScratch>,
    pub(crate) conv_e: Vec<f64>,
    pub(crate) conv_choice: Vec<u32>,
}

impl DpWorkspace {
    /// Fresh workspace; buffers grow lazily.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch of application `a` (growing the pool as needed).
    pub(crate) fn app_scratch(&mut self, a: usize) -> &mut DpScratch {
        if self.per_app.len() <= a {
            self.per_app.resize_with(a + 1, DpScratch::new);
        }
        &mut self.per_app[a]
    }
}

// ---------------------------------------------------------------------------
// Period minimization (Theorem 3 subroutine)
// ---------------------------------------------------------------------------

/// Result of the period DP: for every `q`, the minimum period achievable
/// with at most `q` intervals at the highest speed.
#[derive(Debug, Clone)]
pub struct PeriodTable {
    /// `best[q-1]` = minimum period with at most `q` intervals.
    pub best: Vec<f64>,
    n: usize,
    stride: usize,
    /// `exact[k·stride + i]` = min period, exactly `k` intervals over first
    /// `i` stages.
    exact: Vec<f64>,
    /// Split point `j` (stages `j..i` form the last interval).
    parent: Vec<u32>,
}

/// Run the period DP into `scratch`: `scratch.best_row()[q-1]` = minimum
/// period of the table's application with at most `q` intervals at the top
/// speed. The inner scan walks splits descending and stops once the
/// compute-term lower bound alone exceeds the incumbent — exact, since the
/// bound is monotone in the split (see [`IntervalCostTable::top_compute`]).
pub fn period_dp(table: &IntervalCostTable, qmax: usize, scratch: &mut DpScratch) {
    let n = table.n();
    let kcap = qmax.min(n).max(1);
    scratch.ensure(n, kcap, qmax, false);
    let stride = n + 1;
    for i in 1..=n {
        scratch.exact[stride + i] = table.top_cycle(0, i - 1);
        scratch.parent[stride + i] = 0;
    }
    for k in 2..=kcap {
        let (lo_rows, hi_rows) = scratch.exact.split_at_mut(k * stride);
        let prev = &lo_rows[(k - 1) * stride..];
        let cur = &mut hi_rows[..stride];
        let parent_row = &mut scratch.parent[k * stride..(k + 1) * stride];
        for i in k..=n {
            let hi = i - 1;
            let mut best = f64::INFINITY;
            let mut arg = NONE_U32;
            // Descending scan with `≤` keeps the smallest split attaining
            // the minimum — the same selection as the ascending strict scan
            // of the reference core — while allowing the monotone early
            // stop: once the compute bound exceeds the incumbent it does so
            // for every smaller split too.
            for j in ((k - 1)..i).rev() {
                if table.top_compute(j, hi) > best {
                    break;
                }
                let cand = num::fmax(prev[j], table.top_cycle(j, hi));
                if cand <= best {
                    best = cand;
                    arg = j as u32;
                }
            }
            cur[i] = best;
            parent_row[i] = arg;
        }
    }
    let mut acc = f64::INFINITY;
    for q in 1..=qmax {
        let k = q.min(kcap);
        acc = num::fmin(acc, scratch.exact[k * stride + n]);
        scratch.best[q - 1] = acc;
    }
}

/// Minimum period of `app` with at most `q ∈ {1..qmax}` intervals, running
/// every interval at the top speed (performance-only setting).
pub fn period_table(ctx: &HomCtx<'_>, qmax: usize) -> PeriodTable {
    period_table_with(&IntervalCostTable::build(ctx), qmax, &mut DpScratch::new())
}

/// [`period_table`] on a prebuilt [`IntervalCostTable`] and reusable
/// [`DpScratch`].
pub fn period_table_with(
    table: &IntervalCostTable,
    qmax: usize,
    scratch: &mut DpScratch,
) -> PeriodTable {
    period_dp(table, qmax, scratch);
    scratch.export_period()
}

/// Lean [`period_table`] variant computing only the `best` row (no
/// `exact`/`parent` matrices, two rolling rows): the form feasibility
/// probes should use when no partition needs reconstructing. Values are
/// bitwise-identical to `period_table(ctx, qmax).best`.
pub fn period_best_only(ctx: &HomCtx<'_>, qmax: usize) -> Vec<f64> {
    period_best_only_with(&IntervalCostTable::build(ctx), qmax, &mut DpScratch::new())
}

/// [`period_best_only`] on a prebuilt table and reusable scratch.
pub fn period_best_only_with(
    table: &IntervalCostTable,
    qmax: usize,
    scratch: &mut DpScratch,
) -> Vec<f64> {
    let n = table.n();
    let kcap = qmax.min(n).max(1);
    scratch.n = n;
    let (prev, cur) = (&mut scratch.roll_a, &mut scratch.roll_b);
    prev.clear();
    prev.resize(n + 1, f64::INFINITY);
    cur.clear();
    cur.resize(n + 1, f64::INFINITY);
    for i in 1..=n {
        prev[i] = table.top_cycle(0, i - 1);
    }
    let mut per_k = Vec::with_capacity(kcap);
    per_k.push(prev[n]);
    for k in 2..=kcap {
        for i in 0..=n {
            cur[i] = f64::INFINITY;
        }
        for i in k..=n {
            let hi = i - 1;
            let mut best = f64::INFINITY;
            for j in ((k - 1)..i).rev() {
                if table.top_compute(j, hi) > best {
                    break;
                }
                let cand = num::fmax(prev[j], table.top_cycle(j, hi));
                if cand <= best {
                    best = cand;
                }
            }
            cur[i] = best;
        }
        per_k.push(cur[n]);
        std::mem::swap(prev, cur);
    }
    let mut out = Vec::with_capacity(qmax);
    let mut acc = f64::INFINITY;
    for q in 1..=qmax {
        acc = num::fmin(acc, per_k[q.min(kcap) - 1]);
        out.push(acc);
    }
    out
}

impl PeriodTable {
    /// Reconstruct a partition achieving `best[q-1]` (at most `q` intervals,
    /// all at the top mode). Returns a structured error instead of
    /// panicking when the table was contaminated by non-finite inputs (NaN
    /// stage data, NaN speeds) and no exact row attains the target.
    pub fn partition(&self, q: usize, top_mode: usize) -> Result<Partition, ModelError> {
        let kcap = self.exact.len() / self.stride - 1;
        let target = self.best[q - 1];
        if !target.is_finite() {
            return Err(ModelError::NonFiniteData { what: "period table best value" });
        }
        let k = (1..=q.min(kcap))
            .find(|&k| num::le(self.exact[k * self.stride + self.n], target))
            .ok_or(ModelError::NonFiniteData { what: "period table" })?;
        let mut intervals = Vec::with_capacity(k);
        let mut i = self.n;
        let mut kk = k;
        while kk > 0 {
            let j = self.parent[kk * self.stride + i];
            if j == NONE_U32 || j as usize >= i {
                return Err(ModelError::NonFiniteData { what: "period table parents" });
            }
            intervals.push((j as usize, i - 1));
            i = j as usize;
            kk -= 1;
        }
        intervals.reverse();
        let modes = vec![top_mode; intervals.len()];
        Ok(Partition { intervals, modes })
    }
}

// ---------------------------------------------------------------------------
// Latency under a period bound (Theorem 15)
// ---------------------------------------------------------------------------

/// Result of the latency-under-period DP.
#[derive(Debug, Clone)]
pub struct LatencyTable {
    /// `best[q-1]` = minimum latency with at most `q` intervals whose
    /// cycle-times all respect the period bound; `+∞` when infeasible.
    pub best: Vec<f64>,
    n: usize,
    stride: usize,
    exact: Vec<f64>,
    parent: Vec<u32>,
}

/// Run the latency-under-period DP into `scratch` (Theorem 15 recurrence,
/// top speed, splits clipped to the exact work window).
pub fn latency_dp(table: &IntervalCostTable, t_bound: f64, qmax: usize, scratch: &mut DpScratch) {
    let n = table.n();
    let kcap = qmax.min(n).max(1);
    scratch.ensure(n, kcap, qmax, false);
    scratch.fill_window(table, t_bound);
    let stride = n + 1;
    for i in 1..=n {
        if scratch.jw[i] == 0 && num::le(table.top_cycle(0, i - 1), t_bound) {
            scratch.exact[stride + i] = table.input_edge() + table.latency_term_top(0, i - 1);
            scratch.parent[stride + i] = 0;
        }
    }
    for k in 2..=kcap {
        let (lo_rows, hi_rows) = scratch.exact.split_at_mut(k * stride);
        let prev = &lo_rows[(k - 1) * stride..];
        let cur = &mut hi_rows[..stride];
        let parent_row = &mut scratch.parent[k * stride..(k + 1) * stride];
        for i in k..=n {
            let hi = i - 1;
            let jlo = (scratch.jw[i] as usize).max(k - 1);
            let mut best = f64::INFINITY;
            let mut arg = NONE_U32;
            for j in jlo..i {
                if prev[j].is_finite() && num::le(table.top_cycle(j, hi), t_bound) {
                    let cand = prev[j] + table.latency_term_top(j, hi);
                    if cand < best {
                        best = cand;
                        arg = j as u32;
                    }
                }
            }
            cur[i] = best;
            parent_row[i] = arg;
        }
    }
    let mut acc = f64::INFINITY;
    for q in 1..=qmax {
        let k = q.min(kcap);
        acc = num::fmin(acc, scratch.exact[k * stride + n]);
        scratch.best[q - 1] = acc;
    }
}

/// Minimum latency of `app` with at most `q ∈ {1..qmax}` intervals subject
/// to every interval's cycle-time ≤ `t_bound` (the paper's `(L, T)(i, q)`
/// recurrence, Theorem 15). Runs at the top speed.
pub fn latency_under_period(ctx: &HomCtx<'_>, t_bound: f64, qmax: usize) -> LatencyTable {
    latency_under_period_scratch(
        &IntervalCostTable::build(ctx),
        t_bound,
        qmax,
        &mut DpScratch::new(),
    )
}

/// [`latency_under_period`] on a prebuilt [`IntervalCostTable`]: identical
/// results, but all `O(n²)` cycle-times and latency terms are lookups.
pub fn latency_under_period_with(
    table: &IntervalCostTable,
    t_bound: f64,
    qmax: usize,
) -> LatencyTable {
    latency_under_period_scratch(table, t_bound, qmax, &mut DpScratch::new())
}

/// [`latency_under_period_with`] on a reusable [`DpScratch`] — the
/// zero-allocation form of a Pareto sweep's per-candidate solves.
pub fn latency_under_period_scratch(
    table: &IntervalCostTable,
    t_bound: f64,
    qmax: usize,
    scratch: &mut DpScratch,
) -> LatencyTable {
    latency_dp(table, t_bound, qmax, scratch);
    scratch.export_latency()
}

/// Best-only feasibility probe: `latency_under_period_with(table, t_bound,
/// qmax).best[qmax-1]` without materializing the `exact`/`parent` matrices
/// (two rolling rows). Bitwise-identical values; the form every binary
/// search probe uses.
pub fn latency_best_under_period_with(
    table: &IntervalCostTable,
    t_bound: f64,
    qmax: usize,
    scratch: &mut DpScratch,
) -> f64 {
    let n = table.n();
    let kcap = qmax.min(n).max(1);
    scratch.n = n;
    scratch.jw.clear();
    scratch.jw.resize(n + 1, 0);
    scratch.fill_window(table, t_bound);
    let (prev, cur) = (&mut scratch.roll_a, &mut scratch.roll_b);
    prev.clear();
    prev.resize(n + 1, f64::INFINITY);
    cur.clear();
    cur.resize(n + 1, f64::INFINITY);
    for i in 1..=n {
        if scratch.jw[i] == 0 && num::le(table.top_cycle(0, i - 1), t_bound) {
            prev[i] = table.input_edge() + table.latency_term_top(0, i - 1);
        }
    }
    let mut acc = prev[n];
    for k in 2..=kcap {
        for i in 0..=n {
            cur[i] = f64::INFINITY;
        }
        for i in k..=n {
            let hi = i - 1;
            let jlo = (scratch.jw[i] as usize).max(k - 1);
            let mut best = f64::INFINITY;
            for j in jlo..i {
                if prev[j].is_finite() && num::le(table.top_cycle(j, hi), t_bound) {
                    let cand = prev[j] + table.latency_term_top(j, hi);
                    if cand < best {
                        best = cand;
                    }
                }
            }
            cur[i] = best;
        }
        acc = num::fmin(acc, cur[n]);
        std::mem::swap(prev, cur);
    }
    acc
}

impl LatencyTable {
    /// Reconstruct a partition achieving `best[q-1]`; `None` if infeasible.
    pub fn partition(&self, q: usize, top_mode: usize) -> Option<Partition> {
        let target = self.best[q - 1];
        if !target.is_finite() {
            return None;
        }
        let kcap = self.exact.len() / self.stride - 1;
        let k = (1..=q.min(kcap))
            .find(|&k| num::le(self.exact[k * self.stride + self.n], target))
            .expect("latency table is consistent");
        let mut intervals = Vec::with_capacity(k);
        let mut i = self.n;
        let mut kk = k;
        while kk > 0 {
            let j = self.parent[kk * self.stride + i] as usize;
            intervals.push((j, i - 1));
            i = j;
            kk -= 1;
        }
        intervals.reverse();
        let modes = vec![top_mode; intervals.len()];
        Some(Partition { intervals, modes })
    }
}

/// Minimum period achievable with at most `q` intervals subject to a
/// latency bound, via binary search over the candidate-period set plus the
/// Theorem 15 DP as feasibility probe. Returns `(period, partition)`.
pub fn min_period_under_latency(
    ctx: &HomCtx<'_>,
    l_bound: f64,
    q: usize,
) -> Option<(f64, Partition)> {
    let table = IntervalCostTable::build(ctx);
    let candidates = table.candidates();
    min_period_under_latency_with(&table, &candidates, l_bound, q)
}

/// [`min_period_under_latency`] on a prebuilt cost table and candidate set,
/// so a multi-application allocation (or a Pareto sweep) probing many
/// `(l_bound, q)` pairs builds both exactly once per application.
pub fn min_period_under_latency_with(
    table: &IntervalCostTable,
    candidates: &[f64],
    l_bound: f64,
    q: usize,
) -> Option<(f64, Partition)> {
    min_period_under_latency_scratch(table, candidates, l_bound, q, &mut DpScratch::new())
}

/// Value-only form of [`min_period_under_latency_scratch`]: the minimum
/// feasible period (no partition, no parent matrices at all) — the form
/// Algorithm 2's allocation probes use.
pub fn min_period_under_latency_probe(
    table: &IntervalCostTable,
    candidates: &[f64],
    l_bound: f64,
    q: usize,
    scratch: &mut DpScratch,
) -> Option<f64> {
    let mut lo = 0usize;
    let mut hi = candidates.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        let l = latency_best_under_period_with(table, candidates[mid], q, scratch);
        if l.is_finite() && num::le(l, l_bound) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    (lo < candidates.len()).then(|| candidates[lo])
}

/// [`min_period_under_latency_with`] on a reusable [`DpScratch`]: the
/// binary-search probes run the lean best-only recurrence
/// ([`latency_best_under_period_with`]) and only the final threshold pays
/// for a full table with parents.
pub fn min_period_under_latency_scratch(
    table: &IntervalCostTable,
    candidates: &[f64],
    l_bound: f64,
    q: usize,
    scratch: &mut DpScratch,
) -> Option<(f64, Partition)> {
    // Feasible(T) := best latency under period T ≤ l_bound; monotone in T,
    // so binary-search the first feasible candidate.
    let t = min_period_under_latency_probe(table, candidates, l_bound, q, scratch)?;
    latency_dp(table, t, q, scratch);
    let top = table.modes() - 1;
    let partition = scratch.latency_partition(q, top)?;
    Some((t, partition))
}

// ---------------------------------------------------------------------------
// Energy under a period bound (Theorem 18)
// ---------------------------------------------------------------------------

/// Result of the energy-under-period DP.
#[derive(Debug, Clone)]
pub struct EnergyTable {
    /// `exact_k[k-1]` = minimum energy with **exactly** `k` intervals
    /// (`+∞` when infeasible). Needed by the Theorem 21 multi-application
    /// convolution.
    pub exact_k: Vec<f64>,
    /// Minimum over all `k ≤ qmax`.
    pub best: f64,
    n: usize,
    stride: usize,
    parent: Vec<u32>,
    mode_of: Vec<u32>,
}

/// Run the energy-under-period DP into `scratch` (Theorem 18 recurrence;
/// each interval independently selects its cheapest feasible mode).
///
/// Under the overlap model the cycle-time is an exact three-way max, so for
/// a fixed prefix length the feasible splits partition into ≤ `modes`
/// contiguous *runs* of constant interval cost whose boundaries move
/// monotonically — the run-decomposed core scans them with one monotone
/// deque per mode in `O(n·q·modes)` instead of `O(n²·q)`, keyed on the
/// exact `exact[k-1][j] + cost1` float values the textbook scan compares
/// (so even ULP-level ties select the same split). The additive no-overlap
/// model has no such structure (the incoming edge breaks run contiguity);
/// it uses the windowed quadratic scan with the incremental mode frontier.
pub fn energy_dp(table: &IntervalCostTable, t_bound: f64, qmax: usize, scratch: &mut DpScratch) {
    if table.is_overlap() {
        energy_dp_runs(table, t_bound, qmax, scratch);
    } else {
        energy_dp_window(table, t_bound, qmax, scratch);
    }
}

/// Run-decomposed energy core (overlap model only; see [`energy_dp`]).
fn energy_dp_runs(table: &IntervalCostTable, t_bound: f64, qmax: usize, scratch: &mut DpScratch) {
    let n = table.n();
    let modes = table.modes();
    let kcap = qmax.min(n).max(1);
    scratch.ensure(n, kcap, qmax, true);
    scratch.fill_mode_bounds(table, t_bound);
    let stride = n + 1;
    // k = 1: the single interval [0, i-1]; its cheapest mode is the first
    // one whose boundary reaches 0 (boundaries descend over modes).
    let row0_ok = n == 0 || num::le(table.in_edge[0], t_bound);
    for i in 1..=n {
        let mut e = f64::INFINITY;
        let mut msel = NONE_U32;
        if row0_ok && num::le(table.out_edge[i - 1], t_bound) {
            for m in 0..modes {
                if scratch.mode_bound[i * modes + m] == 0 {
                    e = table.mode_energy[m];
                    msel = m as u32;
                    break;
                }
            }
        }
        scratch.exact[stride + i] = e;
        scratch.parent[stride + i] = 0;
        scratch.mode_of[stride + i] = msel;
    }
    scratch.run_key.clear();
    scratch.run_key.resize(modes * n, 0.0);
    scratch.run_idx.clear();
    scratch.run_idx.resize(modes * n, 0);
    scratch.run_head.clear();
    scratch.run_head.resize(modes, 0);
    scratch.run_tail.clear();
    scratch.run_tail.resize(modes, 0);
    scratch.run_entrant.clear();
    scratch.run_entrant.resize(modes, 0);
    let mode_bound = &scratch.mode_bound;
    let run_key = &mut scratch.run_key;
    let run_idx = &mut scratch.run_idx;
    let run_head = &mut scratch.run_head;
    let run_tail = &mut scratch.run_tail;
    let run_entrant = &mut scratch.run_entrant;
    let in_edge = &table.in_edge;
    let out_edge = &table.out_edge;
    let mode_energy = &table.mode_energy;
    for k in 2..=kcap {
        let (lo_rows, hi_rows) = scratch.exact.split_at_mut(k * stride);
        let prev = &lo_rows[(k - 1) * stride..];
        let cur = &mut hi_rows[..stride];
        let parent_row = &mut scratch.parent[k * stride..(k + 1) * stride];
        let mode_row = &mut scratch.mode_of[k * stride..(k + 1) * stride];
        run_head.fill(0);
        run_tail.fill(0);
        run_entrant.fill((k - 1) as u32);
        for i in k..=n {
            let col = &mode_bound[i * modes..(i + 1) * modes];
            // Stage 1: migrate entrants. A split enters run 0 when it first
            // becomes a candidate (j = i-1) and degrades into run m when
            // boundary b_{m-1} passes it (its interval grew too heavy for
            // mode m-1). Each split enters each deque at most once per row,
            // so the flat deques only ever advance. Stage 2: expire splits
            // below the run's left boundary.
            for m in 0..modes {
                let right = if m == 0 { i } else { col[m - 1] as usize };
                let e_m = run_entrant[m] as usize;
                let base = m * n;
                if e_m < right {
                    let mut tail = run_tail[m] as usize;
                    let head = run_head[m] as usize;
                    let c_m = mode_energy[m];
                    for j in e_m..right {
                        if prev[j].is_finite() && num::le(in_edge[j], t_bound) {
                            let key = prev[j] + c_m;
                            while tail > head && run_key[base + tail - 1] > key {
                                tail -= 1;
                            }
                            run_key[base + tail] = key;
                            run_idx[base + tail] = j as u32;
                            tail += 1;
                        }
                    }
                    run_tail[m] = tail as u32;
                    run_entrant[m] = right as u32;
                }
                let left = (col[m] as usize).max(k - 1);
                let tail = run_tail[m] as usize;
                let mut head = run_head[m] as usize;
                while head < tail && (run_idx[base + head] as usize) < left {
                    head += 1;
                }
                run_head[m] = head as u32;
            }
            // Stage 3: evaluate the column — run fronts in ascending-split
            // order (descending mode), strict improvement, exactly the
            // textbook scan's selection.
            let mut best = f64::INFINITY;
            let mut arg = NONE_U32;
            let mut bm = NONE_U32;
            if num::le(out_edge[i - 1], t_bound) {
                for m in (0..modes).rev() {
                    let head = run_head[m] as usize;
                    if head < run_tail[m] as usize {
                        let key = run_key[m * n + head];
                        if key < best {
                            best = key;
                            arg = run_idx[m * n + head];
                            bm = m as u32;
                        }
                    }
                }
            }
            cur[i] = best;
            parent_row[i] = arg;
            mode_row[i] = bm;
        }
    }
    scratch.exact_k.clear();
    for k in 1..=kcap {
        scratch.exact_k.push(scratch.exact[k * stride + n]);
    }
    scratch.best_val = scratch.exact_k.iter().copied().fold(f64::INFINITY, num::fmin);
}

/// Windowed quadratic energy core (both models; the no-overlap path).
fn energy_dp_window(table: &IntervalCostTable, t_bound: f64, qmax: usize, scratch: &mut DpScratch) {
    let n = table.n();
    let kcap = qmax.min(n).max(1);
    scratch.ensure(n, kcap, qmax, true);
    scratch.fill_window(table, t_bound);
    scratch.refresh_cost1(table, t_bound);
    let stride = n + 1;
    for i in 1..=n {
        let (e, m) = if scratch.jw[i] == 0 {
            (scratch.cost1[i - 1], scratch.mode1[i - 1])
        } else {
            (f64::INFINITY, NONE_U32)
        };
        scratch.exact[stride + i] = e;
        scratch.parent[stride + i] = 0;
        scratch.mode_of[stride + i] = m;
    }
    for k in 2..=kcap {
        let (lo_rows, hi_rows) = scratch.exact.split_at_mut(k * stride);
        let prev = &lo_rows[(k - 1) * stride..];
        let cur = &mut hi_rows[..stride];
        let parent_row = &mut scratch.parent[k * stride..(k + 1) * stride];
        let mode_row = &mut scratch.mode_of[k * stride..(k + 1) * stride];
        for i in k..=n {
            let hi = i - 1;
            let jlo = (scratch.jw[i] as usize).max(k - 1);
            let mut best = f64::INFINITY;
            let mut arg = NONE_U32;
            let mut bm = NONE_U32;
            for j in jlo..i {
                let c1 = scratch.cost1[j * n + hi];
                if prev[j].is_finite() && c1.is_finite() {
                    let cand = prev[j] + c1;
                    if cand < best {
                        best = cand;
                        arg = j as u32;
                        bm = scratch.mode1[j * n + hi];
                    }
                }
            }
            cur[i] = best;
            parent_row[i] = arg;
            mode_row[i] = bm;
        }
    }
    scratch.exact_k.clear();
    for k in 1..=kcap {
        scratch.exact_k.push(scratch.exact[k * stride + n]);
    }
    scratch.best_val = scratch.exact_k.iter().copied().fold(f64::INFINITY, num::fmin);
}

/// Minimum energy of `app` subject to every interval cycle-time ≤ `t_bound`
/// (Theorem 18 DP). Each interval independently selects its cheapest
/// feasible mode.
pub fn energy_under_period(ctx: &HomCtx<'_>, t_bound: f64, qmax: usize) -> EnergyTable {
    // The run-decomposed overlap core never reads the O(n²·modes) cycle
    // matrix: skip building it for this one-shot.
    let table = if matches!(ctx.model, CommModel::Overlap) {
        IntervalCostTable::build_lean(ctx)
    } else {
        IntervalCostTable::build(ctx)
    };
    energy_under_period_scratch(&table, t_bound, qmax, &mut DpScratch::new())
}

/// [`energy_under_period`] on a prebuilt [`IntervalCostTable`]: identical
/// results, with all cycle-times looked up instead of recomputed.
pub fn energy_under_period_with(
    table: &IntervalCostTable,
    t_bound: f64,
    qmax: usize,
) -> EnergyTable {
    energy_under_period_scratch(table, t_bound, qmax, &mut DpScratch::new())
}

/// [`energy_under_period_with`] on a reusable [`DpScratch`] — the
/// zero-allocation form of a Pareto sweep's per-candidate solves.
pub fn energy_under_period_scratch(
    table: &IntervalCostTable,
    t_bound: f64,
    qmax: usize,
    scratch: &mut DpScratch,
) -> EnergyTable {
    energy_dp(table, t_bound, qmax, scratch);
    scratch.export_energy()
}

impl EnergyTable {
    /// Reconstruct the partition achieving `exact_k[k-1]`; `None` if `+∞`.
    pub fn partition_exact(&self, k: usize) -> Option<Partition> {
        if k == 0 || k > self.exact_k.len() || !self.exact_k[k - 1].is_finite() {
            return None;
        }
        let mut intervals = Vec::with_capacity(k);
        let mut modes = Vec::with_capacity(k);
        let mut i = self.n;
        let mut kk = k;
        while kk > 0 {
            let j = self.parent[kk * self.stride + i] as usize;
            intervals.push((j, i - 1));
            modes.push(self.mode_of[kk * self.stride + i] as usize);
            i = j;
            kk -= 1;
        }
        intervals.reverse();
        modes.reverse();
        Some(Partition { intervals, modes })
    }

    /// Reconstruct the overall best partition; `None` if infeasible.
    pub fn partition_best(&self) -> Option<Partition> {
        let k = (1..=self.exact_k.len())
            .filter(|&k| self.exact_k[k - 1].is_finite())
            .min_by(|&a, &b| {
                self.exact_k[a - 1].partial_cmp(&self.exact_k[b - 1]).expect("finite")
            })?;
        self.partition_exact(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::application::Application;

    fn app() -> Application {
        // App2 of the Section 2 example.
        Application::from_pairs(0.0, &[(2.0, 1.0), (6.0, 1.0), (4.0, 1.0), (2.0, 1.0)])
    }

    #[test]
    fn period_table_single_proc() {
        let a = app();
        let speeds = [8.0];
        let ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::Overlap);
        let t = period_table(&ctx, 1);
        // One interval: max(0/1, 14/8, 1/1) = 1.75.
        assert!((t.best[0] - 1.75).abs() < 1e-12);
        let part = t.partition(1, 0).unwrap();
        assert_eq!(part.intervals, vec![(0, 3)]);
    }

    #[test]
    fn period_table_improves_with_processors() {
        let a = app();
        let speeds = [8.0];
        let ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::Overlap);
        let t = period_table(&ctx, 4);
        // Non-increasing in q.
        for w in t.best.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        // Two intervals split (0,1)/(2,3): max(8/8, 1) then max(1, 6/8, 1) = 1.
        assert!((t.best[1] - 1.0).abs() < 1e-12);
        let part = t.partition(2, 0).unwrap();
        assert_eq!(part.intervals.len(), 2);
        assert_eq!(part.intervals[0].0, 0);
        assert_eq!(part.intervals.last().unwrap().1, 3);
    }

    #[test]
    fn period_table_no_overlap_is_worse() {
        let a = app();
        let speeds = [8.0];
        let ov = HomCtx::new(&a, &speeds, 1.0, CommModel::Overlap);
        let no = HomCtx::new(&a, &speeds, 1.0, CommModel::NoOverlap);
        for q in 1..=4 {
            let tov = period_table(&ov, q).best[q - 1];
            let tno = period_table(&no, q).best[q - 1];
            assert!(tov <= tno + 1e-12);
        }
    }

    #[test]
    fn period_best_only_matches_full_table() {
        let a = app();
        let speeds = [1.0, 8.0];
        for model in CommModel::ALL {
            let ctx = HomCtx::new(&a, &speeds, 2.0, model);
            for q in 1..=5 {
                let full = period_table(&ctx, q);
                let lean = period_best_only(&ctx, q);
                assert_eq!(full.best.len(), lean.len());
                for (x, y) in full.best.iter().zip(&lean) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn nan_contaminated_input_yields_structured_error() {
        // Regression: NaN-contaminated inputs used to make `partition`
        // panic ("period table is consistent"); they must now surface a
        // structured ModelError (or a coherent partition where the max
        // combine absorbs the NaN) — never a panic.
        // NaN speeds under the additive no-overlap model contaminate every
        // cycle-time: best[q-1] goes NaN/∞ and reconstruction must Err.
        let a = app();
        let bad_speeds = [f64::NAN];
        let ctx = HomCtx::new(&a, &bad_speeds, 1.0, CommModel::NoOverlap);
        let t = period_table(&ctx, 2);
        let err = t.partition(2, 0).unwrap_err();
        assert!(matches!(err, ModelError::NonFiniteData { .. }), "{err:?}");
        let err = t.partition(1, 0).unwrap_err();
        assert!(matches!(err, ModelError::NonFiniteData { .. }), "{err:?}");
        // NaN stage data (a poisoned edge weight) under the additive
        // no-overlap model: reconstruction must not panic whatever branch
        // the contaminated comparisons took.
        let mut a = app();
        a.stages[1].output = f64::NAN;
        let speeds = [8.0];
        for model in CommModel::ALL {
            let ctx = HomCtx::new(&a, &speeds, 1.0, model);
            for q in 1..=4 {
                let t = period_table(&ctx, q);
                if let Ok(part) = t.partition(q, 0) {
                    // Whatever survived must still be a chain cover.
                    assert_eq!(part.intervals[0].0, 0);
                    assert_eq!(part.intervals.last().unwrap().1, a.n() - 1);
                }
            }
        }
        // NaN bandwidth poisons every communication term.
        let ctx = HomCtx::new(&a, &speeds, f64::NAN, CommModel::NoOverlap);
        let t = period_table(&ctx, 3);
        for q in 1..=3 {
            let _ = t.partition(q, 0); // must not panic
        }
    }

    #[test]
    fn latency_under_loose_period_is_single_interval() {
        let a = app();
        let speeds = [8.0];
        let ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::Overlap);
        let t = latency_under_period(&ctx, 100.0, 4);
        // Single interval minimizes latency: 0 + 14/8 + 1 = 2.75.
        assert!((t.best[3] - 2.75).abs() < 1e-12);
        let part = t.partition(4, 0).unwrap();
        assert_eq!(part.intervals, vec![(0, 3)]);
    }

    #[test]
    fn latency_under_tight_period_needs_splits() {
        let a = app();
        let speeds = [8.0];
        let ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::Overlap);
        // Period bound 1 forces ≥ 2 intervals (14/8 > 1).
        let t = latency_under_period(&ctx, 1.0, 4);
        assert!(t.best[0].is_infinite());
        assert!(t.best[1].is_finite());
        // Split (0,1)/(2,3): latency 0 + 8/8 + 1/1 + 6/8 + 1/1 = 3.75.
        assert!((t.best[1] - 3.75).abs() < 1e-12);
        let part = t.partition(2, 0).unwrap();
        assert_eq!(part.intervals, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn latency_table_infeasible_when_period_too_small() {
        let a = app();
        let speeds = [8.0];
        let ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::Overlap);
        // Outgoing edge of stage 3 costs 1; period 0.5 unachievable.
        let t = latency_under_period(&ctx, 0.5, 4);
        assert!(t.best.iter().all(|l| l.is_infinite()));
        assert!(t.partition(4, 0).is_none());
    }

    #[test]
    fn dual_period_under_latency() {
        let a = app();
        let speeds = [8.0];
        let ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::Overlap);
        // Unbounded latency: dual returns the unconstrained optimum period.
        let (t, _) = min_period_under_latency(&ctx, f64::INFINITY, 4).unwrap();
        let unconstrained = period_table(&ctx, 4).best[3];
        assert!((t - unconstrained).abs() < 1e-12);
        // Latency bound 2.75 forces the single interval: period 1.75.
        let (t, part) = min_period_under_latency(&ctx, 2.75, 4).unwrap();
        assert!((t - 1.75).abs() < 1e-12);
        assert_eq!(part.intervals, vec![(0, 3)]);
        // Impossible latency bound.
        assert!(min_period_under_latency(&ctx, 0.1, 4).is_none());
    }

    #[test]
    fn energy_picks_slowest_feasible_modes() {
        let a = app();
        let speeds = [1.0, 6.0, 8.0];
        let ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::Overlap);
        // Period bound 14: one processor at speed 1 suffices (14/1 = 14).
        let t = energy_under_period(&ctx, 14.0, 3);
        assert!((t.exact_k[0] - 1.0).abs() < 1e-12);
        assert!((t.best - 1.0).abs() < 1e-12);
        let part = t.partition_best().unwrap();
        assert_eq!(part.modes, vec![0]);
        // Period bound 2: single proc needs speed ≥ 7 → mode 2 (64); two
        // procs can run at 6 (36 + 36 = 72) or mixed; best single = 64.
        let t = energy_under_period(&ctx, 2.0, 3);
        assert!((t.exact_k[0] - 64.0).abs() < 1e-12);
        assert!(t.best <= 64.0);
    }

    #[test]
    fn energy_exact_k_infeasible_marked() {
        let a = app();
        let speeds = [1.0];
        let ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::Overlap);
        // Period 1 with speed 1: stage 1 alone costs 2/1 = 2 > 1 → infeasible
        // at any k.
        let t = energy_under_period(&ctx, 1.0, 4);
        assert!(t.exact_k.iter().all(|e| e.is_infinite()));
        assert!(t.partition_best().is_none());
        assert!(t.partition_exact(2).is_none());
    }

    #[test]
    fn energy_static_cost_discourages_splitting() {
        let a = app();
        let speeds = [1.0, 2.0, 4.0];
        let mut ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::Overlap);
        ctx.e_stat = 100.0;
        let with_static = energy_under_period(&ctx, 4.0, 4);
        // Splitting pays +100 per extra processor; best should use 1 proc.
        let best_k = (1..=4)
            .min_by(|&x, &y| {
                with_static.exact_k[x - 1]
                    .partial_cmp(&with_static.exact_k[y - 1])
                    .unwrap()
            })
            .unwrap();
        assert_eq!(best_k, 1);
    }

    #[test]
    fn candidate_set_contains_optimum() {
        let a = app();
        let speeds = [2.0, 8.0];
        let ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::NoOverlap);
        let cands = ctx.period_candidates();
        for q in 1..=3 {
            let t = period_table(&ctx, q).best[q - 1];
            assert!(
                cands.iter().any(|c| (c - t).abs() < 1e-9),
                "optimum {t} missing from candidates"
            );
        }
    }

    #[test]
    fn cost_table_matches_ctx() {
        let a = app();
        let speeds = [1.0, 6.0, 8.0];
        for model in CommModel::ALL {
            let mut ctx = HomCtx::new(&a, &speeds, 2.0, model);
            ctx.e_stat = 1.5;
            let table = IntervalCostTable::build(&ctx);
            for lo in 0..a.n() {
                for hi in lo..a.n() {
                    for (m, &s) in speeds.iter().enumerate() {
                        assert_eq!(table.cycle(lo, hi, m), ctx.cycle(lo, hi, s));
                    }
                    assert_eq!(table.top_cycle(lo, hi), ctx.cycle(lo, hi, 8.0));
                    assert_eq!(table.latency_term_top(lo, hi), ctx.latency_term(lo, hi, 8.0));
                    assert_eq!(
                        table.top_compute(lo, hi),
                        a.interval_work(lo, hi) / 8.0,
                        "compute lower bound [{lo},{hi}]"
                    );
                    for tb in [0.1, 0.5, 1.0, 2.0, 7.0, 100.0] {
                        assert_eq!(
                            table.cheapest_feasible_mode(lo, hi, tb),
                            ctx.cheapest_feasible_mode(lo, hi, tb),
                            "[{lo},{hi}] under {tb}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn binary_search_mode_matches_linear_scan() {
        let a = app();
        let speeds = [1.0, 2.0, 3.0, 6.0, 8.0];
        let ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::NoOverlap);
        for lo in 0..a.n() {
            for hi in lo..a.n() {
                for tb_tenths in 1..200 {
                    let tb = tb_tenths as f64 / 10.0;
                    let linear = speeds
                        .iter()
                        .enumerate()
                        .find(|&(_, &s)| num::le(ctx.cycle(lo, hi, s), tb))
                        .map(|(m, &s)| (m, ctx.e_stat + ctx.energy.dynamic(s)));
                    assert_eq!(ctx.cheapest_feasible_mode(lo, hi, tb), linear);
                }
            }
        }
    }

    #[test]
    fn mode_frontier_walk_matches_binary_search_in_any_order() {
        // One scratch reused across ascending, descending and zig-zag
        // threshold orders must produce the same cost1 values as fresh
        // partition-point searches (the incremental-table contract).
        let a = app();
        let speeds = [1.0, 2.0, 3.0, 6.0, 8.0];
        let ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::NoOverlap);
        let table = IntervalCostTable::build(&ctx);
        let mut scratch = DpScratch::new();
        let order = [5.0, 0.5, 14.0, 1.0, 2.0, 2.0, 13.9, 0.1, 7.0];
        for &tb in &order {
            let fast = energy_under_period_scratch(&table, tb, 4, &mut scratch);
            let fresh = energy_under_period_with(&table, tb, 4);
            assert_eq!(fast.exact_k, fresh.exact_k, "threshold {tb}");
            assert_eq!(fast.partition_best(), fresh.partition_best(), "threshold {tb}");
        }
    }

    #[test]
    fn table_dp_variants_match_direct() {
        let a = app();
        let speeds = [1.0, 6.0, 8.0];
        for model in CommModel::ALL {
            let mut ctx = HomCtx::new(&a, &speeds, 1.0, model);
            ctx.e_stat = 0.5;
            let table = IntervalCostTable::build(&ctx);
            assert_eq!(table.candidates(), ctx.period_candidates());
            for tb in [0.5, 1.0, 2.0, 4.0, 14.0] {
                for q in 1..=4 {
                    let e_direct = energy_under_period(&ctx, tb, q);
                    let e_table = energy_under_period_with(&table, tb, q);
                    assert_eq!(e_direct.exact_k, e_table.exact_k);
                    assert_eq!(e_direct.best, e_table.best);
                    assert_eq!(e_direct.partition_best(), e_table.partition_best());
                    let l_direct = latency_under_period(&ctx, tb, q);
                    let l_table = latency_under_period_with(&table, tb, q);
                    assert_eq!(l_direct.best, l_table.best);
                    assert_eq!(l_direct.partition(q, 2), l_table.partition(q, 2));
                    // Best-only probe agrees bitwise with the full table.
                    let probe = latency_best_under_period_with(
                        &table,
                        tb,
                        q,
                        &mut DpScratch::new(),
                    );
                    assert_eq!(probe.to_bits(), l_table.best[q - 1].to_bits());
                }
            }
        }
    }

    #[test]
    fn partitions_cover_the_chain() {
        let a = app();
        let speeds = [1.0, 8.0];
        let ctx = HomCtx::new(&a, &speeds, 1.0, CommModel::Overlap);
        for q in 1..=4 {
            let t = period_table(&ctx, q);
            let part = t.partition(q, 1).unwrap();
            assert_eq!(part.intervals[0].0, 0);
            assert_eq!(part.intervals.last().unwrap().1, a.n() - 1);
            for w in part.intervals.windows(2) {
                assert_eq!(w[1].0, w[0].1 + 1);
            }
        }
    }
}
