//! Theorem 3 — period minimization, interval mappings, fully homogeneous
//! platforms.
//!
//! The single-application subproblem (minimum period of one chain over `q`
//! identical processors) is the dynamic program of [`crate::dp::period_table`];
//! the paper's **Algorithm 2** then distributes the `p` processors across
//! the `A` concurrent applications greedily — provably optimally, because
//! each application's optimal period is non-increasing in its processor
//! count.

use crate::alloc::allocate_processors;
use crate::dp::{period_table_with, DpScratch, HomCtx, IntervalCostTable, PeriodTable};
use crate::solution::Solution;
use cpo_model::num;
use cpo_model::prelude::*;

/// Assemble a global mapping from per-application partitions by assigning
/// distinct concrete processors in index order (valid on fully homogeneous
/// platforms where processors are interchangeable).
pub(crate) fn mapping_from_partitions(
    partitions: &[crate::dp::Partition],
) -> Mapping {
    let mut mapping = Mapping::new();
    let mut next_proc = 0usize;
    for (a, part) in partitions.iter().enumerate() {
        for (iv, &(first, last)) in part.intervals.iter().enumerate() {
            mapping.push(Interval::new(a, first, last), next_proc, part.modes[iv]);
            next_proc += 1;
        }
    }
    mapping
}

/// Minimize the global weighted period `max_a W_a·T_a` with an interval
/// mapping on a fully homogeneous platform (Theorem 3, Algorithm 2).
/// Both communication models. Returns `None` when the platform is not fully
/// homogeneous or `p < A`.
pub fn minimize_global_period(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
) -> Option<Solution> {
    if platform.class() != PlatformClass::FullyHomogeneous {
        return None;
    }
    let p = platform.p();
    let a_count = apps.a();
    if p < a_count {
        return None;
    }
    let speeds = platform.procs[0].speeds().to_vec();

    // Per-application period tables, computed once up to the maximum number
    // of processors any application could receive, sharing one DP scratch.
    let qmax = p - a_count + 1;
    let mut scratch = DpScratch::new();
    let tables: Vec<PeriodTable> = apps
        .apps
        .iter()
        .enumerate()
        .map(|(a, app)| {
            let comm = super::uniform_comm(platform, a)?;
            let ctx = HomCtx::with_comm(app, &speeds, comm, model);
            Some(period_table_with(&IntervalCostTable::build(&ctx), qmax, &mut scratch))
        })
        .collect::<Option<Vec<_>>>()?;
    let weights: Vec<f64> = apps.apps.iter().map(|a| a.weight).collect();

    let alloc = allocate_processors(a_count, p, &weights, |a, q| tables[a].best[q - 1])?;

    let top = speeds.len() - 1;
    let partitions: Vec<_> = (0..a_count)
        .map(|a| tables[a].partition(alloc.procs[a], top).ok())
        .collect::<Option<Vec<_>>>()?;
    let mapping = mapping_from_partitions(&partitions);
    debug_assert!(mapping.validate(apps, platform).is_ok());
    let achieved = Evaluator::new(apps, platform).period(&mapping, model);
    debug_assert!(num::le(achieved, alloc.objective));
    Some(Solution::new(mapping, achieved))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::application::Application;

    fn two_apps() -> AppSet {
        AppSet::new(vec![
            Application::from_pairs(0.0, &[(4.0, 0.0), (4.0, 0.0), (4.0, 0.0)]),
            Application::from_pairs(0.0, &[(6.0, 0.0), (6.0, 0.0)]),
        ])
        .unwrap()
    }

    #[test]
    fn allocates_where_it_hurts() {
        let apps = two_apps();
        // 4 identical unit-speed processors, no communication.
        let pf = Platform::fully_homogeneous(4, vec![1.0], 1.0).unwrap();
        let sol = minimize_global_period(&apps, &pf, CommModel::Overlap).unwrap();
        // App0 (total 12) with 2 procs → 8 is wrong: optimal splits are
        // app0: [4,4|4] = 8 with 2 procs or [4|4|4] = 4 with 3; app1:
        // [6|6] = 6 with 2, [12] with 1. Best distribution of 4:
        // (2,2) → max(8, 6) = 8; (3,1) → max(4, 12) = 12. So 8.
        assert!((sol.objective - 8.0).abs() < 1e-9);
        sol.mapping.validate(&apps, &pf).unwrap();
    }

    #[test]
    fn more_processors_never_hurt() {
        let apps = two_apps();
        let mut last = f64::INFINITY;
        for p in 2..=6 {
            let pf = Platform::fully_homogeneous(p, vec![1.0], 1.0).unwrap();
            let sol = minimize_global_period(&apps, &pf, CommModel::Overlap).unwrap();
            assert!(sol.objective <= last + 1e-9, "p={p}");
            last = sol.objective;
        }
        // With 5 procs: (3,2) → max(4, 6) = 6.
        let pf = Platform::fully_homogeneous(5, vec![1.0], 1.0).unwrap();
        let sol = minimize_global_period(&apps, &pf, CommModel::Overlap).unwrap();
        assert!((sol.objective - 6.0).abs() < 1e-9);
    }

    #[test]
    fn respects_weights() {
        let mut apps = two_apps();
        apps.apps[1].weight = 10.0;
        let pf = Platform::fully_homogeneous(4, vec![1.0], 1.0).unwrap();
        let sol = minimize_global_period(&apps, &pf, CommModel::Overlap).unwrap();
        // (1,3) is impossible for app1 (2 stages → ≤ 2 procs useful);
        // app1 at 2 procs has T=6 (weighted 60); app0 with 2 procs T=8.
        // Best: app1 gets 2, app0 gets 2 → max(8, 60) = 60.
        assert!((sol.objective - 60.0).abs() < 1e-9);
    }

    #[test]
    fn communication_bound_periods() {
        // A chain with a huge internal edge: splitting there is bad.
        let apps = AppSet::single(Application::from_pairs(1.0, &[(4.0, 100.0), (4.0, 1.0)]));
        let pf = Platform::fully_homogeneous(2, vec![2.0], 1.0).unwrap();
        let sol = minimize_global_period(&apps, &pf, CommModel::Overlap).unwrap();
        // One interval: max(1, 8/2, 1) = 4. Split: max(1, 2, 100) = 100.
        assert!((sol.objective - 4.0).abs() < 1e-9);
        assert_eq!(sol.mapping.enrolled(), 1);
    }

    #[test]
    fn rejects_non_fully_homogeneous() {
        let apps = two_apps();
        let pf = Platform::comm_homogeneous(
            vec![
                cpo_model::platform::Processor::uni_modal(1.0).unwrap(),
                cpo_model::platform::Processor::uni_modal(2.0).unwrap(),
            ],
            1.0,
        )
        .unwrap();
        assert!(minimize_global_period(&apps, &pf, CommModel::Overlap).is_none());
    }

    #[test]
    fn rejects_p_less_than_a() {
        let apps = two_apps();
        let pf = Platform::fully_homogeneous(1, vec![1.0], 1.0).unwrap();
        assert!(minimize_global_period(&apps, &pf, CommModel::Overlap).is_none());
    }

    #[test]
    fn section2_like_homogeneous_variant() {
        // Homogenized Section 2: three procs with speed set {3, 6} (the
        // multi-modal set is fine — period minimization uses the top mode).
        let (apps, _) = cpo_model::generator::section2_example();
        let pf = Platform::fully_homogeneous(3, vec![3.0, 6.0], 1.0).unwrap();
        let sol = minimize_global_period(&apps, &pf, CommModel::Overlap).unwrap();
        sol.mapping.validate(&apps, &pf).unwrap();
        // All enrolled processors run the top mode.
        for (proc, mode) in sol.mapping.enrolled_procs() {
            assert_eq!(mode, pf.procs[proc].modes() - 1);
        }
        assert!(sol.objective > 0.0);
    }
}
