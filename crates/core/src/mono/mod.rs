//! Mono-criterion solvers (Section 4 of the paper): period or latency
//! minimization. Energy is never a criterion on its own (Section 3.5), so
//! these solvers run every enrolled processor at its highest mode.

pub mod latency;
pub mod period_interval;
pub mod period_one_to_one;

use cpo_model::platform::{Links, Platform};
use cpo_model::topology::UniformComm;

/// Uniform communication structure seen by application `app`: a single
/// bandwidth plus the inter-processor transfer overhead (zero on
/// dedicated links, the stage-traversal latency on a multistage fabric).
/// `None` on fully heterogeneous links.
pub(crate) fn uniform_comm(platform: &Platform, app: usize) -> Option<UniformComm> {
    platform.uniform_comm(app)
}

/// Check the platform qualifies as communication homogeneous for the
/// Theorem 1 / 12 greedy algorithms: uniform or per-application dedicated
/// links, or any multistage fabric (whose links are identical by
/// construction).
pub(crate) fn links_are_homogeneous(platform: &Platform) -> bool {
    platform.is_multistage() || !matches!(platform.links, Links::Heterogeneous { .. })
}
