//! Mono-criterion solvers (Section 4 of the paper): period or latency
//! minimization. Energy is never a criterion on its own (Section 3.5), so
//! these solvers run every enrolled processor at its highest mode.

pub mod latency;
pub mod period_interval;
pub mod period_one_to_one;

use cpo_model::platform::{Links, Platform};

/// Bandwidth seen by application `app` on a link-homogeneous platform
/// (uniform or per-application links). `None` on fully heterogeneous links.
pub(crate) fn app_bandwidth(platform: &Platform, app: usize) -> Option<f64> {
    match &platform.links {
        Links::Uniform(b) => Some(*b),
        Links::PerApp(bs) => bs.get(app).copied(),
        Links::Heterogeneous { .. } => None,
    }
}

/// Check the platform qualifies as communication homogeneous for the
/// Theorem 1 / 12 greedy algorithms (uniform or per-application links).
pub(crate) fn links_are_homogeneous(platform: &Platform) -> bool {
    !matches!(platform.links, Links::Heterogeneous { .. })
}
