//! Theorems 8 and 12 — latency minimization.
//!
//! * **One-to-one, fully homogeneous (Theorem 8):** all one-to-one mappings
//!   are equivalent (identical processors, identical links), so any
//!   canonical assignment is optimal.
//! * **Interval, communication homogeneous (Theorem 12):** with one
//!   application, mapping the whole chain onto the fastest processor is
//!   optimal (it removes all internal communications and maximizes speed);
//!   with several applications, keep the `A` fastest processors and assign
//!   applications to them with the Theorem 1-style greedy over the sorted
//!   candidate latency set `L = {W_a · (δ_a^0/b_a + Σw/s_u + δ_a^n/b_a)}`.
//!
//! Latency is identical under both communication models (Eq. 5).

use crate::solution::Solution;
use cpo_model::num;
use cpo_model::prelude::*;

/// Theorem 8: one-to-one latency minimization on a fully homogeneous
/// platform. All mappings are equivalent; returns the canonical one
/// (stages in order on processors `0, 1, …`). `None` if `p < N` or the
/// platform is not fully homogeneous.
pub fn min_latency_one_to_one_fully_hom(apps: &AppSet, platform: &Platform) -> Option<Solution> {
    if platform.class() != PlatformClass::FullyHomogeneous {
        return None;
    }
    if platform.p() < apps.total_stages() {
        return None;
    }
    let mut mapping = Mapping::new();
    let mut next = 0usize;
    for (a, app) in apps.apps.iter().enumerate() {
        for k in 0..app.n() {
            let top = platform.procs[next].modes() - 1;
            mapping.push(Interval::new(a, k, k), next, top);
            next += 1;
        }
    }
    debug_assert!(mapping.validate(apps, platform).is_ok());
    let objective = Evaluator::new(apps, platform).latency(&mapping);
    Some(Solution::new(mapping, objective))
}

/// Weighted whole-chain latency of application `a` on a processor of speed
/// `s` (communication homogeneous platform).
fn whole_chain_latency(apps: &AppSet, platform: &Platform, a: usize, s: f64) -> Option<f64> {
    let app = &apps.apps[a];
    // A whole chain on one processor only crosses the `P_in` and `P_out`
    // front-end links; no inter-processor edge exists, so no multistage
    // traversal overhead applies.
    let comm = super::uniform_comm(platform, a)?;
    Some(
        app.weight
            * (comm.io_time(app.input) + app.total_work() / s + comm.io_time(app.result_size())),
    )
}

/// Theorem 12: interval latency minimization on a communication homogeneous
/// platform. Maps each application entirely onto one of the `A` fastest
/// processors, matched by binary search + greedy. `None` if `p < A` or
/// links are heterogeneous (NP-hard then, Theorem 13).
pub fn min_latency_interval_comm_hom(apps: &AppSet, platform: &Platform) -> Option<Solution> {
    if !super::links_are_homogeneous(platform) {
        return None;
    }
    let a_count = apps.a();
    if platform.p() < a_count {
        return None;
    }
    // The A fastest processors, ascending max speed.
    let by_speed = platform.procs_by_max_speed();
    let fastest: Vec<usize> = by_speed[by_speed.len() - a_count..].to_vec();

    // Candidate latencies.
    let mut candidates = Vec::with_capacity(a_count * fastest.len());
    for a in 0..a_count {
        for &u in &fastest {
            candidates.push(whole_chain_latency(apps, platform, a, platform.procs[u].max_speed())?);
        }
    }
    let candidates = num::sorted_candidates(candidates);

    // Greedy: processors from slowest to fastest pick any free feasible
    // app. The probe buffers are hoisted out of the binary search and
    // reused across every probe (flat-arena idiom, no per-probe allocs).
    let mut app_of_proc = vec![usize::MAX; a_count];
    let mut free = vec![true; a_count];
    let try_assign = |l: f64, app_of_proc: &mut [usize], free: &mut [bool]| -> bool {
        app_of_proc.fill(usize::MAX);
        free.fill(true);
        for (i, &u) in fastest.iter().enumerate() {
            let s = platform.procs[u].max_speed();
            let Some(pick) = (0..a_count).find(|&a| {
                free[a]
                    && whole_chain_latency(apps, platform, a, s)
                        .map(|la| num::le(la, l))
                        .unwrap_or(false)
            }) else {
                return false;
            };
            free[pick] = false;
            app_of_proc[i] = pick;
        }
        true
    };

    let mut lo = 0usize;
    let mut hi = candidates.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if try_assign(candidates[mid], &mut app_of_proc, &mut free) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    if lo == candidates.len() {
        return None;
    }
    assert!(
        try_assign(candidates[lo], &mut app_of_proc, &mut free),
        "probe succeeded"
    );
    let assignment = app_of_proc;

    let mut mapping = Mapping::new();
    for (i, &u) in fastest.iter().enumerate() {
        let a = assignment[i];
        let top = platform.procs[u].modes() - 1;
        mapping.push(Interval::new(a, 0, apps.apps[a].n() - 1), u, top);
    }
    debug_assert!(mapping.validate(apps, platform).is_ok());
    let achieved = Evaluator::new(apps, platform).latency(&mapping);
    Some(Solution::new(mapping, achieved))
}

/// Single-application one-to-one latency minimization on a communication
/// homogeneous platform — the polynomial case of reference [5] that
/// Theorem 9 contrasts against (it turns NP-hard only with *several*
/// concurrent applications).
///
/// On such platforms the communication part of Eq. (5) is a constant
/// (`δ^0/b + Σ_k δ^k/b`), so minimizing the latency is minimizing
/// `Σ_k w_k / s_{al(k)}` over injective stage→processor assignments; by the
/// rearrangement inequality the optimum pairs the heaviest stages with the
/// fastest processors. `O(N log N + p log p)`.
pub fn min_latency_one_to_one_single_app(
    apps: &AppSet,
    platform: &Platform,
) -> Option<Solution> {
    if apps.a() != 1 || !super::links_are_homogeneous(platform) {
        return None;
    }
    let app = &apps.apps[0];
    let n = app.n();
    if platform.p() < n {
        return None;
    }
    // Fastest n processors, fastest first.
    let mut by_speed = platform.procs_by_max_speed();
    by_speed.reverse();
    let fastest = &by_speed[..n];
    // Stages sorted by work, heaviest first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&x, &y| {
        app.stages[y].work.partial_cmp(&app.stages[x].work).expect("finite work")
    });
    let mut mapping = Mapping::new();
    for (rank, &k) in order.iter().enumerate() {
        let u = fastest[rank];
        mapping.push(Interval::new(0, k, k), u, platform.procs[u].modes() - 1);
    }
    debug_assert!(mapping.validate(apps, platform).is_ok());
    let objective = Evaluator::new(apps, platform).latency(&mapping);
    Some(Solution::new(mapping, objective))
}

/// Multi-application one-to-one latency **heuristic** for the NP-hard case
/// (Theorem 9): applications are processed in decreasing weighted-work
/// order; each application greedily takes, from the remaining processors,
/// the fastest ones for its heaviest stages. Polynomial; the exact solver
/// ([`crate::exact`]) serves as the reference on small instances.
pub fn latency_one_to_one_heuristic(apps: &AppSet, platform: &Platform) -> Option<Solution> {
    if !super::links_are_homogeneous(platform) {
        return None;
    }
    let n_total = apps.total_stages();
    if platform.p() < n_total {
        return None;
    }
    let mut remaining = platform.procs_by_max_speed(); // ascending
    let mut app_order: Vec<usize> = (0..apps.a()).collect();
    app_order.sort_by(|&x, &y| {
        (apps.apps[y].weight * apps.apps[y].total_work())
            .partial_cmp(&(apps.apps[x].weight * apps.apps[x].total_work()))
            .expect("finite work")
    });
    let mut mapping = Mapping::new();
    for &a in &app_order {
        let app = &apps.apps[a];
        let n = app.n();
        // Take the n fastest remaining processors.
        let take: Vec<usize> = remaining.split_off(remaining.len() - n);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&x, &y| {
            app.stages[y].work.partial_cmp(&app.stages[x].work).expect("finite work")
        });
        // take is ascending; pair heaviest stage with its last element.
        for (rank, &k) in order.iter().enumerate() {
            let u = take[take.len() - 1 - rank];
            mapping.push(Interval::new(a, k, k), u, platform.procs[u].modes() - 1);
        }
    }
    debug_assert!(mapping.validate(apps, platform).is_ok());
    let objective = Evaluator::new(apps, platform).latency(&mapping);
    Some(Solution::new(mapping, objective))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::application::Application;
    use cpo_model::generator::section2_example;
    use cpo_model::platform::Processor;

    #[test]
    fn section2_latency_is_2_75() {
        let (apps, pf) = section2_example();
        let sol = min_latency_interval_comm_hom(&apps, &pf).unwrap();
        // Eq. (2) of the paper: optimal global latency 2.75.
        assert!((sol.objective - 2.75).abs() < 1e-9);
        sol.mapping.validate(&apps, &pf).unwrap();
        // Each application occupies exactly one processor.
        assert_eq!(sol.mapping.enrolled(), 2);
    }

    #[test]
    fn one_to_one_fully_hom() {
        let apps = AppSet::new(vec![
            Application::from_pairs(1.0, &[(2.0, 1.0), (2.0, 1.0)]),
            Application::from_pairs(1.0, &[(3.0, 1.0)]),
        ])
        .unwrap();
        let pf = Platform::fully_homogeneous(3, vec![1.0, 2.0], 1.0).unwrap();
        let sol = min_latency_one_to_one_fully_hom(&apps, &pf).unwrap();
        sol.mapping.validate(&apps, &pf).unwrap();
        assert!(sol.mapping.is_one_to_one());
        // App0: 1/1 + 2/2 + 1/1 + 2/2 + 1/1 = 5; App1: 1 + 1.5 + 1 = 3.5.
        assert!((sol.objective - 5.0).abs() < 1e-9);
        // Too few processors.
        let small = Platform::fully_homogeneous(2, vec![1.0, 2.0], 1.0).unwrap();
        assert!(min_latency_one_to_one_fully_hom(&apps, &small).is_none());
        // Wrong platform class.
        let het = Platform::comm_homogeneous(
            vec![
                Processor::uni_modal(1.0).unwrap(),
                Processor::uni_modal(2.0).unwrap(),
                Processor::uni_modal(3.0).unwrap(),
            ],
            1.0,
        )
        .unwrap();
        assert!(min_latency_one_to_one_fully_hom(&apps, &het).is_none());
    }

    #[test]
    fn greedy_matches_hand_optimum() {
        // Two apps with very different work; two processors with very
        // different speeds. Heavy app must take the fast processor.
        let apps = AppSet::new(vec![
            Application::from_pairs(0.0, &[(100.0, 0.0)]),
            Application::from_pairs(0.0, &[(1.0, 0.0)]),
        ])
        .unwrap();
        let pf = Platform::comm_homogeneous(
            vec![Processor::uni_modal(1.0).unwrap(), Processor::uni_modal(100.0).unwrap()],
            1.0,
        )
        .unwrap();
        let sol = min_latency_interval_comm_hom(&apps, &pf).unwrap();
        // heavy/fast = 1, light/slow = 1 → global 1.
        assert!((sol.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn needs_a_processor_per_application() {
        let apps = AppSet::new(vec![
            Application::from_pairs(0.0, &[(1.0, 0.0)]),
            Application::from_pairs(0.0, &[(1.0, 0.0)]),
        ])
        .unwrap();
        let pf = Platform::comm_homogeneous(vec![Processor::uni_modal(1.0).unwrap()], 1.0).unwrap();
        assert!(min_latency_interval_comm_hom(&apps, &pf).is_none());
    }

    #[test]
    fn weights_flip_the_assignment() {
        // Same work but app1 is 100× more important: it must get the fast
        // processor.
        let apps = AppSet::new(vec![
            Application::named("a0", 0.0, vec![cpo_model::application::Stage::new(10.0, 0.0)], 1.0).unwrap(),
            Application::named("a1", 0.0, vec![cpo_model::application::Stage::new(10.0, 0.0)], 100.0).unwrap(),
        ])
        .unwrap();
        let pf = Platform::comm_homogeneous(
            vec![Processor::uni_modal(1.0).unwrap(), Processor::uni_modal(10.0).unwrap()],
            1.0,
        )
        .unwrap();
        let sol = min_latency_interval_comm_hom(&apps, &pf).unwrap();
        let chain1 = sol.mapping.app_chain(1);
        assert_eq!(chain1[0].proc, 1, "weighted app should use the fast processor");
        // Objective: max(10/1 · 1, 10/10 · 100) = 100.
        assert!((sol.objective - 100.0).abs() < 1e-9);
    }

    #[test]
    fn single_app_rearrangement_is_exact() {
        use crate::exact::{exact_optimize, ExactConfig, SpeedPolicy};
        use cpo_model::generator::{random_apps, random_comm_homogeneous, AppGenConfig, PlatformGenConfig};
        let cfg = AppGenConfig { apps: 1, stages: (2, 4), ..Default::default() };
        for seed in 0..60 {
            let apps = random_apps(&cfg, seed);
            let pf = random_comm_homogeneous(
                &PlatformGenConfig { procs: apps.total_stages() + 2, modes: (1, 3), ..Default::default() },
                seed + 100,
            );
            let fast = min_latency_one_to_one_single_app(&apps, &pf).unwrap();
            let brute = exact_optimize(
                &apps,
                &pf,
                ExactConfig {
                    kind: crate::MappingKind::OneToOne,
                    model: CommModel::Overlap,
                    speed: SpeedPolicy::MaxOnly,
                },
                crate::Criterion::Latency,
                &Thresholds::none(),
            )
            .unwrap();
            assert!(
                (fast.objective - brute.objective).abs() < 1e-9,
                "seed {seed}: {} vs {}",
                fast.objective,
                brute.objective
            );
        }
    }

    #[test]
    fn multi_app_heuristic_is_valid_and_close() {
        use crate::exact::{exact_optimize, ExactConfig, SpeedPolicy};
        use cpo_model::generator::{random_apps, random_comm_homogeneous, AppGenConfig, PlatformGenConfig};
        let cfg = AppGenConfig { apps: 2, stages: (1, 3), ..Default::default() };
        let mut ratio_sum = 0.0;
        let mut cases = 0;
        for seed in 0..40 {
            let apps = random_apps(&cfg, seed);
            let pf = random_comm_homogeneous(
                &PlatformGenConfig { procs: apps.total_stages(), modes: (1, 2), ..Default::default() },
                seed + 200,
            );
            let heur = latency_one_to_one_heuristic(&apps, &pf).unwrap();
            heur.mapping.validate(&apps, &pf).unwrap();
            assert!(heur.mapping.is_one_to_one());
            let brute = exact_optimize(
                &apps,
                &pf,
                ExactConfig {
                    kind: crate::MappingKind::OneToOne,
                    model: CommModel::Overlap,
                    speed: SpeedPolicy::MaxOnly,
                },
                crate::Criterion::Latency,
                &Thresholds::none(),
            )
            .unwrap();
            assert!(heur.objective >= brute.objective - 1e-9, "seed {seed}");
            ratio_sum += heur.objective / brute.objective;
            cases += 1;
        }
        let mean = ratio_sum / cases as f64;
        assert!(mean < 1.3, "heuristic mean ratio {mean} too far from optimal");
    }

    #[test]
    fn single_app_requires_single_app_and_enough_procs() {
        let (apps, pf) = section2_example();
        assert!(min_latency_one_to_one_single_app(&apps, &pf).is_none()); // A = 2
        let solo = AppSet::single(apps.apps[0].clone());
        assert!(min_latency_one_to_one_single_app(&solo, &pf).is_some()); // 3 stages, 3 procs
    }

    #[test]
    fn latency_model_independent() {
        let (apps, pf) = section2_example();
        let sol = min_latency_interval_comm_hom(&apps, &pf).unwrap();
        let ev = Evaluator::new(&apps, &pf);
        // Same mapping, same latency whatever the communication model.
        assert_eq!(ev.latency(&sol.mapping), ev.latency(&sol.mapping));
    }
}
