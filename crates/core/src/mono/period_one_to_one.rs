//! Theorem 1 — period minimization, one-to-one mappings, communication
//! homogeneous platforms.
//!
//! The optimal period belongs to the finite set
//! `T = { W_a · C(δ_a^{k-1}/b_a, w_a^k/s_u, δ_a^k/b_a) }` over all stages
//! and processors (`C` = max under overlap, sum under no-overlap), because
//! it equals the weighted cycle-time of some processor executing some
//! stage. The algorithm sorts this set, binary searches it, and probes each
//! candidate with the greedy assignment procedure (Algorithm 1 of the
//! paper): keep the `N` fastest processors, scan them from slowest to
//! fastest, and hand each one *any* still-free stage it can process within
//! the candidate period. The exchange argument of the paper shows the
//! greedy succeeds iff the candidate is feasible (stage feasibility is
//! monotone in processor speed). Total cost `O((n_max·A·p)² log(n_max·A·p))`.

use crate::solution::Solution;
use cpo_model::num;
use cpo_model::prelude::*;

/// Per-stage data prepared once: weighted cycle-time as a function of speed.
struct StageCost {
    app: usize,
    stage: usize,
    /// Weighted communication component (already includes `W_a`):
    /// under overlap the max of the two edge times, under no-overlap their
    /// sum.
    weight: f64,
    incoming: f64,
    outgoing: f64,
    work: f64,
}

impl StageCost {
    #[inline]
    fn weighted_cycle(&self, speed: f64, model: CommModel) -> f64 {
        self.weight * model.combine(self.incoming, self.work / speed, self.outgoing)
    }
}

/// Greedy assignment (Algorithm 1): returns the stage assignment
/// `stage -> processor` for period `t`, or `None` ("failure").
fn greedy_assignment(
    stages: &[StageCost],
    procs: &[usize], // the N fastest processors, ascending speed
    platform: &Platform,
    model: CommModel,
    t: f64,
) -> Option<Vec<usize>> {
    let n = stages.len();
    let mut assigned_proc = vec![usize::MAX; n];
    let mut free = vec![true; n];
    for &u in procs {
        let speed = platform.procs[u].max_speed();
        let pick = (0..n)
            .find(|&k| free[k] && num::le(stages[k].weighted_cycle(speed, model), t))?;
        free[pick] = false;
        assigned_proc[pick] = u;
    }
    Some(assigned_proc)
}

/// Minimize the global weighted period with a one-to-one mapping on a
/// communication homogeneous platform (Theorem 1). Works for both
/// communication models. Returns `None` when `p < N` or the platform has
/// heterogeneous links (the problem is then NP-hard, Theorem 2 — use
/// [`crate::exact`]).
pub fn min_period_one_to_one_comm_hom(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
) -> Option<Solution> {
    if !super::links_are_homogeneous(platform) {
        return None;
    }
    let n_total = apps.total_stages();
    if platform.p() < n_total {
        return None;
    }

    // Prepare per-stage costs. Edge times come from the uniform comm
    // structure: the chain-boundary edges (`P_in`/`P_out`) are plain
    // `δ/b`, interior edges add the topology's inter-processor overhead
    // (zero on dedicated links — bitwise the same division as before).
    let mut stages = Vec::with_capacity(n_total);
    for (a, app) in apps.apps.iter().enumerate() {
        let comm = super::uniform_comm(platform, a)?;
        let n = app.n();
        for k in 0..n {
            let incoming = if k == 0 {
                comm.io_time(app.input_of(k))
            } else {
                comm.inter_time(app.input_of(k))
            };
            let outgoing = if k + 1 == n {
                comm.io_time(app.output_of(k))
            } else {
                comm.inter_time(app.output_of(k))
            };
            stages.push(StageCost {
                app: a,
                stage: k,
                weight: app.weight,
                incoming,
                outgoing,
                work: app.stages[k].work,
            });
        }
    }

    // The N fastest processors, ascending max speed.
    let by_speed = platform.procs_by_max_speed();
    let fastest_n: Vec<usize> = by_speed[by_speed.len() - n_total..].to_vec();

    // Candidate periods.
    let mut candidates = Vec::with_capacity(stages.len() * fastest_n.len());
    for st in &stages {
        for &u in &fastest_n {
            candidates.push(st.weighted_cycle(platform.procs[u].max_speed(), model));
        }
    }
    let candidates = num::sorted_candidates(candidates);

    // Binary search for the smallest feasible candidate.
    let feasible =
        |t: f64| greedy_assignment(&stages, &fastest_n, platform, model, t).is_some();
    let mut lo = 0usize;
    let mut hi = candidates.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if feasible(candidates[mid]) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    if lo == candidates.len() {
        return None;
    }
    let t_opt = candidates[lo];
    let assignment =
        greedy_assignment(&stages, &fastest_n, platform, model, t_opt).expect("probe succeeded");

    let mut mapping = Mapping::new();
    for (k, st) in stages.iter().enumerate() {
        let u = assignment[k];
        let top = platform.procs[u].modes() - 1;
        mapping.push(Interval::new(st.app, st.stage, st.stage), u, top);
    }
    debug_assert!(mapping.validate(apps, platform).is_ok());
    let achieved = Evaluator::new(apps, platform).period(&mapping, model);
    debug_assert!(num::le(achieved, t_opt));
    Some(Solution::new(mapping, achieved))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::application::Application;
    use cpo_model::generator::section2_example;
    use cpo_model::platform::Processor;

    #[test]
    fn single_stage_single_fast_proc() {
        let apps = AppSet::single(Application::from_pairs(1.0, &[(4.0, 1.0)]));
        let pf = Platform::comm_homogeneous(
            vec![Processor::uni_modal(2.0).unwrap(), Processor::uni_modal(4.0).unwrap()],
            1.0,
        )
        .unwrap();
        let sol = min_period_one_to_one_comm_hom(&apps, &pf, CommModel::Overlap).unwrap();
        // Fastest proc: max(1, 4/4, 1) = 1.
        assert!((sol.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn needs_enough_processors() {
        let apps = AppSet::single(Application::from_pairs(0.0, &[(1.0, 0.0), (1.0, 0.0)]));
        let pf = Platform::comm_homogeneous(vec![Processor::uni_modal(1.0).unwrap()], 1.0).unwrap();
        assert!(min_period_one_to_one_comm_hom(&apps, &pf, CommModel::Overlap).is_none());
    }

    #[test]
    fn heterogeneous_links_rejected() {
        let apps = AppSet::single(Application::from_pairs(0.0, &[(1.0, 0.0)]));
        let pf = Platform::new(
            vec![Processor::uni_modal(1.0).unwrap(), Processor::uni_modal(1.0).unwrap()],
            cpo_model::platform::Links::Heterogeneous {
                inter: vec![vec![1.0, 2.0], vec![2.0, 1.0]],
                input: vec![vec![1.0, 1.0]],
                output: vec![vec![1.0, 1.0]],
            },
        )
        .unwrap();
        assert!(min_period_one_to_one_comm_hom(&apps, &pf, CommModel::Overlap).is_none());
    }

    #[test]
    fn both_models_work_and_overlap_wins() {
        let (apps, pf) = section2_example();
        // Section 2 has N = 7 stages but p = 3: enlarge the platform with
        // four more processors so a one-to-one mapping exists.
        let mut procs = pf.procs.clone();
        for _ in 0..4 {
            procs.push(Processor::new(vec![2.0, 5.0]).unwrap());
        }
        let pf = Platform::comm_homogeneous(procs, 1.0).unwrap();
        let ov = min_period_one_to_one_comm_hom(&apps, &pf, CommModel::Overlap).unwrap();
        let no = min_period_one_to_one_comm_hom(&apps, &pf, CommModel::NoOverlap).unwrap();
        assert!(ov.objective <= no.objective + 1e-9);
        ov.mapping.validate(&apps, &pf).unwrap();
        no.mapping.validate(&apps, &pf).unwrap();
        assert!(ov.mapping.is_one_to_one());
    }

    #[test]
    fn weights_change_the_winner() {
        // Two 1-stage apps, one slow and one fast processor. Unweighted: the
        // heavy app should take the fast proc.
        let heavy = Application::named("heavy", 0.0, vec![cpo_model::application::Stage::new(8.0, 0.0)], 1.0).unwrap();
        let light = Application::named("light", 0.0, vec![cpo_model::application::Stage::new(1.0, 0.0)], 1.0).unwrap();
        let apps = AppSet::new(vec![heavy, light]).unwrap();
        let pf = Platform::comm_homogeneous(
            vec![Processor::uni_modal(1.0).unwrap(), Processor::uni_modal(8.0).unwrap()],
            1.0,
        )
        .unwrap();
        let sol = min_period_one_to_one_comm_hom(&apps, &pf, CommModel::Overlap).unwrap();
        // heavy on fast (8/8 = 1), light on slow (1/1 = 1): period 1.
        assert!((sol.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn per_app_bandwidths_supported() {
        let apps = AppSet::new(vec![
            Application::from_pairs(2.0, &[(1.0, 2.0)]),
            Application::from_pairs(4.0, &[(1.0, 4.0)]),
        ])
        .unwrap();
        let pf = Platform::new(
            vec![Processor::uni_modal(1.0).unwrap(), Processor::uni_modal(1.0).unwrap()],
            cpo_model::platform::Links::PerApp(vec![1.0, 2.0]),
        )
        .unwrap();
        let sol = min_period_one_to_one_comm_hom(&apps, &pf, CommModel::Overlap).unwrap();
        // App0: max(2/1, 1/1, 2/1) = 2; App1: max(4/2, 1, 4/2) = 2.
        assert!((sol.objective - 2.0).abs() < 1e-9);
    }
}
