//! Solvers for **general mappings** with processor sharing (Section 3.3 /
//! Section 6 future work).
//!
//! The paper proves that allowing processor re-use makes even
//! single-application period minimization NP-hard (reduction from
//! 2-PARTITION, no communication, homogeneous uni-modal processors). This
//! module provides:
//!
//! * [`exact_min_period_general`] — exhaustive search over general
//!   mappings (tiny instances; certifies the gadget and measures the true
//!   benefit of sharing);
//! * [`lpt_general_period`] — the classical Longest-Processing-Time list
//!   heuristic adapted to chains: intervals are packed onto the
//!   least-loaded processor (polynomial, the practical answer);
//! * [`sharing_gain`] — quantifies how much the no-sharing restriction of
//!   the paper costs on random instances (the "impact of processor
//!   sharing" experiment).

use cpo_model::num;
use cpo_model::prelude::*;
use cpo_model::sharing::{GeneralEvaluator, GeneralMapping};

/// Exhaustive minimum-period general mapping (top modes only — period
/// minimization never benefits from slower speeds). Enumerate per-app
/// interval partitions and arbitrary processor choices (sharing allowed),
/// with symmetry breaking: a new interval may use any *already-used*
/// processor or the single lowest-indexed fresh one (valid on platforms
/// with interchangeable processors, which we require).
pub fn exact_min_period_general(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
) -> Option<(GeneralMapping, f64)> {
    if platform.class() != PlatformClass::FullyHomogeneous {
        return None;
    }
    struct Dfs<'a> {
        apps: &'a AppSet,
        platform: &'a Platform,
        model: CommModel,
        mapping: GeneralMapping,
        used: Vec<bool>,
        best: Option<(GeneralMapping, f64)>,
    }
    impl Dfs<'_> {
        fn rec(&mut self, a: usize, first: usize) {
            if a == self.apps.a() {
                let ev = GeneralEvaluator::new(self.apps, self.platform);
                let t = ev.period(&self.mapping, self.model);
                if self.best.as_ref().is_none_or(|(_, bt)| num::lt(t, *bt)) {
                    self.best = Some((self.mapping.clone(), t));
                }
                return;
            }
            let n = self.apps.apps[a].n();
            if first == n {
                self.rec(a + 1, 0);
                return;
            }
            for last in first..n {
                let mut tried_fresh = false;
                for u in 0..self.platform.p() {
                    if !self.used[u] {
                        if tried_fresh {
                            continue; // symmetry: one fresh processor suffices
                        }
                        tried_fresh = true;
                    }
                    let was_used = self.used[u];
                    let top = self.platform.procs[u].modes() - 1;
                    self.used[u] = true;
                    self.mapping.push(Interval::new(a, first, last), u, top);
                    self.rec(a, last + 1);
                    self.mapping.assignments.pop();
                    self.used[u] = was_used;
                }
            }
        }
    }
    let mut dfs = Dfs {
        apps,
        platform,
        model,
        mapping: GeneralMapping::new(),
        used: vec![false; platform.p()],
        best: None,
    };
    dfs.rec(0, 0);
    dfs.best
}

/// LPT-style polynomial heuristic for general mappings: cut every chain
/// into singleton intervals, sort by compute demand descending, place each
/// on the processor with the smallest current load (all at top mode).
/// With communication-free instances this is Graham's LPT with its 4/3
/// guarantee per processor load; with communications it remains a sensible
/// packing heuristic.
pub fn lpt_general_period(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
) -> Option<(GeneralMapping, f64)> {
    if platform.p() == 0 {
        return None;
    }
    // Singleton intervals sorted by work, heaviest first.
    let mut items: Vec<(usize, usize, f64)> = apps
        .stage_indices()
        .map(|(a, k)| (a, k, apps.apps[a].stages[k].work))
        .collect();
    items.sort_by(|x, y| y.2.partial_cmp(&x.2).expect("finite work"));

    let mut load = vec![0.0f64; platform.p()];
    let mut mapping = GeneralMapping::new();
    for (a, k, w) in items {
        let u = (0..platform.p())
            .min_by(|&x, &y| load[x].partial_cmp(&load[y]).expect("finite load"))
            .expect("p > 0");
        let top = platform.procs[u].modes() - 1;
        load[u] += w / platform.procs[u].speed(top);
        mapping.push(Interval::new(a, k, k), u, top);
    }
    let t = GeneralEvaluator::new(apps, platform).period(&mapping, model);
    Some((mapping, t))
}

/// Compare the best *interval* mapping (no sharing — the paper's rule)
/// against the best *general* mapping on the same instance. Returns
/// `(interval period, general period)`; the ratio quantifies the price of
/// the no-sharing restriction.
pub fn sharing_gain(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
) -> Option<(f64, f64)> {
    let interval = crate::exact::exact_optimize(
        apps,
        platform,
        crate::exact::ExactConfig {
            kind: crate::MappingKind::Interval,
            model,
            speed: crate::exact::SpeedPolicy::MaxOnly,
        },
        crate::Criterion::Period,
        &Thresholds::none(),
    );
    let general = exact_min_period_general(apps, platform, model);
    match (interval, general) {
        (Some(i), Some((_, g))) => Some((i.objective, g)),
        (None, Some((_, g))) => Some((f64::INFINITY, g)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::application::Application;
    use cpo_model::gadgets::TwoPartition;
    use cpo_model::generator::{random_apps, AppGenConfig};
    use cpo_model::sharing::{sharing_gadget_encode, sharing_gadget_mapping};

    #[test]
    fn sharing_gadget_certified_both_ways() {
        // YES instance: the exact general solver reaches exactly S/2.
        let yes = TwoPartition { items: vec![3, 1, 1, 2, 2, 1] };
        assert!(yes.solve().is_some());
        let g = sharing_gadget_encode(&yes);
        let (_, t) =
            exact_min_period_general(&g.apps, &g.platform, CommModel::Overlap).unwrap();
        assert!((t - g.target_period).abs() < 1e-9);
        // And the certificate-induced mapping achieves it too.
        let m = sharing_gadget_mapping(&yes.solve().unwrap());
        let ev = GeneralEvaluator::new(&g.apps, &g.platform);
        assert!((ev.period(&m, CommModel::Overlap) - g.target_period).abs() < 1e-9);

        // NO instance: the optimum stays strictly above S/2.
        let no = TwoPartition { items: vec![1, 2, 4] };
        assert!(no.solve().is_none());
        let g = sharing_gadget_encode(&no);
        let (_, t) =
            exact_min_period_general(&g.apps, &g.platform, CommModel::Overlap).unwrap();
        assert!(t > g.target_period + 1e-9, "NO instance reached {t}");
    }

    #[test]
    fn sharing_never_worse_than_intervals() {
        let cfg = AppGenConfig { apps: 2, stages: (1, 3), ..Default::default() };
        for seed in 0..30 {
            let apps = random_apps(&cfg, seed);
            let pf = Platform::fully_homogeneous(3, vec![2.0], 1.0).unwrap();
            if let Some((ti, tg)) = sharing_gain(&apps, &pf, CommModel::Overlap) {
                assert!(
                    tg <= ti + 1e-9,
                    "seed {seed}: general {tg} worse than interval {ti}"
                );
            }
        }
    }

    #[test]
    fn sharing_helps_when_processors_are_scarce() {
        // Three 1-stage applications on two processors: interval mappings
        // are infeasible (no sharing, p < A), general mappings work.
        let apps = AppSet::new(vec![
            Application::from_pairs(0.0, &[(2.0, 0.0)]),
            Application::from_pairs(0.0, &[(2.0, 0.0)]),
            Application::from_pairs(0.0, &[(2.0, 0.0)]),
        ])
        .unwrap();
        let pf = Platform::fully_homogeneous(2, vec![1.0], 1.0).unwrap();
        let (ti, tg) = sharing_gain(&apps, &pf, CommModel::Overlap).unwrap();
        assert!(ti.is_infinite());
        assert!((tg - 4.0).abs() < 1e-9); // loads 4 + 2
    }

    #[test]
    fn lpt_is_valid_and_not_better_than_exact() {
        let cfg = AppGenConfig { apps: 2, stages: (1, 3), ..Default::default() };
        for seed in 0..30 {
            let mut apps = random_apps(&cfg, seed);
            // Strip communications so LPT's load model matches the
            // evaluator's dominant term.
            for app in &mut apps.apps {
                let stages: Vec<_> = app
                    .stages
                    .iter()
                    .map(|st| cpo_model::application::Stage::new(st.work, 0.0))
                    .collect();
                *app = Application::new(0.0, stages, 1.0).unwrap();
            }
            let pf = Platform::fully_homogeneous(3, vec![2.0], 1.0).unwrap();
            let (m, t_lpt) = lpt_general_period(&apps, &pf, CommModel::Overlap).unwrap();
            m.validate(&apps, &pf).unwrap();
            let (_, t_opt) =
                exact_min_period_general(&apps, &pf, CommModel::Overlap).unwrap();
            assert!(t_lpt >= t_opt - 1e-9, "seed {seed}");
            // Graham bound for makespan-style packing: LPT ≤ 4/3 OPT + ε
            // (loads only; communications are zero here).
            assert!(
                t_lpt <= t_opt * (4.0 / 3.0) + 1e-6,
                "seed {seed}: LPT {t_lpt} vs OPT {t_opt}"
            );
        }
    }

    #[test]
    fn exact_general_handles_single_app_like_partitioning() {
        // Sanity: with one app and enough processors, general = interval
        // optimum (sharing cannot help when processors are abundant and
        // communications are free).
        let apps = AppSet::single(Application::from_pairs(0.0, &[(4.0, 0.0), (4.0, 0.0)]));
        let pf = Platform::fully_homogeneous(2, vec![2.0], 1.0).unwrap();
        let (ti, tg) = sharing_gain(&apps, &pf, CommModel::Overlap).unwrap();
        assert!((ti - 2.0).abs() < 1e-9);
        assert!((tg - 2.0).abs() < 1e-9);
    }
}
