//! Tri-criteria solvers (Section 5.3): period, latency and energy together.
//!
//! * [`unimodal`] — Theorems 23/24: with uni-modal processors on fully
//!   homogeneous platforms the problem stays polynomial (an energy budget
//!   just caps the processor count).
//! * [`multimodal`] — Theorems 26/27 prove NP-hardness as soon as
//!   processors have several modes, even for a single application without
//!   communication; the exact branch-and-bound here handles small
//!   instances and serves as the reference for the heuristics.

pub mod multimodal;
pub mod unimodal;
