//! Theorems 26 and 27 — tri-criteria optimization with **multi-modal**
//! processors.
//!
//! The paper proves the problem NP-hard even for a single application on a
//! fully homogeneous platform without communications, via a 2-PARTITION
//! gadget. This module provides the exact reference solver: a
//! branch-and-bound that minimizes total energy under per-application
//! period and latency bounds, exploring interval (or one-to-one) mappings
//! and all mode selections, with
//!
//! * energy-based pruning (partial energy + one cheapest processor per
//!   unfinished application ≥ incumbent),
//! * threshold-based pruning (partial latency already above the bound, or
//!   an interval cycle-time above the period bound),
//! * symmetry breaking across interchangeable processors.
//!
//! On gadget instances its runtime grows exponentially with the number of
//! items — which is exactly the empirical signature of Theorem 26 that the
//! benches record.

use crate::solution::{MappingKind, Solution};
use cpo_model::num;
use cpo_model::prelude::*;

struct Bnb<'a> {
    apps: &'a AppSet,
    platform: &'a Platform,
    model: CommModel,
    kind: MappingKind,
    period_bounds: &'a [f64],
    latency_bounds: &'a [f64],
    energy: EnergyModel,
    symmetry: bool,
    cheapest_proc: f64,
    used: Vec<bool>,
    mapping: Mapping,
    /// Latency accumulated for the application under construction.
    partial_latency: f64,
    partial_energy: f64,
    best: Option<Solution>,
    /// Search-tree nodes visited (exported for the scaling experiments).
    nodes: u64,
}

impl<'a> Bnb<'a> {
    fn incumbent(&self) -> f64 {
        self.best.as_ref().map_or(f64::INFINITY, |s| s.objective)
    }

    /// Optimistic outgoing bandwidth from `u` for application `a` (the
    /// next interval's processor is not chosen yet).
    fn optimistic_out_bw(&self, a: usize, u: usize) -> f64 {
        match &self.platform.links {
            cpo_model::platform::Links::Uniform(b) => *b,
            cpo_model::platform::Links::PerApp(bs) => bs[a],
            cpo_model::platform::Links::Heterogeneous { inter, output, .. } => inter[u]
                .iter()
                .copied()
                .chain(std::iter::once(output[a][u]))
                .fold(0.0, num::fmax),
        }
    }

    fn rec_app(&mut self, a: usize) {
        if a == self.apps.a() {
            // Complete mapping: exact evaluation.
            let ev = Evaluator::new(self.apps, self.platform);
            let e = ev.evaluate(&self.mapping, self.model);
            let ok = e
                .periods
                .iter()
                .zip(self.period_bounds)
                .all(|(t, b)| num::le(*t, *b))
                && e.latencies
                    .iter()
                    .zip(self.latency_bounds)
                    .all(|(l, b)| num::le(*l, *b));
            if ok && num::lt(e.energy, self.incumbent()) {
                self.best = Some(Solution::new(self.mapping.clone(), e.energy));
            }
            return;
        }
        self.partial_latency = 0.0;
        self.rec_stage(a, 0);
    }

    fn rec_stage(&mut self, a: usize, first: usize) {
        self.nodes += 1;
        let app = &self.apps.apps[a];
        let n = app.n();
        if first == n {
            let saved = self.partial_latency;
            self.rec_app(a + 1);
            self.partial_latency = saved;
            return;
        }
        // Energy bound: every app from a+1 on still needs ≥ 1 processor,
        // and the current app needs ≥ 1 more (this interval).
        let remaining = (self.apps.a() - a) as f64;
        if num::ge(self.partial_energy + remaining * self.cheapest_proc, self.incumbent()) {
            return;
        }
        let last_hi = match self.kind {
            MappingKind::OneToOne => first,
            MappingKind::Interval => n - 1,
        };
        for last in first..=last_hi {
            let work = app.interval_work(first, last);
            let mut reps: Vec<usize> = Vec::new();
            for u in 0..self.platform.p() {
                if self.used[u] {
                    continue;
                }
                if self.symmetry
                    && reps.iter().any(|&r| self.platform.procs[r] == self.platform.procs[u])
                {
                    continue;
                }
                reps.push(u);
                // Topology-aware edge times; on `Dedicated` platforms these
                // are exactly the historical `δ / bw` divisions, bit for
                // bit. On `Multistage` the interior edges carry the fabric
                // traversal overhead — consecutive intervals always sit on
                // distinct processors, so the overhead applies exactly and
                // the prune stays admissible (never an overestimate).
                let incoming = if first == 0 {
                    self.platform.transfer_time_input(a, u, app.input_of(first))
                } else {
                    let prev = self
                        .mapping
                        .assignments
                        .last()
                        .expect("previous interval exists")
                        .proc;
                    self.platform.transfer_time_inter(a, prev, u, app.input_of(first))
                };
                let out_opt = if self.platform.is_multistage() {
                    if last + 1 == n {
                        self.platform.transfer_time_output(a, u, app.output_of(last))
                    } else {
                        // The successor processor is not chosen yet, but on
                        // a multistage fabric every inter-processor edge
                        // costs the same regardless of the endpoints.
                        self.platform.transfer_time_inter(a, u, u, app.output_of(last))
                    }
                } else {
                    app.output_of(last) / self.optimistic_out_bw(a, u)
                };
                let proc = &self.platform.procs[u];
                for mode in 0..proc.modes() {
                    let speed = proc.speed(mode);
                    let compute = work / speed;
                    // Period prune (optimistic on the outgoing edge).
                    let cycle = self.model.combine(incoming, compute, out_opt);
                    if !num::le(cycle, self.period_bounds[a]) {
                        continue;
                    }
                    // Latency prune (optimistic: remaining stages free).
                    let lat_add =
                        if first == 0 { incoming } else { 0.0 } + compute + out_opt;
                    if !num::le(self.partial_latency + lat_add, self.latency_bounds[a]) {
                        continue;
                    }
                    // Energy prune.
                    let e_add = self.energy.proc_energy(self.platform, u, mode);
                    let rem_after = (self.apps.a() - a - 1) as f64;
                    if num::ge(
                        self.partial_energy + e_add + rem_after * self.cheapest_proc,
                        self.incumbent(),
                    ) {
                        continue;
                    }
                    self.used[u] = true;
                    self.mapping.push(Interval::new(a, first, last), u, mode);
                    self.partial_energy += e_add;
                    let saved_lat = self.partial_latency;
                    self.partial_latency += lat_add;
                    self.rec_stage(a, last + 1);
                    self.partial_latency = saved_lat;
                    self.partial_energy -= e_add;
                    self.mapping.assignments.pop();
                    self.used[u] = false;
                }
            }
        }
    }
}

/// Exact tri-criteria solver: minimize the total energy subject to
/// per-application period and latency bounds. Exponential in the worst
/// case (the problem is NP-hard, Theorems 26/27); practical for small
/// instances thanks to pruning and symmetry breaking.
///
/// Returns `(solution, visited nodes)`; the node count is the empirical
/// hardness signal used by the gadget experiments.
pub fn branch_and_bound_tri_counted(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    kind: MappingKind,
    period_bounds: &[f64],
    latency_bounds: &[f64],
) -> (Option<Solution>, u64) {
    assert_eq!(period_bounds.len(), apps.a());
    assert_eq!(latency_bounds.len(), apps.a());
    let energy = EnergyModel::default();
    let cheapest_proc = (0..platform.p())
        .map(|u| platform.procs[u].e_stat + energy.dynamic(platform.procs[u].min_speed()))
        .fold(f64::INFINITY, num::fmin);
    let mut bnb = Bnb {
        apps,
        platform,
        model,
        kind,
        period_bounds,
        latency_bounds,
        energy,
        symmetry: platform.has_homogeneous_links(),
        cheapest_proc,
        used: vec![false; platform.p()],
        mapping: Mapping::new(),
        partial_latency: 0.0,
        partial_energy: 0.0,
        best: None,
        nodes: 0,
    };
    bnb.rec_app(0);
    (bnb.best, bnb.nodes)
}

/// [`branch_and_bound_tri_counted`] without the node count.
pub fn branch_and_bound_tri(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    kind: MappingKind,
    period_bounds: &[f64],
    latency_bounds: &[f64],
) -> Option<Solution> {
    branch_and_bound_tri_counted(apps, platform, model, kind, period_bounds, latency_bounds).0
}

/// Tri-criteria feasibility: does a mapping with period, latency and energy
/// all within bounds exist?
pub fn tri_feasible(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    kind: MappingKind,
    period_bounds: &[f64],
    latency_bounds: &[f64],
    energy_budget: f64,
) -> bool {
    branch_and_bound_tri(apps, platform, model, kind, period_bounds, latency_bounds)
        .map(|s| num::le(s.objective, energy_budget))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_optimize, ExactConfig, SpeedPolicy};
    use cpo_model::application::Application;
    use cpo_model::generator::section2_example;

    #[test]
    fn matches_exhaustive_on_section2() {
        let (apps, pf) = section2_example();
        for (tb, lb) in [(2.0, 1e9), (14.0, 1e9), (2.0, 6.0), (1.0, 4.0)] {
            let bnb = branch_and_bound_tri(
                &apps,
                &pf,
                CommModel::Overlap,
                MappingKind::Interval,
                &[tb, tb],
                &[lb, lb],
            );
            let cfg = ExactConfig {
                kind: MappingKind::Interval,
                model: CommModel::Overlap,
                speed: SpeedPolicy::All,
            };
            let th = Thresholds::none()
                .with_period(vec![tb, tb])
                .with_latency(vec![lb, lb]);
            let brute = exact_optimize(&apps, &pf, cfg, crate::Criterion::Energy, &th);
            match (bnb, brute) {
                (None, None) => {}
                (Some(x), Some(y)) => assert!(
                    (x.objective - y.objective).abs() < 1e-9,
                    "tb={tb} lb={lb}: {} vs {}",
                    x.objective,
                    y.objective
                ),
                other => panic!("feasibility mismatch at tb={tb} lb={lb}: {other:?}"),
            }
        }
    }

    #[test]
    fn section2_compromise_found() {
        let (apps, pf) = section2_example();
        let sol = branch_and_bound_tri(
            &apps,
            &pf,
            CommModel::Overlap,
            MappingKind::Interval,
            &[2.0, 2.0],
            &[1e9, 1e9],
        )
        .unwrap();
        assert!((sol.objective - 46.0).abs() < 1e-9);
    }

    #[test]
    fn one_to_one_mode() {
        let apps = AppSet::single(Application::from_pairs(0.0, &[(4.0, 0.0), (2.0, 0.0)]));
        let pf = Platform::fully_homogeneous(2, vec![1.0, 2.0, 4.0], 1.0).unwrap();
        let sol = branch_and_bound_tri(
            &apps,
            &pf,
            CommModel::Overlap,
            MappingKind::OneToOne,
            &[2.0],
            &[1e9],
        )
        .unwrap();
        assert!(sol.mapping.is_one_to_one());
        // Stage 4 needs speed 2 (energy 4), stage 2 needs speed 1 (1) → 5.
        assert!((sol.objective - 5.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_bounds() {
        let apps = AppSet::single(Application::from_pairs(0.0, &[(4.0, 0.0)]));
        let pf = Platform::fully_homogeneous(1, vec![1.0, 2.0], 1.0).unwrap();
        assert!(branch_and_bound_tri(
            &apps,
            &pf,
            CommModel::Overlap,
            MappingKind::Interval,
            &[1.0],
            &[1e9]
        )
        .is_none());
        assert!(!tri_feasible(
            &apps,
            &pf,
            CommModel::Overlap,
            MappingKind::Interval,
            &[2.0],
            &[1e9],
            0.5
        ));
        assert!(tri_feasible(
            &apps,
            &pf,
            CommModel::Overlap,
            MappingKind::Interval,
            &[2.0],
            &[1e9],
            4.0
        ));
    }

    #[test]
    fn node_count_grows_with_items() {
        // Crude scaling sanity: a 3-stage gadget explores more nodes than a
        // 2-stage one.
        use cpo_model::gadgets::{theorem26_encode, TwoPartition};
        let g2 = theorem26_encode(&TwoPartition::yes_instance(2, 1));
        let g3 = theorem26_encode(&TwoPartition::yes_instance(3, 1));
        let (_, n2) = branch_and_bound_tri_counted(
            &g2.apps,
            &g2.platform,
            CommModel::Overlap,
            MappingKind::OneToOne,
            &[g2.target_period],
            &[g2.target_latency],
        );
        let (_, n3) = branch_and_bound_tri_counted(
            &g3.apps,
            &g3.platform,
            CommModel::Overlap,
            MappingKind::OneToOne,
            &[g3.target_period],
            &[g3.target_latency],
        );
        assert!(n3 > n2);
    }
}
