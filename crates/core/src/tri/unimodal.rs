//! Theorems 23 and 24 — tri-criteria optimization with **uni-modal**
//! processors on fully homogeneous platforms.
//!
//! With a single mode there is no speed choice: the energy of a mapping is
//! simply `(number of enrolled processors) × (E_stat + s^α)`, so an energy
//! budget translates into a cap on the processor count and every variant
//! reduces to the bi-criteria machinery plus Algorithm 2:
//!
//! * minimize the period under latency bounds and an energy budget;
//! * minimize the latency under period bounds and an energy budget;
//! * minimize the energy under period and latency bounds (take, per
//!   application, the fewest processors that satisfy both).

use crate::alloc::allocate_processors;
use crate::dp::{
    latency_dp, min_period_under_latency_probe, min_period_under_latency_scratch, DpScratch,
    DpWorkspace, HomCtx, IntervalCostTable,
};
use crate::mono::period_interval::mapping_from_partitions;
use crate::solution::Solution;
use cpo_model::num;
use cpo_model::prelude::*;

/// Shared setup: fully homogeneous + uni-modal, returns
/// `(speed, e_stat, per-processor energy)`. The per-application
/// communication structure comes from [`Platform::uniform_comm`].
fn unimodal_params(platform: &Platform) -> Option<(f64, f64, f64)> {
    if platform.class() != PlatformClass::FullyHomogeneous || !platform.is_uni_modal() {
        return None;
    }
    let proc = &platform.procs[0];
    let s = proc.max_speed();
    let e_per_proc = proc.e_stat + EnergyModel::default().dynamic(s);
    Some((s, proc.e_stat, e_per_proc))
}

/// Number of processors affordable under `energy_budget`.
fn proc_cap(p: usize, e_per_proc: f64, energy_budget: f64) -> usize {
    if e_per_proc <= 0.0 {
        return p;
    }
    let cap = (energy_budget / e_per_proc + cpo_model::num::EPS).floor();
    if cap < 0.0 {
        0
    } else {
        p.min(cap as usize)
    }
}

/// Theorem 24 (variant 1): minimize the global weighted period under
/// per-application latency bounds and a global energy budget. Interval
/// mapping, fully homogeneous uni-modal platform.
pub fn min_period_tri_unimodal(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    latency_bounds: &[f64],
    energy_budget: f64,
) -> Option<Solution> {
    assert_eq!(latency_bounds.len(), apps.a());
    let (_, _, e_per_proc) = unimodal_params(platform)?;
    let speeds = platform.procs[0].speeds().to_vec();
    let k = proc_cap(platform.p(), e_per_proc, energy_budget);
    let a_count = apps.a();
    if k < a_count {
        return None;
    }
    // Cost tables and candidate-period sets built once per application,
    // reused by every (latency bound, processor count) probe below; the
    // probes run the lean best-only recurrence on one shared scratch.
    let tables: Vec<IntervalCostTable> = apps
        .apps
        .iter()
        .enumerate()
        .map(|(a, app)| {
            let comm = platform.uniform_comm(a)?;
            Some(IntervalCostTable::build(&HomCtx::with_comm(app, &speeds, comm, model)))
        })
        .collect::<Option<Vec<_>>>()?;
    let candidates: Vec<Vec<f64>> = tables.iter().map(|t| t.candidates()).collect();
    let weights: Vec<f64> = apps.apps.iter().map(|a| a.weight).collect();
    let mut scratch = DpScratch::new();
    let alloc = allocate_processors(a_count, k, &weights, |a, q| {
        min_period_under_latency_probe(
            &tables[a],
            &candidates[a],
            latency_bounds[a],
            q,
            &mut scratch,
        )
        .unwrap_or(f64::INFINITY)
    })?;
    if !alloc.objective.is_finite() {
        return None;
    }
    let partitions: Vec<_> = (0..a_count)
        .map(|a| {
            min_period_under_latency_scratch(
                &tables[a],
                &candidates[a],
                latency_bounds[a],
                alloc.procs[a],
                &mut scratch,
            )
            .expect("finite objective")
            .1
        })
        .collect();
    let mapping = mapping_from_partitions(&partitions);
    debug_assert!(mapping.validate(apps, platform).is_ok());
    let achieved = Evaluator::new(apps, platform).period(&mapping, model);
    Some(Solution::new(mapping, achieved))
}

/// Theorem 24 (variant 2): minimize the global weighted latency under
/// per-application period bounds and a global energy budget.
pub fn min_latency_tri_unimodal(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    period_bounds: &[f64],
    energy_budget: f64,
) -> Option<Solution> {
    assert_eq!(period_bounds.len(), apps.a());
    let (_, _, e_per_proc) = unimodal_params(platform)?;
    let speeds = platform.procs[0].speeds().to_vec();
    let k = proc_cap(platform.p(), e_per_proc, energy_budget);
    let a_count = apps.a();
    if k < a_count {
        return None;
    }
    let qmax = k - a_count + 1;
    // Per-application Theorem 15 tables in a reusable workspace (flat
    // arenas, one scratch per application so partitions stay available
    // after the allocation).
    let mut workspace = DpWorkspace::new();
    for (a, (app, &tb)) in apps.apps.iter().zip(period_bounds).enumerate() {
        let comm = platform.uniform_comm(a)?;
        let ctx = HomCtx::with_comm(app, &speeds, comm, model);
        latency_dp(&IntervalCostTable::build(&ctx), tb, qmax, workspace.app_scratch(a));
    }
    let per_app = &workspace.per_app;
    let weights: Vec<f64> = apps.apps.iter().map(|a| a.weight).collect();
    let alloc =
        allocate_processors(a_count, k, &weights, |a, q| per_app[a].best_row()[q - 1])?;
    if !alloc.objective.is_finite() {
        return None;
    }
    let top = speeds.len() - 1;
    let partitions: Vec<_> = (0..a_count)
        .map(|a| per_app[a].latency_partition(alloc.procs[a], top).expect("finite objective"))
        .collect();
    let mapping = mapping_from_partitions(&partitions);
    debug_assert!(mapping.validate(apps, platform).is_ok());
    let achieved = Evaluator::new(apps, platform).latency(&mapping);
    Some(Solution::new(mapping, achieved))
}

/// Theorem 24 (variant 3): minimize the total energy under per-application
/// period **and** latency bounds — i.e. the fewest processors per
/// application that satisfy both, times the per-processor energy.
pub fn min_energy_tri_unimodal(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    period_bounds: &[f64],
    latency_bounds: &[f64],
) -> Option<Solution> {
    assert_eq!(period_bounds.len(), apps.a());
    assert_eq!(latency_bounds.len(), apps.a());
    let (_, _, _e_per_proc) = unimodal_params(platform)?;
    let speeds = platform.procs[0].speeds().to_vec();
    let p = platform.p();
    let a_count = apps.a();
    if p < a_count {
        return None;
    }
    let qmax = p - a_count + 1;
    let mut partitions = Vec::with_capacity(a_count);
    let mut total_procs = 0usize;
    let mut scratch = DpScratch::new();
    for (a, app) in apps.apps.iter().enumerate() {
        let comm = platform.uniform_comm(a)?;
        let ctx = HomCtx::with_comm(app, &speeds, comm, model);
        latency_dp(&IntervalCostTable::build(&ctx), period_bounds[a], qmax, &mut scratch);
        // Fewest processors meeting the latency bound.
        let q = (1..=qmax).find(|&q| num::le(scratch.best_row()[q - 1], latency_bounds[a]))?;
        let top = speeds.len() - 1;
        partitions.push(scratch.latency_partition(q, top).expect("feasible q"));
        total_procs += q;
    }
    if total_procs > p {
        return None;
    }
    let mapping = mapping_from_partitions(&partitions);
    debug_assert!(mapping.validate(apps, platform).is_ok());
    let achieved = Evaluator::new(apps, platform).energy(&mapping);
    Some(Solution::new(mapping, achieved))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::application::Application;

    fn apps() -> AppSet {
        AppSet::new(vec![
            Application::from_pairs(1.0, &[(4.0, 1.0), (4.0, 1.0), (4.0, 1.0)]),
            Application::from_pairs(1.0, &[(6.0, 1.0), (6.0, 1.0)]),
        ])
        .unwrap()
    }

    fn platform(p: usize) -> Platform {
        // Uni-modal speed 2, e_stat 1 → per-proc energy 1 + 4 = 5.
        let proc = cpo_model::platform::Processor::uni_modal(2.0)
            .unwrap()
            .with_static_energy(1.0);
        Platform::new(vec![proc; p], cpo_model::platform::Links::Uniform(1.0)).unwrap()
    }

    #[test]
    fn energy_budget_caps_processors() {
        let apps = apps();
        let pf = platform(6);
        // Budget 10 → 2 processors (5 each): one per app, latency unbounded.
        let sol = min_period_tri_unimodal(&apps, &pf, CommModel::Overlap, &[1e9, 1e9], 10.0)
            .unwrap();
        assert_eq!(sol.mapping.enrolled(), 2);
        // Budget 30 → up to 6 procs; period must not be worse.
        let rich = min_period_tri_unimodal(&apps, &pf, CommModel::Overlap, &[1e9, 1e9], 30.0)
            .unwrap();
        assert!(rich.objective <= sol.objective + 1e-9);
        // Budget below 2 procs → infeasible.
        assert!(
            min_period_tri_unimodal(&apps, &pf, CommModel::Overlap, &[1e9, 1e9], 9.0).is_none()
        );
    }

    #[test]
    fn latency_bounds_respected_in_period_variant() {
        let apps = apps();
        let pf = platform(6);
        let sol = min_period_tri_unimodal(&apps, &pf, CommModel::Overlap, &[8.0, 8.0], 30.0)
            .unwrap();
        let ev = Evaluator::new(&apps, &pf);
        assert!(ev.app_latency(&sol.mapping, 0) <= 8.0 + 1e-9);
        assert!(ev.app_latency(&sol.mapping, 1) <= 8.0 + 1e-9);
    }

    #[test]
    fn latency_variant_honors_period_and_budget() {
        let apps = apps();
        let pf = platform(6);
        let sol = min_latency_tri_unimodal(&apps, &pf, CommModel::Overlap, &[3.0, 3.0], 30.0)
            .unwrap();
        let ev = Evaluator::new(&apps, &pf);
        assert!(ev.app_period(&sol.mapping, 0, CommModel::Overlap) <= 3.0 + 1e-9);
        assert!(ev.app_period(&sol.mapping, 1, CommModel::Overlap) <= 3.0 + 1e-9);
        assert!(ev.energy(&sol.mapping) <= 30.0 + 1e-9);
        // Impossible period bound.
        assert!(
            min_latency_tri_unimodal(&apps, &pf, CommModel::Overlap, &[0.2, 0.2], 30.0).is_none()
        );
    }

    #[test]
    fn energy_variant_uses_fewest_processors() {
        let apps = apps();
        let pf = platform(6);
        // Loose bounds: one processor per app → energy 10.
        let sol = min_energy_tri_unimodal(
            &apps,
            &pf,
            CommModel::Overlap,
            &[1e9, 1e9],
            &[1e9, 1e9],
        )
        .unwrap();
        assert!((sol.objective - 10.0).abs() < 1e-9);
        // Tight period bound 3: app0 (12 ops at speed 2 = 6 per proc) needs
        // ≥ 2 procs (e.g. [8/2=4 no… split [4,4|4]: 4 > 3 → needs 3 procs
        // at 2 each: cycle 2); app1 needs 2 (6/2 = 3 each). Energy grows.
        let tight = min_energy_tri_unimodal(
            &apps,
            &pf,
            CommModel::Overlap,
            &[3.0, 3.0],
            &[1e9, 1e9],
        )
        .unwrap();
        assert!(tight.objective > sol.objective);
        let ev = Evaluator::new(&apps, &pf);
        assert!(ev.app_period(&tight.mapping, 0, CommModel::Overlap) <= 3.0 + 1e-9);
    }

    #[test]
    fn energy_variant_infeasible_cases() {
        let apps = apps();
        let pf = platform(2);
        // Period 2 for app0 requires 3 intervals ([4][4][4] at speed 2) but
        // p = 2 → infeasible.
        assert!(min_energy_tri_unimodal(
            &apps,
            &pf,
            CommModel::Overlap,
            &[2.0, 2.0],
            &[1e9, 1e9]
        )
        .is_none());
        // Latency bound below the single-proc latency and period bound loose.
        let pf6 = platform(6);
        assert!(min_energy_tri_unimodal(
            &apps,
            &pf6,
            CommModel::Overlap,
            &[1e9, 1e9],
            &[0.5, 0.5]
        )
        .is_none());
    }

    #[test]
    fn multi_modal_platform_rejected() {
        let apps = apps();
        let pf = Platform::fully_homogeneous(4, vec![1.0, 2.0], 1.0).unwrap();
        assert!(min_period_tri_unimodal(&apps, &pf, CommModel::Overlap, &[1e9, 1e9], 100.0)
            .is_none());
    }
}
