//! Period/energy trade-off fronts.
//!
//! The paper motivates its threshold approach with the "laptop" and
//! "server" questions; sweeping the threshold yields the full Pareto
//! front of the bi-criteria period/energy problem. The sweep runs the
//! polynomial solvers of Theorems 18/19/21 on every candidate period (a
//! finite set) and discards dominated points.

use crate::bi::period_energy::{min_energy_interval_fully_hom, min_energy_one_to_one_matching};
use crate::solution::{MappingKind, Solution};
use cpo_model::num;
use cpo_model::prelude::*;

/// One point of a period/energy front.
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// Global weighted period threshold achieved.
    pub period: f64,
    /// Minimum energy at that period.
    pub energy: f64,
    /// A mapping realizing the point.
    pub solution: Solution,
}

/// Candidate *global weighted* period values: all `W_a ×` interval (or
/// stage) cycle-times at every available speed.
fn period_candidates(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    kind: MappingKind,
) -> Vec<f64> {
    let mut out = Vec::new();
    for (a, app) in apps.apps.iter().enumerate() {
        for u in 0..platform.p() {
            let b_in = platform.bw_input(a, u);
            let b_out = platform.bw_output(a, u);
            let b_int = platform.bw_inter(a, u, (u + 1) % platform.p());
            for lo in 0..app.n() {
                let hi_range = match kind {
                    MappingKind::OneToOne => lo..=lo,
                    MappingKind::Interval => lo..=(app.n() - 1),
                };
                for hi in hi_range {
                    let din = app.input_of(lo) / if lo == 0 { b_in } else { b_int };
                    let dout = app.output_of(hi) / if hi == app.n() - 1 { b_out } else { b_int };
                    for &s in platform.procs[u].speeds() {
                        out.push(
                            app.weight
                                * model.combine(din, app.interval_work(lo, hi) / s, dout),
                        );
                    }
                }
            }
        }
    }
    num::sorted_candidates(out)
}

/// Sweep the period/energy Pareto front with the polynomial solvers:
/// interval mappings use the Theorem 18/21 dynamic program (fully
/// homogeneous platforms), one-to-one mappings use the Theorem 19 matching
/// (communication homogeneous platforms). Returns the non-dominated points
/// sorted by increasing period.
pub fn period_energy_front(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    kind: MappingKind,
) -> Vec<ParetoPoint> {
    let candidates = period_candidates(apps, platform, model, kind);
    let mut points: Vec<ParetoPoint> = Vec::new();
    for t in candidates {
        // Per-application bound: global weighted period ≤ t means
        // T_a ≤ t / W_a.
        let bounds: Vec<f64> = apps.apps.iter().map(|a| t / a.weight).collect();
        let sol = match kind {
            MappingKind::Interval => min_energy_interval_fully_hom(apps, platform, model, &bounds),
            MappingKind::OneToOne => {
                min_energy_one_to_one_matching(apps, platform, model, &bounds)
            }
        };
        if let Some(sol) = sol {
            let achieved_t = Evaluator::new(apps, platform).period(&sol.mapping, model);
            let energy = sol.objective;
            // Dominance filter: keep only strictly improving energy as the
            // period loosens.
            if points.last().is_none_or(|last| num::lt(energy, last.energy)) {
                points.push(ParetoPoint { period: achieved_t, energy, solution: sol });
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::generator::section2_example;

    #[test]
    fn front_is_monotone_and_anchored() {
        // Homogenized Section 2 platform so the interval DP applies.
        let (apps, _) = section2_example();
        let pf = Platform::fully_homogeneous(3, vec![1.0, 3.0, 6.0, 8.0], 1.0).unwrap();
        let front = period_energy_front(&apps, &pf, CommModel::Overlap, MappingKind::Interval);
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].period <= w[1].period + 1e-9, "periods ascending");
            assert!(w[0].energy > w[1].energy - 1e-9, "energy descending");
        }
        // The loosest point is the global minimum energy: both apps on one
        // processor each at speed 1 → 1 + 1 = 2.
        let last = front.last().unwrap();
        assert!((last.energy - 2.0).abs() < 1e-9);
    }

    #[test]
    fn one_to_one_front_works_on_comm_hom() {
        let (apps, pf) = section2_example();
        // Section 2 has 7 stages and 3 processors: extend to 7 procs.
        let mut procs = pf.procs.clone();
        for _ in 0..4 {
            procs.push(cpo_model::platform::Processor::new(vec![2.0, 5.0]).unwrap());
        }
        let pf = Platform::comm_homogeneous(procs, 1.0).unwrap();
        let front = period_energy_front(&apps, &pf, CommModel::Overlap, MappingKind::OneToOne);
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].energy > w[1].energy - 1e-9);
        }
        // Every point's mapping is valid and one-to-one.
        for pt in &front {
            pt.solution.mapping.validate(&apps, &pf).unwrap();
            assert!(pt.solution.mapping.is_one_to_one());
        }
    }

    #[test]
    fn achieved_period_never_exceeds_threshold_point() {
        let (apps, _) = section2_example();
        let pf = Platform::fully_homogeneous(3, vec![1.0, 3.0, 6.0], 1.0).unwrap();
        let front = period_energy_front(&apps, &pf, CommModel::Overlap, MappingKind::Interval);
        let ev = Evaluator::new(&apps, &pf);
        for pt in &front {
            let t = ev.period(&pt.solution.mapping, CommModel::Overlap);
            assert!((t - pt.period).abs() < 1e-9);
        }
    }
}
