//! Period/energy and period/latency trade-off fronts.
//!
//! The paper motivates its threshold approach with the "laptop" and
//! "server" questions; sweeping the threshold yields the full Pareto
//! front of the bi-criteria problems. The sweep runs the polynomial
//! solvers of Theorems 16/18/19/21 on every candidate period (a finite
//! set) and discards dominated points — through the pruned, parallel
//! [`crate::sweep`] engine, with all per-instance constants hoisted into
//! shared cost tables ([`IntervalCostTable`], [`StageCostTable`]) built
//! once per sweep.

use crate::bi::interval_cost_tables;
use crate::bi::period_energy::{
    min_energy_interval_scratch, min_energy_one_to_one_with_table, StageCostTable,
};
use crate::bi::period_latency::min_latency_under_period_scratch;
use crate::dp::{DpWorkspace, IntervalCostTable};
use crate::solution::{MappingKind, Solution};
use crate::sweep::{sweep_front, CandidateSolver, Scored, Sweep};
use cpo_matching::{CostMatrix, HungarianWorkspace};
use cpo_model::num;
use cpo_model::prelude::*;

/// One point of a period/energy front.
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// Global weighted period threshold achieved.
    pub period: f64,
    /// Minimum energy at that period.
    pub energy: f64,
    /// A mapping realizing the point.
    pub solution: Solution,
}

/// One point of a period/latency front.
#[derive(Debug, Clone)]
pub struct PeriodLatencyPoint {
    /// Global weighted period achieved.
    pub period: f64,
    /// Minimum global weighted latency at that period.
    pub latency: f64,
    /// A mapping realizing the point.
    pub solution: Solution,
}

/// Candidate *global weighted* period values for the given mapping kind:
/// all `W_a ×` interval (or stage) cycle-times at every available speed,
/// drawn from the same shared cost tables the per-candidate solvers read
/// (so candidate enumeration and solving cannot drift apart). Empty when
/// the platform class does not fit the kind's polynomial solver.
pub fn period_candidates(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    kind: MappingKind,
) -> Vec<f64> {
    match kind {
        MappingKind::Interval => match interval_cost_tables(apps, platform, model) {
            Some(tables) => interval_candidates(&tables, false),
            None => Vec::new(),
        },
        MappingKind::OneToOne => match StageCostTable::build(apps, platform, model) {
            Some(table) => table.candidates(),
            None => Vec::new(),
        },
    }
}

fn interval_candidates(tables: &[IntervalCostTable], top_only: bool) -> Vec<f64> {
    let mut out = Vec::new();
    for table in tables {
        table.push_weighted_candidates(table.weight, top_only, &mut out);
    }
    num::sorted_candidates(out)
}

/// Sweep the period/energy Pareto front with the polynomial solvers:
/// interval mappings use the Theorem 18/21 dynamic program (fully
/// homogeneous platforms), one-to-one mappings use the Theorem 19 matching
/// (communication homogeneous platforms). Returns the non-dominated points
/// sorted by increasing period.
///
/// Runs the pruned, parallel sweep with default settings; see
/// [`period_energy_front_with`] to control pruning and thread count.
pub fn period_energy_front(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    kind: MappingKind,
) -> Vec<ParetoPoint> {
    period_energy_front_with(apps, platform, model, kind, &Sweep::default())
}

/// [`period_energy_front`] under an explicit [`Sweep`] configuration.
/// The produced front is identical for every configuration — including
/// [`Sweep::exhaustive`], the naive solve-every-candidate baseline.
pub fn period_energy_front_with(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    kind: MappingKind,
    sweep: &Sweep,
) -> Vec<ParetoPoint> {
    let points = match kind {
        MappingKind::Interval => {
            let Some(tables) = interval_cost_tables(apps, platform, model) else {
                return Vec::new();
            };
            let candidates = interval_candidates(&tables, false);
            let solver = IntervalEnergySolver { apps, platform, model, tables };
            sweep_front(&candidates, &solver, sweep)
        }
        MappingKind::OneToOne => {
            let Some(table) = StageCostTable::build(apps, platform, model) else {
                return Vec::new();
            };
            let candidates = table.candidates();
            let solver = MatchingEnergySolver { apps, platform, model, table };
            sweep_front(&candidates, &solver, sweep)
        }
    };
    points
        .into_iter()
        .map(|p| ParetoPoint { period: p.achieved, energy: p.objective, solution: p.solution })
        .collect()
}

/// Sweep the period/latency Pareto front on a fully homogeneous platform
/// (interval mappings, Theorem 16 under every candidate period bound).
/// Returns the non-dominated points sorted by increasing period.
pub fn period_latency_front(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
) -> Vec<PeriodLatencyPoint> {
    period_latency_front_with(apps, platform, model, &Sweep::default())
}

/// [`period_latency_front`] under an explicit [`Sweep`] configuration.
pub fn period_latency_front_with(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    sweep: &Sweep,
) -> Vec<PeriodLatencyPoint> {
    let Some(tables) = interval_cost_tables(apps, platform, model) else {
        return Vec::new();
    };
    // The latency solvers never downclock, so only top-mode cycle-times
    // are achievable periods.
    let candidates = interval_candidates(&tables, true);
    let solver = IntervalLatencySolver { apps, platform, model, tables };
    sweep_front(&candidates, &solver, sweep)
        .into_iter()
        .map(|p| PeriodLatencyPoint {
            period: p.achieved,
            latency: p.objective,
            solution: p.solution,
        })
        .collect()
}

/// Fill the per-application bounds into a reusable buffer: global weighted
/// period ≤ t means `T_a ≤ t / W_a`.
fn fill_bounds(apps: &AppSet, t: f64, bounds: &mut Vec<f64>) {
    bounds.clear();
    bounds.extend(apps.apps.iter().map(|a| t / a.weight));
}

struct IntervalEnergySolver<'a> {
    apps: &'a AppSet,
    platform: &'a Platform,
    model: CommModel,
    tables: Vec<IntervalCostTable>,
}

impl CandidateSolver for IntervalEnergySolver<'_> {
    type State = (DpWorkspace, Vec<f64>);

    fn make_state(&self) -> Self::State {
        (DpWorkspace::new(), Vec::new())
    }

    fn solve(&self, state: &mut Self::State, t: f64) -> Option<Scored> {
        let (ws, bounds) = state;
        fill_bounds(self.apps, t, bounds);
        let sol =
            min_energy_interval_scratch(self.apps, self.platform, &self.tables, bounds, ws)?;
        let achieved = Evaluator::new(self.apps, self.platform).period(&sol.mapping, self.model);
        Some(Scored { achieved, objective: sol.objective, solution: sol })
    }
}

struct MatchingEnergySolver<'a> {
    apps: &'a AppSet,
    platform: &'a Platform,
    model: CommModel,
    table: StageCostTable,
}

impl CandidateSolver for MatchingEnergySolver<'_> {
    type State = (HungarianWorkspace, CostMatrix, Vec<f64>);

    fn make_state(&self) -> Self::State {
        (HungarianWorkspace::new(), CostMatrix::new(), Vec::new())
    }

    fn solve(&self, state: &mut Self::State, t: f64) -> Option<Scored> {
        let (workspace, matrix, bounds) = state;
        fill_bounds(self.apps, t, bounds);
        let sol = min_energy_one_to_one_with_table(
            self.apps, self.platform, &self.table, bounds, workspace, matrix,
        )?;
        let achieved = Evaluator::new(self.apps, self.platform).period(&sol.mapping, self.model);
        Some(Scored { achieved, objective: sol.objective, solution: sol })
    }
}

struct IntervalLatencySolver<'a> {
    apps: &'a AppSet,
    platform: &'a Platform,
    model: CommModel,
    tables: Vec<IntervalCostTable>,
}

impl CandidateSolver for IntervalLatencySolver<'_> {
    type State = (DpWorkspace, Vec<f64>);

    fn make_state(&self) -> Self::State {
        (DpWorkspace::new(), Vec::new())
    }

    fn solve(&self, state: &mut Self::State, t: f64) -> Option<Scored> {
        let (ws, bounds) = state;
        fill_bounds(self.apps, t, bounds);
        let sol =
            min_latency_under_period_scratch(self.apps, self.platform, &self.tables, bounds, ws)?;
        let achieved = Evaluator::new(self.apps, self.platform).period(&sol.mapping, self.model);
        Some(Scored { achieved, objective: sol.objective, solution: sol })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::generator::section2_example;

    #[test]
    fn front_is_monotone_and_anchored() {
        // Homogenized Section 2 platform so the interval DP applies.
        let (apps, _) = section2_example();
        let pf = Platform::fully_homogeneous(3, vec![1.0, 3.0, 6.0, 8.0], 1.0).unwrap();
        let front = period_energy_front(&apps, &pf, CommModel::Overlap, MappingKind::Interval);
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].period <= w[1].period + 1e-9, "periods ascending");
            assert!(w[0].energy > w[1].energy - 1e-9, "energy descending");
        }
        // The loosest point is the global minimum energy: both apps on one
        // processor each at speed 1 → 1 + 1 = 2.
        let last = front.last().unwrap();
        assert!((last.energy - 2.0).abs() < 1e-9);
    }

    #[test]
    fn one_to_one_front_works_on_comm_hom() {
        let (apps, pf) = section2_example();
        // Section 2 has 7 stages and 3 processors: extend to 7 procs.
        let mut procs = pf.procs.clone();
        for _ in 0..4 {
            procs.push(cpo_model::platform::Processor::new(vec![2.0, 5.0]).unwrap());
        }
        let pf = Platform::comm_homogeneous(procs, 1.0).unwrap();
        let front = period_energy_front(&apps, &pf, CommModel::Overlap, MappingKind::OneToOne);
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].energy > w[1].energy - 1e-9);
        }
        // Every point's mapping is valid and one-to-one.
        for pt in &front {
            pt.solution.mapping.validate(&apps, &pf).unwrap();
            assert!(pt.solution.mapping.is_one_to_one());
        }
    }

    #[test]
    fn achieved_period_never_exceeds_threshold_point() {
        let (apps, _) = section2_example();
        let pf = Platform::fully_homogeneous(3, vec![1.0, 3.0, 6.0], 1.0).unwrap();
        let front = period_energy_front(&apps, &pf, CommModel::Overlap, MappingKind::Interval);
        let ev = Evaluator::new(&apps, &pf);
        for pt in &front {
            let t = ev.period(&pt.solution.mapping, CommModel::Overlap);
            assert!((t - pt.period).abs() < 1e-9);
        }
    }

    #[test]
    fn wrong_platform_class_yields_empty_front() {
        let (apps, pf) = section2_example();
        // Section 2's platform is only comm homogeneous: no interval front.
        assert!(period_energy_front(&apps, &pf, CommModel::Overlap, MappingKind::Interval)
            .is_empty());
        assert!(period_latency_front(&apps, &pf, CommModel::Overlap).is_empty());
        // And with p < N (3 < 7), no one-to-one front either.
        assert!(period_energy_front(&apps, &pf, CommModel::Overlap, MappingKind::OneToOne)
            .is_empty());
    }

    #[test]
    fn period_latency_front_is_monotone_and_valid() {
        let (apps, _) = section2_example();
        let pf = Platform::fully_homogeneous(4, vec![2.0, 6.0], 1.0).unwrap();
        let front = period_latency_front(&apps, &pf, CommModel::Overlap);
        assert!(!front.is_empty());
        let ev = Evaluator::new(&apps, &pf);
        for w in front.windows(2) {
            assert!(w[0].period <= w[1].period + 1e-9, "periods ascending");
            assert!(w[0].latency > w[1].latency - 1e-9, "latency descending");
        }
        for pt in &front {
            pt.solution.mapping.validate(&apps, &pf).unwrap();
            assert!((ev.latency(&pt.solution.mapping) - pt.latency).abs() < 1e-9);
            assert!((ev.period(&pt.solution.mapping, CommModel::Overlap) - pt.period).abs() < 1e-9);
        }
    }

    #[test]
    fn candidate_lists_cannot_drift_from_hom_ctx() {
        // Satellite guarantee: pareto candidates and HomCtx candidates are
        // both views of the same IntervalCostTable values.
        let (apps, _) = section2_example();
        let pf = Platform::fully_homogeneous(3, vec![1.0, 3.0, 6.0], 2.0).unwrap();
        let global = period_candidates(&apps, &pf, CommModel::Overlap, MappingKind::Interval);
        let tables = interval_cost_tables(&apps, &pf, CommModel::Overlap).unwrap();
        for (app, table) in apps.apps.iter().zip(&tables) {
            let speeds = pf.procs[0].speeds().to_vec();
            let ctx = crate::dp::HomCtx::new(app, &speeds, 2.0, CommModel::Overlap);
            assert_eq!(table.candidates(), ctx.period_candidates());
            // Every weighted per-app candidate appears in the global list
            // (weights are 1 in the Section 2 example).
            for c in table.candidates() {
                assert!(
                    global.contains(&(app.weight * c)),
                    "candidate {c} missing from the global list"
                );
            }
        }
    }
}
