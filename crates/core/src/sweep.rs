//! The Pareto sweep engine: pruned, parallel threshold sweeps.
//!
//! Every trade-off front in this crate has the same shape: a finite,
//! sorted candidate set of thresholds `t₁ < t₂ < … < t_C`; a deterministic
//! per-candidate solver whose optimal objective is **non-increasing** in
//! the threshold (looser bound ⇒ larger feasible set ⇒ no worse optimum);
//! and a dominance filter that keeps a candidate exactly when its objective
//! strictly improves on the last kept point. The naive sweep solves all
//! `C` candidates; this engine layers two optimizations on top without
//! changing the result by a single bit:
//!
//! 1. **Monotonicity pruning** — divide-and-conquer over the candidate
//!    indices: solve the two endpoints of a range, and recurse into the
//!    interior only when their objectives differ. When they are equal
//!    (bitwise, including both-infeasible), monotonicity pins every
//!    interior objective to the same value, and a pinned candidate can
//!    never pass the strict-improvement filter — whether the left endpoint
//!    was kept (equal, not better) or skipped (the filter state did not
//!    change since). `O(C)` solves become `O(F·log C)` for `F` distinct
//!    front values.
//! 2. **Parallel fan-out** — each divide-and-conquer wave solves its batch
//!    of midpoints concurrently on scoped threads. Results are merged by
//!    candidate index and the next wave is derived from the merged state,
//!    so the set of solved candidates — and therefore the front — is
//!    independent of thread count and scheduling.
//!
//! Solvers plug in via [`CandidateSolver`], which also owns a per-thread
//! [`CandidateSolver::State`] so expensive scratch structures (the flat
//! `dp::DpWorkspace` DP arenas with their sweep-wide incremental mode
//! frontiers, Hungarian workspaces, flat cost matrices) are reused across
//! the candidates of a batch instead of reallocated per solve.

use crate::solution::Solution;
use cpo_model::num;

/// Configuration of a sweep.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Maximum worker threads for a batch of candidate solves. `1` keeps
    /// everything on the calling thread. The front is identical for every
    /// value.
    pub threads: usize,
    /// Enable monotonicity pruning. Disabling it recovers the naive
    /// solve-every-candidate sweep (useful as an oracle and a baseline).
    pub prune: bool,
}

impl Default for Sweep {
    /// Pruning on, one thread per available core.
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Sweep { threads, prune: true }
    }
}

impl Sweep {
    /// Pruned but single-threaded.
    pub fn serial() -> Self {
        Sweep { threads: 1, prune: true }
    }

    /// The naive full sweep: no pruning, single-threaded. Solves every
    /// candidate — the oracle the optimized sweep is tested against.
    pub fn exhaustive() -> Self {
        Sweep { threads: 1, prune: false }
    }

    /// Pruned sweep with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        Sweep { threads: threads.max(1), prune: true }
    }
}

/// A solved candidate: the achieved primary criterion (e.g. the actual
/// period of the produced mapping), the minimized objective (e.g. energy)
/// and the witness solution.
#[derive(Debug, Clone)]
pub struct Scored {
    /// Achieved primary criterion of the witness mapping.
    pub achieved: f64,
    /// Minimized objective value; must be non-increasing in the threshold.
    pub objective: f64,
    /// The witness mapping.
    pub solution: Solution,
}

/// One kept point of a swept front.
#[derive(Debug, Clone)]
pub struct FrontPoint {
    /// The candidate threshold that produced the point.
    pub threshold: f64,
    /// Achieved primary criterion of the witness mapping.
    pub achieved: f64,
    /// Objective value at this point.
    pub objective: f64,
    /// The witness mapping.
    pub solution: Solution,
}

/// Statistics of one sweep run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepStats {
    /// Total number of candidates.
    pub candidates: usize,
    /// Number of candidates actually solved (= `candidates` without
    /// pruning).
    pub solves: usize,
}

/// A deterministic per-candidate solver with reusable per-thread state.
///
/// Contract required for the engine to reproduce the naive sweep exactly:
/// `solve` must be a pure function of the threshold (the state only caches
/// allocations), and its objective must be non-increasing in the threshold
/// with infeasibility (`None`) monotone too — once feasible, always
/// feasible for larger thresholds.
pub trait CandidateSolver: Sync {
    /// Reusable scratch state, created once per worker thread.
    type State: Send;

    /// Fresh scratch state.
    fn make_state(&self) -> Self::State;

    /// Solve one candidate threshold; `None` when infeasible.
    fn solve(&self, state: &mut Self::State, threshold: f64) -> Option<Scored>;
}

/// Sweep the front over the sorted candidate thresholds. See the module
/// docs for the guarantees.
pub fn sweep_front<S: CandidateSolver>(
    candidates: &[f64],
    solver: &S,
    cfg: &Sweep,
) -> Vec<FrontPoint> {
    sweep_front_with_stats(candidates, solver, cfg).0
}

/// [`sweep_front`] also reporting how many candidates were solved.
pub fn sweep_front_with_stats<S: CandidateSolver>(
    candidates: &[f64],
    solver: &S,
    cfg: &Sweep,
) -> (Vec<FrontPoint>, SweepStats) {
    let c = candidates.len();
    // solved[i]: None = never solved; Some(None) = solved, infeasible;
    // Some(Some(s)) = solved, feasible.
    let mut solved: Vec<Option<Option<Scored>>> = vec![None; c];

    if c > 0 {
        if cfg.prune {
            // Seed the divide-and-conquer with both endpoints.
            let seed: Vec<usize> = if c == 1 { vec![0] } else { vec![0, c - 1] };
            solve_batch(&seed, candidates, solver, cfg.threads, &mut solved);
            let mut ranges = vec![(0usize, c - 1)];
            while !ranges.is_empty() {
                let mut mids = Vec::new();
                let mut next = Vec::new();
                for (i, j) in ranges {
                    if j - i <= 1 {
                        continue;
                    }
                    if pinned_equal(&solved[i], &solved[j]) {
                        // Monotone objectives squeezed between two equal
                        // endpoints: every interior candidate is pinned to
                        // the same value and can never be kept.
                        continue;
                    }
                    let mid = i + (j - i) / 2;
                    mids.push(mid);
                    next.push((i, mid));
                    next.push((mid, j));
                }
                solve_batch(&mids, candidates, solver, cfg.threads, &mut solved);
                ranges = next;
            }
        } else {
            let all: Vec<usize> = (0..c).collect();
            solve_batch(&all, candidates, solver, cfg.threads, &mut solved);
        }
    }

    let solves = solved.iter().filter(|s| s.is_some()).count();

    // Dominance filter, identical to the naive ascending scan: keep a
    // solved, feasible candidate exactly when its objective strictly
    // improves on the last kept point.
    let mut points = Vec::new();
    for (i, slot) in solved.into_iter().enumerate() {
        if let Some(Some(s)) = slot {
            if points
                .last()
                .is_none_or(|last: &FrontPoint| num::lt(s.objective, last.objective))
            {
                points.push(FrontPoint {
                    threshold: candidates[i],
                    achieved: s.achieved,
                    objective: s.objective,
                    solution: s.solution,
                });
            }
        }
    }
    (points, SweepStats { candidates: c, solves })
}

/// Bitwise objective equality of two solved slots (both-infeasible counts
/// as equal). Intentionally stricter than `num::approx_eq`: pruning on
/// approximate equality could skip a candidate the naive filter keeps.
fn pinned_equal(a: &Option<Option<Scored>>, b: &Option<Option<Scored>>) -> bool {
    match (a.as_ref().expect("endpoint solved"), b.as_ref().expect("endpoint solved")) {
        (None, None) => true,
        (Some(x), Some(y)) => x.objective == y.objective,
        _ => false,
    }
}

/// Solve a batch of candidate indices, fanning chunks across scoped
/// threads; results land in `solved` keyed by index, so the outcome is
/// independent of scheduling.
fn solve_batch<S: CandidateSolver>(
    idxs: &[usize],
    candidates: &[f64],
    solver: &S,
    threads: usize,
    solved: &mut [Option<Option<Scored>>],
) {
    if idxs.is_empty() {
        return;
    }
    let threads = threads.clamp(1, idxs.len());
    if threads == 1 {
        let mut state = solver.make_state();
        for &i in idxs {
            solved[i] = Some(solver.solve(&mut state, candidates[i]));
        }
        return;
    }
    let chunk = idxs.len().div_ceil(threads);
    let results = crossbeam::scope(|scope| {
        let handles: Vec<_> = idxs
            .chunks(chunk)
            .map(|ch| {
                scope.spawn(move |_| {
                    let mut state = solver.make_state();
                    ch.iter()
                        .map(|&i| (i, solver.solve(&mut state, candidates[i])))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("sweep scope");
    for part in results {
        for (i, r) in part {
            solved[i] = Some(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::mapping::Mapping;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Synthetic solver: objective is a non-increasing step function of the
    /// threshold, infeasible below `feasible_from`. Counts its solves.
    struct StepSolver {
        feasible_from: f64,
        steps: Vec<(f64, f64)>, // (threshold >=, objective)
        calls: AtomicUsize,
    }

    impl StepSolver {
        fn new(feasible_from: f64, steps: Vec<(f64, f64)>) -> Self {
            StepSolver { feasible_from, steps, calls: AtomicUsize::new(0) }
        }

        fn objective(&self, t: f64) -> f64 {
            self.steps
                .iter()
                .filter(|&&(from, _)| t >= from)
                .map(|&(_, e)| e)
                .fold(f64::INFINITY, f64::min)
        }
    }

    impl CandidateSolver for StepSolver {
        type State = ();

        fn make_state(&self) {}

        fn solve(&self, _state: &mut (), t: f64) -> Option<Scored> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            if t < self.feasible_from {
                return None;
            }
            let objective = self.objective(t);
            Some(Scored { achieved: t, objective, solution: Solution::new(Mapping::new(), objective) })
        }
    }

    fn candidates() -> Vec<f64> {
        (0..1000).map(|i| i as f64 / 10.0).collect()
    }

    fn steps() -> Vec<(f64, f64)> {
        vec![(5.0, 90.0), (13.7, 41.0), (50.0, 12.0), (51.3, 7.0), (99.0, 1.0)]
    }

    fn front_signature(points: &[FrontPoint]) -> Vec<(u64, u64, u64)> {
        points
            .iter()
            .map(|p| (p.threshold.to_bits(), p.achieved.to_bits(), p.objective.to_bits()))
            .collect()
    }

    #[test]
    fn pruned_equals_exhaustive_and_solves_fewer() {
        let cands = candidates();
        let naive_solver = StepSolver::new(5.0, steps());
        let (naive, naive_stats) =
            sweep_front_with_stats(&cands, &naive_solver, &Sweep::exhaustive());
        assert_eq!(naive.len(), 5);
        assert_eq!(naive_stats.solves, cands.len());

        let pruned_solver = StepSolver::new(5.0, steps());
        let (pruned, stats) = sweep_front_with_stats(&cands, &pruned_solver, &Sweep::serial());
        assert_eq!(front_signature(&naive), front_signature(&pruned));
        assert_eq!(stats.solves, pruned_solver.calls.load(Ordering::Relaxed));
        assert!(
            stats.solves < cands.len() / 4,
            "pruning should skip most of the {} candidates, solved {}",
            cands.len(),
            stats.solves
        );
    }

    #[test]
    fn thread_count_does_not_change_the_front() {
        let cands = candidates();
        let reference =
            sweep_front(&cands, &StepSolver::new(5.0, steps()), &Sweep::serial());
        for threads in [2, 3, 8] {
            let par = sweep_front(
                &cands,
                &StepSolver::new(5.0, steps()),
                &Sweep::with_threads(threads),
            );
            assert_eq!(front_signature(&reference), front_signature(&par), "{threads} threads");
        }
    }

    #[test]
    fn all_infeasible_yields_empty_front_cheaply() {
        let cands = candidates();
        let solver = StepSolver::new(f64::INFINITY, steps());
        let (points, stats) = sweep_front_with_stats(&cands, &solver, &Sweep::serial());
        assert!(points.is_empty());
        // Equal (infeasible) endpoints prune the entire interior.
        assert_eq!(stats.solves, 2);
    }

    #[test]
    fn constant_objective_keeps_first_feasible_point_only() {
        let cands = candidates();
        let solver = StepSolver::new(0.0, vec![(0.0, 3.0)]);
        let naive = sweep_front(&cands, &StepSolver::new(0.0, vec![(0.0, 3.0)]), &Sweep::exhaustive());
        let pruned = sweep_front(&cands, &solver, &Sweep::serial());
        assert_eq!(naive.len(), 1);
        assert_eq!(front_signature(&naive), front_signature(&pruned));
        assert_eq!(pruned[0].threshold, 0.0);
    }

    #[test]
    fn empty_and_singleton_candidate_sets() {
        let solver = StepSolver::new(0.0, vec![(0.0, 3.0)]);
        assert!(sweep_front(&[], &solver, &Sweep::default()).is_empty());
        let one = sweep_front(&[7.0], &solver, &Sweep::default());
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].objective, 3.0);
    }
}
