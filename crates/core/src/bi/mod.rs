//! Bi-criteria solvers (Section 5 of the paper): period/latency and
//! period/energy, following the threshold approach — one criterion is
//! optimized under per-application bounds on the other.

pub mod period_energy;
pub mod period_latency;

use crate::dp::{HomCtx, IntervalCostTable};
use cpo_model::platform::{Platform, PlatformClass};
use cpo_model::prelude::*;

/// Shared speed set of a fully homogeneous platform; `None` when the
/// platform class is wrong (the interval solvers of Theorems 15/16/18/21
/// only apply to fully homogeneous platforms). The per-application
/// communication structure comes from [`Platform::uniform_comm`].
pub(crate) fn fully_hom_params(platform: &Platform) -> Option<Vec<f64>> {
    if platform.class() != PlatformClass::FullyHomogeneous {
        return None;
    }
    Some(platform.procs[0].speeds().to_vec())
}

/// Build one [`IntervalCostTable`] per application for a fully homogeneous
/// platform — the shared precomputation behind the Theorem 15/18/21 interval
/// solvers and every Pareto sweep over them. Returns `None` when the
/// platform class is wrong or `p < A` (no feasible mapping exists then).
pub fn interval_cost_tables(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
) -> Option<Vec<IntervalCostTable>> {
    interval_cost_tables_inner(apps, platform, model, false)
}

/// [`interval_cost_tables`] with [`IntervalCostTable::build_lean`]: no
/// `O(n²·modes)` cycle matrices. Only for the one-shot overlap-model energy
/// path, whose run-decomposed core never reads them — lean tables must not
/// escape to latency solvers or candidate enumeration.
pub(crate) fn interval_cost_tables_lean(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
) -> Option<Vec<IntervalCostTable>> {
    interval_cost_tables_inner(apps, platform, model, true)
}

fn interval_cost_tables_inner(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    lean: bool,
) -> Option<Vec<IntervalCostTable>> {
    let speeds = fully_hom_params(platform)?;
    if platform.p() < apps.a() {
        return None;
    }
    let e_stat = platform.procs[0].e_stat;
    apps.apps
        .iter()
        .enumerate()
        .map(|(a, app)| {
            let comm = platform.uniform_comm(a)?;
            let mut ctx = HomCtx::with_comm(app, &speeds, comm, model);
            ctx.e_stat = e_stat;
            Some(if lean {
                IntervalCostTable::build_lean(&ctx)
            } else {
                IntervalCostTable::build(&ctx)
            })
        })
        .collect()
}
