//! Bi-criteria solvers (Section 5 of the paper): period/latency and
//! period/energy, following the threshold approach — one criterion is
//! optimized under per-application bounds on the other.

pub mod period_energy;
pub mod period_latency;
