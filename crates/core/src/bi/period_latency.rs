//! Theorems 15 and 16 — bi-criteria period/latency on fully homogeneous
//! platforms, interval mappings.
//!
//! The single-application engine is the `(L, T)(i, q)` dynamic program of
//! Theorem 15 ([`crate::dp::latency_under_period`]) and its binary-search
//! dual ([`crate::dp::min_period_under_latency`]). Theorem 16 lifts both to
//! several concurrent applications with Algorithm 2, since the optimal
//! latency (resp. period) of one application is non-increasing in its
//! processor count.

use crate::alloc::allocate_processors;
use crate::dp::{
    latency_dp, min_period_under_latency_probe, min_period_under_latency_scratch, DpScratch,
    DpWorkspace, IntervalCostTable,
};
use crate::mono::period_interval::mapping_from_partitions;
use crate::solution::Solution;
use cpo_model::prelude::*;

/// Theorem 16 (first variant): minimize the global weighted latency
/// `max_a W_a·L_a` under per-application period bounds `T_a ≤ period_bounds[a]`,
/// interval mapping, fully homogeneous platform. Returns `None` when the
/// platform class is wrong, `p < A`, or the bounds are unachievable.
pub fn min_latency_under_period_fully_hom(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    period_bounds: &[f64],
) -> Option<Solution> {
    let tables = crate::bi::interval_cost_tables(apps, platform, model)?;
    min_latency_under_period_with_tables(apps, platform, &tables, period_bounds)
}

/// [`min_latency_under_period_fully_hom`] on prebuilt per-application
/// [`IntervalCostTable`]s.
pub fn min_latency_under_period_with_tables(
    apps: &AppSet,
    platform: &Platform,
    tables: &[IntervalCostTable],
    period_bounds: &[f64],
) -> Option<Solution> {
    min_latency_under_period_scratch(apps, platform, tables, period_bounds, &mut DpWorkspace::new())
}

/// [`min_latency_under_period_with_tables`] on a reusable [`DpWorkspace`] —
/// the per-candidate form of a Pareto sweep (per-application Theorem 15
/// tables live in flat arenas reused across candidates).
pub fn min_latency_under_period_scratch(
    apps: &AppSet,
    platform: &Platform,
    tables: &[IntervalCostTable],
    period_bounds: &[f64],
    workspace: &mut DpWorkspace,
) -> Option<Solution> {
    assert_eq!(period_bounds.len(), apps.a(), "one period bound per application");
    let p = platform.p();
    let a_count = apps.a();
    if p < a_count {
        return None;
    }
    let qmax = p - a_count + 1;
    // Per-application latency tables under their own bound, in persistent
    // scratch arenas.
    for (a, (table, &tb)) in tables.iter().zip(period_bounds).enumerate() {
        latency_dp(table, tb, qmax, workspace.app_scratch(a));
    }
    let per_app = &workspace.per_app;
    let weights: Vec<f64> = apps.apps.iter().map(|a| a.weight).collect();
    let alloc =
        allocate_processors(a_count, p, &weights, |a, q| per_app[a].best_row()[q - 1])?;
    if !alloc.objective.is_finite() {
        return None;
    }
    let partitions: Vec<_> = (0..a_count)
        .map(|a| {
            let top = tables[a].modes() - 1;
            per_app[a].latency_partition(alloc.procs[a], top).expect("finite objective")
        })
        .collect();
    let mapping = mapping_from_partitions(&partitions);
    debug_assert!(mapping.validate(apps, platform).is_ok());
    let achieved = Evaluator::new(apps, platform).latency(&mapping);
    Some(Solution::new(mapping, achieved))
}

/// Theorem 16 (second variant): minimize the global weighted period
/// `max_a W_a·T_a` under per-application latency bounds, interval mapping,
/// fully homogeneous platform.
pub fn min_period_under_latency_fully_hom(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    latency_bounds: &[f64],
) -> Option<Solution> {
    assert_eq!(latency_bounds.len(), apps.a(), "one latency bound per application");
    let tables = crate::bi::interval_cost_tables(apps, platform, model)?;
    let p = platform.p();
    let a_count = apps.a();
    let weights: Vec<f64> = apps.apps.iter().map(|a| a.weight).collect();
    // Candidate-period sets built once per application, reused by every
    // (latency bound, processor count) probe of the allocation. The probes
    // run the lean best-only recurrence on one shared scratch; only the
    // final per-application solves materialize parents.
    let candidates: Vec<Vec<f64>> = tables.iter().map(|t| t.candidates()).collect();
    let mut scratch = DpScratch::new();
    let alloc = allocate_processors(a_count, p, &weights, |a, q| {
        min_period_under_latency_probe(
            &tables[a],
            &candidates[a],
            latency_bounds[a],
            q,
            &mut scratch,
        )
        .unwrap_or(f64::INFINITY)
    })?;
    if !alloc.objective.is_finite() {
        return None;
    }
    let partitions: Vec<_> = (0..a_count)
        .map(|a| {
            min_period_under_latency_scratch(
                &tables[a],
                &candidates[a],
                latency_bounds[a],
                alloc.procs[a],
                &mut scratch,
            )
            .expect("finite objective")
            .1
        })
        .collect();
    let mapping = mapping_from_partitions(&partitions);
    debug_assert!(mapping.validate(apps, platform).is_ok());
    let achieved = Evaluator::new(apps, platform).period(&mapping, model);
    Some(Solution::new(mapping, achieved))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::application::Application;

    fn apps() -> AppSet {
        AppSet::new(vec![
            Application::from_pairs(1.0, &[(4.0, 2.0), (4.0, 2.0), (4.0, 1.0)]),
            Application::from_pairs(1.0, &[(6.0, 1.0), (6.0, 1.0)]),
        ])
        .unwrap()
    }

    #[test]
    fn loose_period_bound_recovers_min_latency() {
        let apps = apps();
        let pf = Platform::fully_homogeneous(4, vec![2.0], 1.0).unwrap();
        let sol = min_latency_under_period_fully_hom(
            &apps,
            &pf,
            CommModel::Overlap,
            &[1e9, 1e9],
        )
        .unwrap();
        // Without period pressure, each app sits on one processor:
        // L0 = 1/1 + 12/2 + 1/1 = 8; L1 = 1/1 + 12/2 + 1/1 = 8.
        assert!((sol.objective - 8.0).abs() < 1e-9);
    }

    #[test]
    fn tight_period_bound_forces_splits_and_latency_grows() {
        let apps = apps();
        let pf = Platform::fully_homogeneous(5, vec![2.0], 1.0).unwrap();
        let loose =
            min_latency_under_period_fully_hom(&apps, &pf, CommModel::Overlap, &[1e9, 1e9])
                .unwrap();
        let tight =
            min_latency_under_period_fully_hom(&apps, &pf, CommModel::Overlap, &[2.0, 3.0])
                .unwrap();
        assert!(tight.objective >= loose.objective - 1e-9);
        // Verify the bounds are honored.
        let ev = Evaluator::new(&apps, &pf);
        assert!(ev.app_period(&tight.mapping, 0, CommModel::Overlap) <= 2.0 + 1e-9);
        assert!(ev.app_period(&tight.mapping, 1, CommModel::Overlap) <= 3.0 + 1e-9);
    }

    #[test]
    fn infeasible_period_bound_returns_none() {
        let apps = apps();
        let pf = Platform::fully_homogeneous(4, vec![2.0], 1.0).unwrap();
        assert!(min_latency_under_period_fully_hom(
            &apps,
            &pf,
            CommModel::Overlap,
            &[0.1, 0.1]
        )
        .is_none());
    }

    #[test]
    fn dual_period_under_latency() {
        let apps = apps();
        let pf = Platform::fully_homogeneous(5, vec![2.0], 1.0).unwrap();
        // Unbounded latency → unconstrained optimal period.
        let sol = min_period_under_latency_fully_hom(
            &apps,
            &pf,
            CommModel::Overlap,
            &[1e9, 1e9],
        )
        .unwrap();
        let unconstrained =
            crate::mono::period_interval::minimize_global_period(&apps, &pf, CommModel::Overlap)
                .unwrap();
        assert!((sol.objective - unconstrained.objective).abs() < 1e-9);
        // Tight latency bounds force single intervals: period = whole-chain
        // cycle.
        let sol =
            min_period_under_latency_fully_hom(&apps, &pf, CommModel::Overlap, &[8.0, 8.0])
                .unwrap();
        let ev = Evaluator::new(&apps, &pf);
        assert!(ev.app_latency(&sol.mapping, 0) <= 8.0 + 1e-9);
        assert!(ev.app_latency(&sol.mapping, 1) <= 8.0 + 1e-9);
        // Impossible latency.
        assert!(min_period_under_latency_fully_hom(
            &apps,
            &pf,
            CommModel::Overlap,
            &[0.5, 0.5]
        )
        .is_none());
    }

    #[test]
    fn latency_period_tradeoff_is_monotone() {
        let apps = apps();
        let pf = Platform::fully_homogeneous(5, vec![2.0], 1.0).unwrap();
        let mut last_latency = 0.0;
        for tb in [10.0, 5.0, 4.0, 3.0] {
            if let Some(sol) = min_latency_under_period_fully_hom(
                &apps,
                &pf,
                CommModel::Overlap,
                &[tb, tb],
            ) {
                assert!(
                    sol.objective >= last_latency - 1e-9,
                    "tighter period bound should not reduce latency"
                );
                last_latency = sol.objective;
            }
        }
    }

    #[test]
    fn wrong_platform_class_rejected() {
        let apps = apps();
        let pf = Platform::comm_homogeneous(
            vec![
                cpo_model::platform::Processor::uni_modal(1.0).unwrap(),
                cpo_model::platform::Processor::uni_modal(2.0).unwrap(),
            ],
            1.0,
        )
        .unwrap();
        assert!(
            min_latency_under_period_fully_hom(&apps, &pf, CommModel::Overlap, &[9.0, 9.0])
                .is_none()
        );
        assert!(
            min_period_under_latency_fully_hom(&apps, &pf, CommModel::Overlap, &[9.0, 9.0])
                .is_none()
        );
    }
}
