//! Theorems 18, 19 and 21 — bi-criteria period/energy.
//!
//! * **Theorem 19** (one-to-one, communication homogeneous, multi-modal):
//!   build the bipartite graph stages × processors where the edge weight is
//!   the energy of the *slowest* mode meeting the stage's period bound
//!   (`∞` if none), then compute a minimum-weight matching — here with the
//!   from-scratch Hungarian algorithm of `cpo-matching`.
//! * **Theorem 18** (interval, fully homogeneous, single application):
//!   dynamic program `E(i, j, k)` with per-interval cheapest feasible mode
//!   ([`crate::dp::energy_under_period`]).
//! * **Theorem 21** (interval, fully homogeneous, many applications):
//!   convolution `E(a, k) = min_q (E_a^q + E(a−1, k−q))` over the
//!   per-application tables.
//!
//! Both solvers come in two forms: the one-shot entry points
//! ([`min_energy_one_to_one_matching`], [`min_energy_interval_fully_hom`])
//! and `*_with_*` variants taking prebuilt cost tables
//! ([`StageCostTable`], [`crate::dp::IntervalCostTable`]) plus reusable
//! workspaces, which the Pareto sweep engine calls once per candidate
//! period without re-deriving any per-instance constant.

use crate::dp::{energy_dp, DpWorkspace, IntervalCostTable};
use crate::mono::period_interval::mapping_from_partitions;
use crate::solution::Solution;
use cpo_matching::{CostMatrix, HungarianWorkspace};
use cpo_model::num;
use cpo_model::prelude::*;

// ---------------------------------------------------------------------------
// Theorem 19 — one-to-one matching
// ---------------------------------------------------------------------------

/// Precomputed stage × processor cost table for the Theorem 19 matching:
/// every `cycle(stage, proc, mode)` and per-(proc, mode) energy, so that a
/// sweep re-solving the matching under many period bounds only binary
/// searches precomputed rows instead of recomputing `O(N·p·modes)`
/// cycle-times per candidate.
#[derive(Debug, Clone)]
pub struct StageCostTable {
    p: usize,
    /// Global stage index → `(application, stage)`.
    stage_ids: Vec<(usize, usize)>,
    /// Application weights `W_a` (for global-period candidate scaling).
    weights: Vec<f64>,
    /// `proc_off[u] .. proc_off[u + 1]` = mode slots of processor `u`.
    proc_off: Vec<usize>,
    /// `cycle[row * total_modes + proc_off[u] + m]`.
    cycle: Vec<f64>,
    /// `mode_energy[proc_off[u] + m]` = `E_stat(u) + s_{u,m}^α`.
    mode_energy: Vec<f64>,
    total_modes: usize,
}

impl StageCostTable {
    /// Build the table. Returns `None` when the links are heterogeneous
    /// (NP-hard then, Theorem 20) or `p < N` (no one-to-one mapping
    /// exists).
    pub fn build(apps: &AppSet, platform: &Platform, model: CommModel) -> Option<Self> {
        if !crate::mono::links_are_homogeneous(platform) {
            return None;
        }
        let n_total = apps.total_stages();
        let p = platform.p();
        if p < n_total {
            return None;
        }
        let energy = EnergyModel::default();
        let mut proc_off = Vec::with_capacity(p + 1);
        let mut mode_energy = Vec::new();
        let mut off = 0usize;
        for u in 0..p {
            proc_off.push(off);
            let proc = &platform.procs[u];
            for m in 0..proc.modes() {
                mode_energy.push(energy.proc_energy(platform, u, m));
            }
            off += proc.modes();
        }
        proc_off.push(off);
        let total_modes = off;

        let mut stage_ids = Vec::with_capacity(n_total);
        let mut cycle = Vec::with_capacity(n_total * total_modes);
        for (a, app) in apps.apps.iter().enumerate() {
            let comm = crate::mono::uniform_comm(platform, a)?;
            let n = app.n();
            for k in 0..n {
                let incoming = if k == 0 {
                    comm.io_time(app.input_of(k))
                } else {
                    comm.inter_time(app.input_of(k))
                };
                let outgoing = if k + 1 == n {
                    comm.io_time(app.output_of(k))
                } else {
                    comm.inter_time(app.output_of(k))
                };
                for u in 0..p {
                    let proc = &platform.procs[u];
                    for m in 0..proc.modes() {
                        cycle.push(model.combine(
                            incoming,
                            app.stages[k].work / proc.speed(m),
                            outgoing,
                        ));
                    }
                }
                stage_ids.push((a, k));
            }
        }
        let weights = apps.apps.iter().map(|a| a.weight).collect();
        Some(StageCostTable { p, stage_ids, weights, proc_off, cycle, mode_energy, total_modes })
    }

    /// Number of rows (total stages `N`).
    #[inline]
    pub fn rows(&self) -> usize {
        self.stage_ids.len()
    }

    /// Number of processors (columns).
    #[inline]
    pub fn cols(&self) -> usize {
        self.p
    }

    /// `(application, stage)` of a row.
    #[inline]
    pub fn stage_id(&self, row: usize) -> (usize, usize) {
        self.stage_ids[row]
    }

    /// Slowest (= cheapest, since `α > 1`) mode of processor `u` meeting
    /// `bound` for `row`'s stage, by partition-point binary search over the
    /// descending precomputed cycle-times.
    pub fn feasible_mode(&self, row: usize, u: usize, bound: f64) -> Option<usize> {
        let base = row * self.total_modes;
        let slot = &self.cycle[base + self.proc_off[u]..base + self.proc_off[u + 1]];
        let m = slot.partition_point(|&c| !num::le(c, bound));
        (m < slot.len()).then_some(m)
    }

    /// Fill the stages × processors energy matrix for the given
    /// per-application period bounds into a flat [`CostMatrix`] arena
    /// (no per-row allocation; the buffer is reused across candidates).
    pub fn fill_matrix(&self, period_bounds: &[f64], matrix: &mut CostMatrix) {
        matrix.reset(self.rows(), self.p);
        for row in 0..self.rows() {
            let (a, _) = self.stage_ids[row];
            let bound = period_bounds[a];
            let out = matrix.row_mut(row);
            for (u, slot) in out.iter_mut().enumerate() {
                *slot = self
                    .feasible_mode(row, u, bound)
                    .map(|m| self.mode_energy[self.proc_off[u] + m])
                    .unwrap_or(f64::INFINITY);
            }
        }
    }

    /// All candidate *global weighted* period values: `W_a ×` every
    /// stage × processor × mode cycle-time, sorted and deduplicated.
    pub fn candidates(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.rows() * self.total_modes);
        for (row, &(a, _)) in self.stage_ids.iter().enumerate() {
            let w = self.weights[a];
            let base = row * self.total_modes;
            out.extend(self.cycle[base..base + self.total_modes].iter().map(|&c| w * c));
        }
        num::sorted_candidates(out)
    }
}

/// Theorem 19: minimize total energy with a one-to-one mapping on a
/// communication homogeneous platform, subject to per-application period
/// bounds. Polynomial (Hungarian algorithm, `O(N²·p)`).
///
/// Returns `None` when `p < N`, links are heterogeneous (NP-hard then,
/// Theorem 20) or no feasible matching exists.
pub fn min_energy_one_to_one_matching(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    period_bounds: &[f64],
) -> Option<Solution> {
    let table = StageCostTable::build(apps, platform, model)?;
    let mut workspace = HungarianWorkspace::new();
    let mut matrix = CostMatrix::new();
    min_energy_one_to_one_with_table(apps, platform, &table, period_bounds, &mut workspace, &mut matrix)
}

/// [`min_energy_one_to_one_matching`] on a prebuilt [`StageCostTable`] with
/// reusable Hungarian workspace and flat cost-matrix arena — the
/// per-candidate form of a Pareto sweep (no allocations beyond the returned
/// mapping).
pub fn min_energy_one_to_one_with_table(
    apps: &AppSet,
    platform: &Platform,
    table: &StageCostTable,
    period_bounds: &[f64],
    workspace: &mut HungarianWorkspace,
    matrix: &mut CostMatrix,
) -> Option<Solution> {
    assert_eq!(period_bounds.len(), apps.a(), "one period bound per application");
    table.fill_matrix(period_bounds, matrix);
    let result = workspace.solve_flat(matrix)?;
    let mut mapping = Mapping::new();
    for row in 0..table.rows() {
        let (a, k) = table.stage_id(row);
        let u = result.row_to_col[row];
        // Recover the selected mode: the cheapest feasible one.
        let mode = table.feasible_mode(row, u, period_bounds[a]).expect("matched edge is feasible");
        mapping.push(Interval::new(a, k, k), u, mode);
    }
    debug_assert!(mapping.validate(apps, platform).is_ok());
    let achieved = Evaluator::new(apps, platform).energy(&mapping);
    debug_assert!(num::approx_eq(achieved, result.cost));
    Some(Solution::new(mapping, achieved))
}

// ---------------------------------------------------------------------------
// Theorems 18 + 21 — interval DP + convolution
// ---------------------------------------------------------------------------

/// Theorems 18 + 21: minimize total energy with an interval mapping on a
/// fully homogeneous multi-modal platform, subject to per-application
/// period bounds. `O(A·n³·p²)` as in the paper.
pub fn min_energy_interval_fully_hom(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    period_bounds: &[f64],
) -> Option<Solution> {
    // One-shot path: under the overlap model the run-decomposed energy
    // core never reads the O(n²·modes) cycle matrices, so build lean
    // tables (cheap fields only) instead of the full shared tables a
    // sweep would want.
    let tables = if matches!(model, CommModel::Overlap) {
        crate::bi::interval_cost_tables_lean(apps, platform, model)?
    } else {
        crate::bi::interval_cost_tables(apps, platform, model)?
    };
    min_energy_interval_with_tables(apps, platform, &tables, period_bounds)
}

/// [`min_energy_interval_fully_hom`] on prebuilt per-application
/// [`IntervalCostTable`]s.
pub fn min_energy_interval_with_tables(
    apps: &AppSet,
    platform: &Platform,
    tables: &[IntervalCostTable],
    period_bounds: &[f64],
) -> Option<Solution> {
    min_energy_interval_scratch(apps, platform, tables, period_bounds, &mut DpWorkspace::new())
}

/// [`min_energy_interval_with_tables`] on a reusable [`DpWorkspace`] — the
/// per-candidate form of a Pareto sweep: the Theorem 18 DPs, the Theorem 21
/// convolution and the single-interval cost rows all live in flat arenas
/// reused across candidates (zero allocation besides the returned mapping).
pub fn min_energy_interval_scratch(
    apps: &AppSet,
    platform: &Platform,
    tables: &[IntervalCostTable],
    period_bounds: &[f64],
    workspace: &mut DpWorkspace,
) -> Option<Solution> {
    assert_eq!(period_bounds.len(), apps.a(), "one period bound per application");
    let p = platform.p();
    let a_count = apps.a();
    if p < a_count {
        return None;
    }
    let qmax = p - a_count + 1;

    // Per-application tables E_a^q (exactly q processors), each in its own
    // persistent scratch (mode frontiers survive across candidates).
    for (a, (table, &tb)) in tables.iter().zip(period_bounds).enumerate() {
        energy_dp(table, tb, qmax, workspace.app_scratch(a));
    }
    let DpWorkspace { per_app, conv_e, conv_choice, .. } = workspace;

    // Theorem 21 convolution: E(a, k) = min_q (E_a^q + E(a-1, k-q)).
    let inf = f64::INFINITY;
    let stride = p + 1;
    conv_e.clear();
    conv_e.resize((a_count + 1) * stride, inf);
    conv_choice.clear();
    conv_choice.resize((a_count + 1) * stride, u32::MAX);
    conv_e[0] = 0.0;
    for a in 1..=a_count {
        let exact_k = per_app[a - 1].energy_exact_k();
        for k in a..=p {
            let mut best = inf;
            let mut arg = u32::MAX;
            let qcap = exact_k.len().min(k - (a - 1));
            for q in 1..=qcap {
                let prev = conv_e[(a - 1) * stride + k - q];
                let cur = exact_k[q - 1];
                if prev.is_finite() && cur.is_finite() && prev + cur < best {
                    best = prev + cur;
                    arg = q as u32;
                }
            }
            conv_e[a * stride + k] = best;
            conv_choice[a * stride + k] = arg;
        }
    }
    let (k_best, &e_best) = conv_e[a_count * stride..(a_count + 1) * stride]
        .iter()
        .enumerate()
        .min_by(|(_, x), (_, y)| x.partial_cmp(y).expect("no NaN"))?;
    if !e_best.is_finite() {
        return None;
    }

    // Reconstruct per-application processor counts, then partitions.
    let mut counts = vec![0usize; a_count];
    let mut k = k_best;
    for a in (1..=a_count).rev() {
        let q = conv_choice[a * stride + k] as usize;
        counts[a - 1] = q;
        k -= q;
    }
    let partitions: Vec<_> = (0..a_count)
        .map(|a| per_app[a].energy_partition_exact(counts[a]).expect("finite energy"))
        .collect();
    let mapping = mapping_from_partitions(&partitions);
    debug_assert!(mapping.validate(apps, platform).is_ok());
    let achieved = Evaluator::new(apps, platform).energy(&mapping);
    debug_assert!(num::approx_eq(achieved, e_best));
    Some(Solution::new(mapping, achieved))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::application::Application;
    use cpo_model::generator::section2_example;

    #[test]
    fn section2_energy_under_period_2() {
        // The Section 2 compromise: period ≤ 2 per application costs
        // energy 46 (3² + 6² + 1²) with an interval mapping. The platform
        // there is *not* fully homogeneous, so exercise the matching-based
        // one-to-one on the real platform via exact later; here check the
        // DP on the homogenized version.
        let (apps, _) = section2_example();
        let pf = Platform::fully_homogeneous(3, vec![1.0, 3.0, 6.0, 8.0], 1.0).unwrap();
        let sol =
            min_energy_interval_fully_hom(&apps, &pf, CommModel::Overlap, &[2.0, 2.0]).unwrap();
        let ev = Evaluator::new(&apps, &pf);
        assert!(ev.app_period(&sol.mapping, 0, CommModel::Overlap) <= 2.0 + 1e-9);
        assert!(ev.app_period(&sol.mapping, 1, CommModel::Overlap) <= 2.0 + 1e-9);
        // App1 (work 6) on one proc at speed 3 → 9; app2 (work 14) needs a
        // split: [2+6]@6, [4+2]@3 → 36 + 9 = 45, or [2+6+4]@6, [2]@1 → 37.
        // Best total: 9 + 37 = 46.
        assert!((sol.objective - 46.0).abs() < 1e-9);
    }

    #[test]
    fn matching_handles_multi_modal_choice() {
        // One 2-stage app; two processors; bound forces fast mode on the
        // heavy stage only.
        let apps = AppSet::single(Application::from_pairs(0.0, &[(8.0, 0.0), (2.0, 0.0)]));
        let pf = Platform::comm_homogeneous(
            vec![
                cpo_model::platform::Processor::new(vec![1.0, 4.0]).unwrap(),
                cpo_model::platform::Processor::new(vec![1.0, 4.0]).unwrap(),
            ],
            1.0,
        )
        .unwrap();
        let sol =
            min_energy_one_to_one_matching(&apps, &pf, CommModel::Overlap, &[2.0]).unwrap();
        // Stage 8 needs speed 4 (16); stage 2 runs at 1 (1). Total 17.
        assert!((sol.objective - 17.0).abs() < 1e-9);
        assert!(sol.mapping.is_one_to_one());
    }

    #[test]
    fn matching_infeasible_bound() {
        let apps = AppSet::single(Application::from_pairs(0.0, &[(8.0, 0.0)]));
        let pf = Platform::comm_homogeneous(
            vec![cpo_model::platform::Processor::new(vec![1.0]).unwrap()],
            1.0,
        )
        .unwrap();
        assert!(min_energy_one_to_one_matching(&apps, &pf, CommModel::Overlap, &[1.0]).is_none());
    }

    #[test]
    fn stage_cost_table_reuse_matches_one_shot() {
        // Sweep form (shared table + workspace) must reproduce the one-shot
        // solver bound-for-bound, including infeasible bounds.
        let (apps, pf) = section2_example();
        let mut procs = pf.procs.clone();
        for _ in 0..4 {
            procs.push(cpo_model::platform::Processor::new(vec![2.0, 5.0]).unwrap());
        }
        let pf = Platform::comm_homogeneous(procs, 1.0).unwrap();
        let table = StageCostTable::build(&apps, &pf, CommModel::Overlap).unwrap();
        let mut ws = HungarianWorkspace::new();
        let mut matrix = CostMatrix::new();
        for tb in [0.2, 0.5, 1.0, 2.0, 3.0, 7.0, 14.0] {
            let bounds = [tb, tb];
            let one_shot =
                min_energy_one_to_one_matching(&apps, &pf, CommModel::Overlap, &bounds);
            let swept = min_energy_one_to_one_with_table(
                &apps, &pf, &table, &bounds, &mut ws, &mut matrix,
            );
            match (one_shot, swept) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.objective, b.objective, "bound {tb}");
                    assert_eq!(a.mapping, b.mapping, "bound {tb}");
                }
                other => panic!("feasibility mismatch at {tb}: {other:?}"),
            }
        }
    }

    #[test]
    fn stage_cost_table_candidates_are_weighted_cycles() {
        let (mut apps, pf) = section2_example();
        apps.apps[0].weight = 3.0;
        // Section 2 has 7 stages and 3 processors: extend to 7 procs.
        let mut procs = pf.procs.clone();
        for _ in 0..4 {
            procs.push(cpo_model::platform::Processor::new(vec![2.0, 5.0]).unwrap());
        }
        let pf = Platform::comm_homogeneous(procs, 1.0).unwrap();
        let table = StageCostTable::build(&apps, &pf, CommModel::Overlap).unwrap();
        let cands = table.candidates();
        assert!(!cands.is_empty());
        assert!(cands.windows(2).all(|w| w[0] < w[1]), "sorted and deduplicated");
        // Spot-check: stage (0, 0) on proc 0 mode 0 — weighted cycle present.
        let c = 3.0
            * CommModel::Overlap.combine(1.0 / 1.0, 3.0 / 3.0, 3.0 / 1.0);
        assert!(cands.iter().any(|&x| (x - c).abs() < 1e-12));
    }

    #[test]
    fn interval_dp_spends_energy_only_when_needed() {
        let apps = AppSet::new(vec![
            Application::from_pairs(0.0, &[(4.0, 0.0), (4.0, 0.0)]),
            Application::from_pairs(0.0, &[(2.0, 0.0)]),
        ])
        .unwrap();
        let pf = Platform::fully_homogeneous(4, vec![1.0, 2.0, 4.0], 1.0).unwrap();
        // Loose bound: everything at the slowest speed on one proc each.
        let loose =
            min_energy_interval_fully_hom(&apps, &pf, CommModel::Overlap, &[100.0, 100.0])
                .unwrap();
        assert!((loose.objective - 2.0).abs() < 1e-9); // 1² + 1²
        // Tight bound 2: app0 splits [4][4] at speed 2 (4+4) or single at 4
        // (16); app1 at speed 1 (1). Best 9.
        let tight =
            min_energy_interval_fully_hom(&apps, &pf, CommModel::Overlap, &[2.0, 2.0]).unwrap();
        assert!((tight.objective - 9.0).abs() < 1e-9);
        assert!(tight.objective >= loose.objective);
    }

    #[test]
    fn interval_dp_infeasible_returns_none() {
        let apps = AppSet::single(Application::from_pairs(0.0, &[(4.0, 0.0)]));
        let pf = Platform::fully_homogeneous(2, vec![1.0], 1.0).unwrap();
        assert!(
            min_energy_interval_fully_hom(&apps, &pf, CommModel::Overlap, &[0.5]).is_none()
        );
    }

    #[test]
    fn static_energy_counted_in_matching() {
        let apps = AppSet::single(Application::from_pairs(0.0, &[(1.0, 0.0)]));
        let pf = Platform::comm_homogeneous(
            vec![
                cpo_model::platform::Processor::new(vec![1.0]).unwrap().with_static_energy(10.0),
                cpo_model::platform::Processor::new(vec![2.0]).unwrap().with_static_energy(0.0),
            ],
            1.0,
        )
        .unwrap();
        let sol = min_energy_one_to_one_matching(&apps, &pf, CommModel::Overlap, &[10.0]).unwrap();
        // P0 costs 10 + 1 = 11; P1 costs 0 + 4 = 4 → pick P1.
        assert!((sol.objective - 4.0).abs() < 1e-9);
        assert_eq!(sol.mapping.assignments[0].proc, 1);
    }

    #[test]
    fn tighter_bounds_cost_more_energy() {
        let (apps, _) = section2_example();
        let pf = Platform::fully_homogeneous(3, vec![1.0, 2.0, 4.0, 8.0], 1.0).unwrap();
        let mut last = 0.0;
        for tb in [16.0, 8.0, 4.0, 2.0] {
            if let Some(sol) =
                min_energy_interval_fully_hom(&apps, &pf, CommModel::Overlap, &[tb, tb])
            {
                assert!(sol.objective >= last - 1e-9, "bound {tb}");
                last = sol.objective;
            }
        }
    }

    #[test]
    fn no_overlap_needs_more_energy_than_overlap() {
        let (apps, _) = section2_example();
        let pf = Platform::fully_homogeneous(3, vec![1.0, 2.0, 4.0, 8.0], 1.0).unwrap();
        let ov = min_energy_interval_fully_hom(&apps, &pf, CommModel::Overlap, &[3.0, 3.0]);
        let no = min_energy_interval_fully_hom(&apps, &pf, CommModel::NoOverlap, &[3.0, 3.0]);
        match (ov, no) {
            (Some(o), Some(n)) => assert!(n.objective >= o.objective - 1e-9),
            (Some(_), None) => {} // no-overlap may be infeasible
            other => panic!("unexpected feasibility pattern {other:?}"),
        }
    }
}
