//! Theorems 18, 19 and 21 — bi-criteria period/energy.
//!
//! * **Theorem 19** (one-to-one, communication homogeneous, multi-modal):
//!   build the bipartite graph stages × processors where the edge weight is
//!   the energy of the *slowest* mode meeting the stage's period bound
//!   (`∞` if none), then compute a minimum-weight matching — here with the
//!   from-scratch Hungarian algorithm of `cpo-matching`.
//! * **Theorem 18** (interval, fully homogeneous, single application):
//!   dynamic program `E(i, j, k)` with per-interval cheapest feasible mode
//!   ([`crate::dp::energy_under_period`]).
//! * **Theorem 21** (interval, fully homogeneous, many applications):
//!   convolution `E(a, k) = min_q (E_a^q + E(a−1, k−q))` over the
//!   per-application tables.

use crate::dp::{energy_under_period, HomCtx};
use crate::mono::period_interval::mapping_from_partitions;
use crate::solution::Solution;
use cpo_matching::hungarian_min_cost;
use cpo_model::num;
use cpo_model::prelude::*;

/// Theorem 19: minimize total energy with a one-to-one mapping on a
/// communication homogeneous platform, subject to per-application period
/// bounds. Polynomial (Hungarian algorithm, `O(N²·p)`).
///
/// Returns `None` when `p < N`, links are heterogeneous (NP-hard then,
/// Theorem 20) or no feasible matching exists.
pub fn min_energy_one_to_one_matching(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    period_bounds: &[f64],
) -> Option<Solution> {
    assert_eq!(period_bounds.len(), apps.a(), "one period bound per application");
    if !crate::mono::links_are_homogeneous(platform) {
        return None;
    }
    let n_total = apps.total_stages();
    let p = platform.p();
    if p < n_total {
        return None;
    }
    let energy = EnergyModel::default();

    // Row = stage, column = processor; cost = cheapest feasible mode energy.
    let mut rows = Vec::with_capacity(n_total);
    let mut stage_ids = Vec::with_capacity(n_total);
    for (a, app) in apps.apps.iter().enumerate() {
        let b = crate::mono::app_bandwidth(platform, a)?;
        for k in 0..app.n() {
            let incoming = app.input_of(k) / b;
            let outgoing = app.output_of(k) / b;
            let bound = period_bounds[a];
            let row: Vec<f64> = (0..p)
                .map(|u| {
                    let proc = &platform.procs[u];
                    (0..proc.modes())
                        .find(|&m| {
                            num::le(
                                model.combine(incoming, app.stages[k].work / proc.speed(m), outgoing),
                                bound,
                            )
                        })
                        .map(|m| energy.proc_energy(platform, u, m))
                        .unwrap_or(f64::INFINITY)
                })
                .collect();
            rows.push(row);
            stage_ids.push((a, k));
        }
    }

    let result = hungarian_min_cost(&rows)?;
    let mut mapping = Mapping::new();
    for (i, &(a, k)) in stage_ids.iter().enumerate() {
        let u = result.row_to_col[i];
        // Recover the selected mode: the cheapest feasible one.
        let b = crate::mono::app_bandwidth(platform, a).expect("checked above");
        let incoming = apps.apps[a].input_of(k) / b;
        let outgoing = apps.apps[a].output_of(k) / b;
        let proc = &platform.procs[u];
        let mode = (0..proc.modes())
            .find(|&m| {
                num::le(
                    model.combine(incoming, apps.apps[a].stages[k].work / proc.speed(m), outgoing),
                    period_bounds[a],
                )
            })
            .expect("matched edge is feasible");
        mapping.push(Interval::new(a, k, k), u, mode);
    }
    debug_assert!(mapping.validate(apps, platform).is_ok());
    let achieved = Evaluator::new(apps, platform).energy(&mapping);
    debug_assert!(num::approx_eq(achieved, result.cost));
    Some(Solution::new(mapping, achieved))
}

/// Theorems 18 + 21: minimize total energy with an interval mapping on a
/// fully homogeneous multi-modal platform, subject to per-application
/// period bounds. `O(A·n³·p²)` as in the paper.
pub fn min_energy_interval_fully_hom(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    period_bounds: &[f64],
) -> Option<Solution> {
    assert_eq!(period_bounds.len(), apps.a(), "one period bound per application");
    if platform.class() != PlatformClass::FullyHomogeneous {
        return None;
    }
    let b = match &platform.links {
        cpo_model::platform::Links::Uniform(b) => *b,
        cpo_model::platform::Links::PerApp(bs) => bs[0],
        cpo_model::platform::Links::Heterogeneous { .. } => return None,
    };
    let speeds = platform.procs[0].speeds().to_vec();
    let e_stat = platform.procs[0].e_stat;
    let p = platform.p();
    let a_count = apps.a();
    if p < a_count {
        return None;
    }
    let qmax = p - a_count + 1;

    // Per-application tables E_a^q (exactly q processors).
    let tables: Vec<_> = apps
        .apps
        .iter()
        .zip(period_bounds)
        .map(|(app, &tb)| {
            let mut ctx = HomCtx::new(app, &speeds, b, model);
            ctx.e_stat = e_stat;
            energy_under_period(&ctx, tb, qmax)
        })
        .collect();

    // Theorem 21 convolution: E(a, k) = min_q (E_a^q + E(a-1, k-q)).
    let inf = f64::INFINITY;
    let mut e = vec![vec![inf; p + 1]; a_count + 1];
    let mut choice = vec![vec![usize::MAX; p + 1]; a_count + 1];
    e[0][0] = 0.0;
    for a in 1..=a_count {
        let tbl = &tables[a - 1];
        for k in a..=p {
            let mut best = inf;
            let mut arg = usize::MAX;
            let qcap = tbl.exact_k.len().min(k - (a - 1));
            for q in 1..=qcap {
                let prev = e[a - 1][k - q];
                let cur = tbl.exact_k[q - 1];
                if prev.is_finite() && cur.is_finite() && prev + cur < best {
                    best = prev + cur;
                    arg = q;
                }
            }
            e[a][k] = best;
            choice[a][k] = arg;
        }
    }
    let (k_best, &e_best) = e[a_count]
        .iter()
        .enumerate()
        .min_by(|(_, x), (_, y)| x.partial_cmp(y).expect("no NaN"))?;
    if !e_best.is_finite() {
        return None;
    }

    // Reconstruct per-application processor counts, then partitions.
    let mut counts = vec![0usize; a_count];
    let mut k = k_best;
    for a in (1..=a_count).rev() {
        let q = choice[a][k];
        counts[a - 1] = q;
        k -= q;
    }
    let partitions: Vec<_> = (0..a_count)
        .map(|a| tables[a].partition_exact(counts[a]).expect("finite energy"))
        .collect();
    let mapping = mapping_from_partitions(&partitions);
    debug_assert!(mapping.validate(apps, platform).is_ok());
    let achieved = Evaluator::new(apps, platform).energy(&mapping);
    debug_assert!(num::approx_eq(achieved, e_best));
    Some(Solution::new(mapping, achieved))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::application::Application;
    use cpo_model::generator::section2_example;

    #[test]
    fn section2_energy_under_period_2() {
        // The Section 2 compromise: period ≤ 2 per application costs
        // energy 46 (3² + 6² + 1²) with an interval mapping. The platform
        // there is *not* fully homogeneous, so exercise the matching-based
        // one-to-one on the real platform via exact later; here check the
        // DP on the homogenized version.
        let (apps, _) = section2_example();
        let pf = Platform::fully_homogeneous(3, vec![1.0, 3.0, 6.0, 8.0], 1.0).unwrap();
        let sol =
            min_energy_interval_fully_hom(&apps, &pf, CommModel::Overlap, &[2.0, 2.0]).unwrap();
        let ev = Evaluator::new(&apps, &pf);
        assert!(ev.app_period(&sol.mapping, 0, CommModel::Overlap) <= 2.0 + 1e-9);
        assert!(ev.app_period(&sol.mapping, 1, CommModel::Overlap) <= 2.0 + 1e-9);
        // App1 (work 6) on one proc at speed 3 → 9; app2 (work 14) needs a
        // split: [2+6]@6, [4+2]@3 → 36 + 9 = 45, or [2+6+4]@6, [2]@1 → 37.
        // Best total: 9 + 37 = 46.
        assert!((sol.objective - 46.0).abs() < 1e-9);
    }

    #[test]
    fn matching_handles_multi_modal_choice() {
        // One 2-stage app; two processors; bound forces fast mode on the
        // heavy stage only.
        let apps = AppSet::single(Application::from_pairs(0.0, &[(8.0, 0.0), (2.0, 0.0)]));
        let pf = Platform::comm_homogeneous(
            vec![
                cpo_model::platform::Processor::new(vec![1.0, 4.0]).unwrap(),
                cpo_model::platform::Processor::new(vec![1.0, 4.0]).unwrap(),
            ],
            1.0,
        )
        .unwrap();
        let sol =
            min_energy_one_to_one_matching(&apps, &pf, CommModel::Overlap, &[2.0]).unwrap();
        // Stage 8 needs speed 4 (16); stage 2 runs at 1 (1). Total 17.
        assert!((sol.objective - 17.0).abs() < 1e-9);
        assert!(sol.mapping.is_one_to_one());
    }

    #[test]
    fn matching_infeasible_bound() {
        let apps = AppSet::single(Application::from_pairs(0.0, &[(8.0, 0.0)]));
        let pf = Platform::comm_homogeneous(
            vec![cpo_model::platform::Processor::new(vec![1.0]).unwrap()],
            1.0,
        )
        .unwrap();
        assert!(min_energy_one_to_one_matching(&apps, &pf, CommModel::Overlap, &[1.0]).is_none());
    }

    #[test]
    fn interval_dp_spends_energy_only_when_needed() {
        let apps = AppSet::new(vec![
            Application::from_pairs(0.0, &[(4.0, 0.0), (4.0, 0.0)]),
            Application::from_pairs(0.0, &[(2.0, 0.0)]),
        ])
        .unwrap();
        let pf = Platform::fully_homogeneous(4, vec![1.0, 2.0, 4.0], 1.0).unwrap();
        // Loose bound: everything at the slowest speed on one proc each.
        let loose =
            min_energy_interval_fully_hom(&apps, &pf, CommModel::Overlap, &[100.0, 100.0])
                .unwrap();
        assert!((loose.objective - 2.0).abs() < 1e-9); // 1² + 1²
        // Tight bound 2: app0 splits [4][4] at speed 2 (4+4) or single at 4
        // (16); app1 at speed 1 (1). Best 9.
        let tight =
            min_energy_interval_fully_hom(&apps, &pf, CommModel::Overlap, &[2.0, 2.0]).unwrap();
        assert!((tight.objective - 9.0).abs() < 1e-9);
        assert!(tight.objective >= loose.objective);
    }

    #[test]
    fn interval_dp_infeasible_returns_none() {
        let apps = AppSet::single(Application::from_pairs(0.0, &[(4.0, 0.0)]));
        let pf = Platform::fully_homogeneous(2, vec![1.0], 1.0).unwrap();
        assert!(
            min_energy_interval_fully_hom(&apps, &pf, CommModel::Overlap, &[0.5]).is_none()
        );
    }

    #[test]
    fn static_energy_counted_in_matching() {
        let apps = AppSet::single(Application::from_pairs(0.0, &[(1.0, 0.0)]));
        let pf = Platform::comm_homogeneous(
            vec![
                cpo_model::platform::Processor::new(vec![1.0]).unwrap().with_static_energy(10.0),
                cpo_model::platform::Processor::new(vec![2.0]).unwrap().with_static_energy(0.0),
            ],
            1.0,
        )
        .unwrap();
        let sol = min_energy_one_to_one_matching(&apps, &pf, CommModel::Overlap, &[10.0]).unwrap();
        // P0 costs 10 + 1 = 11; P1 costs 0 + 4 = 4 → pick P1.
        assert!((sol.objective - 4.0).abs() < 1e-9);
        assert_eq!(sol.mapping.assignments[0].proc, 1);
    }

    #[test]
    fn tighter_bounds_cost_more_energy() {
        let (apps, _) = section2_example();
        let pf = Platform::fully_homogeneous(3, vec![1.0, 2.0, 4.0, 8.0], 1.0).unwrap();
        let mut last = 0.0;
        for tb in [16.0, 8.0, 4.0, 2.0] {
            if let Some(sol) =
                min_energy_interval_fully_hom(&apps, &pf, CommModel::Overlap, &[tb, tb])
            {
                assert!(sol.objective >= last - 1e-9, "bound {tb}");
                last = sol.objective;
            }
        }
    }

    #[test]
    fn no_overlap_needs_more_energy_than_overlap() {
        let (apps, _) = section2_example();
        let pf = Platform::fully_homogeneous(3, vec![1.0, 2.0, 4.0, 8.0], 1.0).unwrap();
        let ov = min_energy_interval_fully_hom(&apps, &pf, CommModel::Overlap, &[3.0, 3.0]);
        let no = min_energy_interval_fully_hom(&apps, &pf, CommModel::NoOverlap, &[3.0, 3.0]);
        match (ov, no) {
            (Some(o), Some(n)) => assert!(n.objective >= o.objective - 1e-9),
            (Some(_), None) => {} // no-overlap may be infeasible
            other => panic!("unexpected feasibility pattern {other:?}"),
        }
    }
}
