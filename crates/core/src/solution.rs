//! Common solver vocabulary: solutions, criteria, mapping strategies.

use cpo_model::prelude::*;

/// Which mapping rule a solver targets (Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingKind {
    /// Each stage on a distinct processor.
    OneToOne,
    /// Each processor holds an interval of consecutive stages.
    Interval,
}

/// Optimization criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Criterion {
    /// Global weighted period `max_a W_a · T_a`.
    Period,
    /// Global weighted latency `max_a W_a · L_a`.
    Latency,
    /// Total energy of enrolled processors.
    Energy,
}

/// A solver result: the mapping plus the achieved objective value.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The produced mapping (always structurally valid).
    pub mapping: Mapping,
    /// The optimized objective value.
    pub objective: f64,
}

impl Solution {
    /// Bundle a mapping with its objective value.
    pub fn new(mapping: Mapping, objective: f64) -> Self {
        Solution { mapping, objective }
    }

    /// Re-evaluate the solution's full profile.
    pub fn evaluate(&self, apps: &AppSet, platform: &Platform, model: CommModel) -> Evaluation {
        Evaluator::new(apps, platform).evaluate(&self.mapping, model)
    }
}

/// Measure `criterion` of a mapping.
pub fn measure(
    criterion: Criterion,
    mapping: &Mapping,
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
) -> f64 {
    let ev = Evaluator::new(apps, platform);
    match criterion {
        Criterion::Period => ev.period(mapping, model),
        Criterion::Latency => ev.latency(mapping),
        Criterion::Energy => ev.energy(mapping),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::generator::section2_example;
    use cpo_model::mapping::Interval;

    #[test]
    fn measure_dispatches() {
        let (apps, pf) = section2_example();
        let m = Mapping::new()
            .with(Interval::new(0, 0, 2), 0, 1)
            .with(Interval::new(1, 0, 3), 1, 1);
        assert!((measure(Criterion::Latency, &m, &apps, &pf, CommModel::Overlap) - 2.75).abs() < 1e-9);
        assert!((measure(Criterion::Energy, &m, &apps, &pf, CommModel::Overlap) - 100.0).abs() < 1e-9);
        assert!(measure(Criterion::Period, &m, &apps, &pf, CommModel::Overlap) > 0.0);
    }

    #[test]
    fn solution_evaluate_roundtrip() {
        let (apps, pf) = section2_example();
        let m = Mapping::new()
            .with(Interval::new(0, 0, 2), 0, 1)
            .with(Interval::new(1, 0, 3), 1, 1);
        let sol = Solution::new(m, 2.75);
        let ev = sol.evaluate(&apps, &pf, CommModel::Overlap);
        assert!((ev.latency - sol.objective).abs() < 1e-9);
    }
}
