//! Polynomial-time heuristics for the NP-hard tri-criteria problem.
//!
//! Section 6 of the paper: *"we plan to design some polynomial-time
//! heuristics to solve the tri-criteria optimization problem in a general
//! framework, in order to offer practical solutions to a difficult
//! problem."* This module provides two such heuristics and the benches
//! compare them against the exact branch-and-bound on small instances:
//!
//! * [`greedy_energy_downscale`] — start from any threshold-feasible
//!   mapping at high speeds and repeatedly apply the single mode-decrease
//!   that saves the most energy while keeping all thresholds satisfied
//!   (a classic DVFS "race-to-idle inversion" strategy);
//! * [`local_search`] — randomized local search / simulated annealing over
//!   mappings (mode changes, boundary shifts, splits, merges, relocations
//!   and processor swaps).

use crate::solution::Solution;
use cpo_model::num;
use cpo_model::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

fn feasible(
    ev: &Evaluator<'_>,
    mapping: &Mapping,
    model: CommModel,
    period_bounds: &[f64],
    latency_bounds: &[f64],
) -> bool {
    let e = ev.evaluate(mapping, model);
    e.periods.iter().zip(period_bounds).all(|(t, b)| num::le(*t, *b))
        && e.latencies.iter().zip(latency_bounds).all(|(l, b)| num::le(*l, *b))
}

/// Greedy DVFS downscaling: repeatedly lower one processor's mode (the move
/// saving the most energy) while the mapping keeps satisfying all period
/// and latency bounds. Returns `None` when the starting mapping itself
/// violates a bound. `O(moves × assignments × eval)`, polynomial.
pub fn greedy_energy_downscale(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    period_bounds: &[f64],
    latency_bounds: &[f64],
    start: &Mapping,
) -> Option<Solution> {
    assert_eq!(period_bounds.len(), apps.a());
    assert_eq!(latency_bounds.len(), apps.a());
    let ev = Evaluator::new(apps, platform);
    if !feasible(&ev, start, model, period_bounds, latency_bounds) {
        return None;
    }
    let energy = EnergyModel::default();
    let mut current = start.clone();
    loop {
        let mut best_gain = 0.0;
        let mut best_idx = usize::MAX;
        for i in 0..current.assignments.len() {
            let asg = current.assignments[i];
            if asg.mode == 0 {
                continue;
            }
            let gain = energy.proc_energy(platform, asg.proc, asg.mode)
                - energy.proc_energy(platform, asg.proc, asg.mode - 1);
            if gain <= best_gain {
                continue;
            }
            let mut candidate = current.clone();
            candidate.assignments[i].mode -= 1;
            if feasible(&ev, &candidate, model, period_bounds, latency_bounds) {
                best_gain = gain;
                best_idx = i;
            }
        }
        if best_idx == usize::MAX {
            break;
        }
        current.assignments[best_idx].mode -= 1;
    }
    let objective = ev.energy(&current);
    Some(Solution::new(current, objective))
}

/// Configuration for [`local_search`].
#[derive(Debug, Clone)]
pub struct LocalSearchConfig {
    /// Number of move proposals.
    pub iterations: usize,
    /// RNG seed (deterministic runs).
    pub seed: u64,
    /// Initial simulated-annealing temperature (0 = pure hill climbing).
    pub temperature: f64,
    /// Number of restart attempts to find an initial feasible mapping.
    pub restarts: usize,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        LocalSearchConfig { iterations: 4000, seed: 1, temperature: 2.0, restarts: 16 }
    }
}

/// Build an initial mapping: each application entirely on one processor
/// (fastest processors first, heaviest applications first), top modes; when
/// infeasible, split the most loaded chains greedily while processors
/// remain.
fn initial_mapping(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    period_bounds: &[f64],
    latency_bounds: &[f64],
    rng: &mut StdRng,
    randomize: bool,
) -> Option<Mapping> {
    let ev = Evaluator::new(apps, platform);
    let mut order = platform.procs_by_max_speed();
    order.reverse(); // fastest first
    if randomize {
        order.shuffle(rng);
    }
    // Heaviest applications take the fastest processors.
    let mut app_order: Vec<usize> = (0..apps.a()).collect();
    app_order.sort_by(|&x, &y| {
        (apps.apps[y].weight * apps.apps[y].total_work())
            .partial_cmp(&(apps.apps[x].weight * apps.apps[x].total_work()))
            .expect("finite work")
    });
    if apps.a() > platform.p() {
        return None;
    }
    let mut mapping = Mapping::new();
    for (i, &a) in app_order.iter().enumerate() {
        let u = order[i];
        let top = platform.procs[u].modes() - 1;
        mapping.push(Interval::new(a, 0, apps.apps[a].n() - 1), u, top);
    }
    // Greedy repair: while some application misses a bound, split its widest
    // interval onto a free processor.
    let mut free: Vec<usize> = order[apps.a()..].to_vec();
    for _ in 0..platform.p() {
        let e = ev.evaluate(&mapping, model);
        let viol = (0..apps.a()).find(|&a| {
            !num::le(e.periods[a], period_bounds[a]) || !num::le(e.latencies[a], latency_bounds[a])
        });
        let Some(a) = viol else { return Some(mapping) };
        let new_proc = free.pop()?;
        // Split the longest interval of app a in half.
        let (idx, asg) = mapping
            .assignments
            .iter()
            .enumerate()
            .filter(|(_, x)| x.interval.app == a && x.interval.len() >= 2)
            .max_by_key(|(_, x)| x.interval.len())
            .map(|(i, x)| (i, *x))?;
        let mid = (asg.interval.first + asg.interval.last) / 2;
        mapping.assignments[idx].interval = Interval::new(a, asg.interval.first, mid);
        let top = platform.procs[new_proc].modes() - 1;
        mapping.push(Interval::new(a, mid + 1, asg.interval.last), new_proc, top);
    }
    let e = ev.evaluate(&mapping, model);
    if (0..apps.a())
        .all(|a| num::le(e.periods[a], period_bounds[a]) && num::le(e.latencies[a], latency_bounds[a]))
    {
        Some(mapping)
    } else {
        None
    }
}

/// Randomized local search minimizing total energy under per-application
/// period and latency bounds. Works on any platform class and both mapping
/// kinds implicitly (moves preserve interval validity). Returns the best
/// feasible mapping found, or `None` when no feasible start was discovered.
pub fn local_search(
    apps: &AppSet,
    platform: &Platform,
    model: CommModel,
    period_bounds: &[f64],
    latency_bounds: &[f64],
    cfg: &LocalSearchConfig,
) -> Option<Solution> {
    assert_eq!(period_bounds.len(), apps.a());
    assert_eq!(latency_bounds.len(), apps.a());
    let ev = Evaluator::new(apps, platform);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let runs = cfg.restarts.max(1);
    let iters_per_run = (cfg.iterations / runs).max(1);

    let mut best: Option<(Mapping, f64)> = None;
    for r in 0..runs {
        let Some(init) =
            initial_mapping(apps, platform, model, period_bounds, latency_bounds, &mut rng, r > 0)
        else {
            continue;
        };
        // Greedy downscale gives a strong start.
        let mut current = greedy_energy_downscale(
            apps,
            platform,
            model,
            period_bounds,
            latency_bounds,
            &init,
        )
        .map(|s| s.mapping)
        .unwrap_or(init);
        let mut current_energy = ev.energy(&current);
        if best.as_ref().is_none_or(|(_, e)| current_energy < *e) {
            best = Some((current.clone(), current_energy));
        }
        let mut temperature = cfg.temperature;
        for _ in 0..iters_per_run {
            temperature *= 0.999;
            let Some(raw) = propose(&current, apps, platform, &mut rng) else { continue };
            if raw.validate(apps, platform).is_err() {
                continue;
            }
            if !feasible(&ev, &raw, model, period_bounds, latency_bounds) {
                continue;
            }
            // Structural moves land at arbitrary modes; re-optimize speeds
            // greedily before judging the move, so that e.g. a split that
            // unlocks two slow modes is seen at its true value.
            let candidate = greedy_energy_downscale(
                apps,
                platform,
                model,
                period_bounds,
                latency_bounds,
                &raw,
            )
            .map(|s| s.mapping)
            .unwrap_or(raw);
            let e = ev.energy(&candidate);
            let accept = e < current_energy
                || (temperature > 1e-9
                    && rng.gen_bool(((current_energy - e) / temperature).exp().clamp(0.0, 1.0)));
            if accept {
                current = candidate;
                current_energy = e;
                if best.as_ref().is_none_or(|(_, be)| e < *be) {
                    best = Some((current.clone(), e));
                }
            }
        }
    }
    best.map(|(mapping, energy)| Solution::new(mapping, energy))
}

/// Propose one random neighbour of `mapping`.
fn propose(
    mapping: &Mapping,
    apps: &AppSet,
    platform: &Platform,
    rng: &mut StdRng,
) -> Option<Mapping> {
    let mut m = mapping.clone();
    let n_asg = m.assignments.len();
    if n_asg == 0 {
        return None;
    }
    match rng.gen_range(0..6u8) {
        // Mode down.
        0 => {
            let i = rng.gen_range(0..n_asg);
            if m.assignments[i].mode == 0 {
                return None;
            }
            m.assignments[i].mode -= 1;
        }
        // Mode up.
        1 => {
            let i = rng.gen_range(0..n_asg);
            let a = m.assignments[i];
            if a.mode + 1 >= platform.procs[a.proc].modes() {
                return None;
            }
            m.assignments[i].mode += 1;
        }
        // Shift the boundary between two adjacent intervals of one app.
        2 => {
            let a = rng.gen_range(0..apps.a());
            let chain = m.app_chain(a);
            if chain.len() < 2 {
                return None;
            }
            let j = rng.gen_range(0..chain.len() - 1);
            let left = chain[j];
            let right = chain[j + 1];
            let grow_left = rng.gen_bool(0.5);
            let (new_left_last, new_right_first) = if grow_left {
                if right.interval.len() < 2 {
                    return None;
                }
                (left.interval.last + 1, right.interval.first + 1)
            } else {
                if left.interval.len() < 2 {
                    return None;
                }
                (left.interval.last - 1, right.interval.first - 1)
            };
            for asg in &mut m.assignments {
                if asg.proc == left.proc {
                    asg.interval = Interval::new(a, left.interval.first, new_left_last);
                } else if asg.proc == right.proc {
                    asg.interval = Interval::new(a, new_right_first, right.interval.last);
                }
            }
        }
        // Split an interval onto a free processor.
        3 => {
            let used: std::collections::HashSet<usize> =
                m.assignments.iter().map(|x| x.proc).collect();
            let free: Vec<usize> = (0..platform.p()).filter(|u| !used.contains(u)).collect();
            if free.is_empty() {
                return None;
            }
            let candidates: Vec<usize> = (0..n_asg)
                .filter(|&i| m.assignments[i].interval.len() >= 2)
                .collect();
            let &i = candidates.choose(rng)?;
            let asg = m.assignments[i];
            let cut = rng.gen_range(asg.interval.first..asg.interval.last);
            let &new_proc = free.choose(rng)?;
            let top = platform.procs[new_proc].modes() - 1;
            m.assignments[i].interval = Interval::new(asg.interval.app, asg.interval.first, cut);
            m.push(Interval::new(asg.interval.app, cut + 1, asg.interval.last), new_proc, top);
        }
        // Merge two adjacent intervals (frees one processor).
        4 => {
            let a = rng.gen_range(0..apps.a());
            let chain = m.app_chain(a);
            if chain.len() < 2 {
                return None;
            }
            let j = rng.gen_range(0..chain.len() - 1);
            let left = chain[j];
            let right = chain[j + 1];
            m.assignments.retain(|x| x.proc != right.proc);
            for asg in &mut m.assignments {
                if asg.proc == left.proc {
                    asg.interval = Interval::new(a, left.interval.first, right.interval.last);
                }
            }
        }
        // Relocate one interval to a free processor.
        _ => {
            let used: std::collections::HashSet<usize> =
                m.assignments.iter().map(|x| x.proc).collect();
            let free: Vec<usize> = (0..platform.p()).filter(|u| !used.contains(u)).collect();
            if free.is_empty() {
                return None;
            }
            let i = rng.gen_range(0..n_asg);
            let &new_proc = free.choose(rng)?;
            m.assignments[i].proc = new_proc;
            m.assignments[i].mode =
                m.assignments[i].mode.min(platform.procs[new_proc].modes() - 1);
        }
    }
    Some(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tri::multimodal::branch_and_bound_tri;
    use crate::MappingKind;
    use cpo_model::generator::section2_example;

    #[test]
    fn downscale_reaches_section2_compromise_from_fast_start() {
        let (apps, pf) = section2_example();
        // Start: the threshold-feasible all-fast mapping of Section 2
        // (period 2 requires only first modes, start higher).
        let start = Mapping::new()
            .with(Interval::new(0, 0, 2), 0, 1)
            .with(Interval::new(1, 0, 2), 1, 1)
            .with(Interval::new(1, 3, 3), 2, 1);
        let sol = greedy_energy_downscale(
            &apps,
            &pf,
            CommModel::Overlap,
            &[2.0, 2.0],
            &[1e9, 1e9],
            &start,
        )
        .unwrap();
        // Greedy lowers every processor to its first mode: 9 + 36 + 1 = 46.
        assert!((sol.objective - 46.0).abs() < 1e-9);
    }

    #[test]
    fn downscale_rejects_infeasible_start() {
        let (apps, pf) = section2_example();
        let start = Mapping::new()
            .with(Interval::new(0, 0, 2), 0, 0)
            .with(Interval::new(1, 0, 3), 2, 0);
        // Period 14 > bound 2.
        assert!(greedy_energy_downscale(
            &apps,
            &pf,
            CommModel::Overlap,
            &[2.0, 2.0],
            &[1e9, 1e9],
            &start
        )
        .is_none());
    }

    #[test]
    fn local_search_finds_near_optimal_energy() {
        let (apps, pf) = section2_example();
        let exact = branch_and_bound_tri(
            &apps,
            &pf,
            CommModel::Overlap,
            MappingKind::Interval,
            &[2.0, 2.0],
            &[1e9, 1e9],
        )
        .unwrap();
        let heur = local_search(
            &apps,
            &pf,
            CommModel::Overlap,
            &[2.0, 2.0],
            &[1e9, 1e9],
            &LocalSearchConfig::default(),
        )
        .unwrap();
        assert!(heur.objective >= exact.objective - 1e-9, "heuristic cannot beat exact");
        assert!(
            heur.objective <= exact.objective * 1.5 + 1e-9,
            "heuristic too far from optimal: {} vs {}",
            heur.objective,
            exact.objective
        );
        heur.mapping.validate(&apps, &pf).unwrap();
    }

    #[test]
    fn local_search_none_when_infeasible() {
        let (apps, pf) = section2_example();
        assert!(local_search(
            &apps,
            &pf,
            CommModel::Overlap,
            &[0.01, 0.01],
            &[1e9, 1e9],
            &LocalSearchConfig::default()
        )
        .is_none());
    }

    #[test]
    fn local_search_deterministic_per_seed() {
        let (apps, pf) = section2_example();
        let cfg = LocalSearchConfig { iterations: 500, seed: 7, ..Default::default() };
        let a = local_search(&apps, &pf, CommModel::Overlap, &[2.0, 2.0], &[1e9, 1e9], &cfg)
            .unwrap();
        let b = local_search(&apps, &pf, CommModel::Overlap, &[2.0, 2.0], &[1e9, 1e9], &cfg)
            .unwrap();
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.objective, b.objective);
    }
}
