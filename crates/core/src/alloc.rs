//! Algorithm 2 of the paper: incremental processor allocation across
//! concurrent applications on fully homogeneous platforms.
//!
//! The algorithm assigns one processor to each application, then hands the
//! remaining `p − A` processors one by one to the application whose weighted
//! objective `W_a · f_a(q_a)` is currently largest. The paper proves (proof
//! of Theorem 3) that this greedy is optimal whenever each per-application
//! objective `f_a(q)` is non-increasing in the number of processors `q` —
//! which holds for the period (Theorem 3), the latency under period bounds
//! (Theorem 16) and the period under latency bounds (Theorem 24).
//!
//! The allocator is generic over the per-application oracle so every
//! multi-application solver in this crate reuses it.

use cpo_model::num;

/// Result of Algorithm 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// `procs[a]` = number of processors granted to application `a` (≥ 1).
    pub procs: Vec<usize>,
    /// The achieved objective `max_a W_a · f_a(procs[a])`.
    pub objective: f64,
}

/// Run Algorithm 2.
///
/// * `a_count` — number of applications `A`;
/// * `p` — number of available processors (must satisfy `p ≥ A`);
/// * `weights` — the `W_a` of Eq. (6);
/// * `f(a, q)` — the per-application objective with `q` processors
///   (`+∞` allowed for infeasible; must be non-increasing in `q`).
///
/// Returns `None` when `p < a_count` (some application could not receive a
/// processor). An allocation whose objective is `+∞` (some application
/// infeasible even with all spare processors) is still returned so callers
/// can distinguish "no processors" from "infeasible thresholds".
pub fn allocate_processors(
    a_count: usize,
    p: usize,
    weights: &[f64],
    mut f: impl FnMut(usize, usize) -> f64,
) -> Option<Allocation> {
    assert_eq!(weights.len(), a_count, "one weight per application");
    if a_count == 0 || p < a_count {
        return None;
    }
    let mut procs = vec![1_usize; a_count];
    let mut value: Vec<f64> = (0..a_count).map(|a| weights[a] * f(a, 1)).collect();
    for _ in 0..(p - a_count) {
        // Application with the largest weighted objective.
        let amax = (0..a_count)
            .max_by(|&x, &y| value[x].partial_cmp(&value[y]).expect("no NaN objectives"))
            .expect("a_count > 0");
        if value[amax] == 0.0 {
            break; // nothing can improve further
        }
        procs[amax] += 1;
        value[amax] = weights[amax] * f(amax, procs[amax]);
    }
    let objective = value.iter().copied().fold(0.0, num::fmax);
    Some(Allocation { procs, objective })
}

/// Exhaustive baseline over all processor distributions (compositions of at
/// most `p` into `a_count` positive parts); used by tests to certify
/// Algorithm 2's optimality.
pub fn allocate_exhaustive(
    a_count: usize,
    p: usize,
    weights: &[f64],
    mut f: impl FnMut(usize, usize) -> f64,
) -> Option<Allocation> {
    if a_count == 0 || p < a_count {
        return None;
    }
    // Memoize f since compositions revisit the same (a, q).
    let mut cache = vec![vec![f64::NAN; p + 1]; a_count];
    let mut eval = move |a: usize, q: usize, cache: &mut Vec<Vec<f64>>| -> f64 {
        if cache[a][q].is_nan() {
            cache[a][q] = f(a, q);
        }
        cache[a][q]
    };
    let mut best: Option<Allocation> = None;
    let mut current = vec![1_usize; a_count];
    loop {
        let used: usize = current.iter().sum();
        if used <= p {
            let objective = (0..a_count)
                .map(|a| weights[a] * eval(a, current[a], &mut cache))
                .fold(0.0, num::fmax);
            if best.as_ref().is_none_or(|b| objective < b.objective) {
                best = Some(Allocation { procs: current.clone(), objective });
            }
        }
        // Next composition with parts in [1, p].
        let mut i = 0;
        loop {
            if i == a_count {
                return best;
            }
            current[i] += 1;
            if current.iter().sum::<usize>() <= p {
                break;
            }
            current[i] = 1;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A family of non-increasing step functions for testing.
    fn step(a: usize, q: usize) -> f64 {
        // app a needs about (a+1) procs to become cheap.
        let need = a + 1;
        if q >= need {
            1.0 / (q as f64)
        } else {
            10.0 * (need - q) as f64
        }
    }

    #[test]
    fn requires_one_proc_per_app() {
        assert!(allocate_processors(3, 2, &[1.0; 3], step).is_none());
        assert!(allocate_processors(0, 2, &[], step).is_none());
    }

    #[test]
    fn single_app_gets_everything_useful() {
        let alloc = allocate_processors(1, 5, &[1.0], |_, q| 10.0 / q as f64).unwrap();
        assert_eq!(alloc.procs, vec![5]);
        assert!((alloc.objective - 2.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_matches_exhaustive_on_step_functions() {
        for p in 2..=8 {
            let g = allocate_processors(2, p, &[1.0, 1.0], step).unwrap();
            let e = allocate_exhaustive(2, p, &[1.0, 1.0], step).unwrap();
            assert!(
                (g.objective - e.objective).abs() < 1e-12,
                "p={p}: greedy {} vs exhaustive {}",
                g.objective,
                e.objective
            );
        }
    }

    #[test]
    fn greedy_matches_exhaustive_on_random_monotone_functions() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for trial in 0..300 {
            let a_count = rng.gen_range(1..=4);
            let p = rng.gen_range(a_count..=9);
            // Random non-increasing tables per app.
            let tables: Vec<Vec<f64>> = (0..a_count)
                .map(|_| {
                    let mut v: Vec<f64> = (0..=p).map(|_| rng.gen_range(0.0..100.0)).collect();
                    v.sort_by(|x, y| y.partial_cmp(x).unwrap());
                    v
                })
                .collect();
            let weights: Vec<f64> = (0..a_count).map(|_| rng.gen_range(0.5..2.0)).collect();
            let f = |a: usize, q: usize| tables[a][q.min(p)];
            let g = allocate_processors(a_count, p, &weights, f).unwrap();
            let e = allocate_exhaustive(a_count, p, &weights, f).unwrap();
            assert!(
                (g.objective - e.objective).abs() < 1e-9,
                "trial {trial}: greedy {} vs exhaustive {}",
                g.objective,
                e.objective
            );
            assert!(g.procs.iter().sum::<usize>() <= p);
            assert!(g.procs.iter().all(|&q| q >= 1));
        }
    }

    #[test]
    fn infinite_objectives_survive() {
        // App 1 stays infeasible whatever happens.
        let f = |a: usize, q: usize| if a == 1 { f64::INFINITY } else { 1.0 / q as f64 };
        let alloc = allocate_processors(2, 5, &[1.0, 1.0], f).unwrap();
        assert!(alloc.objective.is_infinite());
        // Greedy keeps feeding the infeasible app — harmless for the max.
        assert_eq!(alloc.procs.iter().sum::<usize>(), 5);
    }

    #[test]
    fn weights_steer_the_allocation() {
        // Identical apps, but app 0 has weight 10: it should receive more
        // processors.
        let f = |_: usize, q: usize| 1.0 / q as f64;
        let alloc = allocate_processors(2, 6, &[10.0, 1.0], f).unwrap();
        assert!(alloc.procs[0] > alloc.procs[1]);
    }
}
