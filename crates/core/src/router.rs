//! The solver router: one typed front door for every solver in the crate.
//!
//! A [`ProblemSpec`](cpo_model::spec::ProblemSpec) *names* one of the
//! paper's ~20 problems (objective × strategy × communication model ×
//! threshold bundle); the router [`plan`]s it — validating it against the
//! instance and selecting the matching theorem, exact baseline or
//! heuristic — and [`route`]s it to a typed
//! [`SolveOutcome`](cpo_model::spec::SolveOutcome). The planner is a pure
//! function from `(instance shape, platform class, spec)` to a [`Plan`],
//! so tests and callers can introspect *which* algorithm a spec resolves
//! to without running it.
//!
//! Guarantees:
//!
//! * **No panics.** Malformed specs (wrong bound counts, NaN bounds,
//!   objective also bounded, …) come back as
//!   [`SolveOutcome::Unsupported`] with a reason; solver-level
//!   infeasibility comes back as [`SolveOutcome::Infeasible`]. Batch
//!   drivers can therefore run mixed workloads without aborting.
//! * **Bitwise equivalence.** Routing adds dispatch only: every plan
//!   executes the same public entry point (or its `*_scratch` core with a
//!   reusable [`RouterScratch`]) a direct caller would use, so objectives
//!   and mappings are bit-for-bit identical to the direct calls — proved
//!   by `tests/router_equivalence.rs` over random instances under both
//!   communication models.
//! * **Fallback policy is explicit.** NP-hard combinations resolve to the
//!   exponential exact baselines only when
//!   [`SolverHints::exact_fallback`](cpo_model::spec::SolverHints) is set,
//!   and to polynomial heuristics only when
//!   [`SolverHints::heuristic_fallback`](cpo_model::spec::SolverHints) is
//!   set; otherwise the spec is reported unsupported with the reason (and
//!   the theorem that proves the hardness).

use crate::bi::period_energy::{
    min_energy_interval_scratch, min_energy_one_to_one_with_table, StageCostTable,
};
use crate::bi::period_latency::{
    min_latency_under_period_scratch, min_period_under_latency_fully_hom,
};
use crate::dp::DpWorkspace;
use crate::exact::{exact_optimize, ExactConfig, SpeedPolicy};
use crate::heuristics::{local_search, LocalSearchConfig};
use crate::pareto::{period_energy_front_with, period_latency_front_with};
use crate::solution::{Criterion, MappingKind, Solution};
use crate::sweep::Sweep;
use cpo_matching::{BenesNetwork, CostMatrix, HungarianWorkspace};
use cpo_model::prelude::*;
use cpo_model::spec::FrontEntry;

/// The algorithm a spec resolves to. Produced by [`plan`], executed by
/// [`route`] / [`route_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Plan {
    /// Theorem 1: period, one-to-one, communication homogeneous.
    PeriodOneToOne,
    /// Theorem 3 / Algorithm 2: period, interval, fully homogeneous.
    PeriodInterval,
    /// Section 6 replication DP: period, replicated intervals.
    PeriodReplicated,
    /// Exhaustive general-mapping search (exact fallback; NP-hard).
    PeriodGeneralExact,
    /// LPT packing heuristic for general mappings.
    PeriodGeneralLpt,
    /// Theorem 16 dual: period under latency bounds, interval.
    PeriodUnderLatency,
    /// Theorem 24 variant 1: period under latency bounds + energy budget.
    PeriodTriUnimodal,
    /// Theorem 8: latency, one-to-one, fully homogeneous.
    LatencyOneToOne,
    /// Reference [5] rearrangement: latency, one-to-one, single app.
    LatencyOneToOneSingleApp,
    /// Greedy heuristic for multi-app one-to-one latency (NP-hard, Thm 9).
    LatencyOneToOneGreedy,
    /// Theorem 12: latency, interval, communication homogeneous.
    LatencyInterval,
    /// Theorems 15/16: latency under period bounds, interval.
    LatencyUnderPeriod,
    /// Theorem 24 variant 2: latency under period bounds + energy budget.
    LatencyTriUnimodal,
    /// Theorem 19: energy under period bounds, one-to-one (Hungarian).
    EnergyMatching,
    /// Theorems 18/21: energy under period bounds, interval (DP).
    EnergyInterval,
    /// Section 6 extension: energy under period bounds, replicated.
    EnergyReplicated,
    /// Theorem 24 variant 3: energy under period + latency bounds.
    EnergyTriUnimodal,
    /// Theorems 26/27 branch-and-bound (exact fallback; NP-hard).
    EnergyBranchAndBound,
    /// Randomized local search (heuristic fallback).
    EnergyLocalSearch,
    /// Exhaustive mapping enumeration (exact fallback).
    ExactEnumeration,
    /// Pruned parallel sweep: period/energy front, interval mappings.
    FrontPeriodEnergyInterval,
    /// Pruned parallel sweep: period/energy front, one-to-one mappings.
    FrontPeriodEnergyOneToOne,
    /// Pruned parallel sweep: period/latency front, interval mappings.
    FrontPeriodLatency,
    /// A base plan on a `CommTopology::Multistage` platform: run the base
    /// solver (whose cost tables already carry the fabric traversal
    /// overhead), then certify that the mapping's inter-processor flow
    /// pattern routes contention-free through the Benes network. Plain
    /// interval/one-to-one mappings always form a partial permutation, so
    /// the certificate is a checked invariant; a failure surfaces as
    /// [`SolveOutcome::Unsupported`], never a panic.
    Benes(BenesBase),
}

/// The base algorithms that remain sound on a multistage fabric — every
/// plan except the replicated and general-mapping families, whose
/// processor sharing / replication breaks the partial-permutation property
/// the Benes routing certificate relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenesBase {
    PeriodOneToOne,
    PeriodInterval,
    PeriodUnderLatency,
    PeriodTriUnimodal,
    LatencyOneToOne,
    LatencyOneToOneSingleApp,
    LatencyOneToOneGreedy,
    LatencyInterval,
    LatencyUnderPeriod,
    LatencyTriUnimodal,
    EnergyMatching,
    EnergyInterval,
    EnergyTriUnimodal,
    EnergyBranchAndBound,
    EnergyLocalSearch,
    ExactEnumeration,
    FrontPeriodEnergyInterval,
    FrontPeriodEnergyOneToOne,
    FrontPeriodLatency,
}

impl BenesBase {
    /// The wrapped base plan.
    pub fn base_plan(self) -> Plan {
        match self {
            BenesBase::PeriodOneToOne => Plan::PeriodOneToOne,
            BenesBase::PeriodInterval => Plan::PeriodInterval,
            BenesBase::PeriodUnderLatency => Plan::PeriodUnderLatency,
            BenesBase::PeriodTriUnimodal => Plan::PeriodTriUnimodal,
            BenesBase::LatencyOneToOne => Plan::LatencyOneToOne,
            BenesBase::LatencyOneToOneSingleApp => Plan::LatencyOneToOneSingleApp,
            BenesBase::LatencyOneToOneGreedy => Plan::LatencyOneToOneGreedy,
            BenesBase::LatencyInterval => Plan::LatencyInterval,
            BenesBase::LatencyUnderPeriod => Plan::LatencyUnderPeriod,
            BenesBase::LatencyTriUnimodal => Plan::LatencyTriUnimodal,
            BenesBase::EnergyMatching => Plan::EnergyMatching,
            BenesBase::EnergyInterval => Plan::EnergyInterval,
            BenesBase::EnergyTriUnimodal => Plan::EnergyTriUnimodal,
            BenesBase::EnergyBranchAndBound => Plan::EnergyBranchAndBound,
            BenesBase::EnergyLocalSearch => Plan::EnergyLocalSearch,
            BenesBase::ExactEnumeration => Plan::ExactEnumeration,
            BenesBase::FrontPeriodEnergyInterval => Plan::FrontPeriodEnergyInterval,
            BenesBase::FrontPeriodEnergyOneToOne => Plan::FrontPeriodEnergyOneToOne,
            BenesBase::FrontPeriodLatency => Plan::FrontPeriodLatency,
        }
    }

    /// The Benes wrapping of `plan`, or `None` when the plan's mapping
    /// class (replicated / general) is incompatible with the fabric.
    fn of(plan: Plan) -> Option<BenesBase> {
        Some(match plan {
            Plan::PeriodOneToOne => BenesBase::PeriodOneToOne,
            Plan::PeriodInterval => BenesBase::PeriodInterval,
            Plan::PeriodUnderLatency => BenesBase::PeriodUnderLatency,
            Plan::PeriodTriUnimodal => BenesBase::PeriodTriUnimodal,
            Plan::LatencyOneToOne => BenesBase::LatencyOneToOne,
            Plan::LatencyOneToOneSingleApp => BenesBase::LatencyOneToOneSingleApp,
            Plan::LatencyOneToOneGreedy => BenesBase::LatencyOneToOneGreedy,
            Plan::LatencyInterval => BenesBase::LatencyInterval,
            Plan::LatencyUnderPeriod => BenesBase::LatencyUnderPeriod,
            Plan::LatencyTriUnimodal => BenesBase::LatencyTriUnimodal,
            Plan::EnergyMatching => BenesBase::EnergyMatching,
            Plan::EnergyInterval => BenesBase::EnergyInterval,
            Plan::EnergyTriUnimodal => BenesBase::EnergyTriUnimodal,
            Plan::EnergyBranchAndBound => BenesBase::EnergyBranchAndBound,
            Plan::EnergyLocalSearch => BenesBase::EnergyLocalSearch,
            Plan::ExactEnumeration => BenesBase::ExactEnumeration,
            Plan::FrontPeriodEnergyInterval => BenesBase::FrontPeriodEnergyInterval,
            Plan::FrontPeriodEnergyOneToOne => BenesBase::FrontPeriodEnergyOneToOne,
            Plan::FrontPeriodLatency => BenesBase::FrontPeriodLatency,
            Plan::PeriodReplicated
            | Plan::EnergyReplicated
            | Plan::PeriodGeneralExact
            | Plan::PeriodGeneralLpt
            | Plan::Benes(_) => return None,
        })
    }
}

impl Plan {
    /// Crude work estimate for this plan on this instance, in abstract
    /// inner-loop units (roughly nanoseconds on a modern core, accurate
    /// to an order of magnitude at best). The batch engine sums these to
    /// decide whether a batch is worth fanning out over worker threads —
    /// the absolute scale only has to separate "microseconds" from
    /// "milliseconds", which the leading polynomial terms of each
    /// theorem's complexity bound do. Exponential fallbacks saturate: a
    /// single one justifies every thread the engine has.
    pub fn cost_estimate(&self, apps: &AppSet, platform: &Platform, spec: &ProblemSpec) -> u64 {
        let a = apps.a() as u64;
        let n = apps.n_max() as u64;
        let nt = apps.total_stages() as u64;
        let p = platform.p() as u64;
        let q = platform.procs.iter().map(|pr| pr.modes()).max().unwrap_or(1) as u64;
        let log2 = |x: u64| u64::from(64 - x.max(2).leading_zeros());
        let m = |xs: &[u64]| xs.iter().copied().fold(1u64, u64::saturating_mul);
        match self {
            // Exponential exact baselines: always worth every thread.
            Plan::PeriodGeneralExact
            | Plan::EnergyBranchAndBound
            | Plan::ExactEnumeration => u64::MAX / 4,
            // Mono-criterion polynomial solvers.
            Plan::PeriodOneToOne => m(&[nt * p, nt * p, log2(nt * p)]),
            Plan::PeriodInterval => m(&[a, n, n, p]),
            Plan::PeriodReplicated => m(&[a, n, n, p, q]),
            Plan::PeriodGeneralLpt => m(&[nt, p, log2(nt)]),
            Plan::LatencyOneToOne | Plan::LatencyOneToOneSingleApp => m(&[nt, log2(nt), p]),
            Plan::LatencyOneToOneGreedy => m(&[nt, p]),
            Plan::LatencyInterval => m(&[a, n, p]),
            // Bounded bi-/tri-criteria DPs (binary-search duals pay an
            // extra log factor folded into the p² term).
            Plan::LatencyUnderPeriod => m(&[a, n, n, p, q]),
            Plan::PeriodUnderLatency => m(&[a, n, n, p, p, q]),
            Plan::PeriodTriUnimodal | Plan::LatencyTriUnimodal | Plan::EnergyTriUnimodal => {
                m(&[a, n, n, p, p])
            }
            Plan::EnergyMatching => {
                let v = nt.max(p);
                m(&[v, v, v])
            }
            Plan::EnergyInterval => m(&[a, n, n, p, q]),
            Plan::EnergyReplicated => m(&[a, n, n, n, p, q]),
            Plan::EnergyLocalSearch => {
                let iters = spec.hints.local_search_iterations.unwrap_or(10_000) as u64;
                m(&[iters, nt.max(1)])
            }
            // Front sweeps: candidate count × per-candidate solve.
            Plan::FrontPeriodEnergyInterval => m(&[a, n, p, q, a, n, n, p, q]),
            Plan::FrontPeriodEnergyOneToOne => {
                let v = nt.max(p);
                m(&[a, n, p, q, v, v, v])
            }
            Plan::FrontPeriodLatency => m(&[a, n, p, a, n, n, p, q]),
            // Base solve plus one Benes routing certificate: the looping
            // algorithm is O(p log p) per routed round.
            Plan::Benes(base) => base
                .base_plan()
                .cost_estimate(apps, platform, spec)
                .saturating_add(m(&[p, log2(p)])),
        }
    }

    /// One-line description (theorem and algorithm) for logs and docs.
    pub fn describe(&self) -> &'static str {
        match self {
            Plan::PeriodOneToOne => "Thm 1: binary search + greedy assignment",
            Plan::PeriodInterval => "Thm 3: period DP + Algorithm 2",
            Plan::PeriodReplicated => "replicated period DP + Algorithm 2",
            Plan::PeriodGeneralExact => "exhaustive general-mapping search",
            Plan::PeriodGeneralLpt => "LPT packing heuristic",
            Plan::PeriodUnderLatency => "Thm 16 dual: binary search over period candidates",
            Plan::PeriodTriUnimodal => "Thm 24: energy budget as processor cap + Thm 16 dual",
            Plan::LatencyOneToOne => "Thm 8: canonical assignment",
            Plan::LatencyOneToOneSingleApp => "rearrangement inequality pairing",
            Plan::LatencyOneToOneGreedy => "greedy heaviest-stage/fastest-proc heuristic",
            Plan::LatencyInterval => "Thm 12: whole chains on the A fastest processors",
            Plan::LatencyUnderPeriod => "Thm 15/16: (L,T)(i,q) DP + Algorithm 2",
            Plan::LatencyTriUnimodal => "Thm 24: energy budget as processor cap + Thm 15/16",
            Plan::EnergyMatching => "Thm 19: Hungarian matching",
            Plan::EnergyInterval => "Thm 18/21: energy DP + convolution",
            Plan::EnergyReplicated => "replicated energy DP (DVFS vs replication)",
            Plan::EnergyTriUnimodal => "Thm 24: fewest processors satisfying both bounds",
            Plan::EnergyBranchAndBound => "Thm 26/27 branch-and-bound (exact)",
            Plan::EnergyLocalSearch => "randomized local search (heuristic)",
            Plan::ExactEnumeration => "exhaustive mapping enumeration (exact)",
            Plan::FrontPeriodEnergyInterval => "pruned sweep over Thm 18/21",
            Plan::FrontPeriodEnergyOneToOne => "pruned sweep over Thm 19",
            Plan::FrontPeriodLatency => "pruned sweep over Thm 15/16",
            Plan::Benes(base) => base.base_plan().describe_benes(),
        }
    }

    /// [`Plan::describe`] for the Benes-certified wrapping of `self`.
    fn describe_benes(&self) -> &'static str {
        match self {
            Plan::PeriodOneToOne => "Thm 1 + Benes routing certificate",
            Plan::PeriodInterval => "Thm 3 + Benes routing certificate",
            Plan::PeriodUnderLatency => "Thm 16 dual + Benes routing certificate",
            Plan::PeriodTriUnimodal => "Thm 24 + Benes routing certificate",
            Plan::LatencyOneToOne => "Thm 8 + Benes routing certificate",
            Plan::LatencyOneToOneSingleApp => "rearrangement pairing + Benes certificate",
            Plan::LatencyOneToOneGreedy => "greedy heuristic + Benes routing certificate",
            Plan::LatencyInterval => "Thm 12 + Benes routing certificate",
            Plan::LatencyUnderPeriod => "Thm 15/16 + Benes routing certificate",
            Plan::LatencyTriUnimodal => "Thm 24 + Benes routing certificate",
            Plan::EnergyMatching => "Thm 19 + Benes routing certificate",
            Plan::EnergyInterval => "Thm 18/21 + Benes routing certificate",
            Plan::EnergyTriUnimodal => "Thm 24 + Benes routing certificate",
            Plan::EnergyBranchAndBound => "Thm 26/27 B&B + Benes routing certificate",
            Plan::EnergyLocalSearch => "local search + Benes routing certificate",
            Plan::ExactEnumeration => "exhaustive enumeration + Benes certificate",
            Plan::FrontPeriodEnergyInterval
            | Plan::FrontPeriodEnergyOneToOne
            | Plan::FrontPeriodLatency => "pruned sweep + Benes routing certificates",
            _ => "Benes-certified base solve",
        }
    }
}

/// Reusable per-worker solver state: the flat DP arenas, Hungarian
/// workspace, cost-matrix buffer and bound vectors the routed solvers
/// thread their computations through. One scratch per worker thread turns
/// a batch of routed solves into the same zero-allocation regime the
/// Pareto sweep engine runs in.
#[derive(Default)]
pub struct RouterScratch {
    ws: DpWorkspace,
    hungarian: HungarianWorkspace,
    matrix: CostMatrix,
    tb: Vec<f64>,
    lb: Vec<f64>,
}

impl RouterScratch {
    /// Fresh scratch (all arenas empty; they grow on first use).
    pub fn new() -> Self {
        RouterScratch::default()
    }
}

/// Validate `spec` against the instance and select the solver. `Err` holds
/// the human-readable unsupported/invalid reason.
///
/// On a `CommTopology::Multistage` platform the selected base plan comes
/// back wrapped as [`Plan::Benes`]; replicated and general-mapping specs
/// are rejected there with the hardness-aware reason (their traffic is no
/// longer a partial permutation, so the rearrangeability guarantee — and
/// with it the solvers' contention-free cost model — does not apply).
pub fn plan(apps: &AppSet, platform: &Platform, spec: &ProblemSpec) -> Result<Plan, String> {
    spec.validate(apps).map_err(|e| format!("invalid spec: {e}"))?;
    // Instance-assembly check: a `PerApp` bandwidth vector (or
    // heterogeneous input/output matrix) too short for this application
    // count used to panic deep inside the bandwidth accessors; it is a
    // typed unsupported reason now.
    platform
        .validate_for_apps(apps.a())
        .map_err(|e| format!("platform cannot serve this instance: {e}"))?;
    let base = plan_base(apps, platform, spec)?;
    if !platform.is_multistage() {
        return Ok(base);
    }
    match BenesBase::of(base) {
        Some(b) => Ok(Plan::Benes(b)),
        None => Err(format!(
            "no solver for {} / {} on a multistage fabric: replicated and general mappings \
             multiplex several flows per processor, so the traffic is not a partial permutation \
             and the Benes rearrangeability certificate (contention factor 1) does not apply",
            spec.objective.name(),
            spec.strategy.name()
        )),
    }
}

/// The topology-agnostic planner body: selects the base algorithm from
/// `(instance shape, platform class, spec)`.
fn plan_base(apps: &AppSet, platform: &Platform, spec: &ProblemSpec) -> Result<Plan, String> {
    let tb = spec.constraints.period.is_some();
    let lb = spec.constraints.latency.is_some();
    let eb = spec.constraints.energy.is_some();
    let fully_hom = platform.class() == PlatformClass::FullyHomogeneous;
    let links_hom = crate::mono::links_are_homogeneous(platform);
    let uni_modal = platform.is_uni_modal();
    let exact = spec.hints.exact_fallback;
    let heuristic = spec.hints.heuristic_fallback;
    let unsupported = |why: &str, hint: &str| {
        Err(format!(
            "no solver for {} / {} here: {why}{hint}",
            spec.objective.name(),
            spec.strategy.name()
        ))
    };
    let need_exact = ", set hints.exact_fallback to enumerate (small instances only)";
    let need_any =
        ", set hints.exact_fallback (small instances) or hints.heuristic_fallback (uncertified)";

    match (spec.objective, spec.strategy) {
        // -------------------------------------------------- period --
        (Objective::Period, Strategy::OneToOne) => {
            if lb || eb {
                if exact {
                    Ok(Plan::ExactEnumeration)
                } else {
                    unsupported("no polynomial one-to-one solver takes these bounds", need_exact)
                }
            } else if links_hom {
                Ok(Plan::PeriodOneToOne)
            } else if exact {
                Ok(Plan::ExactEnumeration)
            } else {
                unsupported("NP-hard on fully heterogeneous links (Thm 2)", need_exact)
            }
        }
        (Objective::Period, Strategy::Interval) => {
            if eb {
                if fully_hom && uni_modal {
                    Ok(Plan::PeriodTriUnimodal)
                } else if exact {
                    Ok(Plan::ExactEnumeration)
                } else {
                    unsupported(
                        "the energy budget needs a fully homogeneous uni-modal platform (Thm 24) \
                         — multi-modal is NP-hard (Thm 26)",
                        need_exact,
                    )
                }
            } else if lb {
                if fully_hom {
                    Ok(Plan::PeriodUnderLatency)
                } else if exact {
                    Ok(Plan::ExactEnumeration)
                } else {
                    unsupported("Thm 16 needs a fully homogeneous platform", need_exact)
                }
            } else if fully_hom {
                Ok(Plan::PeriodInterval)
            } else if exact {
                Ok(Plan::ExactEnumeration)
            } else {
                unsupported(
                    "NP-hard beyond fully homogeneous platforms (Thm 5 and onward)",
                    need_exact,
                )
            }
        }
        (Objective::Period, Strategy::Replicated) => {
            if tb || lb || eb {
                unsupported("the replicated period DP takes no extra bounds", "")
            } else if fully_hom {
                Ok(Plan::PeriodReplicated)
            } else {
                unsupported("replication needs a fully homogeneous platform", "")
            }
        }
        (Objective::Period, Strategy::General) => {
            if tb || lb || eb {
                unsupported("the general-mapping solvers take no extra bounds", "")
            } else if exact && fully_hom {
                Ok(Plan::PeriodGeneralExact)
            } else if heuristic && platform.p() > 0 {
                Ok(Plan::PeriodGeneralLpt)
            } else if exact {
                unsupported(
                    "the exact general search needs a fully homogeneous platform",
                    ", set hints.heuristic_fallback for the LPT packing instead",
                )
            } else {
                unsupported(
                    "processor sharing makes period minimization NP-hard even for one application",
                    need_any,
                )
            }
        }
        // ------------------------------------------------- latency --
        (Objective::Latency, Strategy::OneToOne) => {
            if tb || eb {
                if exact {
                    Ok(Plan::ExactEnumeration)
                } else {
                    unsupported("no polynomial one-to-one solver takes these bounds", need_exact)
                }
            } else if fully_hom {
                Ok(Plan::LatencyOneToOne)
            } else if apps.a() == 1 && links_hom {
                Ok(Plan::LatencyOneToOneSingleApp)
            } else if exact {
                Ok(Plan::ExactEnumeration)
            } else if heuristic && links_hom {
                Ok(Plan::LatencyOneToOneGreedy)
            } else {
                unsupported(
                    "NP-hard for several applications on heterogeneous processors (Thm 9)",
                    need_any,
                )
            }
        }
        (Objective::Latency, Strategy::Interval) => {
            if eb {
                if fully_hom && uni_modal {
                    Ok(Plan::LatencyTriUnimodal)
                } else if exact {
                    Ok(Plan::ExactEnumeration)
                } else {
                    unsupported(
                        "the energy budget needs a fully homogeneous uni-modal platform (Thm 24) \
                         — multi-modal is NP-hard (Thm 26)",
                        need_exact,
                    )
                }
            } else if tb {
                if fully_hom {
                    Ok(Plan::LatencyUnderPeriod)
                } else if exact {
                    Ok(Plan::ExactEnumeration)
                } else {
                    unsupported("Thm 15/16 needs a fully homogeneous platform", need_exact)
                }
            } else if links_hom {
                Ok(Plan::LatencyInterval)
            } else if exact {
                Ok(Plan::ExactEnumeration)
            } else {
                unsupported("NP-hard on fully heterogeneous links (Thm 13)", need_exact)
            }
        }
        (Objective::Latency, Strategy::Replicated | Strategy::General) => {
            unsupported("no latency solver exists for this mapping rule", "")
        }
        // -------------------------------------------------- energy --
        (Objective::Energy, Strategy::OneToOne) => {
            if lb {
                if exact {
                    Ok(Plan::EnergyBranchAndBound)
                } else {
                    unsupported(
                        "energy under latency bounds is NP-hard with multiple modes (Thm 26)",
                        need_exact,
                    )
                }
            } else if links_hom {
                Ok(Plan::EnergyMatching)
            } else if exact {
                Ok(Plan::EnergyBranchAndBound)
            } else {
                unsupported("NP-hard on fully heterogeneous links (Thm 20)", need_exact)
            }
        }
        (Objective::Energy, Strategy::Interval) => {
            if lb {
                if fully_hom && uni_modal {
                    Ok(Plan::EnergyTriUnimodal)
                } else if exact {
                    Ok(Plan::EnergyBranchAndBound)
                } else if heuristic {
                    Ok(Plan::EnergyLocalSearch)
                } else {
                    unsupported(
                        "energy under period + latency bounds is NP-hard with multiple modes \
                         (Thm 26/27)",
                        need_any,
                    )
                }
            } else if fully_hom {
                Ok(Plan::EnergyInterval)
            } else if exact {
                Ok(Plan::EnergyBranchAndBound)
            } else if heuristic {
                Ok(Plan::EnergyLocalSearch)
            } else {
                unsupported("Thm 18/21 needs a fully homogeneous platform", need_any)
            }
        }
        (Objective::Energy, Strategy::Replicated) => {
            if lb || eb || !tb {
                unsupported("the replicated energy DP takes exactly period bounds", "")
            } else if fully_hom {
                Ok(Plan::EnergyReplicated)
            } else {
                unsupported("replication needs a fully homogeneous platform", "")
            }
        }
        (Objective::Energy, Strategy::General) => {
            unsupported("no energy solver exists for general mappings", "")
        }
        // -------------------------------------------------- fronts --
        (Objective::PeriodEnergyFront, Strategy::Interval) => {
            if fully_hom {
                Ok(Plan::FrontPeriodEnergyInterval)
            } else {
                unsupported("the interval sweep needs a fully homogeneous platform", "")
            }
        }
        (Objective::PeriodEnergyFront, Strategy::OneToOne) => {
            if links_hom {
                Ok(Plan::FrontPeriodEnergyOneToOne)
            } else {
                unsupported("the matching sweep needs homogeneous links (Thm 20)", "")
            }
        }
        (Objective::PeriodLatencyFront, Strategy::Interval) => {
            if fully_hom {
                Ok(Plan::FrontPeriodLatency)
            } else {
                unsupported("the interval sweep needs a fully homogeneous platform", "")
            }
        }
        (Objective::PeriodEnergyFront | Objective::PeriodLatencyFront, _) => {
            unsupported("fronts exist for one-to-one and interval mappings only", "")
        }
    }
}

/// Route a spec end to end with a fresh [`RouterScratch`]. See
/// [`route_with`] for the batch form.
pub fn route(apps: &AppSet, platform: &Platform, spec: &ProblemSpec) -> SolveOutcome {
    route_with(apps, platform, spec, &mut RouterScratch::new())
}

/// Route a spec end to end, reusing `scratch` across calls (the
/// per-worker form used by the batch engine: consecutive solves share the
/// DP arenas, the Hungarian workspace and the bound buffers).
pub fn route_with(
    apps: &AppSet,
    platform: &Platform,
    spec: &ProblemSpec,
    scratch: &mut RouterScratch,
) -> SolveOutcome {
    let selected = match plan(apps, platform, spec) {
        Ok(p) => p,
        Err(reason) => return SolveOutcome::Unsupported { reason },
    };
    execute(apps, platform, spec, selected, scratch)
}

/// Execute an already-selected plan, skipping the re-validation and
/// re-planning `route_with` would perform. `selected` **must** be the
/// [`plan`] result for this exact `(apps, platform, spec)` triple —
/// callers that planned once (e.g. the batch engine's adaptive cutoff)
/// use this to avoid paying the planner twice per item.
pub fn route_planned(
    apps: &AppSet,
    platform: &Platform,
    spec: &ProblemSpec,
    selected: Plan,
    scratch: &mut RouterScratch,
) -> SolveOutcome {
    execute(apps, platform, spec, selected, scratch)
}

/// Bounds for the bounded solvers: the spec's vector, or `+∞` per
/// application when the criterion is unconstrained.
fn fill_bounds(dst: &mut Vec<f64>, src: &Option<Vec<f64>>, a: usize) {
    dst.clear();
    match src {
        Some(bs) => dst.extend_from_slice(bs),
        None => dst.resize(a, f64::INFINITY),
    }
}

fn plain(sol: Solution) -> SolveOutcome {
    SolveOutcome::Solution(SolvedPoint {
        objective: sol.objective,
        mapping: SolvedMapping::Plain(sol.mapping),
    })
}

fn infeasible(spec: &ProblemSpec) -> SolveOutcome {
    SolveOutcome::Infeasible {
        reason: format!(
            "no feasible {} mapping minimizing {} under the given bounds",
            spec.strategy.name(),
            spec.objective.name()
        ),
    }
}

fn from_plain(spec: &ProblemSpec, sol: Option<Solution>) -> SolveOutcome {
    match sol {
        Some(s) => plain(s),
        None => infeasible(spec),
    }
}

fn kind_of(spec: &ProblemSpec) -> MappingKind {
    match spec.strategy {
        Strategy::OneToOne => MappingKind::OneToOne,
        _ => MappingKind::Interval,
    }
}

fn sweep_of(spec: &ProblemSpec) -> Sweep {
    match spec.hints.sweep_threads {
        Some(n) => Sweep::with_threads(n),
        None => Sweep::default(),
    }
}

fn front_outcome(spec: &ProblemSpec, entries: Vec<FrontEntry>) -> SolveOutcome {
    if entries.is_empty() {
        infeasible(spec)
    } else {
        SolveOutcome::Front(entries)
    }
}

fn execute(
    apps: &AppSet,
    platform: &Platform,
    spec: &ProblemSpec,
    selected: Plan,
    scratch: &mut RouterScratch,
) -> SolveOutcome {
    let a = apps.a();
    let comm = spec.comm;
    match selected {
        Plan::PeriodOneToOne => from_plain(
            spec,
            crate::mono::period_one_to_one::min_period_one_to_one_comm_hom(apps, platform, comm),
        ),
        Plan::PeriodInterval => from_plain(
            spec,
            crate::mono::period_interval::minimize_global_period(apps, platform, comm),
        ),
        Plan::PeriodReplicated => {
            match crate::replication::minimize_global_period_replicated(apps, platform, comm) {
                Some((mapping, objective)) => SolveOutcome::Solution(SolvedPoint {
                    objective,
                    mapping: SolvedMapping::Replicated(mapping),
                }),
                None => infeasible(spec),
            }
        }
        Plan::PeriodGeneralExact => {
            match crate::sharing::exact_min_period_general(apps, platform, comm) {
                Some((mapping, objective)) => SolveOutcome::Solution(SolvedPoint {
                    objective,
                    mapping: SolvedMapping::General(mapping),
                }),
                None => infeasible(spec),
            }
        }
        Plan::PeriodGeneralLpt => match crate::sharing::lpt_general_period(apps, platform, comm) {
            Some((mapping, objective)) => SolveOutcome::Solution(SolvedPoint {
                objective,
                mapping: SolvedMapping::General(mapping),
            }),
            None => infeasible(spec),
        },
        Plan::PeriodUnderLatency => {
            fill_bounds(&mut scratch.lb, &spec.constraints.latency, a);
            from_plain(
                spec,
                min_period_under_latency_fully_hom(apps, platform, comm, &scratch.lb),
            )
        }
        Plan::PeriodTriUnimodal => {
            fill_bounds(&mut scratch.lb, &spec.constraints.latency, a);
            let budget = spec.constraints.energy.expect("planned with an energy budget");
            from_plain(
                spec,
                crate::tri::unimodal::min_period_tri_unimodal(
                    apps, platform, comm, &scratch.lb, budget,
                ),
            )
        }
        Plan::LatencyOneToOne => from_plain(
            spec,
            crate::mono::latency::min_latency_one_to_one_fully_hom(apps, platform),
        ),
        Plan::LatencyOneToOneSingleApp => from_plain(
            spec,
            crate::mono::latency::min_latency_one_to_one_single_app(apps, platform),
        ),
        Plan::LatencyOneToOneGreedy => from_plain(
            spec,
            crate::mono::latency::latency_one_to_one_heuristic(apps, platform),
        ),
        Plan::LatencyInterval => from_plain(
            spec,
            crate::mono::latency::min_latency_interval_comm_hom(apps, platform),
        ),
        Plan::LatencyUnderPeriod => {
            let Some(tables) = crate::bi::interval_cost_tables(apps, platform, comm) else {
                return infeasible(spec);
            };
            fill_bounds(&mut scratch.tb, &spec.constraints.period, a);
            from_plain(
                spec,
                min_latency_under_period_scratch(
                    apps,
                    platform,
                    &tables,
                    &scratch.tb,
                    &mut scratch.ws,
                ),
            )
        }
        Plan::LatencyTriUnimodal => {
            fill_bounds(&mut scratch.tb, &spec.constraints.period, a);
            let budget = spec.constraints.energy.expect("planned with an energy budget");
            from_plain(
                spec,
                crate::tri::unimodal::min_latency_tri_unimodal(
                    apps, platform, comm, &scratch.tb, budget,
                ),
            )
        }
        Plan::EnergyMatching => {
            let Some(table) = StageCostTable::build(apps, platform, comm) else {
                return infeasible(spec);
            };
            fill_bounds(&mut scratch.tb, &spec.constraints.period, a);
            from_plain(
                spec,
                min_energy_one_to_one_with_table(
                    apps,
                    platform,
                    &table,
                    &scratch.tb,
                    &mut scratch.hungarian,
                    &mut scratch.matrix,
                ),
            )
        }
        Plan::EnergyInterval => {
            // Mirror the one-shot entry point exactly: lean tables under
            // the overlap model (the run-decomposed core never reads the
            // cycle matrices), full tables otherwise.
            let tables = if matches!(comm, CommModel::Overlap) {
                crate::bi::interval_cost_tables_lean(apps, platform, comm)
            } else {
                crate::bi::interval_cost_tables(apps, platform, comm)
            };
            let Some(tables) = tables else {
                return infeasible(spec);
            };
            fill_bounds(&mut scratch.tb, &spec.constraints.period, a);
            from_plain(
                spec,
                min_energy_interval_scratch(
                    apps,
                    platform,
                    &tables,
                    &scratch.tb,
                    &mut scratch.ws,
                ),
            )
        }
        Plan::EnergyReplicated => {
            fill_bounds(&mut scratch.tb, &spec.constraints.period, a);
            match crate::replication::min_energy_replicated_under_period(
                apps,
                platform,
                comm,
                &scratch.tb,
            ) {
                Some((mapping, objective)) => SolveOutcome::Solution(SolvedPoint {
                    objective,
                    mapping: SolvedMapping::Replicated(mapping),
                }),
                None => infeasible(spec),
            }
        }
        Plan::EnergyTriUnimodal => {
            fill_bounds(&mut scratch.tb, &spec.constraints.period, a);
            fill_bounds(&mut scratch.lb, &spec.constraints.latency, a);
            from_plain(
                spec,
                crate::tri::unimodal::min_energy_tri_unimodal(
                    apps,
                    platform,
                    comm,
                    &scratch.tb,
                    &scratch.lb,
                ),
            )
        }
        Plan::EnergyBranchAndBound => {
            fill_bounds(&mut scratch.tb, &spec.constraints.period, a);
            fill_bounds(&mut scratch.lb, &spec.constraints.latency, a);
            from_plain(
                spec,
                crate::tri::multimodal::branch_and_bound_tri(
                    apps,
                    platform,
                    comm,
                    kind_of(spec),
                    &scratch.tb,
                    &scratch.lb,
                ),
            )
        }
        Plan::EnergyLocalSearch => {
            fill_bounds(&mut scratch.tb, &spec.constraints.period, a);
            fill_bounds(&mut scratch.lb, &spec.constraints.latency, a);
            let defaults = LocalSearchConfig::default();
            let cfg = LocalSearchConfig {
                iterations: spec.hints.local_search_iterations.unwrap_or(defaults.iterations),
                seed: spec.hints.seed.unwrap_or(defaults.seed),
                ..defaults
            };
            from_plain(
                spec,
                local_search(apps, platform, comm, &scratch.tb, &scratch.lb, &cfg),
            )
        }
        Plan::ExactEnumeration => {
            let speed = if matches!(spec.objective, Objective::Energy)
                || spec.constraints.energy.is_some()
            {
                SpeedPolicy::All
            } else {
                SpeedPolicy::MaxOnly
            };
            let criterion = match spec.objective {
                Objective::Period => Criterion::Period,
                Objective::Latency => Criterion::Latency,
                Objective::Energy => Criterion::Energy,
                _ => unreachable!("fronts never plan the enumeration"),
            };
            let cfg = ExactConfig { kind: kind_of(spec), model: comm, speed };
            from_plain(
                spec,
                exact_optimize(apps, platform, cfg, criterion, &spec.constraints),
            )
        }
        Plan::FrontPeriodEnergyInterval | Plan::FrontPeriodEnergyOneToOne => {
            let kind = if selected == Plan::FrontPeriodEnergyInterval {
                MappingKind::Interval
            } else {
                MappingKind::OneToOne
            };
            let entries = period_energy_front_with(apps, platform, comm, kind, &sweep_of(spec))
                .into_iter()
                .map(|p| FrontEntry {
                    achieved: p.period,
                    objective: p.energy,
                    mapping: SolvedMapping::Plain(p.solution.mapping),
                })
                .collect();
            front_outcome(spec, entries)
        }
        Plan::FrontPeriodLatency => {
            let entries = period_latency_front_with(apps, platform, comm, &sweep_of(spec))
                .into_iter()
                .map(|p| FrontEntry {
                    achieved: p.period,
                    objective: p.latency,
                    mapping: SolvedMapping::Plain(p.solution.mapping),
                })
                .collect();
            front_outcome(spec, entries)
        }
        Plan::Benes(base) => {
            let outcome = execute(apps, platform, spec, base.base_plan(), scratch);
            certify_benes_outcome(apps, platform, outcome)
        }
    }
}

/// Certify every mapping in a routed outcome against the multistage
/// fabric: the inter-processor flow pattern must be a partial permutation
/// that the Benes network routes with every stage wire carrying at most
/// one flow. Plain interval/one-to-one mappings satisfy this by
/// construction (each enrolled processor hosts one interval, hence at most
/// one predecessor and one successor edge); a violation therefore signals
/// a mapping class the fabric cost model does not cover and comes back as
/// a typed [`SolveOutcome::Unsupported`] — never a panic.
fn certify_benes_outcome(
    apps: &AppSet,
    platform: &Platform,
    outcome: SolveOutcome,
) -> SolveOutcome {
    let check = |mapping: &SolvedMapping| -> Result<(), String> {
        match mapping {
            SolvedMapping::Plain(m) => certify_benes_mapping(apps, platform, m),
            SolvedMapping::Replicated(_) | SolvedMapping::General(_) => Err(
                "replicated/general mappings are not routable as a partial permutation".into(),
            ),
        }
    };
    let fail = |reason: String| SolveOutcome::Unsupported {
        reason: format!("multistage routing certificate failed: {reason}"),
    };
    match &outcome {
        SolveOutcome::Solution(point) => match check(&point.mapping) {
            Ok(()) => outcome,
            Err(reason) => fail(reason),
        },
        SolveOutcome::Front(entries) => {
            for e in entries {
                if let Err(reason) = check(&e.mapping) {
                    return fail(reason);
                }
            }
            outcome
        }
        SolveOutcome::Infeasible { .. } | SolveOutcome::Unsupported { .. } => outcome,
    }
}

/// Route one plain mapping's inter-processor flows through the Benes
/// network and verify the routing is contention-free.
fn certify_benes_mapping(
    apps: &AppSet,
    platform: &Platform,
    mapping: &Mapping,
) -> Result<(), String> {
    let net = BenesNetwork::with_capacity_for(platform.p());
    let mut dest: Vec<Option<usize>> = vec![None; net.ports()];
    let mut incoming = vec![false; net.ports()];
    for a in 0..apps.a() {
        let chain = mapping.app_chain(a);
        for w in chain.windows(2) {
            let (u, v) = (w[0].proc, w[1].proc);
            if u == v {
                continue; // no fabric crossing
            }
            if dest[u].is_some() {
                return Err(format!("processor {u} has several outgoing flows"));
            }
            if incoming[v] {
                return Err(format!("processor {v} has several incoming flows"));
            }
            dest[u] = Some(v);
            incoming[v] = true;
        }
    }
    let routing = net.route(&dest);
    if routing.verify(&dest) {
        Ok(())
    } else {
        Err("routed paths are not stage-edge-disjoint".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpo_model::generator::section2_example;

    fn fully_hom() -> (AppSet, Platform) {
        let (apps, _) = section2_example();
        (apps, Platform::fully_homogeneous(3, vec![1.0, 3.0, 6.0, 8.0], 1.0).unwrap())
    }

    #[test]
    fn planner_selects_the_paper_theorems() {
        let (apps, pf) = fully_hom();
        let cases = [
            (Objective::Period, Strategy::Interval, Plan::PeriodInterval),
            (Objective::Latency, Strategy::Interval, Plan::LatencyInterval),
            (Objective::PeriodEnergyFront, Strategy::Interval, Plan::FrontPeriodEnergyInterval),
            (Objective::PeriodLatencyFront, Strategy::Interval, Plan::FrontPeriodLatency),
        ];
        for (objective, strategy, expected) in cases {
            let spec = ProblemSpec::new(objective, strategy, CommModel::Overlap);
            assert_eq!(plan(&apps, &pf, &spec).unwrap(), expected, "{}", objective.name());
        }
        let spec = ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
            .with_period_bounds(vec![2.0, 2.0]);
        assert_eq!(plan(&apps, &pf, &spec).unwrap(), Plan::EnergyInterval);
    }

    #[test]
    fn cost_estimates_order_cheap_below_heavy() {
        let (apps, pf) = fully_hom();
        let spec = ProblemSpec::new(Objective::Period, Strategy::Interval, CommModel::Overlap);
        let dp = Plan::PeriodInterval.cost_estimate(&apps, &pf, &spec);
        let front = Plan::FrontPeriodEnergyInterval.cost_estimate(&apps, &pf, &spec);
        let exact = Plan::ExactEnumeration.cost_estimate(&apps, &pf, &spec);
        assert!(dp > 0);
        assert!(front > dp, "a full sweep ({front}) outweighs one DP ({dp})");
        assert!(exact > front, "exponential baselines saturate");
        // The estimate never overflows into a small value on big shapes.
        let wide = Platform::fully_homogeneous(64, vec![1.0; 16], 1.0).unwrap();
        assert!(
            Plan::FrontPeriodEnergyInterval.cost_estimate(&apps, &wide, &spec)
                >= Plan::FrontPeriodEnergyInterval.cost_estimate(&apps, &pf, &spec)
        );
    }

    #[test]
    fn invalid_specs_come_back_unsupported_not_panicking() {
        let (apps, pf) = fully_hom();
        // Wrong bound count would assert inside the solver; the router
        // must catch it first.
        let spec = ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
            .with_period_bounds(vec![2.0]);
        match route(&apps, &pf, &spec) {
            SolveOutcome::Unsupported { reason } => assert!(reason.contains("2 applications")),
            other => panic!("expected unsupported, got {other:?}"),
        }
    }

    #[test]
    fn np_hard_combination_requires_explicit_fallback() {
        let (apps, pf) = section2_example(); // comm-hom, multi-modal
        let spec = ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
            .with_period_bounds(vec![2.0, 2.0])
            .with_latency_bounds(vec![1e9, 1e9]);
        assert!(matches!(route(&apps, &pf, &spec), SolveOutcome::Unsupported { .. }));
        let mut hinted = spec.clone();
        hinted.hints.exact_fallback = true;
        assert_eq!(plan(&apps, &pf, &hinted).unwrap(), Plan::EnergyBranchAndBound);
        match route(&apps, &pf, &hinted) {
            SolveOutcome::Solution(s) => assert!((s.objective - 46.0).abs() < 1e-9),
            other => panic!("expected solution, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_bounds_are_reported_per_spec() {
        let (apps, pf) = fully_hom();
        let spec = ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
            .with_period_bounds(vec![1e-3, 1e-3]);
        assert!(matches!(route(&apps, &pf, &spec), SolveOutcome::Infeasible { .. }));
    }

    #[test]
    fn section2_compromise_through_the_front_door() {
        let (apps, pf) = fully_hom();
        let spec = ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
            .with_period_bounds(vec![2.0, 2.0]);
        match route(&apps, &pf, &spec) {
            SolveOutcome::Solution(s) => {
                assert!((s.objective - 46.0).abs() < 1e-9);
                s.mapping.as_plain().unwrap().validate(&apps, &pf).unwrap();
            }
            other => panic!("expected solution, got {other:?}"),
        }
    }
}
