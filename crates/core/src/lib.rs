//! # cpo-core — solvers for concurrent pipelined applications
//!
//! This crate implements **every algorithm** of Benoit, Renaud-Goud,
//! Robert, *"Performance and energy optimization of concurrent pipelined
//! applications"* (IPDPS 2010), plus exact baselines and the heuristics the
//! paper defers to future work.
//!
//! | Module | Paper result | Problem |
//! |---|---|---|
//! | [`mono::period_one_to_one`] | Thm 1 | period, one-to-one, comm-homogeneous (binary search + greedy) |
//! | [`mono::period_interval`] | Thm 3 | period, interval, fully homogeneous (DP + Algorithm 2) |
//! | [`mono::latency`] | Thms 8, 12 | latency, one-to-one / interval |
//! | [`bi::period_latency`] | Thms 15, 16 | latency under period bounds and dual (DP) |
//! | [`bi::period_energy`] | Thms 18, 19, 21 | energy under period bounds (DP / Hungarian matching) |
//! | [`tri::unimodal`] | Thms 23, 24 | tri-criteria with uni-modal processors |
//! | [`tri::multimodal`] | Thms 26, 27 | tri-criteria, exact branch-and-bound (NP-hard) |
//! | [`exact`] | — | exhaustive baselines certifying optimality |
//! | [`fairness`] | Eq. 6 / Thms 6, 7 | stretch weights, reference optima, weight-scaling trick |
//! | [`heuristics`] | Section 6 | greedy DVFS downscaling, local search |
//! | [`replication`] | Section 6 ext. | replicated intervals: period DP, energy-aware DVFS-vs-replication |
//! | [`sharing`] | Section 6 ext. | general mappings: exact, LPT heuristic, sharing-gain experiment |
//! | [`pareto`] | — | period/energy and period/latency trade-off fronts |
//! | [`sweep`] | — | pruned, parallel threshold-sweep engine behind every front |
//!
//! All solvers return a [`Solution`] (mapping + objective value) or `None`
//! when the instance is infeasible for the requested strategy.

pub mod alloc;
pub mod bi;
pub mod dp;
pub mod exact;
pub mod fairness;
pub mod heuristics;
pub mod mono;
pub mod pareto;
pub mod replication;
pub mod router;
pub mod sharing;
pub mod solution;
pub mod sweep;
pub mod tri;

pub use router::{plan, route, route_with, Plan, RouterScratch};
pub use solution::{Criterion, MappingKind, Solution};

/// Prelude re-exporting the crate's full public solver surface: every
/// entry point of every module (mono/bi/tri solvers, exact baselines,
/// heuristics, fairness, the Section 6 extensions, the Pareto sweeps) plus
/// the typed front door (problem IR + router).
pub mod prelude {
    pub use crate::bi::period_energy::{
        min_energy_interval_fully_hom, min_energy_one_to_one_matching,
    };
    pub use crate::bi::period_latency::{
        min_latency_under_period_fully_hom, min_period_under_latency_fully_hom,
    };
    pub use crate::exact::{exact_optimize, ExactConfig, SpeedPolicy};
    pub use crate::fairness::{
        apply_period_stretch_weights, reference_latencies, reference_periods,
        reference_periods_exact, scale_out_weights,
    };
    pub use crate::heuristics::{greedy_energy_downscale, local_search, LocalSearchConfig};
    pub use crate::mono::latency::{
        latency_one_to_one_heuristic, min_latency_interval_comm_hom,
        min_latency_one_to_one_fully_hom, min_latency_one_to_one_single_app,
    };
    pub use crate::mono::period_interval::minimize_global_period;
    pub use crate::mono::period_one_to_one::min_period_one_to_one_comm_hom;
    pub use crate::pareto::{
        period_energy_front, period_energy_front_with, period_latency_front,
        period_latency_front_with, ParetoPoint, PeriodLatencyPoint,
    };
    pub use crate::replication::{
        min_energy_replicated_under_period, minimize_global_period_replicated,
        replicated_period_table, ReplicatedPartition, ReplicatedPeriodTable,
    };
    pub use crate::router::{plan, route, route_with, Plan, RouterScratch};
    pub use crate::sharing::{exact_min_period_general, lpt_general_period, sharing_gain};
    pub use crate::solution::{Criterion, MappingKind, Solution};
    pub use crate::sweep::Sweep;
    pub use crate::tri::multimodal::{
        branch_and_bound_tri, branch_and_bound_tri_counted, tri_feasible,
    };
    pub use crate::tri::unimodal::{
        min_energy_tri_unimodal, min_latency_tri_unimodal, min_period_tri_unimodal,
    };
    pub use cpo_model::spec::{
        FrontEntry, Objective, ProblemSpec, SolveOutcome, SolveRequest, SolvedMapping,
        SolvedPoint, SolverHints, Strategy,
    };
}
