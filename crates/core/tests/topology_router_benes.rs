//! Router behavior across the `CommTopology` split:
//!
//! * `Dedicated` platforms are untouched by the refactor — the DP context
//!   built through the preserved pre-refactor constructor
//!   (`HomCtx::new`, bare `δ / b` divisions) must produce **bitwise**
//!   the same tables as the topology-aware `HomCtx::with_comm` path the
//!   solvers now use;
//! * a zero-hop-latency `Multistage` fabric solves every routed problem
//!   to the **bitwise** same objective and mapping as the uniform
//!   dedicated platform it shadows;
//! * multistage specs come back wrapped as `Plan::Benes` and their
//!   solutions always pass the routing certificate (valid plain mappings
//!   are partial permutations — rearrangeable in one round);
//! * replicated/general strategies on a fabric, and under-provisioned
//!   `PerApp` link vectors anywhere, degrade to **typed** `Unsupported`
//!   outcomes instead of panicking.

use cpo_core::dp::{period_table_with, DpScratch, HomCtx, IntervalCostTable};
use cpo_core::router::{self, BenesBase, Plan};
use cpo_model::generator::{random_apps, random_fully_homogeneous, AppGenConfig, PlatformGenConfig};
use cpo_model::prelude::*;
// `proptest::prelude::Strategy` (the trait) would shadow the spec enum.
use cpo_model::spec::Strategy;
use proptest::prelude::*;

const MODELS: [CommModel; 2] = [CommModel::Overlap, CommModel::NoOverlap];

fn fabric_twin(dedicated: &Platform, hop_latency: f64) -> Platform {
    let b = match dedicated.links {
        Links::Uniform(b) => b,
        _ => unreachable!("twin construction needs uniform links"),
    };
    Platform::multistage(dedicated.procs.clone(), MultistageNetwork::new(b, hop_latency).unwrap())
        .unwrap()
}

/// Period bounds that are tight for small `i`, loose for large `i`.
fn bounds_for(apps: &AppSet, i: u64) -> Vec<f64> {
    apps.apps.iter().map(|a| a.total_work() / (1.0 + i as f64) + 1.0).collect()
}

// ---------------------------------------------------------------------------
// Satellite: PerApp under-provisioning is typed, not a panic
// ---------------------------------------------------------------------------

/// Two applications over a one-entry `PerApp` bandwidth vector: the
/// pre-fix code indexed `bs[1]` and panicked inside the router; now the
/// instance-assembly validation rejects it with a typed reason, for every
/// objective/strategy combination.
#[test]
fn per_app_bandwidth_mismatch_is_typed_unsupported() {
    let apps = random_apps(&AppGenConfig { apps: 2, stages: (1, 3), ..Default::default() }, 7);
    let procs =
        vec![Processor::new(vec![1.0, 2.0]).unwrap(); apps.total_stages() + 2];
    let pf = Platform::new(procs, Links::PerApp(vec![1.0])).unwrap();

    match pf.validate_for_apps(apps.a()) {
        Err(ModelError::DimensionMismatch { what, expected, found }) => {
            assert_eq!(what, "per-app bandwidth entries");
            assert_eq!((expected, found), (2, 1));
        }
        other => panic!("expected a dimension mismatch, got {other:?}"),
    }

    let tb = bounds_for(&apps, 1);
    let specs = [
        ProblemSpec::new(Objective::Period, Strategy::Interval, CommModel::Overlap),
        ProblemSpec::new(Objective::Period, Strategy::OneToOne, CommModel::NoOverlap),
        ProblemSpec::new(Objective::Latency, Strategy::Interval, CommModel::Overlap),
        ProblemSpec::new(Objective::Energy, Strategy::OneToOne, CommModel::Overlap)
            .with_period_bounds(tb.clone()),
        ProblemSpec::new(Objective::Period, Strategy::Replicated, CommModel::Overlap),
        ProblemSpec::new(Objective::PeriodLatencyFront, Strategy::Interval, CommModel::Overlap),
    ];
    for spec in &specs {
        assert!(router::plan(&apps, &pf, spec).is_err(), "{spec:?} must not plan");
        match router::route(&apps, &pf, spec) {
            SolveOutcome::Unsupported { reason } => {
                assert!(
                    reason.contains("per-app bandwidth entries"),
                    "reason should name the short vector: {reason}"
                );
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    // A matching vector passes the same gate.
    let ok = Platform::new(
        vec![Processor::new(vec![1.0, 2.0]).unwrap(); apps.total_stages() + 2],
        Links::PerApp(vec![1.0, 2.0]),
    )
    .unwrap();
    assert!(ok.validate_for_apps(apps.a()).is_ok());
    // Period / one-to-one is polynomial on per-app (comm-homogeneous)
    // links: with a well-sized vector the planner accepts again.
    assert!(router::plan(&apps, &ok, &specs[1]).is_ok());
}

// ---------------------------------------------------------------------------
// Multistage planning and certification
// ---------------------------------------------------------------------------

#[test]
fn multistage_specs_wrap_their_base_plan() {
    let apps = random_apps(&AppGenConfig { apps: 2, stages: (1, 3), ..Default::default() }, 11);
    let dedicated = random_fully_homogeneous(
        &PlatformGenConfig { procs: apps.total_stages() + 2, modes: (2, 3), ..Default::default() },
        12,
    );
    let fabric = fabric_twin(&dedicated, 0.05);

    let spec = ProblemSpec::new(Objective::Period, Strategy::Interval, CommModel::Overlap);
    assert_eq!(router::plan(&apps, &dedicated, &spec).unwrap(), Plan::PeriodInterval);
    assert_eq!(
        router::plan(&apps, &fabric, &spec).unwrap(),
        Plan::Benes(BenesBase::PeriodInterval)
    );

    // Replicated / general mappings multiplex flows per processor: the
    // rearrangeability certificate does not apply and the planner says so.
    for strategy in [Strategy::Replicated, Strategy::General] {
        let mut spec = ProblemSpec::new(Objective::Period, strategy, CommModel::Overlap);
        // The general-mapping base plans only exist behind the exact /
        // heuristic hints; enable both so the rejection tested here is
        // the fabric wrap, not a missing base solver.
        spec.hints.exact_fallback = true;
        let err = router::plan(&apps, &fabric, &spec).unwrap_err();
        assert!(err.contains("partial permutation"), "hardness-aware reason: {err}");
        match router::route(&apps, &fabric, &spec) {
            SolveOutcome::Unsupported { reason } => {
                assert!(reason.contains("partial permutation"))
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The preserved pre-refactor DP constructor (`HomCtx::new`: bare
    /// divisions, no overhead field in play) and the topology-aware
    /// `with_comm` path build bitwise-identical period tables on
    /// dedicated uniform platforms.
    #[test]
    fn hom_ctx_old_and_new_constructors_agree_on_dedicated(seed in 0u64..100_000) {
        let apps = random_apps(
            &AppGenConfig { apps: 2, stages: (1, 5), data: (0.0, 4.0), ..Default::default() },
            seed,
        );
        let pf = random_fully_homogeneous(
            &PlatformGenConfig {
                procs: apps.total_stages() + 2,
                modes: (1, 3),
                ..Default::default()
            },
            seed + 1,
        );
        let b = match pf.links {
            Links::Uniform(b) => b,
            _ => unreachable!(),
        };
        let speeds: Vec<f64> =
            (0..pf.procs[0].modes()).map(|m| pf.procs[0].speed(m)).collect();
        for (a, app) in apps.apps.iter().enumerate() {
            let comm = pf.uniform_comm(a).expect("uniform platform");
            prop_assert_eq!(comm.bandwidth.to_bits(), b.to_bits());
            prop_assert_eq!(comm.inter_overhead.to_bits(), 0.0f64.to_bits());
            for model in MODELS {
                let old_ctx = HomCtx::new(app, &speeds, b, model);
                let new_ctx = HomCtx::with_comm(app, &speeds, comm, model);
                let old = period_table_with(
                    &IntervalCostTable::build(&old_ctx),
                    app.n(),
                    &mut DpScratch::new(),
                );
                let new = period_table_with(
                    &IntervalCostTable::build(&new_ctx),
                    app.n(),
                    &mut DpScratch::new(),
                );
                prop_assert_eq!(old.best.len(), new.best.len());
                for (o, n) in old.best.iter().zip(&new.best) {
                    prop_assert_eq!(o.to_bits(), n.to_bits());
                }
            }
        }
    }

    /// A fabric with zero hop latency is priced exactly like the uniform
    /// dedicated platform: routed objective, mapping and feasibility all
    /// bitwise-identical, for scalar solves and fronts.
    #[test]
    fn zero_latency_fabric_routes_equal_dedicated(seed in 0u64..100_000, i in 0u64..4) {
        let apps = random_apps(
            &AppGenConfig { apps: 2, stages: (1, 3), ..Default::default() },
            seed,
        );
        let dedicated = random_fully_homogeneous(
            &PlatformGenConfig {
                procs: apps.total_stages() + 2,
                modes: (2, 3),
                ..Default::default()
            },
            seed + 1,
        );
        let fabric = fabric_twin(&dedicated, 0.0);
        let tb = bounds_for(&apps, i);
        let specs = [
            ProblemSpec::new(Objective::Period, Strategy::Interval, CommModel::Overlap),
            ProblemSpec::new(Objective::Period, Strategy::OneToOne, CommModel::NoOverlap),
            ProblemSpec::new(Objective::Latency, Strategy::Interval, CommModel::Overlap)
                .with_period_bounds(tb.clone()),
            ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
                .with_period_bounds(tb.clone()),
            ProblemSpec::new(Objective::PeriodEnergyFront, Strategy::Interval, CommModel::Overlap),
        ];
        for spec in &specs {
            let d = router::route(&apps, &dedicated, spec);
            let f = router::route(&apps, &fabric, spec);
            match (&d, &f) {
                (SolveOutcome::Solution(sd), SolveOutcome::Solution(sf)) => {
                    prop_assert_eq!(sd.objective.to_bits(), sf.objective.to_bits());
                    prop_assert_eq!(&sd.mapping, &sf.mapping);
                }
                (SolveOutcome::Front(ed), SolveOutcome::Front(ef)) => {
                    prop_assert_eq!(ed.len(), ef.len());
                    for (x, y) in ed.iter().zip(ef) {
                        prop_assert_eq!(x.achieved.to_bits(), y.achieved.to_bits());
                        prop_assert_eq!(x.objective.to_bits(), y.objective.to_bits());
                        prop_assert_eq!(&x.mapping, &y.mapping);
                    }
                }
                (SolveOutcome::Infeasible { .. }, SolveOutcome::Infeasible { .. }) => {}
                other => panic!("dedicated/fabric outcomes diverged: {other:?}"),
            }
        }
    }

    /// Every plain solution the routed solvers produce on a real fabric
    /// (positive hop latency) passes the Benes routing certificate: the
    /// outcome is never the certificate-failure `Unsupported`, and fabric
    /// objectives dominate their dedicated counterparts (the traversal
    /// overhead can only slow edges down).
    #[test]
    fn fabric_solutions_always_certify(seed in 0u64..100_000) {
        let apps = random_apps(
            &AppGenConfig { apps: 2, stages: (1, 4), ..Default::default() },
            seed,
        );
        let dedicated = random_fully_homogeneous(
            &PlatformGenConfig {
                procs: apps.total_stages() + 2,
                modes: (2, 3),
                ..Default::default()
            },
            seed + 1,
        );
        let fabric = fabric_twin(&dedicated, 0.125);
        for model in MODELS {
            for (objective, strategy) in [
                (Objective::Period, Strategy::Interval),
                (Objective::Period, Strategy::OneToOne),
                (Objective::Latency, Strategy::Interval),
            ] {
                let spec = ProblemSpec::new(objective, strategy, model);
                prop_assert!(matches!(
                    router::plan(&apps, &fabric, &spec),
                    Ok(Plan::Benes(_))
                ));
                let f = router::route(&apps, &fabric, &spec);
                match &f {
                    SolveOutcome::Solution(s) => {
                        prop_assert!(s.mapping.as_plain().is_some());
                        if let SolveOutcome::Solution(d) = router::route(&apps, &dedicated, &spec)
                        {
                            prop_assert!(
                                s.objective >= d.objective,
                                "hop latency removed cost: {} < {}",
                                s.objective,
                                d.objective
                            );
                        }
                    }
                    SolveOutcome::Infeasible { .. } => {}
                    SolveOutcome::Unsupported { reason } => {
                        prop_assert!(
                            !reason.contains("certificate failed"),
                            "plain mapping failed rearrangement: {reason}"
                        );
                    }
                    other => panic!("unexpected outcome {other:?}"),
                }
            }
        }
    }
}
