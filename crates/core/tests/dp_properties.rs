//! Property tests for the chain-partition dynamic programs, against an
//! independent brute-force enumeration of partitions (not the shared
//! `exact` module — a genuinely different oracle).

use cpo_core::dp::{
    energy_under_period, energy_under_period_with, latency_under_period,
    latency_under_period_with, min_period_under_latency, period_best_only, period_table,
    HomCtx, IntervalCostTable,
};
use cpo_model::application::Application;
use cpo_model::energy::EnergyModel;
use cpo_model::eval::CommModel;
use cpo_model::generator::{random_apps, AppGenConfig};
use proptest::prelude::*;

/// Enumerate all partitions of `0..n` into at most `q` intervals, calling
/// `f(partition)`.
fn for_each_partition(n: usize, q: usize, f: &mut impl FnMut(&[(usize, usize)])) {
    fn rec(
        n: usize,
        q: usize,
        first: usize,
        acc: &mut Vec<(usize, usize)>,
        f: &mut impl FnMut(&[(usize, usize)]),
    ) {
        if first == n {
            f(acc);
            return;
        }
        if acc.len() == q {
            return;
        }
        for last in first..n {
            acc.push((first, last));
            rec(n, q, last + 1, acc, f);
            acc.pop();
        }
    }
    rec(n, q, 0, &mut Vec::new(), f);
}

fn brute_period(ctx: &HomCtx<'_>, q: usize) -> f64 {
    let s = ctx.max_speed();
    let mut best = f64::INFINITY;
    for_each_partition(ctx.app.n(), q, &mut |part| {
        let t = part
            .iter()
            .map(|&(lo, hi)| ctx.cycle(lo, hi, s))
            .fold(0.0f64, f64::max);
        best = best.min(t);
    });
    best
}

fn brute_latency_under_period(ctx: &HomCtx<'_>, t_bound: f64, q: usize) -> f64 {
    let s = ctx.max_speed();
    let mut best = f64::INFINITY;
    let input_edge = ctx.app.input_of(0) / ctx.bandwidth;
    for_each_partition(ctx.app.n(), q, &mut |part| {
        if part.iter().any(|&(lo, hi)| ctx.cycle(lo, hi, s) > t_bound + 1e-9) {
            return;
        }
        let l = input_edge
            + part.iter().map(|&(lo, hi)| ctx.latency_term(lo, hi, s)).sum::<f64>();
        best = best.min(l);
    });
    best
}

fn brute_energy_under_period(ctx: &HomCtx<'_>, t_bound: f64, q: usize) -> f64 {
    let mut best = f64::INFINITY;
    for_each_partition(ctx.app.n(), q, &mut |part| {
        let mut total = 0.0;
        for &(lo, hi) in part {
            match ctx.cheapest_feasible_mode(lo, hi, t_bound) {
                Some((_, e)) => total += e,
                None => return,
            }
        }
        best = best.min(total);
    });
    best
}

fn random_app(seed: u64) -> Application {
    random_apps(&AppGenConfig { apps: 1, stages: (1, 6), ..Default::default() }, seed)
        .apps
        .remove(0)
}

fn close_or_both_inf(a: f64, b: f64) -> bool {
    (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn period_dp_equals_brute_force(seed in 0u64..100_000, qi in 1usize..5) {
        let app = random_app(seed);
        let speeds = [1.0, 4.0];
        for model in CommModel::ALL {
            let ctx = HomCtx::new(&app, &speeds, 2.0, model);
            let dp = period_table(&ctx, qi).best[qi - 1];
            let brute = brute_period(&ctx, qi);
            prop_assert!(close_or_both_inf(dp, brute), "{dp} vs {brute}");
        }
    }

    #[test]
    fn latency_dp_equals_brute_force(seed in 0u64..100_000, qi in 1usize..5, tb in 1u32..30) {
        let app = random_app(seed);
        let speeds = [3.0];
        let t_bound = tb as f64;
        for model in CommModel::ALL {
            let ctx = HomCtx::new(&app, &speeds, 2.0, model);
            let dp = latency_under_period(&ctx, t_bound, qi).best[qi - 1];
            let brute = brute_latency_under_period(&ctx, t_bound, qi);
            prop_assert!(close_or_both_inf(dp, brute), "{dp} vs {brute} (T={t_bound}, q={qi})");
        }
    }

    #[test]
    fn energy_dp_equals_brute_force(seed in 0u64..100_000, qi in 1usize..5, tb in 1u32..30) {
        let app = random_app(seed);
        let speeds = [1.0, 2.0, 5.0];
        let t_bound = tb as f64;
        for model in CommModel::ALL {
            let mut ctx = HomCtx::new(&app, &speeds, 2.0, model);
            ctx.e_stat = 1.5;
            let table = energy_under_period(&ctx, t_bound, qi);
            let dp = table.exact_k.iter().take(qi).copied().fold(f64::INFINITY, f64::min);
            let brute = brute_energy_under_period(&ctx, t_bound, qi);
            prop_assert!(close_or_both_inf(dp, brute), "{dp} vs {brute} (T={t_bound}, q={qi})");
        }
    }

    #[test]
    fn duality_roundtrip(seed in 0u64..100_000, qi in 1usize..5) {
        // min_period_under_latency(l*) where l* is the unconstrained optimal
        // latency must return the period achievable at that latency; and
        // latency_under_period at that period must give back l* or better.
        let app = random_app(seed);
        let speeds = [2.0];
        let ctx = HomCtx::new(&app, &speeds, 1.0, CommModel::Overlap);
        let l_star = latency_under_period(&ctx, f64::INFINITY, qi).best[qi - 1];
        prop_assert!(l_star.is_finite());
        let (t, _) = min_period_under_latency(&ctx, l_star, qi).expect("l* is achievable");
        let l_back = latency_under_period(&ctx, t, qi).best[qi - 1];
        prop_assert!(l_back <= l_star + 1e-9, "{l_back} vs {l_star}");
    }

    #[test]
    fn energy_monotone_in_modes(seed in 0u64..100_000, tb in 2u32..30) {
        // Adding a faster mode can only help (or not hurt) the energy DP.
        let app = random_app(seed);
        let t_bound = tb as f64;
        let few = [1.0, 2.0];
        let more = [1.0, 2.0, 8.0];
        let ctx_few = HomCtx::new(&app, &few, 2.0, CommModel::Overlap);
        let ctx_more = HomCtx::new(&app, &more, 2.0, CommModel::Overlap);
        let e_few = energy_under_period(&ctx_few, t_bound, 4).best;
        let e_more = energy_under_period(&ctx_more, t_bound, 4).best;
        prop_assert!(e_more <= e_few + 1e-9);
    }

    #[test]
    fn partitions_reconstruct_their_value(seed in 0u64..100_000, qi in 1usize..5) {
        let app = random_app(seed);
        let speeds = [1.0, 3.0];
        let ctx = HomCtx::new(&app, &speeds, 2.0, CommModel::Overlap);
        let table = period_table(&ctx, qi);
        let part = table.partition(qi, 1).expect("finite stage data");
        let s = ctx.max_speed();
        let t = part.intervals.iter().map(|&(lo, hi)| ctx.cycle(lo, hi, s)).fold(0.0f64, f64::max);
        prop_assert!((t - table.best[qi - 1]).abs() < 1e-9);
        // Structural sanity.
        prop_assert_eq!(part.intervals[0].0, 0);
        prop_assert_eq!(part.intervals.last().unwrap().1, app.n() - 1);
    }

    #[test]
    fn with_forms_match_direct_forms(seed in 0u64..100_000, tb_tenths in 0u32..200, qi in 1usize..6) {
        // The prebuilt-table `_with` forms must agree with the direct
        // HomCtx forms on random instances — including *infeasible* period
        // bounds (tb can be 0) — under both communication models, down to
        // the reconstructed partitions.
        let app = random_app(seed);
        let speeds = [1.0, 2.5, 5.0];
        let t_bound = tb_tenths as f64 / 10.0;
        for model in CommModel::ALL {
            let mut ctx = HomCtx::new(&app, &speeds, 2.0, model);
            ctx.e_stat = 0.75;
            let table = IntervalCostTable::build(&ctx);
            let l_direct = latency_under_period(&ctx, t_bound, qi);
            let l_table = latency_under_period_with(&table, t_bound, qi);
            prop_assert_eq!(l_direct.best.len(), l_table.best.len());
            for (x, y) in l_direct.best.iter().zip(&l_table.best) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "latency best (T={})", t_bound);
            }
            prop_assert_eq!(l_direct.partition(qi, 2), l_table.partition(qi, 2));
            let e_direct = energy_under_period(&ctx, t_bound, qi);
            let e_table = energy_under_period_with(&table, t_bound, qi);
            prop_assert_eq!(e_direct.exact_k.len(), e_table.exact_k.len());
            for (x, y) in e_direct.exact_k.iter().zip(&e_table.exact_k) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "energy exact_k (T={})", t_bound);
            }
            prop_assert_eq!(e_direct.best.to_bits(), e_table.best.to_bits());
            prop_assert_eq!(e_direct.partition_best(), e_table.partition_best());
            for k in 1..=e_direct.exact_k.len() {
                prop_assert_eq!(e_direct.partition_exact(k), e_table.partition_exact(k));
            }
        }
    }

    #[test]
    fn period_best_only_is_bitwise_equal(seed in 0u64..100_000, qi in 1usize..7) {
        let app = random_app(seed);
        let speeds = [1.5, 4.0];
        for model in CommModel::ALL {
            let ctx = HomCtx::new(&app, &speeds, 1.0, model);
            let full = period_table(&ctx, qi);
            let lean = period_best_only(&ctx, qi);
            prop_assert_eq!(full.best.len(), lean.len());
            for (x, y) in full.best.iter().zip(&lean) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn energy_model_alpha_ordering(seed in 0u64..100_000) {
        // For speeds ≥ 1, a larger α can only increase dynamic energy.
        let app = random_app(seed);
        let speeds = [1.0, 2.0, 4.0];
        let mut low = HomCtx::new(&app, &speeds, 1.0, CommModel::Overlap);
        low.energy = EnergyModel::new(1.5);
        let mut high = HomCtx::new(&app, &speeds, 1.0, CommModel::Overlap);
        high.energy = EnergyModel::new(3.0);
        let t_bound = app.total_work(); // generous
        let e_low = energy_under_period(&low, t_bound, 3).best;
        let e_high = energy_under_period(&high, t_bound, 3).best;
        if e_low.is_finite() && e_high.is_finite() {
            prop_assert!(e_high >= e_low - 1e-9);
        }
    }
}
