//! Property tests proving the pruned, parallel sweep engine reproduces the
//! naive full-candidate Pareto sweep **point for point** — same thresholds,
//! bitwise-identical periods/energies, identical mappings — on random
//! fully-homogeneous (interval DP) and comm-homogeneous (one-to-one
//! matching) instances.

use cpo_core::pareto::{
    period_energy_front_with, period_latency_front_with, ParetoPoint,
};
use cpo_core::solution::MappingKind;
use cpo_core::sweep::Sweep;
use cpo_model::generator::{
    random_apps, random_comm_homogeneous, random_fully_homogeneous, AppGenConfig,
    PlatformGenConfig,
};
use cpo_model::prelude::*;
use proptest::prelude::*;

fn assert_fronts_identical(naive: &[ParetoPoint], fast: &[ParetoPoint], what: &str) {
    assert_eq!(naive.len(), fast.len(), "{what}: point counts differ");
    for (i, (n, f)) in naive.iter().zip(fast).enumerate() {
        assert_eq!(n.period.to_bits(), f.period.to_bits(), "{what}: period of point {i}");
        assert_eq!(n.energy.to_bits(), f.energy.to_bits(), "{what}: energy of point {i}");
        assert_eq!(n.solution.mapping, f.solution.mapping, "{what}: mapping of point {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn interval_front_matches_naive_sweep(seed in 0u64..100_000, threads in 1usize..5) {
        let apps = random_apps(
            &AppGenConfig { apps: 2, stages: (1, 5), ..Default::default() },
            seed,
        );
        let pf = random_fully_homogeneous(
            &PlatformGenConfig { procs: 4, modes: (2, 3), ..Default::default() },
            seed ^ 0x9e37,
        );
        for model in CommModel::ALL {
            let naive = period_energy_front_with(
                &apps, &pf, model, MappingKind::Interval, &Sweep::exhaustive(),
            );
            let fast = period_energy_front_with(
                &apps, &pf, model, MappingKind::Interval, &Sweep::with_threads(threads),
            );
            assert_fronts_identical(&naive, &fast, "interval");
            for pt in &fast {
                prop_assert!(pt.solution.mapping.validate(&apps, &pf).is_ok());
            }
        }
    }

    #[test]
    fn one_to_one_front_matches_naive_sweep(seed in 0u64..100_000, threads in 1usize..5) {
        // Keep N ≤ p so the matching applies: 2 apps × ≤ 3 stages, 7 procs.
        let apps = random_apps(
            &AppGenConfig { apps: 2, stages: (1, 3), ..Default::default() },
            seed,
        );
        let pf = random_comm_homogeneous(
            &PlatformGenConfig { procs: 7, modes: (1, 3), ..Default::default() },
            seed ^ 0x51_7c,
        );
        for model in CommModel::ALL {
            let naive = period_energy_front_with(
                &apps, &pf, model, MappingKind::OneToOne, &Sweep::exhaustive(),
            );
            let fast = period_energy_front_with(
                &apps, &pf, model, MappingKind::OneToOne, &Sweep::with_threads(threads),
            );
            assert_fronts_identical(&naive, &fast, "one-to-one");
            for pt in &fast {
                prop_assert!(pt.solution.mapping.validate(&apps, &pf).is_ok());
                prop_assert!(pt.solution.mapping.is_one_to_one());
            }
        }
    }

    #[test]
    fn period_latency_front_matches_naive_sweep(seed in 0u64..100_000, threads in 1usize..5) {
        let apps = random_apps(
            &AppGenConfig { apps: 2, stages: (1, 5), ..Default::default() },
            seed,
        );
        let pf = random_fully_homogeneous(
            &PlatformGenConfig { procs: 5, modes: (1, 2), ..Default::default() },
            seed ^ 0xab_cd,
        );
        for model in CommModel::ALL {
            let naive = period_latency_front_with(&apps, &pf, model, &Sweep::exhaustive());
            let fast =
                period_latency_front_with(&apps, &pf, model, &Sweep::with_threads(threads));
            assert_eq!(naive.len(), fast.len(), "point counts differ");
            for (i, (n, f)) in naive.iter().zip(&fast).enumerate() {
                assert_eq!(n.period.to_bits(), f.period.to_bits(), "period of point {i}");
                assert_eq!(n.latency.to_bits(), f.latency.to_bits(), "latency of point {i}");
                assert_eq!(n.solution.mapping, f.solution.mapping, "mapping of point {i}");
                prop_assert!(n.solution.mapping.validate(&apps, &pf).is_ok());
            }
        }
    }

    #[test]
    fn weighted_apps_fronts_still_match(seed in 0u64..100_000) {
        // Non-unit weights exercise the t / W_a bound scaling.
        let mut apps = random_apps(
            &AppGenConfig { apps: 2, stages: (1, 4), ..Default::default() },
            seed,
        );
        apps.apps[0].weight = 3.0;
        apps.apps[1].weight = 0.5;
        let pf = random_fully_homogeneous(
            &PlatformGenConfig { procs: 4, modes: (2, 2), ..Default::default() },
            seed ^ 0x77,
        );
        let naive = period_energy_front_with(
            &apps, &pf, CommModel::Overlap, MappingKind::Interval, &Sweep::exhaustive(),
        );
        let fast = period_energy_front_with(
            &apps, &pf, CommModel::Overlap, MappingKind::Interval, &Sweep::with_threads(2),
        );
        assert_fronts_identical(&naive, &fast, "weighted interval");
    }
}
