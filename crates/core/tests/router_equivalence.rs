//! Router equivalence: every problem reachable through
//! `ProblemSpec → router → SolveOutcome` returns **bitwise-identical**
//! results to the corresponding direct entry point, over random instances
//! under both communication models — including the infeasibility pattern
//! (direct `None` ⇔ routed `Infeasible`).

use cpo_core::prelude::*;
use cpo_core::router;
use cpo_model::generator::{
    random_apps, random_comm_homogeneous, random_fully_homogeneous, AppGenConfig,
    PlatformGenConfig,
};
use cpo_model::prelude::*;
// Explicit import: `proptest::prelude::Strategy` (the trait) would
// otherwise make the glob-imported spec `Strategy` ambiguous.
use cpo_model::spec::Strategy;
use proptest::prelude::*;

const MODELS: [CommModel; 2] = [CommModel::Overlap, CommModel::NoOverlap];

fn fully_hom_instance(seed: u64, modes: (usize, usize)) -> (AppSet, Platform) {
    let apps = random_apps(&AppGenConfig { apps: 2, stages: (1, 3), ..Default::default() }, seed);
    let pf = random_fully_homogeneous(
        &PlatformGenConfig { procs: 4, modes, ..Default::default() },
        seed + 10_000,
    );
    (apps, pf)
}

fn comm_hom_instance(seed: u64) -> (AppSet, Platform) {
    let apps = random_apps(&AppGenConfig { apps: 2, stages: (1, 3), ..Default::default() }, seed);
    let procs = apps.total_stages() + 1;
    let pf = random_comm_homogeneous(
        &PlatformGenConfig { procs, modes: (2, 3), ..Default::default() },
        seed + 20_000,
    );
    (apps, pf)
}

/// Period bounds that are tight for small `i`, loose for large `i`.
fn bounds_for(apps: &AppSet, i: u64) -> Vec<f64> {
    apps.apps.iter().map(|a| a.total_work() / (1.0 + i as f64) + 1.0).collect()
}

/// Bitwise comparison of a routed scalar outcome against the direct call.
fn assert_same_plain(routed: &SolveOutcome, direct: &Option<Solution>, what: &str) {
    match (routed, direct) {
        (SolveOutcome::Infeasible { .. }, None) => {}
        (SolveOutcome::Solution(s), Some(d)) => {
            assert_eq!(
                s.objective.to_bits(),
                d.objective.to_bits(),
                "{what}: objective {} vs {}",
                s.objective,
                d.objective
            );
            assert_eq!(s.mapping.as_plain(), Some(&d.mapping), "{what}: mapping differs");
        }
        other => panic!("{what}: routed/direct disagree on feasibility: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn period_interval_matches_thm3(seed in 0u64..100_000) {
        for model in MODELS {
            let (apps, pf) = fully_hom_instance(seed, (1, 3));
            let spec = ProblemSpec::new(Objective::Period, Strategy::Interval, model);
            prop_assert_eq!(router::plan(&apps, &pf, &spec).unwrap(), router::Plan::PeriodInterval);
            assert_same_plain(
                &router::route(&apps, &pf, &spec),
                &minimize_global_period(&apps, &pf, model),
                "thm3",
            );
        }
    }

    #[test]
    fn period_one_to_one_matches_thm1(seed in 0u64..100_000) {
        for model in MODELS {
            let (apps, pf) = comm_hom_instance(seed);
            let spec = ProblemSpec::new(Objective::Period, Strategy::OneToOne, model);
            assert_same_plain(
                &router::route(&apps, &pf, &spec),
                &min_period_one_to_one_comm_hom(&apps, &pf, model),
                "thm1",
            );
        }
    }

    #[test]
    fn period_replicated_matches_direct(seed in 0u64..100_000) {
        for model in MODELS {
            let (apps, pf) = fully_hom_instance(seed, (1, 3));
            let spec = ProblemSpec::new(Objective::Period, Strategy::Replicated, model);
            let routed = router::route(&apps, &pf, &spec);
            match (routed, minimize_global_period_replicated(&apps, &pf, model)) {
                (SolveOutcome::Infeasible { .. }, None) => {}
                (SolveOutcome::Solution(s), Some((m, t))) => {
                    prop_assert_eq!(s.objective.to_bits(), t.to_bits());
                    prop_assert_eq!(s.mapping, SolvedMapping::Replicated(m));
                }
                other => panic!("replicated feasibility mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn period_general_matches_exact_and_lpt(seed in 0u64..100_000) {
        // Tiny instances: the exact general search is exponential.
        let apps =
            random_apps(&AppGenConfig { apps: 2, stages: (1, 2), ..Default::default() }, seed);
        let pf = random_fully_homogeneous(
            &PlatformGenConfig { procs: 2, modes: (1, 1), ..Default::default() },
            seed + 30_000,
        );
        for model in MODELS {
            let mut spec = ProblemSpec::new(Objective::Period, Strategy::General, model);
            spec.hints.exact_fallback = true;
            let routed = router::route(&apps, &pf, &spec);
            match (routed, exact_min_period_general(&apps, &pf, model)) {
                (SolveOutcome::Infeasible { .. }, None) => {}
                (SolveOutcome::Solution(s), Some((m, t))) => {
                    prop_assert_eq!(s.objective.to_bits(), t.to_bits());
                    prop_assert_eq!(s.mapping, SolvedMapping::General(m));
                }
                other => panic!("general-exact feasibility mismatch: {other:?}"),
            }
            spec.hints.exact_fallback = false;
            spec.hints.heuristic_fallback = true;
            let routed = router::route(&apps, &pf, &spec);
            match (routed, lpt_general_period(&apps, &pf, model)) {
                (SolveOutcome::Infeasible { .. }, None) => {}
                (SolveOutcome::Solution(s), Some((m, t))) => {
                    prop_assert_eq!(s.objective.to_bits(), t.to_bits());
                    prop_assert_eq!(s.mapping, SolvedMapping::General(m));
                }
                other => panic!("general-lpt feasibility mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn latency_solvers_match_direct(seed in 0u64..100_000) {
        // Thm 12 on the comm-hom instance; Thm 8 needs fully hom + p >= N.
        let (apps, pf) = comm_hom_instance(seed);
        let spec = ProblemSpec::new(Objective::Latency, Strategy::Interval, CommModel::Overlap);
        assert_same_plain(
            &router::route(&apps, &pf, &spec),
            &min_latency_interval_comm_hom(&apps, &pf),
            "thm12",
        );
        // Heuristic fallback for multi-app one-to-one on comm-hom.
        let mut spec = ProblemSpec::new(Objective::Latency, Strategy::OneToOne, CommModel::Overlap);
        spec.hints.heuristic_fallback = true;
        assert_same_plain(
            &router::route(&apps, &pf, &spec),
            &latency_one_to_one_heuristic(&apps, &pf),
            "latency greedy",
        );
        // Thm 8 on a fully homogeneous platform with enough processors.
        let apps2 =
            random_apps(&AppGenConfig { apps: 2, stages: (1, 2), ..Default::default() }, seed);
        let pf2 = random_fully_homogeneous(
            &PlatformGenConfig { procs: apps2.total_stages() + 1, ..Default::default() },
            seed + 40_000,
        );
        let spec = ProblemSpec::new(Objective::Latency, Strategy::OneToOne, CommModel::Overlap);
        assert_same_plain(
            &router::route(&apps2, &pf2, &spec),
            &min_latency_one_to_one_fully_hom(&apps2, &pf2),
            "thm8",
        );
        // Single-application rearrangement on comm-hom.
        let solo = AppSet::single(apps.apps[0].clone());
        let spec = ProblemSpec::new(Objective::Latency, Strategy::OneToOne, CommModel::Overlap);
        assert_same_plain(
            &router::route(&solo, &pf, &spec),
            &min_latency_one_to_one_single_app(&solo, &pf),
            "single-app rearrangement",
        );
    }

    #[test]
    fn bi_criteria_interval_solvers_match_thm16(seed in 0u64..100_000, i in 0u64..4) {
        for model in MODELS {
            let (apps, pf) = fully_hom_instance(seed, (1, 3));
            let tb = bounds_for(&apps, i);
            let spec = ProblemSpec::new(Objective::Latency, Strategy::Interval, model)
                .with_period_bounds(tb.clone());
            assert_same_plain(
                &router::route(&apps, &pf, &spec),
                &min_latency_under_period_fully_hom(&apps, &pf, model, &tb),
                "thm16 latency-under-period",
            );
            let lb = bounds_for(&apps, 3 - i);
            let spec = ProblemSpec::new(Objective::Period, Strategy::Interval, model)
                .with_latency_bounds(lb.clone());
            assert_same_plain(
                &router::route(&apps, &pf, &spec),
                &min_period_under_latency_fully_hom(&apps, &pf, model, &lb),
                "thm16 period-under-latency",
            );
        }
    }

    #[test]
    fn energy_solvers_match_thm18_19_and_replication(seed in 0u64..100_000, i in 0u64..4) {
        for model in MODELS {
            let (apps, pf) = fully_hom_instance(seed, (2, 3));
            let tb = bounds_for(&apps, i);
            let spec = ProblemSpec::new(Objective::Energy, Strategy::Interval, model)
                .with_period_bounds(tb.clone());
            assert_same_plain(
                &router::route(&apps, &pf, &spec),
                &min_energy_interval_fully_hom(&apps, &pf, model, &tb),
                "thm18/21",
            );
            let spec = ProblemSpec::new(Objective::Energy, Strategy::Replicated, model)
                .with_period_bounds(tb.clone());
            match (router::route(&apps, &pf, &spec),
                   min_energy_replicated_under_period(&apps, &pf, model, &tb)) {
                (SolveOutcome::Infeasible { .. }, None) => {}
                (SolveOutcome::Solution(s), Some((m, e))) => {
                    prop_assert_eq!(s.objective.to_bits(), e.to_bits());
                    prop_assert_eq!(s.mapping, SolvedMapping::Replicated(m));
                }
                other => panic!("replicated-energy feasibility mismatch: {other:?}"),
            }
            let (apps, pf) = comm_hom_instance(seed);
            let tb = bounds_for(&apps, i);
            let spec = ProblemSpec::new(Objective::Energy, Strategy::OneToOne, model)
                .with_period_bounds(tb.clone());
            assert_same_plain(
                &router::route(&apps, &pf, &spec),
                &min_energy_one_to_one_matching(&apps, &pf, model, &tb),
                "thm19",
            );
        }
    }

    #[test]
    fn tri_unimodal_matches_thm24(seed in 0u64..100_000, i in 0u64..4) {
        let (apps, pf) = fully_hom_instance(seed, (1, 1));
        let e_per = pf.procs[0].e_stat + EnergyModel::default().dynamic(pf.procs[0].max_speed());
        let budget = (2.0 + i as f64) * e_per + 1e-6;
        let tb = bounds_for(&apps, i);
        let lb = bounds_for(&apps, 0);
        for model in MODELS {
            let spec = ProblemSpec::new(Objective::Period, Strategy::Interval, model)
                .with_latency_bounds(lb.clone())
                .with_energy_budget(budget);
            assert_same_plain(
                &router::route(&apps, &pf, &spec),
                &min_period_tri_unimodal(&apps, &pf, model, &lb, budget),
                "thm24 period",
            );
            let spec = ProblemSpec::new(Objective::Latency, Strategy::Interval, model)
                .with_period_bounds(tb.clone())
                .with_energy_budget(budget);
            assert_same_plain(
                &router::route(&apps, &pf, &spec),
                &min_latency_tri_unimodal(&apps, &pf, model, &tb, budget),
                "thm24 latency",
            );
            let spec = ProblemSpec::new(Objective::Energy, Strategy::Interval, model)
                .with_period_bounds(tb.clone())
                .with_latency_bounds(lb.clone());
            assert_same_plain(
                &router::route(&apps, &pf, &spec),
                &min_energy_tri_unimodal(&apps, &pf, model, &tb, &lb),
                "thm24 energy",
            );
        }
    }

    #[test]
    fn exact_fallbacks_match_direct(seed in 0u64..2_000) {
        // Tiny instances: these paths are exponential.
        let apps =
            random_apps(&AppGenConfig { apps: 2, stages: (1, 2), ..Default::default() }, seed);
        let pf = random_comm_homogeneous(
            &PlatformGenConfig { procs: 3, modes: (2, 2), ..Default::default() },
            seed + 50_000,
        );
        let tb = bounds_for(&apps, 1);
        let lb = bounds_for(&apps, 0);
        // Energy under period + latency bounds → branch-and-bound.
        let mut spec = ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
            .with_period_bounds(tb.clone())
            .with_latency_bounds(lb.clone());
        spec.hints.exact_fallback = true;
        assert_same_plain(
            &router::route(&apps, &pf, &spec),
            &branch_and_bound_tri(
                &apps, &pf, CommModel::Overlap, MappingKind::Interval, &tb, &lb,
            ),
            "bnb",
        );
        // Period with latency bounds on a non-fully-hom platform →
        // exhaustive enumeration.
        let mut spec = ProblemSpec::new(Objective::Period, Strategy::Interval, CommModel::Overlap)
            .with_latency_bounds(lb.clone());
        spec.hints.exact_fallback = true;
        prop_assert_eq!(router::plan(&apps, &pf, &spec).unwrap(), router::Plan::ExactEnumeration);
        let cfg = ExactConfig {
            kind: MappingKind::Interval,
            model: CommModel::Overlap,
            speed: SpeedPolicy::MaxOnly,
        };
        assert_same_plain(
            &router::route(&apps, &pf, &spec),
            &exact_optimize(
                &apps,
                &pf,
                cfg,
                Criterion::Period,
                &Thresholds::none().with_latency(lb.clone()),
            ),
            "exact enumeration",
        );
    }

    #[test]
    fn local_search_fallback_matches_direct(seed in 0u64..2_000) {
        // Comm-hom multi-modal platform: no polynomial interval energy
        // solver, heuristic hint routes to local search with the hinted
        // iteration count and seed.
        let apps =
            random_apps(&AppGenConfig { apps: 2, stages: (1, 2), ..Default::default() }, seed);
        let pf = random_comm_homogeneous(
            &PlatformGenConfig { procs: 3, modes: (2, 2), ..Default::default() },
            seed + 60_000,
        );
        let tb = bounds_for(&apps, 1);
        let mut spec = ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
            .with_period_bounds(tb.clone());
        spec.hints.heuristic_fallback = true;
        spec.hints.local_search_iterations = Some(200);
        spec.hints.seed = Some(7);
        prop_assert_eq!(
            router::plan(&apps, &pf, &spec).unwrap(),
            router::Plan::EnergyLocalSearch
        );
        let cfg = LocalSearchConfig { iterations: 200, seed: 7, ..Default::default() };
        let lb = vec![f64::INFINITY; apps.a()];
        assert_same_plain(
            &router::route(&apps, &pf, &spec),
            &local_search(&apps, &pf, CommModel::Overlap, &tb, &lb, &cfg),
            "local search",
        );
    }

    #[test]
    fn fronts_match_direct_sweeps(seed in 0u64..100_000) {
        for model in MODELS {
            let (apps, pf) = fully_hom_instance(seed, (2, 3));
            let sweep = Sweep::with_threads(2);
            let mut spec =
                ProblemSpec::new(Objective::PeriodEnergyFront, Strategy::Interval, model);
            spec.hints.sweep_threads = Some(2);
            let routed = router::route(&apps, &pf, &spec);
            let direct = period_energy_front_with(&apps, &pf, model, MappingKind::Interval, &sweep);
            assert_front_eq(&routed, direct.iter().map(|p| (p.period, p.energy, &p.solution)));

            let mut spec =
                ProblemSpec::new(Objective::PeriodLatencyFront, Strategy::Interval, model);
            spec.hints.sweep_threads = Some(2);
            let routed = router::route(&apps, &pf, &spec);
            let direct = period_latency_front_with(&apps, &pf, model, &sweep);
            assert_front_eq(&routed, direct.iter().map(|p| (p.period, p.latency, &p.solution)));

            let (apps, pf) = comm_hom_instance(seed);
            let mut spec =
                ProblemSpec::new(Objective::PeriodEnergyFront, Strategy::OneToOne, model);
            spec.hints.sweep_threads = Some(2);
            let routed = router::route(&apps, &pf, &spec);
            let direct = period_energy_front_with(&apps, &pf, model, MappingKind::OneToOne, &sweep);
            assert_front_eq(&routed, direct.iter().map(|p| (p.period, p.energy, &p.solution)));
        }
    }
}

/// Compare a routed front against the direct sweep's points, bitwise.
fn assert_front_eq<'a>(
    routed: &SolveOutcome,
    direct: impl ExactSizeIterator<Item = (f64, f64, &'a Solution)>,
) {
    match routed {
        SolveOutcome::Front(entries) => {
            assert_eq!(entries.len(), direct.len(), "front sizes differ");
            for (entry, (achieved, objective, sol)) in entries.iter().zip(direct) {
                assert_eq!(entry.achieved.to_bits(), achieved.to_bits());
                assert_eq!(entry.objective.to_bits(), objective.to_bits());
                assert_eq!(entry.mapping.as_plain(), Some(&sol.mapping));
            }
        }
        SolveOutcome::Infeasible { .. } => {
            assert_eq!(direct.len(), 0, "routed infeasible but the direct front has points");
        }
        other => panic!("expected a front, got {other:?}"),
    }
}

/// Batch reuse: one `RouterScratch` threaded through many different
/// routed problems must not change any result (the scratch only caches
/// allocations).
#[test]
fn scratch_reuse_is_stateless() {
    let mut scratch = router::RouterScratch::new();
    for seed in 0..30u64 {
        for model in MODELS {
            let (apps, pf) = fully_hom_instance(seed, (2, 3));
            let tb = bounds_for(&apps, seed % 4);
            let specs = [
                ProblemSpec::new(Objective::Energy, Strategy::Interval, model)
                    .with_period_bounds(tb.clone()),
                ProblemSpec::new(Objective::Latency, Strategy::Interval, model)
                    .with_period_bounds(tb.clone()),
                ProblemSpec::new(Objective::Period, Strategy::Interval, model),
            ];
            for spec in &specs {
                let fresh = router::route(&apps, &pf, spec);
                let reused = router::route_with(&apps, &pf, spec, &mut scratch);
                assert_eq!(fresh, reused, "seed {seed}: scratch reuse changed the outcome");
            }
        }
    }
}
